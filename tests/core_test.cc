// Unit tests for src/core: view arena, global states, decision rules, and
// the LayeredModel base machinery.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "core/model.hpp"
#include "core/state.hpp"
#include "core/view.hpp"

namespace lacon {
namespace {

TEST(ViewArena, InitialViewsInterned) {
  ViewArena arena(3);
  const ViewId a = arena.initial(0, 1);
  const ViewId b = arena.initial(0, 1);
  const ViewId c = arena.initial(0, 0);
  const ViewId d = arena.initial(1, 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(arena.node(a).round, 0);
  EXPECT_EQ(arena.node(a).input, 1);
}

TEST(ViewArena, ExtendAdvancesRoundAndInterns) {
  ViewArena arena(3);
  const ViewId a = arena.initial(0, 1);
  const ViewId b = arena.initial(1, 0);
  const ViewId x = arena.extend(a, {{1, b}, {2, kNoView}});
  const ViewId y = arena.extend(a, {{1, b}, {2, kNoView}});
  const ViewId z = arena.extend(a, {{1, kNoView}, {2, kNoView}});
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);
  EXPECT_EQ(arena.node(x).round, 1);
  EXPECT_EQ(arena.node(x).owner, 0);
  EXPECT_EQ(arena.node(x).input, 1);  // input propagates down the chain
}

TEST(ViewArena, KnownInputsRoot) {
  ViewArena arena(3);
  const ViewId a = arena.initial(1, 7);
  const auto& known = arena.known_inputs(a);
  EXPECT_EQ(known[0], kUnknownInput);
  EXPECT_EQ(known[1], 7);
  EXPECT_EQ(known[2], kUnknownInput);
}

TEST(ViewArena, KnownInputsPropagateThroughObservations) {
  ViewArena arena(3);
  const ViewId a = arena.initial(0, 0);
  const ViewId b = arena.initial(1, 1);
  const ViewId c = arena.initial(2, 1);
  // Process 0 observes 1 but misses 2.
  const ViewId x = arena.extend(a, {{1, b}, {2, kNoView}});
  const auto& known = arena.known_inputs(x);
  EXPECT_EQ(known[0], 0);
  EXPECT_EQ(known[1], 1);
  EXPECT_EQ(known[2], kUnknownInput);
  // A second round observing a view that knows 2's input fills the gap.
  const ViewId y1 = arena.extend(b, {{0, a}, {2, c}});
  const ViewId x2 = arena.extend(x, {{1, y1}, {2, kNoView}});
  EXPECT_EQ(arena.known_inputs(x2)[2], 1);
}

TEST(ViewArena, KnownInputsTransitiveThroughPrevChain) {
  ViewArena arena(2);
  const ViewId a = arena.initial(0, 0);
  const ViewId b = arena.initial(1, 1);
  const ViewId x1 = arena.extend(a, {{1, b}});
  const ViewId x2 = arena.extend(x1, {{1, kNoView}});
  // Input of 1 was learned in round 1 and persists.
  EXPECT_EQ(arena.known_inputs(x2)[1], 1);
}

TEST(ViewArena, ToStringMentionsOwnerAndRound) {
  ViewArena arena(2);
  const ViewId a = arena.initial(0, 1);
  EXPECT_EQ(arena.to_string(a), "p0@0(in=1)");
  const ViewId x = arena.extend(a, {{1, kNoView}});
  EXPECT_NE(arena.to_string(x).find("p0@1"), std::string::npos);
}

TEST(GlobalState, AgreeModulo) {
  GlobalState x{{1, 2}, {10, 11, 12}, {kUndecided, 0, kUndecided}};
  GlobalState y{{1, 2}, {10, 99, 12}, {kUndecided, 1, kUndecided}};
  EXPECT_TRUE(agree_modulo(x, y, 1));   // differ only in process 1
  EXPECT_FALSE(agree_modulo(x, y, 0));  // process 1 still differs
  GlobalState z = x;
  z.env = {1, 3};
  EXPECT_FALSE(agree_modulo(x, z, 1));  // environments must be equal
  EXPECT_TRUE(agree_modulo(x, x, 2));   // reflexive for any j
}

TEST(GlobalState, AgreeModuloSeesDecisionDifference) {
  GlobalState x{{}, {10, 11}, {0, kUndecided}};
  GlobalState y{{}, {10, 11}, {1, kUndecided}};
  EXPECT_TRUE(agree_modulo(x, y, 0));
  EXPECT_FALSE(agree_modulo(x, y, 1));
}

TEST(StateArena, InternsStructurally) {
  StateArena arena;
  const StateId a = arena.intern({{1}, {2, 3}, {kUndecided, kUndecided}});
  const StateId b = arena.intern({{1}, {2, 3}, {kUndecided, kUndecided}});
  const StateId c = arena.intern({{1}, {2, 4}, {kUndecided, kUndecided}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_EQ(arena.state(a).locals[1], 3);
}

TEST(AllBinaryInputs, EnumeratesCube) {
  const auto inputs = all_binary_inputs(3);
  EXPECT_EQ(inputs.size(), 8u);
  for (const auto& in : inputs) {
    EXPECT_EQ(in.size(), 3u);
    for (Value v : in) EXPECT_TRUE(v == 0 || v == 1);
  }
}

class RuleFixture : public ::testing::Test {
 protected:
  ViewArena arena_{3};
};

TEST_F(RuleFixture, NeverDecide) {
  const auto rule = never_decide();
  const ViewId v = arena_.initial(0, 1);
  EXPECT_FALSE(rule->decide(0, v, arena_));
  EXPECT_EQ(rule->name(), "never-decide");
}

TEST_F(RuleFixture, MinAfterRoundWaitsForRound) {
  const auto rule = min_after_round(1);
  const ViewId a = arena_.initial(0, 1);
  EXPECT_FALSE(rule->decide(0, a, arena_));  // round 0 < 1
  const ViewId b = arena_.initial(1, 0);
  const ViewId x = arena_.extend(a, {{1, b}, {2, kNoView}});
  const auto d = rule->decide(0, x, arena_);
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, 0);  // min of {1, 0}
}

TEST_F(RuleFixture, OwnInputAfterRound) {
  const auto rule = own_input_after_round(1);
  const ViewId a = arena_.initial(2, 1);
  const ViewId x = arena_.extend(a, {{0, kNoView}, {1, kNoView}});
  const auto d = rule->decide(2, x, arena_);
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, 1);
}

TEST_F(RuleFixture, UnanimityDecidesEarlyOnCompleteUnanimousView) {
  const auto rule = unanimity_then_min(5);
  const ViewId a = arena_.initial(0, 1);
  const ViewId b = arena_.initial(1, 1);
  const ViewId c = arena_.initial(2, 1);
  const ViewId x = arena_.extend(a, {{1, b}, {2, c}});
  const auto d = rule->decide(0, x, arena_);
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, 1);
  // Mixed inputs: no early decision before the deadline round.
  const ViewId b0 = arena_.initial(1, 0);
  const ViewId y = arena_.extend(a, {{1, b0}, {2, c}});
  EXPECT_FALSE(rule->decide(0, y, arena_));
}

TEST_F(RuleFixture, MajorityAfterRound) {
  const auto rule = majority_after_round(1);
  const ViewId a = arena_.initial(0, 0);
  const ViewId b = arena_.initial(1, 1);
  const ViewId c = arena_.initial(2, 1);
  const ViewId x = arena_.extend(a, {{1, b}, {2, c}});
  const auto d = rule->decide(0, x, arena_);
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, 1);  // two ones beat one zero
  // Ties go to 0.
  const ViewId y = arena_.extend(a, {{1, b}, {2, kNoView}});
  const auto dy = rule->decide(0, y, arena_);
  ASSERT_TRUE(dy);
  EXPECT_EQ(*dy, 0);
}

}  // namespace
}  // namespace lacon
