// End-to-end integration tests: the paper's storyline run across modules —
// Tier-A layered analysis and Tier-B simulation agreeing with each other,
// and the cross-model equivalences of Corollary 7.3 reflected in identical
// verdicts.
#include <gtest/gtest.h>

#include "analysis/reports.hpp"
#include "engine/bivalence.hpp"
#include "models/mobile/mobile_model.hpp"
#include "models/synchronous/sync_model.hpp"
#include "protocols/floodset.hpp"
#include "sim/sync_sim.hpp"
#include "topology/solvability.hpp"
#include "topology/tasks.hpp"

namespace lacon {
namespace {

// The same candidate protocol gets a violation verdict in every 1-resilient
// model (Corollaries 5.2 and 5.4 and the permutation-layering proof), while
// the t-resilient synchronous model accepts its t+1-round version.
TEST(Integration, TrilemmaAcrossAllModels) {
  for (ModelKind kind :
       {ModelKind::kMobile, ModelKind::kSharedMem, ModelKind::kMsgPass}) {
    auto rule = min_after_round(2);
    auto model = make_model(kind, 3, 1, *rule);
    const TrilemmaVerdict v = consensus_trilemma(*model, 3, 3);
    EXPECT_NE(v.violated, TrilemmaVerdict::Violated::kNone)
        << model_kind_name(kind);
  }
  auto rule = min_after_round(2);
  auto sync = make_model(ModelKind::kSync, 3, 1, *rule);
  const TrilemmaVerdict v = consensus_trilemma(*sync, 3, 3);
  EXPECT_EQ(v.violated, TrilemmaVerdict::Violated::kNone) << v.witness;
}

// Tier A and Tier B agree on the synchronous story: the layered submodel's
// round bound matches the simulator's measured decision rounds.
TEST(Integration, LayeredBoundMatchesSimulatedRounds) {
  for (int t : {1, 2}) {
    const int n = t + 2;
    // Tier A: round-t decisions break agreement; round-(t+1) decisions work.
    auto early = min_after_round(t);
    SyncModel bad(n, t, *early);
    EXPECT_TRUE(check_consensus_spec(bad, t + 1).agreement.has_value());
    auto good_rule = min_after_round(t + 1);
    SyncModel good(n, t, *good_rule);
    const SpecReport ok = check_consensus_spec(good, t + 1);
    EXPECT_FALSE(ok.agreement.has_value());
    // Tier B: FloodSet's worst-case decision round equals t+1.
    std::vector<Value> inputs(static_cast<std::size_t>(n), 1);
    inputs[0] = 0;
    const SyncRunResult sim =
        run_sync(*floodset_factory(), n, t, inputs, hiding_chain(n, t));
    EXPECT_EQ(sim.outcome.max_decision_round, t + 1);
  }
}

// The full-information min rule and the FloodSet protocol compute the same
// decisions on matching adversaries: the (j,[k]) layer action corresponds to
// the crash plan "j crashes in round 1 delivering to everyone but 0..k-1".
TEST(Integration, TierAMatchesTierBDecisionForDecisiveRuns) {
  const int n = 3;
  const int t = 1;
  auto rule = min_after_round(t + 1);
  SyncModel model(n, t, *rule);
  const auto factory = floodset_factory();
  for (StateId x0 : model.initial_states()) {
    std::vector<Value> inputs;
    for (ViewId v : model.state(x0).locals) {
      inputs.push_back(model.views().node(v).input);
    }
    for (ProcessId j = 0; j < n; ++j) {
      for (int k = 0; k <= n; ++k) {
        // Tier A: apply (j,[k]) then run failure-free to quiescence.
        StateId x = model.apply(x0, j, k);
        while (!quiescent(model, x)) x = model.apply(x, 0, 0);
        // Tier B: same adversary as a crash plan. A prefix that only
        // "loses" j's message to itself loses nothing — no crash at all
        // (and Tier A interns the same state as the failure-free round).
        ProcessSet lost = ProcessSet::prefix(k);
        lost.erase(j);
        CrashPlan plan;
        if (!lost.empty()) {
          plan.push_back(CrashEvent{j, 1, ProcessSet::all(n) - lost});
        }
        const SyncRunResult sim = run_sync(*factory, n, t, inputs, plan);
        for (ProcessId i = 0; i < n; ++i) {
          if (model.failed_at(x).contains(i)) continue;
          const Value tier_a =
              model.state(x).decisions[static_cast<std::size_t>(i)];
          ASSERT_TRUE(sim.decisions[static_cast<std::size_t>(i)].has_value());
          EXPECT_EQ(tier_a, *sim.decisions[static_cast<std::size_t>(i)])
              << "inputs via state " << x0 << " action (" << j << ",[" << k
              << "]) process " << i;
        }
      }
    }
  }
}

// Corollary 7.3 reflected: consensus is rejected by the topology condition
// AND non-terminating in every 1-resilient layered model, while the trivial
// task passes the condition and is trivially solvable (decide own input —
// own_input_after_round satisfies its spec).
TEST(Integration, TopologyVerdictMatchesOperationalBehaviour) {
  EXPECT_EQ(problem_k_thick_connected(consensus_task(3), 1).verdict,
            ThickVerdict::kNotConnected);
  EXPECT_EQ(problem_k_thick_connected(trivial_task(3), 1).verdict,
            ThickVerdict::kConnected);
  // Operational side of the trivial task: deciding one's own input after one
  // phase never violates its Δ (outputs = inputs), in any model.
  for (ModelKind kind :
       {ModelKind::kMobile, ModelKind::kSharedMem, ModelKind::kMsgPass}) {
    auto rule = own_input_after_round(1);
    auto model = make_model(kind, 3, 1, *rule);
    const SpecReport report = check_consensus_spec(*model, 2);
    // Validity for the *trivial task* means everyone outputs its own input —
    // trivially true for this rule; consensus-validity also holds.
    EXPECT_FALSE(report.validity.has_value()) << model_kind_name(kind);
  }
}

// The executable Theorem 4.2 at a larger size: n = 4 in the mobile model.
TEST(Integration, BivalentRunAtN4) {
  auto rule = min_after_round(2);
  MobileModel model(4, *rule);
  ValenceEngine engine(model, 3);
  const BivalentRunResult run = extend_bivalent_run(engine, 5);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
}

}  // namespace
}  // namespace lacon
