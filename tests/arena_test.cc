// Concurrency and flat-storage tests for the sharded hash-consing arenas
// (core/state.hpp, core/view.hpp) and their supporting runtime pieces
// (runtime/word_pool.hpp, ConcurrentSlotVector). The stress tests run under
// the TSan CI lane (ci.sh), which is where the sharded index and the
// lock-free pool earn their keep.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/state.hpp"
#include "core/view.hpp"
#include "runtime/fault.hpp"
#include "runtime/word_pool.hpp"
#include "util/hash.hpp"

namespace lacon {
namespace {

constexpr int kThreads = 8;

// Deterministic state generator: varies env length (including empty) and
// process count (including odd counts, which exercise the packed-lane
// padding of the flat encoding). Locals are arbitrary ids — StateArena
// never dereferences them.
GlobalState make_state(std::uint64_t i) {
  GlobalState s;
  const std::size_t env_len = i % 5;
  const std::size_t n = 2 + i % 7;  // 2..8
  for (std::size_t e = 0; e < env_len; ++e) {
    s.env.push_back(static_cast<std::int64_t>(mix64(i * 31 + e)));
  }
  for (std::size_t p = 0; p < n; ++p) {
    s.locals.push_back(static_cast<ViewId>(mix64(i + p) & 0xffff));
    s.decisions.push_back(p % 3 == 0 ? static_cast<Value>(i % 2) : kUndecided);
  }
  return s;
}

// Sorted multiset of the content hashes of every interned state.
std::vector<std::uint64_t> content_hashes(const StateArena& arena) {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(arena.size());
  for (std::size_t id = 0; id < arena.size(); ++id) {
    hashes.push_back(
        StateArena::content_hash(arena.state(static_cast<StateId>(id))));
  }
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

TEST(WordPoolTest, RegionsNeverSpanChunks) {
  runtime::WordPool pool;
  constexpr std::size_t kChunk = runtime::WordPool::kMaxRegionWords;
  const std::size_t a = pool.alloc(10);
  EXPECT_EQ(a, 0u);
  // The tail of chunk 0 (kChunk - 10 words) cannot hold a full chunk, so
  // this region must start at the next chunk boundary.
  const std::size_t b = pool.alloc(kChunk);
  EXPECT_EQ(b, kChunk);
  EXPECT_EQ(pool.allocated_words(), 2 * kChunk);
  // Writes round-trip through data().
  std::int64_t* w = pool.mutable_data(a);
  for (std::size_t i = 0; i < 10; ++i) w[i] = static_cast<std::int64_t>(i);
  const std::int64_t* r = pool.data(a);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r[i], static_cast<std::int64_t>(i));
  }
}

TEST(StateArenaTest, FlatStorageRoundTrips) {
  StateArena arena;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const GlobalState original = make_state(i);
    const StateId id = arena.intern(original);
    const StateRef ref = arena.state(id);
    ASSERT_EQ(ref.env.size(), original.env.size());
    ASSERT_EQ(ref.locals.size(), original.locals.size());
    ASSERT_EQ(ref.decisions.size(), original.decisions.size());
    EXPECT_TRUE(ref == StateRef(original));
    EXPECT_EQ(StateArena::content_hash(ref),
              StateArena::content_hash(original));
  }
}

TEST(StateArenaTest, EmptyStateInternOk) {
  StateArena arena;
  const StateId a = arena.intern(GlobalState{});
  const StateId b = arena.intern(GlobalState{});
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.size(), 1u);
  EXPECT_TRUE(arena.state(a).env.empty());
  EXPECT_TRUE(arena.state(a).locals.empty());
}

TEST(StateArenaTest, ApproxBytesIsMonotoneAndContentDeterministic) {
  StateArena a1;
  StateArena a2;
  std::size_t last = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    a1.intern(make_state(i));
    EXPECT_GE(a1.approx_bytes(), last);
    last = a1.approx_bytes();
  }
  // Same content set in a different order: identical accounting. This is
  // the invariant the guard's memory budget rests on (truncation depth is
  // identical for every worker count).
  for (std::uint64_t i = 200; i-- > 0;) a2.intern(make_state(i));
  EXPECT_EQ(a1.approx_bytes(), a2.approx_bytes());
  // Re-interning existing content adds nothing.
  a1.intern(make_state(7));
  EXPECT_EQ(a1.approx_bytes(), last);
}

// N threads intern maximally overlapping key sets (every thread interns
// every state, in a thread-dependent order). The resulting arena must be
// indistinguishable — size, byte accounting, content-hash multiset — from a
// serial run over the same content, and every thread must have received the
// same id for the same content.
TEST(StateArenaTest, ParallelInternStressMatchesSerial) {
  constexpr std::uint64_t kStates = 1500;

  StateArena serial;
  for (std::uint64_t i = 0; i < kStates; ++i) serial.intern(make_state(i));

  StateArena arena;
  std::vector<std::vector<StateId>> ids(
      kThreads, std::vector<StateId>(kStates, 0));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < kStates; ++k) {
        const std::uint64_t i = (k + static_cast<std::uint64_t>(t) * 137) %
                                kStates;  // same set, skewed order
        ids[static_cast<std::size_t>(t)][i] = arena.intern(make_state(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(arena.size(), serial.size());
  EXPECT_EQ(arena.approx_bytes(), serial.approx_bytes());
  EXPECT_EQ(content_hashes(arena), content_hashes(serial));
  // Racing interns of equal content agreed on one id.
  for (std::uint64_t i = 0; i < kStates; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[static_cast<std::size_t>(t)][i], ids[0][i]);
    }
    // ... and the id resolves to the right content.
    EXPECT_TRUE(arena.state(ids[0][i]) == StateRef(make_state(i)));
  }
}

TEST(ViewArenaTest, ParallelInternStressAgreesAcrossThreads) {
  constexpr int kChains = 40;
  constexpr int kDepth = 12;

  // Every thread builds every chain: initial(owner, input) extended kDepth
  // times with a chain-specific observation pattern. Equal content must
  // yield equal ids in every thread.
  ViewArena arena(4);
  std::vector<std::vector<ViewId>> tips(
      kThreads, std::vector<ViewId>(kChains, kNoView));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kChains; ++k) {
        const int c = (k + t * 7) % kChains;
        ViewId v = arena.initial(c % 4, (c / 4) % 2);
        for (int d = 0; d < kDepth; ++d) {
          std::vector<Obs> obs;
          for (std::int32_t src = 0; src < 4; ++src) {
            if (src == c % 4) continue;
            obs.push_back(Obs{src, ((c + d + src) % 3 == 0) ? v : kNoView});
          }
          v = arena.extend(v, std::move(obs));
        }
        tips[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)] = v;
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int c = 0; c < kChains; ++c) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(tips[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)],
                tips[0][static_cast<std::size_t>(c)]);
    }
  }
  // Serial rebuild of the same content interns nothing new.
  const std::size_t before = arena.size();
  ViewId v = arena.initial(0, 0);
  for (int d = 0; d < kDepth; ++d) {
    std::vector<Obs> obs;
    for (std::int32_t src = 1; src < 4; ++src) {
      obs.push_back(Obs{src, ((0 + d + src) % 3 == 0) ? v : kNoView});
    }
    v = arena.extend(v, std::move(obs));
  }
  EXPECT_EQ(arena.size(), before);
}

// Concurrent known_inputs over a shared deep chain: the per-node memo slots
// must hand every caller the same (correct) vector.
TEST(ViewArenaTest, KnownInputsMemoIsConcurrent) {
  ViewArena arena(4);
  // p0 learns everyone's input through a chain of phases.
  std::vector<ViewId> others;
  for (ProcessId p = 1; p < 4; ++p) others.push_back(arena.initial(p, p % 2));
  ViewId v = arena.initial(0, 1);
  for (int d = 0; d < 30; ++d) {
    std::vector<Obs> obs;
    for (std::int32_t src = 1; src < 4; ++src) {
      obs.push_back(
          Obs{src, d == 0 ? others[static_cast<std::size_t>(src - 1)]
                          : kNoView});
    }
    v = arena.extend(v, std::move(obs));
  }

  std::vector<const std::vector<Value>*> results(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = &arena.known_inputs(v);
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<Value> expected = {1, 1, 0, 1};  // p:, input p%2; p0=1
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[static_cast<std::size_t>(t)], nullptr);
    EXPECT_EQ(*results[static_cast<std::size_t>(t)], expected);
    // Memoized: every thread sees the same published vector.
    EXPECT_EQ(results[static_cast<std::size_t>(t)], results[0]);
  }
}

// Fault soak at kArenaAlloc against the pooled arena: injected allocation
// failures fire at intern entry, so no id is ever claimed for a failed
// intern and the arena stays fully consistent for the survivors.
TEST(ArenaFaultSoak, StateInternSurvivesInjectedAllocFailures) {
  StateArena arena;
  std::atomic<std::uint64_t> injected{0};
  std::atomic<std::uint64_t> succeeded{0};
  {
    fault::FaultScope scope(/*seed=*/20260805, /*rate=*/0.05,
                            1u << static_cast<unsigned>(
                                fault::Site::kArenaAlloc));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::uint64_t i = 0; i < 400; ++i) {
          try {
            arena.intern(make_state(i));
            succeeded.fetch_add(1, std::memory_order_relaxed);
          } catch (const fault::InjectedAllocError&) {
            injected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_GT(scope.plan().fired(fault::Site::kArenaAlloc), 0u);
  }
  EXPECT_GT(injected.load(), 0u);
  EXPECT_GT(succeeded.load(), 0u);
  // Every interned id round-trips, and re-interning (injection now off)
  // dedupes against the survivors instead of growing past the content set.
  const std::size_t survivors = arena.size();
  EXPECT_LE(survivors, 400u);
  for (std::uint64_t i = 0; i < 400; ++i) arena.intern(make_state(i));
  EXPECT_EQ(arena.size(), 400u);
  EXPECT_GE(arena.size(), survivors);
  StateArena serial;
  for (std::uint64_t i = 0; i < 400; ++i) serial.intern(make_state(i));
  EXPECT_EQ(content_hashes(arena), content_hashes(serial));
}

}  // namespace
}  // namespace lacon
