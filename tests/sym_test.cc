// Tests for the process-permutation symmetry quotient (core/sym.hpp,
// DESIGN.md §15): knob parsing, orbit canonicalization invariants,
// quotient-vs-full count identity, and the soundness gates that keep
// asymmetric models and non-closed input sets out of the quotient.
#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/sym.hpp"
#include "engine/explore.hpp"
#include "models/iis/iis_model.hpp"
#include "models/mobile/mobile_model.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/snapshot/snapshot_model.hpp"
#include "runtime/stats.hpp"

namespace lacon {
namespace {

GlobalState copy_state(const StateRef& ref) {
  return GlobalState{{ref.env.begin(), ref.env.end()},
                     {ref.locals.begin(), ref.locals.end()},
                     {ref.decisions.begin(), ref.decisions.end()}};
}

TEST(SymKnob, ParseSymmetry) {
  EXPECT_FALSE(sym::parse_symmetry(nullptr, false));
  EXPECT_TRUE(sym::parse_symmetry(nullptr, true));
  EXPECT_FALSE(sym::parse_symmetry("", false));
  EXPECT_TRUE(sym::parse_symmetry("", true));
  EXPECT_TRUE(sym::parse_symmetry("on", false));
  EXPECT_FALSE(sym::parse_symmetry("off", true));
  // Garbage (including numeric overflow-style strings) warns once and
  // falls back — never aborts, never throws.
  EXPECT_FALSE(sym::parse_symmetry("banana", false));
  EXPECT_TRUE(sym::parse_symmetry("banana", true));
  EXPECT_FALSE(sym::parse_symmetry("999999999999999999999999", false));
  EXPECT_TRUE(sym::parse_symmetry("ON", true));   // case-sensitive: garbage
  EXPECT_FALSE(sym::parse_symmetry("1", false));  // not a boolean spelling
}

TEST(SymKnob, ScopedOverrideNests) {
  {
    sym::ScopedSymmetry outer(true);
    EXPECT_TRUE(sym::enabled());
    {
      sym::ScopedSymmetry inner(false);
      EXPECT_FALSE(sym::enabled());
    }
    EXPECT_TRUE(sym::enabled());
  }
}

TEST(SymKnob, Factorial) {
  EXPECT_EQ(sym::factorial(0), 1u);
  EXPECT_EQ(sym::factorial(1), 1u);
  EXPECT_EQ(sym::factorial(4), 24u);
  EXPECT_EQ(sym::factorial(8), 40320u);
}

// Interning any permuted variant of a canonical state yields the same id —
// the core quotient property. Orbit members *are* exactly the permuted
// variants, so unfolding and re-interning covers every permutation.
template <typename ModelT>
void check_permutation_invariance(ModelT& model, int depth) {
  ASSERT_TRUE(model.sym_quotient_active());
  const auto levels = reachable_by_depth(model, depth);
  std::size_t orbits_checked = 0;
  for (const auto& level : levels) {
    for (const StateId x : level) {
      const std::vector<StateId> orbit = model.unfold_orbit(x);
      EXPECT_EQ(orbit.size(), model.orbit_weight(x));
      EXPECT_TRUE(std::binary_search(orbit.begin(), orbit.end(), x));
      for (const StateId member : orbit) {
        EXPECT_EQ(model.intern_canonical(copy_state(model.state(member))), x);
      }
      orbits_checked += orbit.size() > 1 ? 1 : 0;
    }
  }
  // The exploration must actually have exercised non-trivial orbits.
  EXPECT_GT(orbits_checked, 0u);
}

TEST(SymQuotient, PermutationInvarianceIis) {
  sym::ScopedSymmetry on(true);
  const auto rule = min_after_round(2);
  IisModel model(3, *rule);
  check_permutation_invariance(model, 2);
}

TEST(SymQuotient, PermutationInvarianceSnapshot) {
  sym::ScopedSymmetry on(true);
  const auto rule = min_after_round(2);
  SnapshotModel model(3, *rule);
  check_permutation_invariance(model, 2);
}

TEST(SymQuotient, PermutationInvarianceMsgPass) {
  sym::ScopedSymmetry on(true);
  const auto rule = min_after_round(2);
  MsgPassModel model(3, *rule);
  check_permutation_invariance(model, 1);
}

// Orbit-weighted per-level counts of the quotient equal the raw per-level
// counts of the full exploration: new-at-depth sets are orbit-closed.
template <typename ModelT, typename... Args>
void check_weighted_counts(int depth, Args&&... args) {
  std::vector<std::size_t> full_counts;
  {
    sym::ScopedSymmetry off(false);
    ModelT model(std::forward<Args>(args)...);
    ASSERT_FALSE(model.sym_quotient_active());
    for (const auto& level : reachable_by_depth(model, depth)) {
      full_counts.push_back(level.size());
    }
  }
  sym::ScopedSymmetry on(true);
  ModelT model(std::forward<Args>(args)...);
  ASSERT_TRUE(model.sym_quotient_active());
  const auto levels = reachable_by_depth(model, depth);
  ASSERT_EQ(levels.size(), full_counts.size());
  for (std::size_t d = 0; d < levels.size(); ++d) {
    std::uint64_t weighted = 0;
    for (const StateId x : levels[d]) weighted += model.orbit_weight(x);
    EXPECT_EQ(weighted, full_counts[d]) << "depth " << d;
    EXPECT_LE(levels[d].size(), full_counts[d]);
  }
}

TEST(SymQuotient, WeightedCountsMatchFullIis) {
  const auto rule = min_after_round(2);
  check_weighted_counts<IisModel>(2, 3, *rule);
}

TEST(SymQuotient, WeightedCountsMatchFullSnapshot) {
  const auto rule = min_after_round(2);
  check_weighted_counts<SnapshotModel>(2, 3, *rule);
}

TEST(SymQuotient, WeightedCountsMatchFullMsgPass) {
  const auto rule = never_decide();
  check_weighted_counts<MsgPassModel>(1, 3, *rule);
}

// The acceptance bar: >= 2x state reduction at n >= 4 on a symmetric model,
// with arena.sym_folds recording the folds.
TEST(SymQuotient, AtLeastTwofoldReductionAtN4) {
  const auto rule = min_after_round(2);
  std::size_t full_total = 0;
  {
    sym::ScopedSymmetry off(false);
    IisModel model(4, *rule);
    for (const auto& level : reachable_by_depth(model, 1)) {
      full_total += level.size();
    }
  }
  auto& folds = runtime::Stats::global().counter("arena.sym_folds");
  const std::uint64_t folds_before = folds.value();
  sym::ScopedSymmetry on(true);
  IisModel model(4, *rule);
  std::size_t quotient_total = 0;
  std::uint64_t weighted_total = 0;
  for (const auto& level : reachable_by_depth(model, 1)) {
    quotient_total += level.size();
    for (const StateId x : level) weighted_total += model.orbit_weight(x);
  }
  EXPECT_EQ(weighted_total, full_total);
  EXPECT_GE(full_total, 2 * quotient_total);
  EXPECT_GT(folds.value(), folds_before);
}

// Asymmetric models never quotient, even with the knob forced on.
TEST(SymQuotient, TrivialModelUnaffected) {
  sym::ScopedSymmetry on(true);
  const auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  EXPECT_FALSE(model.sym_quotient_active());
  const StateId x = model.initial_states().front();
  EXPECT_EQ(model.orbit_weight(x), 1u);
  EXPECT_EQ(model.unfold_orbit(x), std::vector<StateId>{x});
}

// A symmetric model constructed with inputs that are NOT permutation-closed
// must silently degrade to the trivial quotient (wrong verdicts otherwise).
TEST(SymQuotient, NonClosedInputsDegrade) {
  sym::ScopedSymmetry on(true);
  const auto rule = never_decide();
  IisModel open_model(3, *rule, {{0, 1, 1}});
  EXPECT_FALSE(open_model.sym_quotient_active());
  IisModel closed_model(3, *rule, {{0, 1, 1}, {1, 0, 1}, {1, 1, 0}});
  EXPECT_TRUE(closed_model.sym_quotient_active());
  // The three orbit-equivalent assignments fold onto ONE canonical initial
  // state (initial_states deduplicates).
  EXPECT_EQ(closed_model.initial_states().size(), 1u);
  EXPECT_EQ(closed_model.orbit_weight(closed_model.initial_states()[0]), 3u);
}

// Canonical signatures are id-free: two independently-built models assign
// equal signatures to equal content, distinct signatures to distinct
// content — with and without the quotient.
TEST(SymQuotient, CanonicalSignatureContentBased) {
  const auto rule = min_after_round(2);
  sym::ScopedSymmetry off(false);
  MsgPassModel a(3, *rule);
  MsgPassModel b(3, *rule);
  const auto& ia = a.initial_states();
  const auto& ib = b.initial_states();
  ASSERT_EQ(ia.size(), ib.size());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sigs;
  for (std::size_t i = 0; i < ia.size(); ++i) {
    const auto sa = a.canonical_signature(ia[i]);
    EXPECT_EQ(sa, b.canonical_signature(ib[i]));
    sigs.push_back(sa);
  }
  std::sort(sigs.begin(), sigs.end());
  EXPECT_EQ(std::adjacent_find(sigs.begin(), sigs.end()), sigs.end())
      << "distinct initial states must have distinct signatures";
  // Signatures survive one layer of divergent interning order too.
  const StateId xa = a.layer(ia[0]).front();
  const StateId xb = b.layer(ib[0]).front();
  EXPECT_EQ(a.canonical_signature(xa), b.canonical_signature(xb));
}

}  // namespace
}  // namespace lacon
