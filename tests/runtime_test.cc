// Tests for the parallel analysis runtime (src/runtime/) and the
// serial-vs-parallel equivalence guarantee of the ported hot paths: for
// every model kind, reachable_by_depth, similarity_connected, s_diameter
// and the valence tags must be identical with 1 worker and with >= 4
// workers (states compared by canonical content — interned ids are
// deliberately not part of the determinism contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/reports.hpp"
#include "core/sym.hpp"
#include "engine/explore.hpp"
#include "engine/valence.hpp"
#include "relation/similarity.hpp"
#include "runtime/fault.hpp"
#include "runtime/parallel.hpp"
#include "runtime/stable_vector.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace lacon {
namespace {

using runtime::WorkerCountOverride;

TEST(ParseWorkerEnv, AcceptsPositiveIntegers) {
  EXPECT_EQ(runtime::parse_worker_env("1", 8), 1u);
  EXPECT_EQ(runtime::parse_worker_env("16", 8), 16u);
}

TEST(ParseWorkerEnv, FallsBackOnGarbage) {
  EXPECT_EQ(runtime::parse_worker_env(nullptr, 8), 8u);
  EXPECT_EQ(runtime::parse_worker_env("", 8), 8u);
  EXPECT_EQ(runtime::parse_worker_env("zero", 8), 8u);
  EXPECT_EQ(runtime::parse_worker_env("4x", 8), 8u);
  EXPECT_EQ(runtime::parse_worker_env("0", 8), 8u);
  EXPECT_EQ(runtime::parse_worker_env("-3", 8), 8u);
}

TEST(ParseWorkerEnv, ClampsToSaneMaximum) {
  EXPECT_EQ(runtime::parse_worker_env("100000", 8), 256u);
}

TEST(ParseWorkerEnv, FallsBackOnOverflow) {
  // 2^64: strtoul saturates with ERANGE; must fall back, not clamp.
  EXPECT_EQ(runtime::parse_worker_env("18446744073709551616", 8), 8u);
  EXPECT_EQ(runtime::parse_worker_env("999999999999999999999999", 8), 8u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  runtime::ThreadPool pool(4);
  std::atomic<int> sum{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i + 1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sum.load() != kTasks * (kTasks + 1) / 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "pool dropped tasks; sum=" << sum.load();
    std::this_thread::yield();
  }
}

TEST(ThreadPool, SerialPoolRunsInline) {
  runtime::ThreadPool pool(1);
  bool ran = false;
  pool.submit([&ran] { ran = true; });  // no worker threads: runs inline
  EXPECT_TRUE(ran);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  WorkerCountOverride workers(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  runtime::parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  WorkerCountOverride workers(4);
  runtime::parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  {
    WorkerCountOverride serial(1);
    runtime::parallel_for(1, [&](std::size_t) { ++calls; });
  }
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  WorkerCountOverride workers(4);
  EXPECT_THROW(
      runtime::parallel_for(1000,
                            [](std::size_t i) {
                              if (i == 513) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
}

TEST(ParallelFor, SerialPropagatesExactlyTheFirstException) {
  // With one worker the chunks run inline in index order, so the exception
  // that escapes is exactly the lowest-index one.
  WorkerCountOverride workers(1);
  try {
    runtime::parallel_for(1000, [](std::size_t i) {
      if (i == 200) throw std::runtime_error("early");
      if (i == 700) throw std::runtime_error("late");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ("early", e.what());
  }
}

TEST(ParallelFor, MultiWorkerPropagatesOneOfTheThrown) {
  // Across workers "first" races, but the escaping exception must be one of
  // the ones actually thrown — never terminate(), never a different type.
  WorkerCountOverride workers(4);
  try {
    runtime::parallel_for(1000, [](std::size_t i) {
      if (i % 250 == 249) throw std::runtime_error("boom@" + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(0, std::string(e.what()).rfind("boom@", 0));
  }
}

TEST(ParallelFor, PoolStaysUsableAfterThrow) {
  for (unsigned workers : {1u, 4u}) {
    WorkerCountOverride scoped(workers);
    EXPECT_THROW(runtime::parallel_for(
                     500, [](std::size_t i) {
                       if (i == 100) throw std::runtime_error("boom");
                     }),
                 std::runtime_error)
        << "workers=" << workers;
    std::atomic<std::size_t> count{0};
    runtime::parallel_for(500, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(500u, count.load()) << "workers=" << workers;
  }
}

TEST(ParallelReduce, PropagatesExceptionsAndPoolStaysUsable) {
  for (unsigned workers : {1u, 4u}) {
    WorkerCountOverride scoped(workers);
    EXPECT_THROW(runtime::parallel_reduce<int>(
                     300, 0,
                     [](std::size_t i) -> int {
                       if (i == 37) throw std::runtime_error("boom");
                       return 1;
                     },
                     [](int a, int b) { return a + b; }),
                 std::runtime_error)
        << "workers=" << workers;
    const int sum = runtime::parallel_reduce<int>(
        300, 0, [](std::size_t) { return 1; },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(300, sum) << "workers=" << workers;
  }
}

TEST(FaultSoak, InjectedTaskFaultPropagatesAndPoolRecovers) {
  fault::FaultConfig config{20260805, 1.0};
  if (const auto env = fault::config_from_env()) {
    config.seed = env->seed;  // rate stays 1.0: the throw must happen
  }
  for (unsigned workers : {1u, 4u}) {
    WorkerCountOverride scoped(workers);
    {
      fault::FaultScope scope(
          config.seed, 1.0,
          1u << static_cast<unsigned>(fault::Site::kTaskBody));
      EXPECT_THROW(runtime::parallel_for(400, [](std::size_t) {}),
                   fault::InjectedFault)
          << "workers=" << workers;
    }
    std::atomic<std::size_t> count{0};
    runtime::parallel_for(400, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(400u, count.load()) << "workers=" << workers;
  }
}

TEST(ParallelMapChunks, MergesInChunkOrder) {
  WorkerCountOverride workers(4);
  constexpr std::size_t kN = 5000;
  const auto chunks = runtime::parallel_map_chunks<std::vector<std::size_t>>(
      kN, [](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> out(end - begin);
        std::iota(out.begin(), out.end(), begin);
        return out;
      });
  std::vector<std::size_t> merged;
  for (const auto& c : chunks) merged.insert(merged.end(), c.begin(), c.end());
  ASSERT_EQ(merged.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(merged[i], i);
}

TEST(ParallelReduce, NonCommutativeReductionIsDeterministic) {
  // String concatenation is associative but not commutative: the reduction
  // must produce the left-to-right result for every worker count.
  const auto concat = [](std::size_t n) {
    return runtime::parallel_reduce<std::string>(
        n, std::string(),
        [](std::size_t i) { return std::to_string(i % 10); },
        [](std::string a, std::string b) { return a + b; });
  };
  std::string serial, parallel;
  {
    WorkerCountOverride workers(1);
    serial = concat(300);
  }
  {
    WorkerCountOverride workers(4);
    parallel = concat(300);
  }
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.size(), 300u);
}

TEST(StableVector, ReferencesSurviveGrowth) {
  runtime::StableVector<std::string> v;
  v.push_back("first");
  const std::string& first = v[0];
  for (int i = 0; i < 5000; ++i) v.push_back(std::to_string(i));
  EXPECT_EQ(first, "first");  // still valid after many chunk allocations
  EXPECT_EQ(v.size(), 5001u);
  EXPECT_EQ(v[4321], std::to_string(4320));
}

TEST(StableVector, ConcurrentReadersSeePublishedElements) {
  runtime::StableVector<int> v;
  std::mutex write_mu;
  std::atomic<std::size_t> published{0};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      {
        std::lock_guard<std::mutex> lock(write_mu);
        v.push_back(i);
      }
      published.store(static_cast<std::size_t>(i) + 1,
                      std::memory_order_release);
    }
  });
  std::thread reader([&] {
    while (published.load(std::memory_order_acquire) < 20000) {
      const std::size_t n = published.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; i += 997) {
        if (v[i] != static_cast<int>(i)) {
          failed.store(true);
          return;
        }
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(failed.load());
}

TEST(Stats, CountersAndTimersAccumulate) {
  auto& stats = runtime::Stats::global();
  auto& counter = stats.counter("test.counter");
  counter.reset();
  counter.add(3);
  counter.increment();
  EXPECT_EQ(counter.value(), 4u);

  auto& timer = stats.timer("test.timer");
  timer.reset();
  {
    runtime::ScopedTimer scope(timer);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(timer.count(), 1u);
  EXPECT_GT(timer.nanos(), 1000000u);  // at least 1ms elapsed

  bool saw_counter = false, saw_timer = false;
  for (const auto& s : stats.snapshot()) {
    if (s.name == "test.counter" && !s.is_timer && s.value == 4)
      saw_counter = true;
    if (s.name == "test.timer" && s.is_timer && s.count == 1) saw_timer = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_timer);
}

TEST(Stats, SnapshotIsSortedByName) {
  auto& stats = runtime::Stats::global();
  stats.counter("zz.last");
  stats.counter("aa.first");
  const auto snap = stats.snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].name, snap[i].name);
  }
}

TEST(RuntimeReport, MentionsWorkersAndStats) {
  runtime::Stats::global().counter("report.probe").increment();
  const std::string report = runtime_report();
  EXPECT_NE(report.find("runtime.workers"), std::string::npos);
  EXPECT_NE(report.find("report.probe"), std::string::npos);
}

// --- Graph::from_relation: parallel sweep must equal the serial sweep ---

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.size() != b.size() || a.edge_count() != b.edge_count()) return false;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    // Order included: the CSR rows must match element for element.
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

TEST(FromRelation, ParallelSweepIsByteIdenticalToSerial) {
  const auto related = [](std::size_t a, std::size_t b) {
    return (a * 7 + b * 13) % 3 == 0;
  };
  Graph serial(0), parallel(0), parallel_again(0);
  {
    WorkerCountOverride workers(1);
    serial = Graph::from_relation(257, related);
  }
  {
    WorkerCountOverride workers(4);
    parallel = Graph::from_relation(257, related);
    parallel_again = Graph::from_relation(257, related);
  }
  EXPECT_TRUE(graphs_equal(serial, parallel));
  EXPECT_TRUE(graphs_equal(parallel, parallel_again));
  EXPECT_GT(serial.edge_count(), 0u);
}

TEST(FromRelation, TinySizes) {
  WorkerCountOverride workers(4);
  const auto always = [](std::size_t, std::size_t) { return true; };
  EXPECT_EQ(Graph::from_relation(0, always).size(), 0u);
  EXPECT_EQ(Graph::from_relation(1, always).edge_count(), 0u);
  EXPECT_EQ(Graph::from_relation(2, always).edge_count(), 1u);
}

// --- Serial-vs-parallel equivalence of the analysis hot paths ---

// Canonical, id-free rendering of a state: environment words, each
// process's view term and its decision. Two runs that intern in different
// orders still agree on these.
std::string state_fingerprint(LayeredModel& model, StateId x) {
  const StateRef s = model.state(x);
  // env_to_string, not s.env: the shared-memory/message-passing envs embed
  // interned ViewIds, whose numeric values race across worker counts.
  std::string out = "env[" + model.env_to_string(x);
  out += "] views[";
  for (ViewId v : s.locals) out += model.views().to_string(v) + ";";
  out += "] d[";
  for (Value d : s.decisions) out += std::to_string(d) + ",";
  return out + "]";
}

struct AnalysisResult {
  std::vector<std::vector<std::string>> levels;  // sorted fingerprints
  bool con0_sim_connected = false;
  std::string con0_s_diameter;
  std::vector<std::string> valence_tags;  // per initial state, in order

  bool operator==(const AnalysisResult&) const = default;
};

AnalysisResult run_analysis(ModelKind kind, int n, int depth, int horizon) {
  const int t = 1;
  auto rule = min_after_round(2);
  auto model = make_model(kind, n, t, *rule);

  AnalysisResult result;
  for (const auto& level : reachable_by_depth(*model, depth)) {
    std::vector<std::string> prints;
    prints.reserve(level.size());
    for (StateId x : level) prints.push_back(state_fingerprint(*model, x));
    std::sort(prints.begin(), prints.end());
    result.levels.push_back(std::move(prints));
  }

  const auto& con0 = model->initial_states();
  result.con0_sim_connected = similarity_connected(*model, con0);
  const auto diam = s_diameter(*model, con0);
  result.con0_s_diameter = diam ? std::to_string(*diam) : "inf";

  ValenceEngine engine(*model, horizon, default_exactness(kind));
  for (const ValenceInfo& v : engine.classify_all(con0)) {
    result.valence_tags.push_back(std::string("v0=") + (v.v0 ? "1" : "0") +
                                  " v1=" + (v.v1 ? "1" : "0") +
                                  " exact=" + (v.exact ? "1" : "0"));
  }
  return result;
}

class EquivalenceTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(EquivalenceTest, SerialAndParallelAnalysesAgree) {
  const ModelKind kind = GetParam();
  const int n = 3;
  const int depth = kind == ModelKind::kMsgPass ? 1 : 2;
  const int horizon = 3;

  AnalysisResult serial, parallel;
  {
    WorkerCountOverride workers(1);
    serial = run_analysis(kind, n, depth, horizon);
  }
  {
    WorkerCountOverride workers(4);
    parallel = run_analysis(kind, n, depth, horizon);
  }
  EXPECT_EQ(serial.levels, parallel.levels);
  EXPECT_EQ(serial.con0_sim_connected, parallel.con0_sim_connected);
  EXPECT_EQ(serial.con0_s_diameter, parallel.con0_s_diameter);
  EXPECT_EQ(serial.valence_tags, parallel.valence_tags);
  EXPECT_GE(serial.levels.size(), 1u);
  // {0,1}^n inputs: 2^n initial states, folding to the n+1 Hamming-weight
  // orbits when the quotient is on (msgpass is the kFull model here; the
  // serial/parallel equalities above are the contract under every mode).
  const bool quotiented = kind == ModelKind::kMsgPass && sym::enabled();
  EXPECT_EQ(serial.valence_tags.size(),
            quotiented ? static_cast<std::size_t>(n) + 1
                       : std::size_t{1} << n);
}

INSTANTIATE_TEST_SUITE_P(AllModels, EquivalenceTest,
                         ::testing::Values(ModelKind::kMobile,
                                           ModelKind::kSharedMem,
                                           ModelKind::kMsgPass,
                                           ModelKind::kSync),
                         [](const auto& info) {
                           return model_kind_name(info.param).substr(0, 1) +
                                  std::to_string(static_cast<int>(
                                      info.param));
                         });

TEST(ClassifyAll, MatchesSerialValenceCalls) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const auto& con0 = model->initial_states();

  ValenceEngine serial_engine(*model, 3, Exactness::kQuiescence);
  std::vector<ValenceInfo> expected;
  for (StateId x : con0) expected.push_back(serial_engine.valence(x));

  WorkerCountOverride workers(4);
  auto rule2 = min_after_round(2);
  auto model2 = make_model(ModelKind::kMobile, 3, 1, *rule2);
  ValenceEngine parallel_engine(*model2, 3, Exactness::kQuiescence);
  const auto got = parallel_engine.classify_all(model2->initial_states());

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].v0, expected[i].v0) << i;
    EXPECT_EQ(got[i].v1, expected[i].v1) << i;
    EXPECT_EQ(got[i].exact, expected[i].exact) << i;
  }
}

}  // namespace
}  // namespace lacon
