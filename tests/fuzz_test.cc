// Property-based tests: Theorem 4.2 quantifies over *all* protocols, so a
// randomized sweep over decision rules must find a violated requirement for
// every single one of them in the 1-resilient models. Rules are generated
// from a seed via hashing (deterministic per model instance), giving a far
// wilder protocol family than the hand-written catalog.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "analysis/reports.hpp"
#include "engine/explore.hpp"
#include "engine/spec.hpp"
#include "relation/similarity.hpp"
#include "relation/similarity_index.hpp"
#include "runtime/fault.hpp"
#include "runtime/guard.hpp"
#include "util/hash.hpp"

namespace lacon {
namespace {

// A pseudo-random deterministic protocol: after its first phase, a process
// decides with hash-probability ~1/2 per new view, on a hash-chosen binary
// value. Deterministic as required: the decision depends only on (i, view).
class FuzzRule final : public DecisionRule {
 public:
  explicit FuzzRule(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override {
    return "fuzz-" + std::to_string(seed_);
  }
  std::optional<Value> decide(ProcessId i, ViewId view,
                              ViewArena& arena) const override {
    if (arena.node(view).round < 1) return std::nullopt;
    const std::uint64_t h =
        mix64(seed_ ^ (static_cast<std::uint64_t>(view) << 8) ^
              static_cast<std::uint64_t>(i));
    if (h & 1) return std::nullopt;        // stay undecided this phase
    return static_cast<Value>((h >> 1) & 1);
  }

 private:
  std::uint64_t seed_;
};

class FuzzSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(FuzzSweep, EveryFuzzProtocolViolatesSomething) {
  const ModelKind kind = GetParam();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const FuzzRule rule(seed);
    auto model = make_model(kind, 3, 1, rule);
    const TrilemmaVerdict v = consensus_trilemma(*model, 3, 3);
    EXPECT_NE(v.violated, TrilemmaVerdict::Violated::kNone)
        << model_kind_name(kind) << " fuzz seed " << seed << ": "
        << v.witness;
  }
}

INSTANTIATE_TEST_SUITE_P(Async, FuzzSweep,
                         ::testing::Values(ModelKind::kMobile,
                                           ModelKind::kSharedMem),
                         [](const auto& info) {
                           return info.param == ModelKind::kMobile
                                      ? "Mobile"
                                      : "SharedMem";
                         });

// Structural invariants hold for arbitrary rules: write-once decisions and
// binary decision values on every reachable state.
TEST(FuzzInvariants, WriteOnceAndBinaryDecisions) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const FuzzRule rule(seed);
    auto model = make_model(ModelKind::kMobile, 3, 1, rule);
    // Walk two layers; confirm decisions never change once set and stay in
    // {⊥, 0, 1}.
    for (StateId x : model->initial_states()) {
      for (StateId y : model->layer(x)) {
        for (StateId z : model->layer(y)) {
          for (ProcessId i = 0; i < 3; ++i) {
            const Value dy =
                model->state(y).decisions[static_cast<std::size_t>(i)];
            const Value dz =
                model->state(z).decisions[static_cast<std::size_t>(i)];
            if (dy != kUndecided) {
              EXPECT_EQ(dy, dz);
            }
            EXPECT_TRUE(dz == kUndecided || dz == 0 || dz == 1);
          }
        }
      }
    }
  }
}

// The similarity relation is symmetric and "reflexive enough" on arbitrary
// reachable states, for every model (including IIS via the suite models).
TEST(FuzzInvariants, SimilaritySymmetric) {
  const FuzzRule rule(42);
  for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                         ModelKind::kMsgPass}) {
    auto model = make_model(kind, 3, 1, rule);
    const StateId x0 = model->initial_states().front();
    const auto& layer = model->layer(x0);
    for (std::size_t a = 0; a < layer.size(); ++a) {
      for (std::size_t b = 0; b < layer.size(); ++b) {
        for (ProcessId j = 0; j < 3; ++j) {
          EXPECT_EQ(model->agree_modulo(layer[a], layer[b], j),
                    model->agree_modulo(layer[b], layer[a], j));
        }
      }
    }
  }
}

// The fingerprint index must agree with the naive sweep edge-for-edge on
// the wild decision vectors fuzz rules produce (decisions participate in
// agree_modulo and therefore in the fingerprints). All four models.
TEST(FuzzInvariants, IndexedSimilarityEqualsNaiveSweep) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const FuzzRule rule(seed);
    for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                           ModelKind::kMsgPass, ModelKind::kSync}) {
      const int depth = kind == ModelKind::kMsgPass ? 1 : 2;
      auto model = make_model(kind, 3, 1, rule);
      for (const auto& level : reachable_by_depth(*model, depth)) {
        const Graph naive = similarity_graph_naive(*model, level);
        const Graph indexed = similarity_graph_indexed(*model, level);
        ASSERT_EQ(naive.size(), indexed.size());
        ASSERT_EQ(naive.edge_count(), indexed.edge_count())
            << model_kind_name(kind) << " seed " << seed;
        for (std::size_t v = 0; v < naive.size(); ++v) {
          const auto nn = naive.neighbors(v);
          const auto ni = indexed.neighbors(v);
          ASSERT_TRUE(std::equal(nn.begin(), nn.end(), ni.begin(), ni.end()))
              << model_kind_name(kind) << " seed " << seed << " vertex " << v;
        }
      }
    }
  }
}

// Fault soak: fuzz protocols explored under a seeded fault plan covering
// every injection site. The guarded pipeline must stay crash-free and
// every Partial it returns must be well-formed — complete levels only,
// `completed` consistent with the value — no matter where the plan fires.
// ci.sh re-runs this under TSan/ASan with LACON_FAULT_SEED /
// LACON_FAULT_RATE overriding the defaults.
TEST(FaultSoak, GuardedFuzzExplorationSurvivesInjection) {
  fault::FaultConfig config{20260805, 0.02};
  if (const auto env = fault::config_from_env()) config = *env;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const FuzzRule rule(seed);
    for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem}) {
      fault::FaultScope scope(config.seed + seed, config.rate);
      auto model = make_model(kind, 3, 1, rule);
      guard::Guard g;
      g.with_deadline(std::chrono::seconds(60));
      guard::Partial<std::vector<std::vector<StateId>>> partial =
          reachable_by_depth(*model, 3, g);
      EXPECT_EQ(partial.completed,
                partial.value.empty() ? 0 : partial.value.size() - 1)
          << model_kind_name(kind) << " fuzz seed " << seed;
      if (partial.value.empty()) continue;
      std::vector<StateId> last = partial.value.back();
      const auto sim = similarity_graph(*model, last, g);
      EXPECT_EQ(sim.value.size(), last.size());
      // The guard is sticky: once the exploration tripped, everything
      // downstream under the same guard must report truncation too.
      if (!partial.complete()) EXPECT_FALSE(sim.complete());
    }
  }
}

}  // namespace
}  // namespace lacon
