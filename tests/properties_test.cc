// Cross-model property sweeps: facts the paper's arguments rely on, checked
// uniformly over every model and several sizes.
#include <gtest/gtest.h>

#include "analysis/reports.hpp"
#include "models/iis/iis_model.hpp"
#include "models/mobile/mobile_model.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/msgpass/msgpass_sync_model.hpp"
#include "models/snapshot/snapshot_model.hpp"
#include "relation/similarity.hpp"
#include "util/permutations.hpp"

namespace lacon {
namespace {

// Lemma 3.6's chain gives s-diameter(Con_0) = n exactly: the hypercube of
// input assignments under the Hamming-distance-1 relation.
TEST(Properties, Con0SDiameterEqualsN) {
  auto rule = never_decide();
  for (int n : {2, 3, 4}) {
    for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                           ModelKind::kMsgPass, ModelKind::kSync}) {
      if (kind == ModelKind::kSync && n < 3) continue;
      if (kind == ModelKind::kMsgPass && n > 3) continue;  // n! blowup
      auto model = make_model(kind, n, 1, *rule);
      const auto diam = s_diameter(*model, model->initial_states());
      ASSERT_TRUE(diam) << model_kind_name(kind) << " n=" << n;
      EXPECT_EQ(*diam, static_cast<std::size_t>(n))
          << model_kind_name(kind) << " n=" << n;
    }
  }
}

TEST(Properties, Con0SDiameterEqualsNExtendedModels) {
  auto rule = never_decide();
  for (int n : {2, 3}) {
    MsgPassSyncModel a(n, *rule);
    SnapshotModel b(n, *rule);
    IisModel c(n, *rule);
    for (LayeredModel* m : {static_cast<LayeredModel*>(&a),
                            static_cast<LayeredModel*>(&b),
                            static_cast<LayeredModel*>(&c)}) {
      const auto diam = s_diameter(*m, m->initial_states());
      ASSERT_TRUE(diam) << m->name() << " n=" << n;
      EXPECT_EQ(*diam, static_cast<std::size_t>(n)) << m->name();
    }
  }
}

// The permutation-layering diamond at n = 4 (the n = 3 version is covered
// in msgpass_model_test): larger instance, all rotations.
TEST(Properties, MsgPassDiamondAtN4) {
  auto rule = never_decide();
  MsgPassModel model(4, *rule);
  const StateId x0 = model.initial_states().front();
  const Permutation base = {2, 0, 3, 1};
  Schedule full;
  for (ProcessId p : base) full.push_back(SchedGroup{p, -1});
  Schedule dropped = full;
  dropped.pop_back();
  Schedule rotated;
  rotated.push_back(full.back());
  for (std::size_t i = 0; i + 1 < full.size(); ++i) rotated.push_back(full[i]);
  const StateId lhs =
      model.apply_schedule(model.apply_schedule(x0, full), dropped);
  const StateId rhs =
      model.apply_schedule(model.apply_schedule(x0, dropped), rotated);
  EXPECT_EQ(lhs, rhs);
}

// Similarity is preserved by renaming-free determinism: applying the same
// failure-free action to similar states keeps their relation when the
// differing process is silenced.
TEST(Properties, SilencingPreservesSimilarityInMobile) {
  auto rule = never_decide();
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  auto* mobile = static_cast<MobileModel*>(model.get());
  const auto& con0 = model->initial_states();
  for (std::size_t a = 0; a < con0.size(); ++a) {
    for (std::size_t b = a + 1; b < con0.size(); ++b) {
      const auto witness = similarity_witness(*model, con0[a], con0[b]);
      if (!witness) continue;
      // Silence the witness in both: the successors stay similar.
      const StateId xa = mobile->apply(con0[a], *witness, 3);
      const StateId xb = mobile->apply(con0[b], *witness, 3);
      EXPECT_TRUE(similar(*model, xa, xb));
      EXPECT_TRUE(model->agree_modulo(xa, xb, *witness));
    }
  }
}

// Layer sizes grow polynomially for the synchronic layerings and
// factorially for the permutation layering — the paper's "little
// asynchrony" claim in numbers.
TEST(Properties, LayerGrowthRates) {
  auto rule = never_decide();
  std::vector<std::size_t> synchronic;
  std::vector<std::size_t> permutation;
  for (int n : {2, 3, 4}) {
    auto sm = make_model(ModelKind::kSharedMem, n, 1, *rule);
    synchronic.push_back(sm->layer(sm->initial_states().front()).size());
    auto mp = make_model(ModelKind::kMsgPass, n, 1, *rule);
    permutation.push_back(mp->layer(mp->initial_states().front()).size());
  }
  // Synchronic: quadratic-ish; permutation: super-exponential ratio growth.
  EXPECT_LT(synchronic[2], 3 * synchronic[1]);
  EXPECT_GT(permutation[2], 4 * permutation[1]);
}

}  // namespace
}  // namespace lacon
