// Tests for the mobile-failure model M^mf and the synchronic layering S1
// (Section 5): layer anatomy and the state identities the proof of
// Lemma 5.1 rests on.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "models/mobile/mobile_model.hpp"
#include "relation/similarity.hpp"

namespace lacon {
namespace {

class MobileFixture : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<DecisionRule> rule_ = never_decide();
};

TEST_P(MobileFixture, LayerSizeIsNSquaredMinusNPlusOne) {
  const int n = GetParam();
  MobileModel model(n, *rule_);
  const StateId x0 = model.initial_states().front();
  // n*(n+1) actions collapse to n^2-n+1 distinct states: all (j,[0]) (and
  // (j,[k]) whose only loss would be j's message to itself) coincide with
  // the failure-free successor.
  EXPECT_EQ(model.layer(x0).size(),
            static_cast<std::size_t>(n * n - n + 1));
}

TEST_P(MobileFixture, NoLossActionsCoincide) {
  const int n = GetParam();
  MobileModel model(n, *rule_);
  const StateId x0 = model.initial_states().front();
  const StateId base = model.apply(x0, 0, 0);
  for (ProcessId j = 0; j < n; ++j) {
    EXPECT_EQ(model.apply(x0, j, 0), base);
    // Losing only j's message to itself is no loss at all.
    EXPECT_EQ(model.apply(x0, j, j + 1), model.apply(x0, j, j));
  }
}

TEST_P(MobileFixture, SimilarityChainAcrossPrefixes) {
  const int n = GetParam();
  MobileModel model(n, *rule_);
  const StateId x0 = model.initial_states().back();
  for (ProcessId j = 0; j < n; ++j) {
    for (int k = 0; k < n; ++k) {
      const StateId a = model.apply(x0, j, k);
      const StateId b = model.apply(x0, j, k + 1);
      if (a == b) continue;
      // The two states differ exactly in the local state of process k
      // (0-based), which missed j's message in b but not in a.
      EXPECT_TRUE(model.agree_modulo(a, b, k));
      EXPECT_TRUE(similar(model, a, b));
    }
  }
}

TEST_P(MobileFixture, LayersAreSimilarityConnected) {
  const int n = GetParam();
  MobileModel model(n, *rule_);
  const StateId x0 = model.initial_states().front();
  EXPECT_TRUE(similarity_connected(model, model.layer(x0)));
  // One layer deeper too.
  const StateId x1 = model.layer(x0)[1];
  EXPECT_TRUE(similarity_connected(model, model.layer(x1)));
}

TEST_P(MobileFixture, NoFiniteFailure) {
  const int n = GetParam();
  MobileModel model(n, *rule_);
  const StateId x0 = model.initial_states().front();
  EXPECT_TRUE(model.failed_at(x0).empty());
  for (StateId y : model.layer(x0)) {
    EXPECT_TRUE(model.failed_at(y).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MobileFixture, ::testing::Values(2, 3, 4, 5));

TEST(MobileModel, S1IsASubmodelOfTheFullSantoroWidmayerLayer) {
  // Lemma 5.1(i): S1 restricts the environment's loss sets to prefixes
  // [k], so every S1 successor is a full-model successor; for n >= 3 the
  // full layer { x(j,G) : G arbitrary } is strictly richer.
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const auto& s1 = model.layer(x0);
  const auto full = model.full_layer(x0);
  for (StateId y : s1) {
    EXPECT_NE(std::find(full.begin(), full.end(), y), full.end());
  }
  EXPECT_GT(full.size(), s1.size());
  // Full-layer count: the no-loss state plus, per j, every non-trivial
  // loss pattern G \ {j}: n * (2^(n-1) - 1) + 1 = 3*3+1... G ranges over
  // subsets of receivers other than j: 2^(n-1)-1 non-empty per j.
  EXPECT_EQ(full.size(), static_cast<std::size_t>(3 * (4 - 1) + 1));
}

TEST(MobileModel, FullLayerAlsoSimilarityConnected) {
  // The Santoro–Widmayer impossibility needs connectivity of the full
  // layer too; prefix chains generalize to single-element toggles.
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const StateId x0 = model.initial_states().back();
  EXPECT_TRUE(similarity_connected(model, model.full_layer(x0)));
}

TEST(MobileModel, GeneralActionTogglesOneReceiver) {
  auto rule = never_decide();
  MobileModel model(4, *rule);
  const StateId x0 = model.initial_states().front();
  ProcessSet g;
  g.insert(1);
  g.insert(3);
  const StateId a = model.apply_general(x0, 0, g);
  ProcessSet g2 = g;
  g2.insert(2);
  const StateId b = model.apply_general(x0, 0, g2);
  EXPECT_TRUE(model.agree_modulo(a, b, 2));
  EXPECT_TRUE(similar(model, a, b));
}

TEST(MobileModel, RoundsAdvanceUniformly) {
  auto rule = never_decide();
  MobileModel model(3, *rule);
  StateId x = model.initial_states().front();
  for (int d = 1; d <= 3; ++d) {
    x = model.layer(x).front();
    for (ViewId v : model.state(x).locals) {
      EXPECT_EQ(model.views().node(v).round, d);
    }
  }
}

TEST(MobileModel, SilencedProcessViewStillAdvances) {
  // A silenced process keeps receiving and computing (sending-omission).
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply(x0, 1, 3);  // j=1 silent to everyone
  EXPECT_EQ(model.views().node(model.state(y).locals[1]).round, 1);
  // Processes 0 and 2 observed an absence from 1.
  const ViewNode& v0 = model.views().node(model.state(y).locals[0]);
  bool missing_from_1 = false;
  for (const Obs& o : v0.obs) {
    if (o.source == 1 && o.view == kNoView) missing_from_1 = true;
  }
  EXPECT_TRUE(missing_from_1);
}

TEST(MobileModel, DecisionRuleWritesWriteOnce) {
  auto rule = min_after_round(1);
  MobileModel model(3, *rule);
  const StateId x0 = model.initial_states().front();  // all inputs 0
  const StateId y = model.apply(x0, 0, 0);
  for (Value d : model.state(y).decisions) EXPECT_EQ(d, 0);
  // Further rounds do not overwrite d_i.
  const StateId z = model.apply(y, 2, 3);
  for (Value d : model.state(z).decisions) EXPECT_EQ(d, 0);
}

TEST(MobileModel, MinRuleSeesOmission) {
  auto rule = min_after_round(1);
  MobileModel model(3, *rule);
  // Inputs 0,1,1: initial state index 1 in the sorted enumeration order is
  // not guaranteed, so find it by inspecting views.
  StateId x0 = 0;
  bool found = false;
  for (StateId s : model.initial_states()) {
    const auto& locals = model.state(s).locals;
    if (model.views().node(locals[0]).input == 0 &&
        model.views().node(locals[1]).input == 1 &&
        model.views().node(locals[2]).input == 1) {
      x0 = s;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  // Process 0 silenced entirely: the others never see the 0 input and
  // decide 1, process 0 decides 0 — the agreement hazard that makes
  // min-after-round-k fail as a consensus protocol here.
  const StateId y = model.apply(x0, 0, 3);
  const auto& d = model.state(y).decisions;
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 1);
}

}  // namespace
}  // namespace lacon
