// laconrd — wire protocol, JSON layer and Unix-socket server.
//
// The concurrency shape under test (satellite 6 of the persistence PR; this
// suite is in the TSan soak loop in ci.sh): two clients on separate
// connections hit the SAME session concurrently — one with a starvation
// budget, one unbudgeted. The budgeted request must come back "truncated"
// with its TruncationReason while the other completes "ok", and both share
// one interned state space (the second request's new_states is 0 once the
// first finished exploring).
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/sym.hpp"
#include "runtime/stats.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace lacon::service {
namespace {

// --- Json ------------------------------------------------------------------

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_EQ(Json::parse("42")->as_number(), 42.0);
  EXPECT_EQ(Json::parse("-3.5e2")->as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
  EXPECT_EQ(Json::parse("\"a\\u0041\\n\"")->as_string(), "aA\n");
}

TEST(JsonTest, ParseContainersPreserveOrder) {
  const auto doc = Json::parse("{\"b\":1,\"a\":[true,null,\"x\"]}");
  ASSERT_TRUE(doc.has_value());
  const Json::Object& obj = doc->as_object();
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj[0].first, "b");  // insertion order, not sorted
  EXPECT_EQ(obj[1].first, "a");
  const Json::Array& arr = doc->find("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[1].is_null());
}

TEST(JsonTest, DumpRoundTrips) {
  const std::string text =
      "{\"id\":7,\"name\":\"M^mf/S1\",\"flags\":[true,false],\"nested\":"
      "{\"x\":-1.5}}";
  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->dump(), text);  // integral 7 stays "7", order preserved
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("", &error).has_value());
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(Json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(Json::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(Json::parse("\"bad\\q\"", &error).has_value());
  EXPECT_FALSE(Json::parse("nulll", &error).has_value());
  EXPECT_FALSE(Json::parse("1 2", &error).has_value());  // trailing garbage
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, DepthCapStopsAdversarialNesting) {
  // 40k opening brackets must fail cleanly, not overflow the stack.
  std::string deep(40000, '[');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(JsonTest, RawSplicesVerbatim) {
  Json obj;
  obj.set("snapshot", Json::raw("{\"pre\":\"serialized\"}"));
  EXPECT_EQ(obj.dump(), "{\"snapshot\":{\"pre\":\"serialized\"}}");
}

TEST(JsonTest, EscapeControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  const Json j = std::string("\x01");
  EXPECT_EQ(j.dump(), "\"\\u0001\"");
}

// --- parse_request ---------------------------------------------------------

Request must_parse(const std::string& text) {
  const auto doc = Json::parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  Request req;
  std::string error;
  EXPECT_TRUE(parse_request(*doc, &req, &error)) << error;
  return req;
}

std::string parse_error(const std::string& text) {
  const auto doc = Json::parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request(*doc, &req, &error)) << text;
  return error;
}

TEST(ParseRequestTest, DefaultsAndOverrides) {
  const Request defaults = must_parse("{\"id\":1}");
  EXPECT_EQ(defaults.kind, ModelKind::kMobile);
  EXPECT_EQ(defaults.n, 3);
  EXPECT_EQ(defaults.t, 1);
  EXPECT_EQ(defaults.query, "layers");
  EXPECT_EQ(defaults.depth, 2);
  EXPECT_EQ(defaults.horizon, 3);  // depth + 1
  EXPECT_EQ(defaults.budget_ms, 0);
  EXPECT_FALSE(defaults.include_metrics);

  const Request full = must_parse(
      "{\"id\":\"q7\",\"model\":\"sync\",\"n\":4,\"t\":2,\"query\":"
      "\"valence\",\"depth\":3,\"horizon\":5,\"budget_ms\":250,"
      "\"max_states\":1000,\"metrics\":true}");
  EXPECT_EQ(full.kind, ModelKind::kSync);
  EXPECT_EQ(full.n, 4);
  EXPECT_EQ(full.t, 2);
  EXPECT_EQ(full.query, "valence");
  EXPECT_EQ(full.depth, 3);
  EXPECT_EQ(full.horizon, 5);
  EXPECT_EQ(full.budget_ms, 250);
  EXPECT_EQ(full.max_states, 1000u);
  EXPECT_TRUE(full.include_metrics);
}

TEST(ParseRequestTest, RejectsOutOfSchema) {
  EXPECT_FALSE(parse_error("{\"model\":\"carrier-pigeon\"}").empty());
  EXPECT_FALSE(parse_error("{\"query\":\"divination\"}").empty());
  EXPECT_FALSE(parse_error("{\"n\":1}").empty());    // below kMinN
  EXPECT_FALSE(parse_error("{\"n\":9}").empty());    // above kMaxN
  EXPECT_FALSE(parse_error("{\"n\":3,\"t\":3}").empty());  // t >= n
  EXPECT_FALSE(parse_error("{\"t\":0}").empty());
  EXPECT_FALSE(parse_error("{\"depth\":-1}").empty());
  EXPECT_FALSE(parse_error("{\"depth\":13}").empty());
  EXPECT_FALSE(parse_error("{\"horizon\":33}").empty());
  EXPECT_FALSE(parse_error("{\"n\":\"three\"}").empty());  // wrong type
  EXPECT_FALSE(parse_error("{\"n\":3.5}").empty());        // non-integral
}

// --- handle_line (no socket) -----------------------------------------------

const Json* find_path(const Json& doc, std::initializer_list<const char*> ks) {
  const Json* cur = &doc;
  for (const char* k : ks) {
    if (cur == nullptr) return nullptr;
    cur = cur->find(k);
  }
  return cur;
}

TEST(HandleLineTest, LayersQueryCountsLevels) {
  SessionManager sessions;
  const std::string response = handle_line(
      sessions,
      "{\"id\":1,\"model\":\"mobile\",\"n\":3,\"query\":\"layers\","
      "\"depth\":1}");
  const auto doc = Json::parse(response);
  ASSERT_TRUE(doc.has_value()) << response;
  EXPECT_EQ(find_path(*doc, {"id"})->as_number(), 1.0);
  EXPECT_EQ(find_path(*doc, {"status"})->as_string(), "ok");
  const Json::Array& sizes =
      find_path(*doc, {"result", "level_sizes"})->as_array();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0].as_number(), 8.0);   // Con_0 for n = 3
  EXPECT_EQ(sizes[1].as_number(), 56.0);  // 8 * 7 mobile successors
  EXPECT_EQ(sessions.session_count(), 1u);
}

TEST(HandleLineTest, SessionsShareInternedSpace) {
  SessionManager sessions;
  const std::string first = handle_line(
      sessions, "{\"id\":1,\"model\":\"mobile\",\"depth\":2}");
  const std::string second = handle_line(
      sessions, "{\"id\":2,\"model\":\"mobile\",\"depth\":2}");
  const auto doc2 = Json::parse(second);
  ASSERT_TRUE(doc2.has_value());
  // Everything request 2 touches was interned by request 1.
  EXPECT_EQ(find_path(*doc2, {"metrics", "new_states"})->as_number(), 0.0);
  EXPECT_EQ(find_path(*doc2, {"metrics", "new_views"})->as_number(), 0.0);
  EXPECT_EQ(sessions.session_count(), 1u);  // one session, two requests
}

TEST(HandleLineTest, ValenceAndDiameterAndSimilarity) {
  SessionManager sessions;
  const std::string valence = handle_line(
      sessions,
      "{\"id\":1,\"model\":\"mobile\",\"depth\":1,\"query\":\"valence\"}");
  const auto vdoc = Json::parse(valence);
  ASSERT_TRUE(vdoc.has_value()) << valence;
  EXPECT_EQ(find_path(*vdoc, {"status"})->as_string(), "ok");
  EXPECT_EQ(find_path(*vdoc, {"result", "classified"})->as_number(), 56.0);

  const std::string diameter = handle_line(
      sessions,
      "{\"id\":2,\"model\":\"mobile\",\"depth\":1,\"query\":\"diameter\"}");
  const auto ddoc = Json::parse(diameter);
  ASSERT_TRUE(ddoc.has_value()) << diameter;
  EXPECT_EQ(find_path(*ddoc, {"status"})->as_string(), "ok");
  EXPECT_TRUE(find_path(*ddoc, {"result", "diameter"}) != nullptr);
  EXPECT_TRUE(find_path(*ddoc, {"result", "connected"})->as_bool());

  const std::string similarity = handle_line(
      sessions,
      "{\"id\":3,\"model\":\"mobile\",\"depth\":1,\"query\":\"similarity\"}");
  const auto sdoc = Json::parse(similarity);
  ASSERT_TRUE(sdoc.has_value()) << similarity;
  EXPECT_EQ(find_path(*sdoc, {"status"})->as_string(), "ok");
  EXPECT_GT(find_path(*sdoc, {"result", "edges"})->as_number(), 0.0);
}

TEST(HandleLineTest, MalformedLinesBecomeErrorResponses) {
  SessionManager sessions;
  for (const char* line :
       {"this is not json", "{\"model\":\"carrier-pigeon\"}", "[1,2,3]",
        "{\"n\":99}"}) {
    const std::string response = handle_line(sessions, line);
    const auto doc = Json::parse(response);
    ASSERT_TRUE(doc.has_value()) << response;
    EXPECT_EQ(find_path(*doc, {"status"})->as_string(), "error") << line;
    EXPECT_FALSE(find_path(*doc, {"error"})->as_string().empty());
  }
  EXPECT_EQ(sessions.session_count(), 0u);  // rejected before session spin-up
}

TEST(HandleLineTest, StateBudgetTruncates) {
  SessionManager sessions;
  const std::string response = handle_line(
      sessions,
      "{\"id\":1,\"model\":\"mobile\",\"depth\":3,\"max_states\":50}");
  const auto doc = Json::parse(response);
  ASSERT_TRUE(doc.has_value()) << response;
  EXPECT_EQ(find_path(*doc, {"status"})->as_string(), "truncated");
  EXPECT_EQ(find_path(*doc, {"truncation"})->as_string(), "state_budget");
  // Truncation yields complete levels only, never a partial level.
  const Json::Array& sizes =
      find_path(*doc, {"result", "level_sizes"})->as_array();
  EXPECT_GE(sizes.size(), 1u);
  EXPECT_LT(sizes.size(), 4u);
}

TEST(HandleLineTest, MetricsSnapshotEmbedsWhenAsked) {
  SessionManager sessions;
  const std::string response = handle_line(
      sessions,
      "{\"id\":1,\"model\":\"mobile\",\"depth\":1,\"metrics\":true}");
  const auto doc = Json::parse(response);
  ASSERT_TRUE(doc.has_value()) << response;
  // The spliced lacon.metrics.v1 document is itself valid JSON.
  const Json* snap = find_path(*doc, {"snapshot"});
  ASSERT_TRUE(snap != nullptr);
  EXPECT_TRUE(snap->is_object());
}

// --- symmetry quotient: quotient-vs-full verdict identity -------------------

// Runs one request in a fresh session under the given LACON_SYMMETRY mode
// and returns the serialized "result" object. The result carries only
// id-free, orbit-weighted numbers, so the quotient must reproduce the full
// space byte for byte; raw arena counts live in "metrics" and are excluded.
std::string result_of(const std::string& request, bool symmetry) {
  sym::ScopedSymmetry mode(symmetry);
  SessionManager sessions;
  const std::string response = handle_line(sessions, request);
  const auto doc = Json::parse(response);
  EXPECT_TRUE(doc.has_value()) << response;
  if (!doc.has_value()) return {};
  const Json* status = doc->find("status");
  EXPECT_TRUE(status != nullptr && status->as_string() == "ok") << response;
  const Json* result = doc->find("result");
  EXPECT_NE(result, nullptr) << response;
  return result != nullptr ? result->dump() : std::string{};
}

TEST(SymmetryIdentityTest, AllQueriesMatchFullSpaceVerdicts) {
  // Of the served models only msgpass declares kFull symmetry, so it is the
  // case where the quotient genuinely folds; the others pin down that the
  // knob cannot perturb trivially-symmetric sessions.
  struct Case {
    const char* model;
    int n;
    int t;
    int depth;
  };
  const Case cases[] = {
      {"mobile", 4, 1, 2},
      {"sharedmem", 3, 1, 2},
      {"msgpass", 3, 1, 1},
      {"sync", 4, 2, 2},
  };
  for (const Case& c : cases) {
    for (const char* query :
         {"layers", "valence", "diameter", "similarity"}) {
      const std::string request =
          std::string("{\"model\":\"") + c.model +
          "\",\"n\":" + std::to_string(c.n) + ",\"t\":" + std::to_string(c.t) +
          ",\"depth\":" + std::to_string(c.depth) + ",\"query\":\"" + query +
          "\"}";
      EXPECT_EQ(result_of(request, false), result_of(request, true))
          << c.model << " " << query;
    }
  }
}

// --- Server (socket) -------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = "/tmp/laconrd_test_" + std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".sock";
    server_ = std::make_unique<Server>(ServerOptions{.socket_path = socket_path_});
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }
  void TearDown() override { server_->stop(); }

  std::string roundtrip(const std::string& line) {
    std::string response, error;
    EXPECT_TRUE(Server::request(socket_path_, line, &response, &error))
        << error;
    return response;
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ServesARequest) {
  const std::string response =
      roundtrip("{\"id\":\"smoke\",\"model\":\"mobile\",\"depth\":1}");
  const auto doc = Json::parse(response);
  ASSERT_TRUE(doc.has_value()) << response;
  EXPECT_EQ(find_path(*doc, {"id"})->as_string(), "smoke");
  EXPECT_EQ(find_path(*doc, {"status"})->as_string(), "ok");
}

TEST_F(ServerTest, StopIsIdempotentAndUnlinksSocket) {
  ASSERT_TRUE(server_->running());
  server_->stop();
  server_->stop();
  EXPECT_FALSE(server_->running());
  std::string response, error;
  EXPECT_FALSE(Server::request(socket_path_, "{}", &response, &error));
}

// The satellite-6 smoke: two concurrent clients against one session, one
// starved by a tiny wall-clock budget. The starved request must report its
// TruncationReason; the unbudgeted one must complete. Run under TSan this
// also soaks the session sharing (arena + layer cache + memo) across the
// two connection threads.
TEST_F(ServerTest, ConcurrentBudgetedAndUnbudgetedClients) {
  std::string starved, unbudgeted;
  std::thread starved_client([&] {
    std::string error;
    ASSERT_TRUE(Server::request(
        socket_path_,
        "{\"id\":\"starved\",\"model\":\"sharedmem\",\"n\":3,\"depth\":4,"
        "\"budget_ms\":1}",
        &starved, &error))
        << error;
  });
  std::thread free_client([&] {
    std::string error;
    ASSERT_TRUE(Server::request(
        socket_path_,
        "{\"id\":\"free\",\"model\":\"sharedmem\",\"n\":3,\"depth\":2}",
        &unbudgeted, &error))
        << error;
  });
  starved_client.join();
  free_client.join();

  const auto sdoc = Json::parse(starved);
  ASSERT_TRUE(sdoc.has_value()) << starved;
  EXPECT_EQ(find_path(*sdoc, {"status"})->as_string(), "truncated");
  EXPECT_EQ(find_path(*sdoc, {"truncation"})->as_string(), "deadline");

  const auto fdoc = Json::parse(unbudgeted);
  ASSERT_TRUE(fdoc.has_value()) << unbudgeted;
  EXPECT_EQ(find_path(*fdoc, {"status"})->as_string(), "ok");

  // Both rode the same (sharedmem, 3, 1) session.
  EXPECT_EQ(server_->sessions().session_count(), 1u);
}

TEST_F(ServerTest, ManyConcurrentClientsShareOneSession) {
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, i, &responses] {
      std::string error;
      ASSERT_TRUE(Server::request(
          socket_path_,
          "{\"id\":" + std::to_string(i) +
              ",\"model\":\"mobile\",\"depth\":2,\"query\":\"valence\"}",
          &responses[static_cast<std::size_t>(i)], &error))
          << error;
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    const auto doc = Json::parse(responses[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(find_path(*doc, {"status"})->as_string(), "ok");
    EXPECT_EQ(find_path(*doc, {"id"})->as_number(), static_cast<double>(i));
    // Identical query → identical classified count on every connection.
    EXPECT_EQ(find_path(*doc, {"result", "classified"})->as_number(), 392.0);
  }
  EXPECT_EQ(server_->sessions().session_count(), 1u);
}

TEST_F(ServerTest, PipelinedRequestsOnOneConnection) {
  // Two newline-delimited requests in one write; Server::request reads only
  // the first response, so issue them as two sequential round trips plus a
  // CRLF-terminated line to cover the '\r' strip.
  const std::string r1 = roundtrip("{\"id\":1,\"model\":\"mobile\",\"depth\":1}\r");
  const auto doc = Json::parse(r1);
  ASSERT_TRUE(doc.has_value()) << r1;
  EXPECT_EQ(find_path(*doc, {"status"})->as_string(), "ok");
}

// --- fault posture (robustness PR): shutdown, shedding, timeouts -----------

// A raw connected client socket with no protocol behavior: the pathological
// peer the fault posture is written against.
int raw_connect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                socket_path.c_str());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Reads until the peer closes (or 5 s pass); returns everything received.
std::string read_until_closed(int fd) {
  std::string out;
  char buf[4096];
  struct pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, 5000);
    if (ready <= 0) break;
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got <= 0) break;
    out.append(buf, static_cast<std::size_t>(got));
  }
  return out;
}

// Satellite (a): the shutdown hang. A client that connects and then says
// nothing used to park a connection thread in a blocking read forever;
// stop() must now come back well under a second.
TEST_F(ServerTest, StopReturnsPromptlyWithIdleClient) {
  const int fd = raw_connect(socket_path_);
  ASSERT_GE(fd, 0);
  // Let the accept loop register the connection before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto t0 = std::chrono::steady_clock::now();
  server_->stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  ::close(fd);
}

TEST(ServerFaultTest, IdleConnectionIsToldAndDropped) {
  const std::string path =
      "/tmp/laconrd_idle_" + std::to_string(::getpid()) + ".sock";
  Server server(
      ServerOptions{.socket_path = path, .idle_timeout_ms = 200});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = raw_connect(path);
  ASSERT_GE(fd, 0);
  const std::string out = read_until_closed(fd);
  ::close(fd);
  EXPECT_NE(out.find("idle timeout"), std::string::npos) << out;
  server.stop();
}

TEST(ServerFaultTest, OverloadShedsWithJsonError) {
  const std::string path =
      "/tmp/laconrd_shed_" + std::to_string(::getpid()) + ".sock";
  Server server(
      ServerOptions{.socket_path = path, .max_connections = 1});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Occupy the single slot and prove it is registered by completing one
  // round trip on it.
  const int held = raw_connect(path);
  ASSERT_GE(held, 0);
  const std::string probe = "{\"id\":0,\"model\":\"mobile\",\"depth\":0}\n";
  ASSERT_EQ(::send(held, probe.data(), probe.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(probe.size()));
  char buf[4096];
  ASSERT_GT(::read(held, buf, sizeof buf), 0);

  // The next connection must be shed with a parseable error, not queued.
  std::string response;
  ASSERT_TRUE(Server::request(path, "{\"id\":1}", &response, &error, 5000))
      << error;
  const auto doc = Json::parse(response);
  ASSERT_TRUE(doc.has_value()) << response;
  EXPECT_EQ(find_path(*doc, {"status"})->as_string(), "error");
  EXPECT_EQ(find_path(*doc, {"error"})->as_string(), "overloaded");

  ::close(held);
  server.stop();
}

// Satellite (c): a connect that succeeds against a listener that never
// accepts or answers must fail with ETIMEDOUT after the deadline, not hang.
TEST(ServerFaultTest, RequestTimesOutAgainstSilentServer) {
  const std::string path =
      "/tmp/laconrd_silent_" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);  // ...and never accept

  std::string response, error;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(Server::request(path, "{\"id\":1}", &response, &error, 300));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_NE(error.find(std::strerror(ETIMEDOUT)), std::string::npos) << error;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3000);
  ::close(listener);
  ::unlink(path.c_str());
}

// The durability loop at the protocol level (no sockets): every handled
// request commits to the WAL before responding, so a second manager over
// the same store dir — with no snapshot ever saved — re-serves the session
// without interning anything new.
TEST(ProtocolWalTest, HandledRequestsAreDurableWithoutSnapshotSave) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("lacon_service_wal_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  ::setenv("LACON_WAL", "on", 1);
  ::setenv("LACON_STORE_DIR", dir.c_str(), 1);
  ::setenv("LACON_STORE", "off", 1);

  const std::string query =
      "{\"id\":1,\"model\":\"mobile\",\"n\":3,\"depth\":2,"
      "\"query\":\"valence\"}";
  std::string first;
  {
    SessionManager sessions;
    first = handle_line(sessions, query);
    // No save_all: the manager dies as a kill -9 would leave it.
  }
  SessionManager recovered;
  const std::string second = handle_line(recovered, query);

  const auto doc1 = Json::parse(first);
  const auto doc2 = Json::parse(second);
  ASSERT_TRUE(doc1.has_value() && doc2.has_value());
  EXPECT_EQ(find_path(*doc1, {"status"})->as_string(), "ok");
  EXPECT_EQ(find_path(*doc2, {"result"})->dump(),
            find_path(*doc1, {"result"})->dump());
  EXPECT_EQ(find_path(*doc2, {"metrics", "new_states"})->as_number(), 0.0);
  EXPECT_EQ(find_path(*doc2, {"metrics", "new_views"})->as_number(), 0.0);

  ::unsetenv("LACON_WAL");
  ::unsetenv("LACON_STORE_DIR");
  ::unsetenv("LACON_STORE");
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// --- pipelining (handle_batch, PROTOCOL.md "Pipelining") -------------------

// A batch executes in request order and answers in request order, malformed
// lines included — the error response occupies the bad line's slot instead
// of shifting later responses.
TEST(PipelineTest, BatchAnswersInRequestOrder) {
  SessionManager sessions;
  const std::vector<std::string> lines = {
      "{\"id\":1,\"model\":\"mobile\",\"n\":3,\"depth\":1}",
      "{\"id\":2,\"model\":\"sync\",\"n\":3,\"t\":1,\"depth\":1}",
      "this is not json",
      "{\"id\":4,\"model\":\"mobile\",\"n\":3,\"depth\":2,"
      "\"query\":\"valence\"}",
  };
  const std::vector<std::string> responses = handle_batch(sessions, lines);
  ASSERT_EQ(responses.size(), lines.size());

  const auto r1 = Json::parse(responses[0]);
  const auto r2 = Json::parse(responses[1]);
  const auto r3 = Json::parse(responses[2]);
  const auto r4 = Json::parse(responses[3]);
  ASSERT_TRUE(r1 && r2 && r3 && r4);
  EXPECT_EQ(find_path(*r1, {"id"})->as_number(), 1.0);
  EXPECT_EQ(find_path(*r2, {"id"})->as_number(), 2.0);
  EXPECT_EQ(find_path(*r3, {"status"})->as_string(), "error");
  EXPECT_TRUE(find_path(*r3, {"id"})->is_null());
  EXPECT_EQ(find_path(*r4, {"id"})->as_number(), 4.0);
  EXPECT_EQ(find_path(*r4, {"status"})->as_string(), "ok");

  // Requests 1 and 4 shared one session: 4 warm-started on 1's exploration.
  EXPECT_EQ(sessions.session_count(), 2u);
}

// Group commit across a batch: the whole batch's work reaches the WAL in
// ONE commit round per touched session (not one fsync per request), and a
// manager recovered from that WAL — no snapshot was ever saved — re-serves
// every request without interning anything new. This is the PR-8 contract
// ("response on the wire => work survives kill -9") carried over to
// pipelined batches.
TEST(ProtocolWalTest, PipelinedBatchSharesOneCommitAndIsDurable) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("lacon_service_batch_wal_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  ::setenv("LACON_WAL", "on", 1);
  ::setenv("LACON_STORE_DIR", dir.c_str(), 1);
  ::setenv("LACON_STORE", "off", 1);

  const std::vector<std::string> lines = {
      "{\"id\":1,\"model\":\"mobile\",\"n\":3,\"depth\":1}",
      "{\"id\":2,\"model\":\"mobile\",\"n\":3,\"depth\":2,"
      "\"query\":\"valence\"}",
      "{\"id\":3,\"model\":\"mobile\",\"n\":3,\"depth\":2,"
      "\"query\":\"valence\",\"horizon\":4}",
  };
  auto& commits = runtime::Stats::global().counter("wal.group_commits");
  const std::uint64_t commits_before = commits.value();
  std::vector<std::string> first;
  {
    SessionManager sessions;
    first = handle_batch(sessions, lines);
    // No save_all: the manager dies as a kill -9 would leave it.
  }
  // One touched session => one group-committed append for all three
  // requests (two distinct engine horizons riding the same round).
  EXPECT_EQ(commits.value(), commits_before + 1);

  SessionManager recovered;
  const std::vector<std::string> second = handle_batch(recovered, lines);
  ASSERT_EQ(first.size(), lines.size());
  ASSERT_EQ(second.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto doc1 = Json::parse(first[i]);
    const auto doc2 = Json::parse(second[i]);
    ASSERT_TRUE(doc1.has_value() && doc2.has_value());
    EXPECT_EQ(find_path(*doc1, {"status"})->as_string(), "ok");
    EXPECT_EQ(find_path(*doc2, {"result"})->dump(),
              find_path(*doc1, {"result"})->dump())
        << "request " << i;
    EXPECT_EQ(find_path(*doc2, {"metrics", "new_states"})->as_number(), 0.0);
    EXPECT_EQ(find_path(*doc2, {"metrics", "new_views"})->as_number(), 0.0);
  }

  ::unsetenv("LACON_WAL");
  ::unsetenv("LACON_STORE_DIR");
  ::unsetenv("LACON_STORE");
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace lacon::service
