// k-set agreement (t < k) on the asynchronous simulator: the solvable side
// of the Section 7 characterization, exercised operationally.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "protocols/kset.hpp"
#include "sim/async_sim.hpp"

namespace lacon {
namespace {

// Runs one instance and returns the distinct decided values of survivors.
std::set<Value> decided_values(int n, int t, const std::vector<Value>& inputs,
                               std::uint64_t seed,
                               const std::vector<long>& crash_after) {
  const auto factory = kset_factory();
  Rng rng(seed);
  auto sched = random_scheduler(seed * 13 + 1);
  const AsyncRunResult r =
      run_async(*factory, n, t, inputs, *sched, rng, crash_after, 100000);
  std::set<Value> out;
  for (ProcessId i = 0; i < n; ++i) {
    if (r.crashed[static_cast<std::size_t>(i)]) continue;
    EXPECT_TRUE(r.decisions[static_cast<std::size_t>(i)].has_value())
        << "survivor " << i << " undecided";
    if (r.decisions[static_cast<std::size_t>(i)]) {
      out.insert(*r.decisions[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

TEST(KSet, AtMostTPlus1DistinctDecisions) {
  // With quorums of n-t, at most t+1 distinct values can be decided.
  const int n = 4;
  const int t = 1;
  const std::vector<Value> inputs = {0, 1, 2, 3};
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const std::set<Value> decided =
        decided_values(n, t, inputs, seed, {-1, -1, -1, -1});
    EXPECT_LE(decided.size(), static_cast<std::size_t>(t + 1)) << seed;
    // Validity: every decision is somebody's input.
    for (Value v : decided) {
      EXPECT_NE(std::find(inputs.begin(), inputs.end(), v), inputs.end());
    }
  }
}

TEST(KSet, SolvesTwoSetAgreementWithOneCrash) {
  // The T6 catalog row, operationally: 1-resilient 2-set agreement (n=3,
  // inputs from {0,1,2}) terminates with <= 2 distinct decisions even when
  // one process crashes at an arbitrary point.
  const int n = 3;
  const int t = 1;
  const std::vector<Value> inputs = {0, 1, 2};
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    std::vector<long> crash_after = {-1, -1, -1};
    crash_after[static_cast<std::size_t>(seed % 3)] =
        static_cast<long>(seed % 7);
    const std::set<Value> decided =
        decided_values(n, t, inputs, seed, crash_after);
    EXPECT_LE(decided.size(), 2u) << seed;
    EXPECT_GE(decided.size(), 1u) << seed;
  }
}

TEST(KSet, UnanimousInputsSingleDecision) {
  const std::set<Value> decided =
      decided_values(4, 1, {7, 7, 7, 7}, 3, {-1, -1, -1, -1});
  EXPECT_EQ(decided, std::set<Value>{7});
}

TEST(KSet, ConsensusAttemptViaKSetBreaksWithTEqualsK) {
  // k-set agreement with t >= k no longer bounds disagreement below k+1:
  // with t = 2 and quorums of n-t = 2, three different minima can appear.
  const int n = 4;
  const int t = 2;
  const std::vector<Value> inputs = {0, 1, 2, 3};
  std::size_t worst = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const std::set<Value> decided =
        decided_values(n, t, inputs, seed, {-1, -1, -1, -1});
    worst = std::max(worst, decided.size());
  }
  EXPECT_GE(worst, 3u);  // t+1 = 3 distinct decisions do occur
}

}  // namespace
}  // namespace lacon
