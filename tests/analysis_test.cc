// Tests for the analysis front-end: model construction helpers, the lemma
// suite runner, and the DOT exporters.
#include <gtest/gtest.h>

#include "analysis/dot.hpp"
#include "analysis/reports.hpp"

namespace lacon {
namespace {

TEST(Reports, ModelKindNamesAndDefaults) {
  EXPECT_EQ(model_kind_name(ModelKind::kMobile), "M^mf/S1");
  EXPECT_EQ(model_kind_name(ModelKind::kSharedMem), "M^rw/S^rw");
  EXPECT_EQ(model_kind_name(ModelKind::kMsgPass), "AsyncMP/S^per");
  EXPECT_EQ(model_kind_name(ModelKind::kSync), "Sync/S^t");
  EXPECT_EQ(default_exactness(ModelKind::kMobile), Exactness::kQuiescence);
  EXPECT_EQ(default_exactness(ModelKind::kSharedMem),
            Exactness::kConvergence);
  EXPECT_TRUE(layers_similarity_connected(ModelKind::kMobile));
  EXPECT_FALSE(layers_similarity_connected(ModelKind::kMsgPass));
}

TEST(Reports, MakeModelBuildsTheRightModel) {
  auto rule = never_decide();
  for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                         ModelKind::kMsgPass, ModelKind::kSync}) {
    auto model = make_model(kind, 3, 1, *rule);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->n(), 3);
    EXPECT_EQ(model->initial_states().size(), 8u);
  }
}

TEST(Reports, MakeModelHonorsCustomInputs) {
  auto rule = never_decide();
  auto model =
      make_model(ModelKind::kMobile, 3, 1, *rule, {{0, 0, 0}, {1, 1, 1}});
  EXPECT_EQ(model->initial_states().size(), 2u);
}

TEST(Dot, SimilarityGraphContainsNodesAndEdges) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 2, 1, *rule);
  ValenceEngine engine(*model, 3);
  const std::string dot =
      similarity_graph_dot(*model, model->initial_states(), &engine);
  EXPECT_NE(dot.find("graph similarity {"), std::string::npos);
  // 4 nodes, colored; Q2 has 4 similarity edges.
  EXPECT_NE(dot.find("style=filled"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
  EXPECT_NE(dot.find("plum"), std::string::npos);        // a bivalent state
  EXPECT_NE(dot.find("lightblue"), std::string::npos);   // the all-0 state
  EXPECT_NE(dot.find("lightsalmon"), std::string::npos); // the all-1 state
}

TEST(Dot, RunTreeIsADigraphWithRootAndSuccessors) {
  auto rule = never_decide();
  auto model = make_model(ModelKind::kMobile, 2, 1, *rule);
  const StateId root = model->initial_states().front();
  const std::string dot = run_tree_dot(*model, root, 1);
  EXPECT_NE(dot.find("digraph runs {"), std::string::npos);
  EXPECT_NE(dot.find("n" + std::to_string(root) + " -> "), std::string::npos);
  EXPECT_NE(dot.find("d=[--]"), std::string::npos);  // undecided labels
}

TEST(Dot, WithoutEngineNodesAreWhite) {
  auto rule = never_decide();
  auto model = make_model(ModelKind::kMobile, 2, 1, *rule);
  const std::string dot =
      similarity_graph_dot(*model, model->initial_states(), nullptr);
  EXPECT_NE(dot.find("fillcolor=white"), std::string::npos);
  EXPECT_EQ(dot.find("plum"), std::string::npos);
}

}  // namespace
}  // namespace lacon
