// Scalar-vs-SIMD equivalence for the kernel library (DESIGN.md §13).
//
// The scalar kernels in util/simd.hpp are the semantic definition; every
// other table runtime/simd_dispatch.cc can hand out must be bit-identical
// on every input — same booleans, same fingerprints, same bit sets, same
// frontier orders. The randomized suites below compare each available table
// against scalar across the shapes that matter: odd/even lane tails
// (n = 2..10), negative 32-bit lanes (sign extension into the hash), empty
// and full bitsets, and word counts straddling the vector width. The
// end-to-end case locks the whole analysis output (explore + similarity +
// diameter) to the scalar path per kernel table.
//
// ci.sh runs this binary under TSan and ASan in the fault-soak lane, and
// the plain lane re-runs the analysis-facing suites with LACON_SIMD=scalar
// exported, so both dispatch outcomes stay green.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <set>
#include <vector>

#include "analysis/reports.hpp"
#include "core/model.hpp"
#include "core/state.hpp"
#include "engine/explore.hpp"
#include "relation/graph.hpp"
#include "relation/similarity.hpp"
#include "runtime/simd_dispatch.hpp"
#include "runtime/thread_pool.hpp"
#include "util/bitset.hpp"
#include "util/hash.hpp"

namespace lacon {
namespace {

using simd::Kernels;

// Every table this host can execute, scalar first. At minimum {scalar};
// on the CI x86 hosts {scalar, avx2}.
std::vector<const Kernels*> available_tables() {
  std::vector<const Kernels*> out = {&simd::scalar_kernels()};
  for (simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (const Kernels* k = simd::kernels_for(isa)) out.push_back(k);
  }
  return out;
}

std::vector<std::int32_t> random_lanes(std::mt19937_64& rng, std::size_t n) {
  // Mix small non-negative ids, kUndecided (-1) and arbitrary negatives:
  // the fingerprint kernel must sign-extend exactly like the scalar fold.
  std::uniform_int_distribution<int> pick(0, 3);
  std::uniform_int_distribution<std::int32_t> any(
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max());
  std::uniform_int_distribution<std::int32_t> small(0, 40);
  std::vector<std::int32_t> out(n);
  for (auto& v : out) {
    switch (pick(rng)) {
      case 0: v = -1; break;
      case 1: v = any(rng); break;
      default: v = small(rng); break;
    }
  }
  return out;
}

std::vector<std::uint64_t> random_words(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = rng();
  return out;
}

TEST(SimdDispatch, ParseChoice) {
  EXPECT_EQ(simd::parse_choice(nullptr), simd::Choice::kAuto);
  EXPECT_EQ(simd::parse_choice(""), simd::Choice::kAuto);
  EXPECT_EQ(simd::parse_choice("auto"), simd::Choice::kAuto);
  EXPECT_EQ(simd::parse_choice("scalar"), simd::Choice::kScalar);
  EXPECT_EQ(simd::parse_choice("avx2"), simd::Choice::kAvx2);
  EXPECT_EQ(simd::parse_choice("neon"), simd::Choice::kNeon);
  EXPECT_EQ(simd::parse_choice("AVX2"), simd::Choice::kMalformed);
  EXPECT_EQ(simd::parse_choice("sse"), simd::Choice::kMalformed);
  EXPECT_EQ(simd::parse_choice(" scalar"), simd::Choice::kMalformed);
}

TEST(SimdDispatch, TablesAndOverride) {
  EXPECT_STREQ(simd::scalar_kernels().name, "scalar");
  EXPECT_EQ(simd::kernels_for(simd::Isa::kScalar), &simd::scalar_kernels());
  for (const Kernels* k : available_tables()) {
    ASSERT_NE(k, nullptr);
    simd::KernelOverride override_k(*k);
    EXPECT_STREQ(simd::active_name(), k->name);
    {
      simd::KernelOverride nested(simd::scalar_kernels());
      EXPECT_STREQ(simd::active_name(), "scalar");
    }
    EXPECT_STREQ(simd::active_name(), k->name);  // nesting restores
  }
  // host_supports gates kernels_for: a table exists iff the host runs it.
  for (simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    EXPECT_EQ(simd::kernels_for(isa) != nullptr, simd::host_supports(isa));
  }
}

TEST(SimdKernels, WordsEqualMatchesScalar) {
  std::mt19937_64 rng(0x7264731201u);
  for (const Kernels* k : available_tables()) {
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
      for (int round = 0; round < 20; ++round) {
        auto a = random_words(rng, n);
        auto b = a;
        const auto* pa = reinterpret_cast<const std::int64_t*>(a.data());
        const auto* pb = reinterpret_cast<const std::int64_t*>(b.data());
        EXPECT_TRUE(k->words_equal(pa, pb, n)) << k->name << " n=" << n;
        if (n == 0) continue;
        b[rng() % n] ^= 1ull << (rng() % 64);
        EXPECT_FALSE(k->words_equal(pa, pb, n)) << k->name << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, LanesEqualSkipMatchesScalar) {
  std::mt19937_64 rng(0x7264731202u);
  for (const Kernels* k : available_tables()) {
    for (std::size_t n = 2; n <= 18; ++n) {
      for (int round = 0; round < 30; ++round) {
        const auto a = random_lanes(rng, n);
        auto b = a;
        const std::size_t skip = rng() % n;
        EXPECT_TRUE(k->lanes_equal_skip(a.data(), b.data(), n, skip));
        EXPECT_TRUE(k->lanes_equal_skip(a.data(), b.data(), n, simd::kNoSkip));
        // A difference only at the erased lane is invisible with that skip,
        // a mismatch everywhere else.
        b[skip] ^= 0x40;
        EXPECT_TRUE(k->lanes_equal_skip(a.data(), b.data(), n, skip))
            << k->name << " n=" << n << " skip=" << skip;
        EXPECT_FALSE(
            k->lanes_equal_skip(a.data(), b.data(), n, simd::kNoSkip));
        EXPECT_FALSE(
            k->lanes_equal_skip(a.data(), b.data(), n, (skip + 1) % n));
        b = a;
        const std::size_t other = rng() % n;
        b[other] += 3;
        EXPECT_EQ(k->lanes_equal_skip(a.data(), b.data(), n, skip),
                  skip == other)
            << k->name << " n=" << n;
      }
    }
  }
}

// The documented definition: per erased coordinate j, fold hash_combine over
// all sign-extended lanes i != j in increasing i (core/model.cc's
// similarity_fingerprint with `seed` standing in for the env hash).
std::uint64_t reference_fingerprint(std::uint64_t seed,
                                    const std::vector<std::int32_t>& locals,
                                    const std::vector<std::int32_t>& decisions,
                                    std::size_t j) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < locals.size(); ++i) {
    if (i == j) continue;
    h = hash_combine(h, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(locals[i])));
    h = hash_combine(h, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(decisions[i])));
  }
  return h;
}

TEST(SimdKernels, FingerprintLanesMatchesPerLaneFold) {
  std::mt19937_64 rng(0x7264731203u);
  for (const Kernels* k : available_tables()) {
    for (std::size_t n = 2; n <= 10; ++n) {
      for (int round = 0; round < 40; ++round) {
        const auto locals = random_lanes(rng, n);
        const auto decisions = random_lanes(rng, n);
        const std::uint64_t seed = rng();
        std::vector<std::uint64_t> row(n, 0);
        k->fingerprint_lanes(seed, locals.data(), decisions.data(), n,
                             row.data());
        for (std::size_t j = 0; j < n; ++j) {
          EXPECT_EQ(row[j], reference_fingerprint(seed, locals, decisions, j))
              << k->name << " n=" << n << " j=" << j;
        }
      }
    }
  }
}

// The documented definition of the position-keyed content hash sections:
// acc = Σ_i mix64(w_i ^ (seed + (i+1)*kHashPhi)), then fold seed and length
// through hash_combine (util/simd.hpp hash_words/hash_lanes).
std::uint64_t reference_section_hash(const std::vector<std::uint64_t>& words,
                                     std::uint64_t seed) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    acc += mix64(words[i] ^
                 (seed + (static_cast<std::uint64_t>(i) + 1) * simd::kHashPhi));
  }
  return hash_combine(hash_combine(seed, words.size()), acc);
}

TEST(SimdKernels, HashWordsMatchesReferenceDefinition) {
  std::mt19937_64 rng(0x726473120au);
  for (const Kernels* k : available_tables()) {
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
      for (int round = 0; round < 20; ++round) {
        const auto w = random_words(rng, n);
        const std::uint64_t seed = rng();
        const std::uint64_t got = k->hash_words(
            reinterpret_cast<const std::int64_t*>(w.data()), n, seed);
        EXPECT_EQ(got, reference_section_hash(w, seed))
            << k->name << " n=" << n;
        // Scalar is the definition — every table must agree with it too.
        EXPECT_EQ(got, simd::scalar_kernels().hash_words(
                           reinterpret_cast<const std::int64_t*>(w.data()), n,
                           seed))
            << k->name << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, HashLanesSignExtendsLikeScalarCast) {
  std::mt19937_64 rng(0x726473120bu);
  for (const Kernels* k : available_tables()) {
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 17u}) {
      for (int round = 0; round < 30; ++round) {
        const auto v = random_lanes(rng, n);  // mixes negatives and -1
        const std::uint64_t seed = rng();
        std::vector<std::uint64_t> widened(n);
        for (std::size_t i = 0; i < n; ++i) {
          widened[i] =
              static_cast<std::uint64_t>(static_cast<std::int64_t>(v[i]));
        }
        EXPECT_EQ(k->hash_lanes(v.data(), n, seed),
                  reference_section_hash(widened, seed))
            << k->name << " n=" << n;
      }
    }
  }
}

// StateArena::content_hash chains the three sections through the active
// table; every table must therefore produce the same state hash (the intern
// index depends on it).
TEST(SimdKernels, ContentHashIdenticalAcrossTables) {
  std::mt19937_64 rng(0x726473120cu);
  for (int n = 1; n <= 9; ++n) {
    GlobalState g;
    g.env.resize(rng() % 5);
    for (auto& w : g.env) w = static_cast<std::int64_t>(rng());
    const auto nn = static_cast<std::size_t>(n);
    const auto locals = random_lanes(rng, nn);
    const auto decisions = random_lanes(rng, nn);
    g.locals.assign(locals.begin(), locals.end());
    g.decisions.assign(decisions.begin(), decisions.end());
    std::uint64_t want = 0;
    bool first = true;
    for (const Kernels* k : available_tables()) {
      simd::KernelOverride override_k(*k);
      const std::uint64_t got = StateArena::content_hash(g);
      if (first) {
        want = got;
        first = false;
      }
      EXPECT_EQ(got, want) << k->name << " n=" << n;
    }
  }
}

TEST(SimdKernels, BitsetOpsMatchScalar) {
  std::mt19937_64 rng(0x7264731204u);
  const auto& ref = simd::scalar_kernels();
  for (const Kernels* k : available_tables()) {
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 9u, 16u, 17u, 40u}) {
      for (int fill = 0; fill < 3; ++fill) {
        auto src = random_words(rng, n);
        auto base = random_words(rng, n);
        if (fill == 1) std::fill(src.begin(), src.end(), 0);      // empty
        if (fill == 2) std::fill(src.begin(), src.end(), ~0ull);  // full
        for (auto op : {&Kernels::bitset_or, &Kernels::bitset_and,
                        &Kernels::bitset_andnot}) {
          auto got = base;
          auto want = base;
          (k->*op)(got.data(), src.data(), n);
          (ref.*op)(want.data(), src.data(), n);
          EXPECT_EQ(got, want) << k->name << " n=" << n;
        }
        EXPECT_EQ(k->bitset_popcount(src.data(), n),
                  ref.bitset_popcount(src.data(), n));
        EXPECT_EQ(k->bitset_find_first(src.data(), n),
                  ref.bitset_find_first(src.data(), n));
        // find_first across every word position, one sparse bit.
        if (n != 0) {
          std::vector<std::uint64_t> sparse(n, 0);
          const std::size_t w = rng() % n;
          sparse[w] = 1ull << (rng() % 64);
          EXPECT_EQ(k->bitset_find_first(sparse.data(), n),
                    ref.bitset_find_first(sparse.data(), n));
          EXPECT_EQ(k->bitset_popcount(sparse.data(), n), 1u);
        }
      }
    }
  }
}

TEST(SimdKernels, FrontierAdvanceMatchesScalar) {
  std::mt19937_64 rng(0x7264731205u);
  const auto& ref = simd::scalar_kernels();
  for (const Kernels* k : available_tables()) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 9u, 16u, 17u}) {
      for (int density = 0; density < 4; ++density) {
        auto next = random_words(rng, n);
        if (density == 0) std::fill(next.begin(), next.end(), 0);
        if (density == 1) {  // sparse: exercise the zero-block skip
          std::fill(next.begin(), next.end(), 0);
          next[rng() % n] = 1ull << (rng() % 64);
        }
        if (density == 3) std::fill(next.begin(), next.end(), ~0ull);
        const auto visited = random_words(rng, n);

        auto next_got = next;
        auto visited_got = visited;
        std::vector<std::uint32_t> out_got(n * 64, 0);
        const std::size_t count_got = k->frontier_advance(
            next_got.data(), visited_got.data(), n, out_got.data());

        auto next_want = next;
        auto visited_want = visited;
        std::vector<std::uint32_t> out_want(n * 64, 0);
        const std::size_t count_want = ref.frontier_advance(
            next_want.data(), visited_want.data(), n, out_want.data());

        ASSERT_EQ(count_got, count_want) << k->name << " n=" << n;
        out_got.resize(count_got);
        out_want.resize(count_want);
        EXPECT_EQ(out_got, out_want) << k->name << " n=" << n;
        EXPECT_EQ(next_got, next_want);
        EXPECT_EQ(visited_got, visited_want);
        EXPECT_TRUE(std::is_sorted(out_got.begin(), out_got.end()));
      }
    }
  }
}

TEST(SimdKernels, AgreeModuloMatchesReferenceDefinition) {
  std::mt19937_64 rng(0x7264731206u);
  for (const Kernels* k : available_tables()) {
    simd::KernelOverride override_k(*k);
    for (int n = 2; n <= 9; ++n) {
      StateArena arena;
      std::vector<StateId> ids;
      std::vector<GlobalState> raw;
      for (int s = 0; s < 24; ++s) {
        GlobalState g;
        const std::size_t env_len = rng() % 4;
        g.env.resize(env_len);
        for (auto& w : g.env) {
          w = static_cast<std::int64_t>(rng() % 3);  // force env collisions
        }
        const auto nn = static_cast<std::size_t>(n);
        g.locals.resize(nn);
        g.decisions.resize(nn);
        for (auto& v : g.locals) v = static_cast<ViewId>(rng() % 3) - 1;
        for (auto& v : g.decisions) v = static_cast<Value>(rng() % 2) - 1;
        raw.push_back(g);
        ids.push_back(arena.intern(std::move(g)));
      }
      for (int round = 0; round < 200; ++round) {
        const std::size_t a = rng() % ids.size();
        const std::size_t b = rng() % ids.size();
        const auto j = static_cast<ProcessId>(rng() % n);
        // Reference: the loop definition over the raw (vector-backed)
        // payloads, independent of any kernel.
        bool want = raw[a].env == raw[b].env;
        for (ProcessId i = 0; i < n && want; ++i) {
          if (i == j) continue;
          const auto idx = static_cast<std::size_t>(i);
          want = raw[a].locals[idx] == raw[b].locals[idx] &&
                 raw[a].decisions[idx] == raw[b].decisions[idx];
        }
        EXPECT_EQ(agree_modulo(arena.state(ids[a]), arena.state(ids[b]), j),
                  want)
            << k->name << " n=" << n;
        // Interning is content-addressed: ref equality iff one id.
        EXPECT_EQ(arena.state(ids[a]) == arena.state(ids[b]),
                  ids[a] == ids[b]);
      }
    }
  }
}

TEST(SimdBitset, DenseBitsetBulkOpsMatchSetSemantics) {
  std::mt19937_64 rng(0x7264731207u);
  for (const Kernels* k : available_tables()) {
    simd::KernelOverride override_k(*k);
    for (int round = 0; round < 30; ++round) {
      const std::size_t universe = 1 + rng() % 300;
      DenseBitset a, b;
      std::set<std::size_t> sa, sb;
      for (std::size_t i = 0; i < universe; ++i) {
        if (rng() % 2) {
          a.insert(i);
          sa.insert(i);
        }
        if (rng() % 4 == 0) {
          b.insert(i);
          sb.insert(i);
        }
      }
      ASSERT_EQ(a.size(), sa.size());
      const int op = round % 3;
      std::set<std::size_t> want;
      if (op == 0) {
        a.or_with(b);
        std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                       std::inserter(want, want.end()));
      } else if (op == 1) {
        a.and_with(b);
        std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                              std::inserter(want, want.end()));
      } else {
        a.subtract(b);
        std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                            std::inserter(want, want.end()));
      }
      EXPECT_EQ(a.size(), want.size()) << k->name << " op=" << op;
      for (std::size_t i = 0; i < universe + 64; ++i) {
        ASSERT_EQ(a.contains(i), want.count(i) != 0)
            << k->name << " op=" << op << " i=" << i;
      }
      EXPECT_EQ(a.find_first(),
                want.empty() ? simd::kNpos : *want.begin());
    }
  }
}

TEST(SimdBitset, DrainFreshMatchesInsertSemantics) {
  std::mt19937_64 rng(0x7264731208u);
  for (const Kernels* k : available_tables()) {
    simd::KernelOverride override_k(*k);
    const std::size_t universe = 500;
    DenseBitset visited, next;
    visited.reset(universe);
    next.reset(universe);
    std::set<std::size_t> seen;
    std::vector<std::uint32_t> out(universe);
    for (int level = 0; level < 20; ++level) {
      std::set<std::size_t> fresh_want;
      for (int m = 0; m < 40; ++m) {
        const std::size_t i = rng() % universe;
        next.mark(i);
        if (seen.insert(i).second) fresh_want.insert(i);
      }
      const std::size_t count = next.drain_fresh_into(visited, out.data());
      ASSERT_EQ(count, fresh_want.size()) << k->name;
      EXPECT_TRUE(std::equal(out.begin(),
                             out.begin() + static_cast<std::ptrdiff_t>(count),
                             fresh_want.begin()));
      EXPECT_TRUE(next.empty());
      EXPECT_EQ(visited.size(), seen.size());
    }
  }
}

// End-to-end identity: the full analysis pipeline — explore, fingerprint
// rows, similarity graph, diameter — produces byte-identical results under
// every kernel table. One worker pins the interning order so ids are
// comparable across the model instances.
TEST(SimdEndToEnd, AnalysisOutputIdenticalAcrossTables) {
  runtime::WorkerCountOverride workers(1);
  struct Result {
    std::size_t states = 0;
    std::vector<std::uint64_t> rows;
    std::size_t edges = 0;
    bool connected = false;
    std::optional<std::size_t> diameter;
  };
  auto run = [](const Kernels& k) {
    simd::KernelOverride override_k(k);
    auto rule = min_after_round(2);
    auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
    const auto levels = reachable_by_depth(*model, 2);
    const std::vector<StateId>& frontier = levels.back();
    Result r;
    r.states = model->num_states();
    for (std::size_t id = 0; id < model->num_states(); ++id) {
      const std::uint64_t* row =
          model->fingerprint_row(static_cast<StateId>(id));
      r.rows.insert(r.rows.end(), row, row + model->n());
    }
    const Graph g = similarity_graph(*model, frontier);
    r.edges = g.edge_count();
    r.connected = g.connected();
    r.diameter = g.diameter();
    return r;
  };
  const Result want = run(simd::scalar_kernels());
  EXPECT_GT(want.states, 0u);
  for (const Kernels* k : available_tables()) {
    const Result got = run(*k);
    EXPECT_EQ(got.states, want.states) << k->name;
    EXPECT_EQ(got.rows, want.rows) << k->name;
    EXPECT_EQ(got.edges, want.edges) << k->name;
    EXPECT_EQ(got.connected, want.connected) << k->name;
    EXPECT_EQ(got.diameter, want.diameter) << k->name;
  }
}

// Graph::diameter under each table on random graphs, against the
// distance-matrix definition.
TEST(SimdEndToEnd, DiameterMatchesDistanceDefinition) {
  std::mt19937_64 rng(0x7264731209u);
  for (const Kernels* k : available_tables()) {
    simd::KernelOverride override_k(*k);
    for (int round = 0; round < 12; ++round) {
      const std::size_t n = 2 + rng() % 60;
      Graph g(n);
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          if (rng() % 5 == 0) g.add_edge(a, b);
        }
      }
      // Reference via pairwise distances (queue BFS path, kernel-free).
      std::optional<std::size_t> want = 0;
      for (std::size_t a = 0; a < n && want; ++a) {
        for (std::size_t b = 0; b < n && want; ++b) {
          const auto d = g.distance(a, b);
          if (!d) {
            want = std::nullopt;
          } else {
            want = std::max(*want, *d);
          }
        }
      }
      EXPECT_EQ(g.diameter(), want) << k->name << " n=" << n;
      EXPECT_EQ(g.connected(), want.has_value()) << k->name;
    }
  }
}

}  // namespace
}  // namespace lacon
