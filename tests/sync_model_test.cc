// Tests for the t-resilient synchronous model and the S^t layering
// (Section 6): failure recording, silencing, layer structure, and the
// similarity bridges used by Lemmas 6.1 and 6.2.
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "engine/explore.hpp"
#include "models/synchronous/sync_model.hpp"
#include "relation/similarity.hpp"

namespace lacon {
namespace {

TEST(SyncModel, OmissionMarksSenderFailed) {
  auto rule = never_decide();
  SyncModel model(4, 2, *rule);
  const StateId x0 = model.initial_states().front();
  EXPECT_TRUE(model.failed_at(x0).empty());
  const StateId y = model.apply(x0, 1, 2);  // j=1 loses msgs to {0,1}
  EXPECT_EQ(model.failed_at(y).to_vector(), (std::vector<ProcessId>{1}));
  // A failure-free round leaves the failed set unchanged.
  const StateId z = model.apply(y, 0, 0);
  EXPECT_EQ(model.failed_at(z).to_vector(), (std::vector<ProcessId>{1}));
}

TEST(SyncModel, NoLossRoundFailsNobody) {
  auto rule = never_decide();
  SyncModel model(3, 1, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply(x0, 2, 0);
  EXPECT_TRUE(model.failed_at(y).empty());
}

TEST(SyncModel, FailedProcessSilencedForever) {
  auto rule = never_decide();
  SyncModel model(3, 1, *rule);
  const StateId x0 = model.initial_states().front();
  // j=0 loses messages only to process 0's first receiver — say to {0}:
  // k=1 means process 0 misses it; but 0's message to itself does not
  // exist, so use k=2 (processes 0 and 1 miss it).
  const StateId y = model.apply(x0, 0, 2);
  ASSERT_EQ(model.failed_at(y).to_vector(), (std::vector<ProcessId>{0}));
  // Next round is failure-free by action, yet 0 stays silenced: everyone
  // observes an absence from 0.
  const StateId z = model.apply(y, 1, 0);
  for (ProcessId i = 1; i < 3; ++i) {
    const ViewNode& v = model.views().node(model.state(z).locals[i]);
    bool missing_from_0 = false;
    for (const Obs& o : v.obs) {
      if (o.source == 0 && o.view == kNoView) missing_from_0 = true;
    }
    EXPECT_TRUE(missing_from_0) << "process " << i;
  }
}

TEST(SyncModel, LayerShrinksToSingletonAtTFailures) {
  auto rule = never_decide();
  SyncModel model(3, 1, *rule);
  const StateId x0 = model.initial_states().front();
  // Before any failure: 1 (no-loss) + n non-failed j * n prefix choices,
  // minus coincidences.
  EXPECT_GT(model.layer(x0).size(), 1u);
  const StateId y = model.apply(x0, 0, 3);  // 0 crashes silently
  ASSERT_EQ(model.failed_at(y).size(), 1);
  // t = 1 reached: the unique extension is the failure-free round.
  EXPECT_EQ(model.layer(y).size(), 1u);
}

TEST(SyncModel, FailedCountNeverExceedsT) {
  auto rule = never_decide();
  SyncModel model(4, 2, *rule);
  for (StateId x : reachable_states(model, 3)) {
    EXPECT_LE(model.failed_at(x).size(), 2);
  }
}

TEST(SyncModel, SimilarityChainWithinOneFailure) {
  auto rule = never_decide();
  SyncModel model(4, 2, *rule);
  const StateId x0 = model.initial_states().back();
  for (int k = 1; k < 4; ++k) {
    const StateId a = model.apply(x0, 1, k);
    const StateId b = model.apply(x0, 1, k + 1);
    if (a == b) continue;
    EXPECT_TRUE(model.agree_modulo(a, b, k));
    EXPECT_TRUE(similar(model, a, b));
  }
}

TEST(SyncModel, BridgeFromFailureFreeToSingleOmission) {
  // x(·,[0]) ~s x(j,[1]): they differ only in the local state of the one
  // process that missed j's message — this needs the failure record to be
  // derived from the views rather than stored in the environment.
  auto rule = never_decide();
  SyncModel model(3, 1, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId clean = model.apply(x0, 0, 0);
  const StateId omit = model.apply(x0, 1, 1);  // 1's msg to process 0 lost
  EXPECT_TRUE(model.agree_modulo(clean, omit, 0));
  EXPECT_TRUE(similar(model, clean, omit));
}

TEST(SyncModel, LayersAreSimilarityConnected) {
  auto rule = never_decide();
  SyncModel model(4, 2, *rule);
  const StateId x0 = model.initial_states().front();
  EXPECT_TRUE(similarity_connected(model, model.layer(x0)));
  // Also after one failure (Lemma 6.2 applies to any bivalent state with
  // fewer than t failures).
  const StateId y = model.apply(x0, 2, 4);
  ASSERT_EQ(model.failed_at(y).size(), 1);
  EXPECT_TRUE(similarity_connected(model, model.layer(y)));
}

TEST(SyncModel, UniqueExtensionAfterTFailuresIsDeterministic) {
  auto rule = min_after_round(3);
  SyncModel model(3, 1, *rule);
  const StateId x0 = model.initial_states().front();
  StateId x = model.apply(x0, 0, 3);
  for (int d = 0; d < 4; ++d) {
    const auto& layer = model.layer(x);
    ASSERT_EQ(layer.size(), 1u);
    x = layer.front();
  }
}

TEST(SyncModel, MultiFailureLayerAllowsSimultaneousCrashes) {
  auto rule = never_decide();
  SyncModel one(4, 2, *rule);
  SyncModel multi(4, 2, *rule, {}, SyncLayering::kMultiFailure);
  const StateId a = one.initial_states().front();
  const StateId b = multi.initial_states().front();
  EXPECT_GT(multi.layer(b).size(), one.layer(a).size());
  // Two processes silenced in the same round.
  const StateId y = multi.apply_multi(b, {4, 4, 0, 0});
  EXPECT_EQ(multi.failed_at(y).size(), 2);
}

TEST(SyncModel, GradedLevelsStayConnectedUnderFullRound) {
  // The mechanized sharpening of Lemma 7.6's application (see
  // EXPERIMENTS.md E5): the full round-2 state set of R_{S^t} is similarity
  // DISCONNECTED at t=2 (budget-exhausted states are isolated), while the
  // graded set — at most r failures by round r — under the full-round
  // successor is connected, with diameter within the Theorem 7.7 bound.
  auto rule = never_decide();
  SyncModel multi(4, 2, *rule, {}, SyncLayering::kMultiFailure);
  std::vector<StateId> level = multi.initial_states();
  for (int r = 1; r <= 2; ++r) {
    std::unordered_set<StateId> next;
    for (StateId x : level) {
      for (StateId y : multi.layer(x)) {
        if (multi.failed_at(y).size() <= r) next.insert(y);
      }
    }
    level.assign(next.begin(), next.end());
    std::sort(level.begin(), level.end());
  }
  const auto diam = s_diameter(multi, level);
  ASSERT_TRUE(diam.has_value());
  EXPECT_LE(*diam, 314u);  // diameter_bound(4, 2, 4)

  // Contrast: literal S^t (one new failure per round) disconnects at the
  // same depth.
  SyncModel one(4, 2, *rule);
  const auto levels = reachable_by_depth(one, 2);
  EXPECT_FALSE(s_diameter(one, levels[2]).has_value());
}

TEST(SyncModel, MaxFaultyReportsT) {
  auto rule = never_decide();
  SyncModel model(5, 3, *rule);
  EXPECT_EQ(model.max_faulty(), 3);
  EXPECT_EQ(model.t(), 3);
  EXPECT_EQ(model.name(), "Sync(t=3)/S^t");
}

}  // namespace
}  // namespace lacon
