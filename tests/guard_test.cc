// lacon::guard — budgets, cooperative cancellation, graceful partial
// results, deterministic fault injection.
//
// The load-bearing assertions are the determinism-of-truncation ones: a
// budget-truncated exploration returns the *same* Partial (same depth, same
// level contents) under LACON_THREADS=1 and under 4 workers, and a
// deadline-truncated oversized exploration truncates at the same level
// boundary in both configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "analysis/reports.hpp"
#include "core/decision_rule.hpp"
#include "core/sym.hpp"
#include "engine/bivalence.hpp"
#include "engine/explore.hpp"
#include "engine/valence.hpp"
#include "relation/graph.hpp"
#include "relation/similarity.hpp"
#include "runtime/fault.hpp"
#include "runtime/guard.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace lacon {
namespace {

using guard::CancelToken;
using guard::Guard;
using guard::Partial;
using guard::TruncationReason;

// Content-determined rendering of a state (raw ids race across worker
// counts; the rendered terms do not) — mirrors runtime_test.cc.
std::string state_fingerprint(LayeredModel& model, StateId x) {
  const StateRef s = model.state(x);
  std::string out = "env[" + model.env_to_string(x);
  out += "] views[";
  for (ViewId v : s.locals) out += model.views().to_string(v) + ";";
  out += "] d[";
  for (Value d : s.decisions) out += std::to_string(d) + ",";
  return out + "]";
}

std::vector<std::vector<std::string>> level_fingerprints(
    LayeredModel& model, const std::vector<std::vector<StateId>>& levels) {
  std::vector<std::vector<std::string>> out;
  for (const auto& level : levels) {
    std::vector<std::string> prints;
    for (StateId x : level) prints.push_back(state_fingerprint(model, x));
    std::sort(prints.begin(), prints.end());
    out.push_back(std::move(prints));
  }
  return out;
}

TEST(TruncationReasonTest, ToStringCoversEveryReason) {
  EXPECT_STREQ("none", guard::to_string(TruncationReason::kNone));
  EXPECT_STREQ("deadline", guard::to_string(TruncationReason::kDeadline));
  EXPECT_STREQ("state_budget",
               guard::to_string(TruncationReason::kStateBudget));
  EXPECT_STREQ("cancelled", guard::to_string(TruncationReason::kCancelled));
}

TEST(GuardTest, DefaultGuardNeverTripsWithoutLimitsOrFaults) {
  Guard g;
  EXPECT_FALSE(g.never_trips());  // live, just unlimited
  EXPECT_FALSE(g.tripped());
  EXPECT_EQ(TruncationReason::kNone, g.check(1'000'000, 1'000'000'000));
}

TEST(GuardTest, InertGuardIgnoresEverything) {
  const Guard& g = Guard::none();
  EXPECT_TRUE(g.never_trips());
  EXPECT_FALSE(g.tripped());
  g.note_memory_exhausted();  // no-op by contract
  EXPECT_EQ(TruncationReason::kNone, g.reason());
}

TEST(GuardTest, StateBudgetTripsAndIsSticky) {
  Guard g;
  g.with_state_budget(100);
  EXPECT_EQ(TruncationReason::kNone, g.check(100));  // at the budget: fine
  EXPECT_EQ(TruncationReason::kStateBudget, g.check(101));
  // Sticky: later in-budget checks still report the recorded trip.
  EXPECT_EQ(TruncationReason::kStateBudget, g.check(5));
  EXPECT_TRUE(g.tripped());
}

TEST(GuardTest, MemoryBudgetTrips) {
  Guard g;
  g.with_memory_budget(1 << 20);
  EXPECT_EQ(TruncationReason::kNone, g.check(0, 1 << 20));
  EXPECT_EQ(TruncationReason::kStateBudget, g.check(0, (1 << 20) + 1));
}

TEST(GuardTest, DeadlineTrips) {
  Guard g;
  g.with_deadline(std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(g.tripped());
  EXPECT_EQ(TruncationReason::kDeadline, g.reason());
}

TEST(GuardTest, CancelTokenSharedAcrossCopies) {
  CancelToken token;
  Guard g;
  g.with_token(token);
  EXPECT_FALSE(g.tripped());
  CancelToken copy = token;  // copies observe the same flag
  copy.cancel();
  EXPECT_TRUE(g.tripped());
  EXPECT_EQ(TruncationReason::kCancelled, g.reason());
}

TEST(GuardTest, FirstTripWinsOverLaterReasons) {
  CancelToken token;
  Guard g;
  g.with_token(token).with_state_budget(10);
  token.cancel();
  EXPECT_TRUE(g.tripped());
  EXPECT_EQ(TruncationReason::kCancelled, g.check(1000));  // sticky reason
}

TEST(GuardSpecTest, ScopedGuardMaterializesSpec) {
  guard::GuardSpec unlimited;
  EXPECT_FALSE(unlimited.limited());
  guard::ScopedGuard inert(unlimited);
  EXPECT_TRUE(inert.get().never_trips());

  guard::GuardSpec spec;
  spec.max_states = 7;
  EXPECT_TRUE(spec.limited());
  guard::ScopedGuard scoped(spec);
  EXPECT_FALSE(scoped.get().never_trips());
  EXPECT_EQ(TruncationReason::kStateBudget, scoped.get().check(8));
}

TEST(PartialTest, CompleteIffNoTruncation) {
  Partial<int> p;
  EXPECT_TRUE(p.complete());
  p.truncation = TruncationReason::kDeadline;
  EXPECT_FALSE(p.complete());
}

// ---------------------------------------------------------------------------
// Deterministic fault plans.

TEST(FaultPlanTest, FiringScheduleIsAFunctionOfSeedSiteAndProbeIndex) {
  fault::FaultPlan a(20260805, 0.5);
  fault::FaultPlan b(20260805, 0.5);
  std::vector<bool> fires_a, fires_b;
  for (int k = 0; k < 64; ++k) {
    fires_a.push_back(a.fire(fault::Site::kTaskBody));
    fires_b.push_back(b.fire(fault::Site::kTaskBody));
  }
  EXPECT_EQ(fires_a, fires_b);
  EXPECT_GT(a.fired(fault::Site::kTaskBody), 0u);  // rate 0.5 over 64 draws
  EXPECT_LT(a.fired(fault::Site::kTaskBody), 64u);
  EXPECT_EQ(64u, a.probes(fault::Site::kTaskBody));
  // Different seed, different schedule (overwhelmingly likely over 64 draws).
  fault::FaultPlan c(777, 0.5);
  std::vector<bool> fires_c;
  for (int k = 0; k < 64; ++k) fires_c.push_back(c.fire(fault::Site::kTaskBody));
  EXPECT_NE(fires_a, fires_c);
}

TEST(FaultPlanTest, SiteMaskRestrictsFiring) {
  fault::FaultPlan plan(1, 1.0,
                        1u << static_cast<unsigned>(fault::Site::kTaskBody));
  EXPECT_TRUE(plan.fire(fault::Site::kTaskBody));
  EXPECT_FALSE(plan.fire(fault::Site::kArenaAlloc));
  EXPECT_FALSE(plan.fire(fault::Site::kGuardBudget));
}

TEST(FaultPlanTest, RateZeroNeverFiresRateOneAlwaysFires) {
  fault::FaultPlan never(9, 0.0);
  fault::FaultPlan always(9, 1.0);
  for (int k = 0; k < 16; ++k) {
    EXPECT_FALSE(never.fire(fault::Site::kGuardBudget));
    EXPECT_TRUE(always.fire(fault::Site::kGuardBudget));
  }
}

TEST(FaultConfigTest, EnvParsingRejectsGarbage) {
  setenv("LACON_FAULT_SEED", "not-a-number", 1);
  EXPECT_FALSE(fault::config_from_env().has_value());
  setenv("LACON_FAULT_SEED", "123", 1);
  setenv("LACON_FAULT_RATE", "0.25", 1);
  const auto config = fault::config_from_env();
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(123u, config->seed);
  EXPECT_DOUBLE_EQ(0.25, config->rate);
  setenv("LACON_FAULT_RATE", "2.5", 1);  // out of [0,1]: default rate
  const auto fallback = fault::config_from_env();
  ASSERT_TRUE(fallback.has_value());
  EXPECT_DOUBLE_EQ(0.01, fallback->rate);
  setenv("LACON_FAULT_RATE", "0", 1);  // explicit zero: injection off
  EXPECT_FALSE(fault::config_from_env().has_value());
  unsetenv("LACON_FAULT_SEED");
  unsetenv("LACON_FAULT_RATE");
}

TEST(FaultScopeTest, InstallsAndRemovesPlan) {
  EXPECT_EQ(nullptr, fault::active_plan());
  {
    fault::FaultScope scope(42, 1.0);
    EXPECT_EQ(&scope.plan(), fault::active_plan());
    EXPECT_TRUE(fault::fire(fault::Site::kTaskBody));
  }
  EXPECT_EQ(nullptr, fault::active_plan());
  EXPECT_FALSE(fault::fire(fault::Site::kTaskBody));  // off when no plan
}

// ---------------------------------------------------------------------------
// Guarded engine layers.

// Oversized on purpose: the asynchronous message-passing layering at n = 8
// has |Con_0| = 256 and hundreds of thousands of actions per layer, far
// beyond a 100 ms budget. The exploration must return a Partial that holds
// exactly the complete levels — identically under 1 and 4 workers.
TEST(GuardedExploreTest, OversizedDeadlineTruncatesIdenticallyAcrossWorkers) {
  struct Run {
    std::vector<std::vector<std::string>> levels;
    std::size_t completed;
    TruncationReason reason;
  };
  const auto run_with_workers = [](unsigned workers) {
    runtime::WorkerCountOverride scoped_workers(workers);
    auto rule = min_after_round(2);
    auto model = make_model(ModelKind::kMsgPass, 8, 1, *rule);
    Guard g;
    g.with_deadline(std::chrono::milliseconds(100));
    const auto partial = reachable_by_depth(*model, 6, g);
    return Run{level_fingerprints(*model, partial.value), partial.completed,
               partial.truncation};
  };
  const Run serial = run_with_workers(1);
  const Run parallel = run_with_workers(4);
  EXPECT_EQ(TruncationReason::kDeadline, serial.reason);
  EXPECT_EQ(TruncationReason::kDeadline, parallel.reason);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.levels, parallel.levels);
  // 100 ms cannot finish even one n=8 message-passing layer.
  EXPECT_EQ(0u, serial.completed);
  ASSERT_EQ(1u, serial.levels.size());
  // {0,1}^8 inputs: 256 initial states, folding to the 9 Hamming-weight
  // orbits when the quotient is on (msgpass declares full symmetry).
  EXPECT_EQ(sym::enabled() ? 9u : 256u, serial.levels[0].size());
}

// The state budget is evaluated only at depth boundaries, where the arena
// population is scheduling-independent: the truncation depth and every
// returned level must match exactly across worker counts.
TEST(GuardedExploreTest, StateBudgetTruncatesDeterministicallyAcrossWorkers) {
  struct Run {
    std::vector<std::vector<std::string>> levels;
    std::size_t completed;
    TruncationReason reason;
  };
  const auto run_with_workers = [](unsigned workers) {
    runtime::WorkerCountOverride scoped_workers(workers);
    auto rule = min_after_round(2);
    auto model = make_model(ModelKind::kMobile, 4, 1, *rule);
    Guard g;
    g.with_state_budget(50);
    const auto partial = reachable_by_depth(*model, 5, g);
    return Run{level_fingerprints(*model, partial.value), partial.completed,
               partial.truncation};
  };
  const Run serial = run_with_workers(1);
  const Run parallel = run_with_workers(4);
  EXPECT_EQ(TruncationReason::kStateBudget, serial.reason);
  EXPECT_EQ(serial.reason, parallel.reason);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.levels, parallel.levels);
  EXPECT_GE(serial.completed, 1u);  // |Con_0| = 16 <= 50: depth 1 happens
}

TEST(GuardedExploreTest, GenerousGuardMatchesUnguardedResult) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const auto unguarded = reachable_by_depth(*model, 3);

  auto model2 = make_model(ModelKind::kMobile, 3, 1, *rule);
  Guard g;
  g.with_deadline(std::chrono::minutes(10)).with_state_budget(1u << 30);
  const auto partial = reachable_by_depth(*model2, 3, g);
  EXPECT_TRUE(partial.complete());
  EXPECT_EQ(TruncationReason::kNone, partial.truncation);
  EXPECT_EQ(unguarded.size(), partial.value.size());
  EXPECT_EQ(partial.completed, partial.value.size() - 1);
  EXPECT_EQ(level_fingerprints(*model, unguarded),
            level_fingerprints(*model2, partial.value));
}

TEST(GuardedExploreTest, PreCancelledTokenReturnsOnlyInitialLevel) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  CancelToken token;
  token.cancel();
  Guard g;
  g.with_token(token);
  const auto partial = reachable_by_depth(*model, 4, g);
  EXPECT_EQ(TruncationReason::kCancelled, partial.truncation);
  EXPECT_EQ(0u, partial.completed);
  ASSERT_EQ(1u, partial.value.size());
  EXPECT_EQ(model->initial_states().size(), partial.value[0].size());
}

TEST(GuardedExploreTest, MidRunCancellationStopsAnOversizedExploration) {
  auto rule = min_after_round(3);
  auto model = make_model(ModelKind::kMsgPass, 7, 1, *rule);
  CancelToken token;
  Guard g;
  g.with_token(token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel();
  });
  // n = 7 message passing is hours of work; cancellation must stop it.
  const auto partial = reachable_by_depth(*model, 6, g);
  canceller.join();
  EXPECT_EQ(TruncationReason::kCancelled, partial.truncation);
  EXPECT_FALSE(partial.complete());
  EXPECT_GE(partial.value.size(), 1u);
}

TEST(GuardedClassifyTest, TruncatedClassificationIsAValidPrefix) {
  runtime::WorkerCountOverride scoped_workers(1);  // deterministic probes
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const auto& con0 = model->initial_states();

  ValenceEngine reference(*model, 3);
  const std::vector<ValenceInfo> full = reference.classify_all(con0);
  ASSERT_EQ(con0.size(), full.size());

  // kGuardBudget at rate 0.5: the guard trips at a deterministic probe
  // index, somewhere inside the classification.
  ValenceEngine engine(*model, 3);
  fault::FaultScope scope(
      20260805, 0.5,
      1u << static_cast<unsigned>(fault::Site::kGuardBudget));
  Guard g;
  const auto partial = engine.classify_all(con0, g);
  EXPECT_EQ(TruncationReason::kStateBudget, partial.truncation);
  EXPECT_EQ(partial.completed, partial.value.size());
  EXPECT_LT(partial.completed, con0.size());
  for (std::size_t i = 0; i < partial.completed; ++i) {
    EXPECT_TRUE(partial.value[i].same_set(full[i])) << "index " << i;
  }
}

TEST(GuardedBivalenceTest, CancelledRunReportsTruncation) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  ValenceEngine engine(*model, 3);
  CancelToken token;
  token.cancel();
  Guard g;
  g.with_token(token);
  const BivalentRunResult result = extend_bivalent_run(engine, 3, g);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(TruncationReason::kCancelled, result.truncation);
  EXPECT_LE(result.run.size(), 1u);
}

TEST(GuardedBivalenceTest, GenerousGuardCompletes) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  ValenceEngine engine(*model, 3);
  Guard g;
  g.with_state_budget(1u << 30);
  const BivalentRunResult result = extend_bivalent_run(engine, 3, g);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(TruncationReason::kNone, result.truncation);
  EXPECT_EQ(4u, result.run.size());
}

// ---------------------------------------------------------------------------
// Guarded relation layer.

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(GuardedDiameterTest, CompleteRunMatchesPlainDiameter) {
  const Graph g = path_graph(32);
  Guard guard;
  guard.with_state_budget(1u << 30);
  const auto partial = g.diameter(guard);
  EXPECT_TRUE(partial.complete());
  EXPECT_EQ(32u, partial.completed);
  ASSERT_TRUE(partial.value.has_value());
  EXPECT_EQ(31u, *partial.value);
}

TEST(GuardedDiameterTest, PreTrippedGuardYieldsNoBound) {
  const Graph g = path_graph(16);
  CancelToken token;
  token.cancel();
  Guard guard;
  guard.with_token(token);
  const auto partial = g.diameter(guard);
  EXPECT_EQ(TruncationReason::kCancelled, partial.truncation);
  EXPECT_EQ(0u, partial.completed);
  EXPECT_FALSE(partial.value.has_value());
}

TEST(GuardedDiameterTest, DisconnectionEvidenceIsConclusive) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // two components
  Guard guard;
  guard.with_state_budget(1u << 30);
  const auto partial = g.diameter(guard);
  EXPECT_TRUE(partial.complete());
  EXPECT_FALSE(partial.value.has_value());
}

TEST(GuardedSimilarityTest, GenerousGuardMatchesUnguardedGraph) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const auto& con0 = model->initial_states();
  const Graph plain = similarity_graph(*model, con0);

  Guard g;
  g.with_state_budget(1u << 30);
  const auto partial = similarity_graph(*model, con0, g);
  EXPECT_TRUE(partial.complete());
  EXPECT_EQ(plain.size(), partial.value.size());
  EXPECT_EQ(plain.edge_count(), partial.value.edge_count());

  const auto diam = s_diameter(*model, con0, g);
  EXPECT_TRUE(diam.complete());
  EXPECT_EQ(s_diameter(*model, con0), diam.value);
}

TEST(GuardedSimilarityTest, PreTrippedGuardYieldsEmptyPartial) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const auto& con0 = model->initial_states();
  CancelToken token;
  token.cancel();
  Guard g;
  g.with_token(token);
  const auto partial = similarity_graph(*model, con0, g);
  EXPECT_EQ(TruncationReason::kCancelled, partial.truncation);
  EXPECT_EQ(0u, partial.completed);
  EXPECT_EQ(0u, partial.value.edge_count());
}

// ---------------------------------------------------------------------------
// Fault sites: every TruncationReason is reachable through injection.

TEST(FaultSiteTest, GuardBudgetFaultTruncatesAsStateBudget) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  fault::FaultScope scope(
      7, 1.0, 1u << static_cast<unsigned>(fault::Site::kGuardBudget));
  Guard g;
  const auto partial = reachable_by_depth(*model, 3, g);
  EXPECT_EQ(TruncationReason::kStateBudget, partial.truncation);
  EXPECT_EQ(0u, partial.completed);
}

TEST(FaultSiteTest, ArenaAllocFaultDegradesToStateBudgetUnderGuard) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  fault::FaultScope scope(
      7, 1.0, 1u << static_cast<unsigned>(fault::Site::kArenaAlloc));
  Guard g;
  // Every intern throws InjectedAllocError; the guarded exploration turns
  // the very first one (inside initial_states) into a budget truncation.
  const auto partial = reachable_by_depth(*model, 3, g);
  EXPECT_EQ(TruncationReason::kStateBudget, partial.truncation);
  EXPECT_EQ(0u, partial.completed);
  EXPECT_TRUE(partial.value.empty());
}

TEST(FaultSiteTest, ArenaAllocFaultPropagatesWithoutGuard) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  fault::FaultScope scope(
      7, 1.0, 1u << static_cast<unsigned>(fault::Site::kArenaAlloc));
  EXPECT_THROW(model->initial_states(), fault::InjectedAllocError);
}

TEST(FaultSiteTest, TaskBodyFaultPropagatesAndPoolStaysUsable) {
  runtime::WorkerCountOverride scoped_workers(4);
  {
    fault::FaultScope scope(
        7, 1.0, 1u << static_cast<unsigned>(fault::Site::kTaskBody));
    EXPECT_THROW(
        runtime::parallel_for(1000, [](std::size_t) {}),
        fault::InjectedFault);
  }
  // The pool survives the injected failure and runs the next section.
  std::atomic<std::size_t> count{0};
  runtime::parallel_for(1000, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(1000u, count.load());
}

// Soak: a seeded plan over all sites at a moderate rate, driving a full
// analysis pipeline. Asserts crash-freedom and well-formed partials, not
// specific values — ci.sh re-runs this under TSan/ASan with
// LACON_FAULT_SEED/LACON_FAULT_RATE overriding the defaults.
TEST(FaultSoak, GuardedPipelineSurvivesSeededInjection) {
  fault::FaultConfig config{20260805, 0.02};
  if (const auto env = fault::config_from_env()) config = *env;
  for (unsigned workers : {1u, 4u}) {
    runtime::WorkerCountOverride scoped_workers(workers);
    fault::FaultScope scope(config.seed + workers, config.rate);
    auto rule = min_after_round(2);
    auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
    Guard g;
    g.with_deadline(std::chrono::seconds(60));
    const auto partial = reachable_by_depth(*model, 3, g);
    EXPECT_EQ(partial.completed,
              partial.value.empty() ? 0 : partial.value.size() - 1);
    if (!partial.value.empty()) {
      ValenceEngine engine(*model, 2);
      std::vector<StateId> flat;
      for (const auto& level : partial.value) {
        flat.insert(flat.end(), level.begin(), level.end());
      }
      const auto classified = engine.classify_all(flat, g);
      EXPECT_EQ(classified.value.size(), classified.completed);
      EXPECT_LE(classified.completed, flat.size());
    }
  }
}

}  // namespace
}  // namespace lacon
