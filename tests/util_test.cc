// Unit tests for src/util: hashing, process sets, RNG, permutations, tables.
#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "util/hash.hpp"
#include "util/permutations.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

TEST(Hash, Mix64IsInjectiveOnSmallRange) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Hash, RangeDistinguishesLengthAndContent) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {1, 2};
  const std::vector<int> c = {1, 2, 4};
  EXPECT_NE(hash_range(a), hash_range(b));
  EXPECT_NE(hash_range(a), hash_range(c));
  EXPECT_EQ(hash_range(a), hash_range(std::vector<int>{1, 2, 3}));
}

TEST(ProcessSet, PrefixMatchesPaperBrackets) {
  // [k] = {1..k} in the paper; {0..k-1} in 0-based code.
  EXPECT_TRUE(ProcessSet::prefix(0).empty());
  const ProcessSet p3 = ProcessSet::prefix(3);
  EXPECT_EQ(p3.size(), 3);
  EXPECT_TRUE(p3.contains(0));
  EXPECT_TRUE(p3.contains(2));
  EXPECT_FALSE(p3.contains(3));
}

TEST(ProcessSet, InsertEraseUnionDifference) {
  ProcessSet s;
  s.insert(2);
  s.insert(5);
  EXPECT_EQ(s.size(), 2);
  s.erase(2);
  EXPECT_FALSE(s.contains(2));
  const ProcessSet u = s | ProcessSet::single(1);
  EXPECT_EQ(u.size(), 2);
  EXPECT_EQ((u - ProcessSet::single(5)).to_vector(),
            (std::vector<ProcessId>{1}));
}

TEST(ProcessSet, ToStringSorted) {
  ProcessSet s;
  s.insert(3);
  s.insert(0);
  EXPECT_EQ(s.to_string(), "{0,3}");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowIsInRangeAndHitsAllValues) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.int_below(5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Permutations, CountsAreFactorial) {
  EXPECT_EQ(all_permutations(3).size(), 6u);
  EXPECT_EQ(all_permutations(4).size(), 24u);
  // Dropping the last element of each permutation yields n! distinct
  // (n-1)-sequences (the missing element is determined by the sequence).
  EXPECT_EQ(all_drop_last(3).size(), 6u);
  EXPECT_EQ(all_drop_last(4).size(), 24u);
}

TEST(Permutations, DropLastEntriesAreInjectiveSequences) {
  for (const Permutation& p : all_drop_last(4)) {
    EXPECT_EQ(p.size(), 3u);
    std::set<ProcessId> distinct(p.begin(), p.end());
    EXPECT_EQ(distinct.size(), p.size());
  }
}

TEST(Permutations, TranspositionChainReachesTarget) {
  const Permutation from = {0, 1, 2, 3};
  const Permutation to = {3, 1, 0, 2};
  const auto chain = transposition_chain(from, to);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.front(), from);
  EXPECT_EQ(chain.back(), to);
  // Each consecutive pair differs by one adjacent swap.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    int diffs = 0;
    for (std::size_t k = 0; k < from.size(); ++k) {
      if (chain[i - 1][k] != chain[i][k]) ++diffs;
    }
    EXPECT_EQ(diffs, 2);
  }
}

TEST(Permutations, TranspositionChainIdentity) {
  const Permutation p = {2, 0, 1};
  const auto chain = transposition_chain(p, p);
  EXPECT_EQ(chain.size(), 1u);
}

TEST(Table, RendersAlignedRows) {
  Table t({"model", "n", "ok"});
  t.add_row({"M^mf", "3", "yes"});
  t.add_row({"AsyncMP/S^per", "4", "no"});
  const std::string s = t.to_string("demo");
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("AsyncMP/S^per"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CellHelpers) {
  EXPECT_EQ(cell(42LL), "42");
  EXPECT_EQ(cell(true), "yes");
  EXPECT_EQ(cell(false), "no");
  EXPECT_EQ(cell(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace lacon
