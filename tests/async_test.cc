// Tests for the asynchronous simulator, Ben-Or, and the rotating
// coordinator: randomization terminates with probability 1 where the
// paper's deterministic impossibility bites, and an unfair scheduler wedges
// the deterministic protocol.
#include <gtest/gtest.h>

#include "protocols/benor.hpp"
#include "protocols/coordinator.hpp"
#include "sim/async_sim.hpp"

namespace lacon {
namespace {

TEST(BenOr, UnanimousInputsDecideInPhaseOne) {
  const auto factory = benor_factory();
  Rng rng(1);
  auto sched = random_scheduler(2);
  const AsyncRunResult r =
      run_async(*factory, 4, 1, {1, 1, 1, 1}, *sched, rng, {-1, -1, -1, -1},
                100000);
  EXPECT_TRUE(r.all_alive_decided);
  for (const auto& d : r.decisions) {
    ASSERT_TRUE(d);
    EXPECT_EQ(*d, 1);  // validity: unanimous input is the only outcome
  }
}

TEST(BenOr, MixedInputsTerminateAndAgreeAcrossSeeds) {
  const auto factory = benor_factory();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    auto sched = random_scheduler(seed + 1000);
    const AsyncRunResult r =
        run_async(*factory, 4, 1, {0, 1, 0, 1}, *sched, rng, {-1, -1, -1, -1},
                  200000);
    EXPECT_TRUE(r.all_alive_decided) << "seed " << seed;
    std::optional<Value> agreed;
    for (const auto& d : r.decisions) {
      if (!d) continue;
      if (agreed) {
        EXPECT_EQ(*agreed, *d) << "seed " << seed;
      }
      agreed = *d;
    }
    ASSERT_TRUE(agreed);
    EXPECT_TRUE(*agreed == 0 || *agreed == 1);
  }
}

TEST(BenOr, ToleratesOneCrash) {
  const auto factory = benor_factory();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    auto sched = random_scheduler(seed * 7 + 3);
    // Process 2 crashes after 5 deliveries.
    const AsyncRunResult r =
        run_async(*factory, 4, 1, {0, 1, 1, 0}, *sched, rng, {-1, -1, 5, -1},
                  200000);
    EXPECT_TRUE(r.all_alive_decided) << "seed " << seed;
    std::optional<Value> agreed;
    for (ProcessId i = 0; i < 4; ++i) {
      if (r.crashed[static_cast<std::size_t>(i)]) continue;
      const auto& d = r.decisions[static_cast<std::size_t>(i)];
      ASSERT_TRUE(d) << "seed " << seed;
      if (agreed) {
        EXPECT_EQ(*agreed, *d);
      }
      agreed = *d;
    }
  }
}

TEST(RotatingCoordinator, DecidesUnderFairScheduling) {
  const auto factory = rotating_coordinator_factory();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto sched = random_scheduler(seed + 42);
    const AsyncRunResult r =
        run_async(*factory, 3, 1, {1, 0, 1}, *sched, rng, {-1, -1, -1},
                  100000);
    EXPECT_TRUE(r.all_alive_decided) << "seed " << seed;
    for (const auto& d : r.decisions) {
      ASSERT_TRUE(d);
      EXPECT_EQ(*d, 1);  // phase-0 coordinator (process 0) imposes its input
    }
  }
}

TEST(RotatingCoordinator, StarvedCoordinatorWedgesTheProtocol) {
  // The scheduler that starves the coordinator's messages produces an
  // unbounded-delay prefix in which nobody ever decides — the systems-side
  // face of Theorem 4.2: a deterministic protocol cannot wait out
  // asynchrony.
  const auto factory = rotating_coordinator_factory();
  Rng rng(7);
  auto sched = starve_sender_scheduler(0, 11);
  const AsyncRunResult r = run_async(*factory, 3, 1, {1, 0, 1}, *sched, rng,
                                     {-1, -1, -1}, 100000);
  EXPECT_TRUE(r.stalled);
  for (const auto& d : r.decisions) EXPECT_FALSE(d);
}

TEST(BenOr, RandomizationBeatsTheStarvingScheduler) {
  // Ben-Or only ever waits for n-t messages, so starving one sender cannot
  // wedge it — the quorum forms from the others. (The starved process
  // itself may be unable to finish; it is "faulty" in this schedule.)
  const auto factory = benor_factory();
  Rng rng(3);
  auto sched = starve_sender_scheduler(0, 13);
  const AsyncRunResult r = run_async(*factory, 4, 1, {0, 1, 1, 1}, *sched,
                                     rng, {-1, -1, -1, -1}, 200000);
  int decided = 0;
  for (ProcessId i = 1; i < 4; ++i) {
    if (r.decisions[static_cast<std::size_t>(i)]) ++decided;
  }
  EXPECT_EQ(decided, 3);
}

TEST(AsyncSim, StepBoundTerminatesRun) {
  const auto factory = benor_factory();
  Rng rng(1);
  auto sched = random_scheduler(1);
  const AsyncRunResult r = run_async(*factory, 4, 1, {0, 1, 0, 1}, *sched,
                                     rng, {-1, -1, -1, -1}, 10);
  EXPECT_LE(r.deliveries, 10u);
}

TEST(AsyncSim, CrashedProcessDropsDeliveries) {
  const auto factory = benor_factory();
  Rng rng(5);
  auto sched = random_scheduler(9);
  const AsyncRunResult r = run_async(*factory, 4, 1, {1, 1, 1, 1}, *sched,
                                     rng, {0, -1, -1, -1}, 100000);
  // Process 0 crashed from the start: no decision recorded for it.
  EXPECT_FALSE(r.decisions[0]);
  EXPECT_TRUE(r.crashed[0]);
  EXPECT_TRUE(r.all_alive_decided);
}

}  // namespace
}  // namespace lacon
