// Unit tests for src/relation: graph algorithms, the similarity relation and
// the fingerprint-indexed similarity graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "analysis/reports.hpp"
#include "core/decision_rule.hpp"
#include "engine/explore.hpp"
#include "models/mobile/mobile_model.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/msgpass/msgpass_sync_model.hpp"
#include "relation/graph.hpp"
#include "relation/similarity.hpp"
#include "relation/similarity_index.hpp"
#include "util/rng.hpp"

namespace lacon {
namespace {

// Edge-for-edge equality: same vertices, same edges, same adjacency order.
bool graphs_identical(const Graph& a, const Graph& b) {
  if (a.size() != b.size() || a.edge_count() != b.edge_count()) return false;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph(0).connected());
  EXPECT_TRUE(Graph(1).connected());
  EXPECT_FALSE(Graph(2).connected());
}

TEST(Graph, PathConnectivityAndDiameter) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.connected());
  ASSERT_TRUE(g.diameter());
  EXPECT_EQ(*g.diameter(), 3u);
  EXPECT_EQ(*g.distance(0, 3), 3u);
  EXPECT_EQ(g.shortest_path(0, 3).size(), 4u);
}

TEST(Graph, DisconnectedComponentsAndDiameter) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  EXPECT_FALSE(g.diameter());
  EXPECT_FALSE(g.distance(0, 2));
  EXPECT_TRUE(g.shortest_path(0, 2).empty());
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[4]);
}

TEST(Graph, FromRelationBuildsSymmetricEdges) {
  const Graph g = Graph::from_relation(
      4, [](std::size_t a, std::size_t b) { return a + 1 == b; });
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(Graph, CompleteGraphDiameterOne) {
  const Graph g =
      Graph::from_relation(6, [](std::size_t, std::size_t) { return true; });
  ASSERT_TRUE(g.diameter());
  EXPECT_EQ(*g.diameter(), 1u);
}

// Property test: on random graphs, distance() is symmetric and satisfies
// the triangle inequality along shortest paths.
TEST(Graph, RandomGraphDistanceProperties) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = 2 + rng.below(10);
    Graph g(size);
    for (std::size_t a = 0; a < size; ++a) {
      for (std::size_t b = a + 1; b < size; ++b) {
        if (rng.below(3) == 0) g.add_edge(a, b);
      }
    }
    for (std::size_t a = 0; a < size; ++a) {
      for (std::size_t b = 0; b < size; ++b) {
        const auto ab = g.distance(a, b);
        const auto ba = g.distance(b, a);
        ASSERT_EQ(ab.has_value(), ba.has_value());
        if (ab) {
          ASSERT_EQ(*ab, *ba);
          const auto path = g.shortest_path(a, b);
          ASSERT_EQ(path.size(), *ab + 1);
        }
      }
    }
  }
}

TEST(Similarity, InitialStatesDifferingInOneInput) {
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const auto& con0 = model.initial_states();
  ASSERT_EQ(con0.size(), 8u);
  // Count similar pairs: each pair of assignments at Hamming distance 1.
  int similar_pairs = 0;
  for (std::size_t a = 0; a < con0.size(); ++a) {
    for (std::size_t b = a + 1; b < con0.size(); ++b) {
      if (similar(model, con0[a], con0[b])) ++similar_pairs;
    }
  }
  // The 3-cube has 12 edges.
  EXPECT_EQ(similar_pairs, 12);
}

TEST(Similarity, WitnessIsTheDifferingProcess) {
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const auto& con0 = model.initial_states();
  for (std::size_t a = 0; a < con0.size(); ++a) {
    for (std::size_t b = a + 1; b < con0.size(); ++b) {
      const auto w = similarity_witness(model, con0[a], con0[b]);
      if (!w) continue;
      EXPECT_TRUE(model.agree_modulo(con0[a], con0[b], *w));
    }
  }
}

TEST(Similarity, Con0GraphIsCube) {
  auto rule = never_decide();
  MobileModel model(4, *rule);
  const auto& con0 = model.initial_states();
  const Graph g = similarity_graph(model, con0);
  EXPECT_TRUE(g.connected());
  // Q4: 32 edges, diameter 4.
  EXPECT_EQ(g.edge_count(), 32u);
  ASSERT_TRUE(s_diameter(model, con0));
  EXPECT_EQ(*s_diameter(model, con0), 4u);
}

TEST(Similarity, SelfSimilarityHoldsViaAnyWitness) {
  auto rule = never_decide();
  MobileModel model(2, *rule);
  const auto& con0 = model.initial_states();
  for (StateId x : con0) {
    EXPECT_TRUE(similar(model, x, x));
  }
}

// --- CSR layout ---

TEST(Graph, NeighborRowsPreserveInsertionOrder) {
  // The CSR rows must reproduce the classic push-back adjacency order:
  // edge (a, b) appends b to a's row and a to b's row, in edge order.
  Graph g(4);
  g.add_edge(2, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto row = g.neighbors(2);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 0u);
  EXPECT_EQ(row[1], 1u);
  EXPECT_EQ(row[2], 3u);
  // Queries after further edge insertions see the refreshed layout.
  g.add_edge(0, 1);
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(Graph, FromSortedEdgesMatchesFromRelation) {
  const auto related = [](std::size_t a, std::size_t b) {
    return (a + b) % 3 == 0;
  };
  const Graph swept = Graph::from_relation(24, related);
  std::vector<Graph::Edge> edges;
  for (std::size_t a = 0; a < 24; ++a) {
    for (std::size_t b = a + 1; b < 24; ++b) {
      if (related(a, b)) {
        edges.emplace_back(static_cast<Graph::Vertex>(a),
                           static_cast<Graph::Vertex>(b));
      }
    }
  }
  const Graph direct = Graph::from_sorted_edges(24, std::move(edges));
  EXPECT_TRUE(graphs_identical(swept, direct));
}

// --- Fingerprint-indexed similarity graph ---

TEST(SimilarityIndex, StrategyKnobReadsEnvironment) {
  ASSERT_EQ(setenv("LACON_SIMILARITY", "naive", 1), 0);
  EXPECT_EQ(similarity_strategy(), SimilarityStrategy::kNaive);
  ASSERT_EQ(setenv("LACON_SIMILARITY", "indexed", 1), 0);
  EXPECT_EQ(similarity_strategy(), SimilarityStrategy::kIndexed);
  ASSERT_EQ(unsetenv("LACON_SIMILARITY"), 0);
  EXPECT_EQ(similarity_strategy(), SimilarityStrategy::kIndexed);
  // Unknown values warn once on stderr and fall back to the default
  // instead of silently picking a strategy the operator didn't ask for.
  ASSERT_EQ(setenv("LACON_SIMILARITY", "quantum", 1), 0);
  EXPECT_EQ(similarity_strategy(), SimilarityStrategy::kIndexed);
  ASSERT_EQ(setenv("LACON_SIMILARITY", "", 1), 0);
  EXPECT_EQ(similarity_strategy(), SimilarityStrategy::kIndexed);
  ASSERT_EQ(setenv("LACON_SIMILARITY", "NAIVE", 1), 0);  // case-sensitive
  EXPECT_EQ(similarity_strategy(), SimilarityStrategy::kIndexed);
  ASSERT_EQ(unsetenv("LACON_SIMILARITY"), 0);
}

// The index must reproduce the naive sweep's graph *exactly* — same edges,
// same adjacency order — on every model, including the synchronous one
// whose states record failures (exercising the witness liveness condition)
// and the message-passing ones with overridden fingerprints.
TEST(SimilarityIndex, IndexedEqualsNaiveAcrossModelsAndDepths) {
  struct Cfg {
    ModelKind kind;
    int n;
    int t;
    int depth;
  };
  const Cfg cfgs[] = {
      {ModelKind::kMobile, 3, 1, 2},    {ModelKind::kMobile, 4, 1, 1},
      {ModelKind::kSharedMem, 3, 1, 1}, {ModelKind::kMsgPass, 3, 1, 1},
      {ModelKind::kSync, 3, 1, 2},      {ModelKind::kSync, 4, 2, 1},
  };
  auto rule = min_after_round(2);
  for (const Cfg& cfg : cfgs) {
    auto model = make_model(cfg.kind, cfg.n, cfg.t, *rule);
    for (const auto& level : reachable_by_depth(*model, cfg.depth)) {
      const Graph naive = similarity_graph_naive(*model, level);
      const Graph indexed = similarity_graph_indexed(*model, level);
      EXPECT_TRUE(graphs_identical(naive, indexed))
          << model->name() << " n=" << cfg.n << " |X|=" << level.size();
    }
  }
}

// Soundness contract of the msgpass fingerprint overrides: agree_modulo
// truth implies fingerprint equality (for every erased coordinate), so the
// index can never drop a ~s edge.
template <typename Model>
void check_fingerprint_contract(Model& model, int depth) {
  const std::vector<StateId> states = reachable_states(model, depth);
  for (StateId x : states) {
    for (StateId y : states) {
      for (ProcessId j = 0; j < model.n(); ++j) {
        if (model.agree_modulo(x, y, j)) {
          ASSERT_EQ(model.similarity_fingerprint(x, j),
                    model.similarity_fingerprint(y, j))
              << model.name() << " states " << x << "," << y << " mod " << j;
        }
      }
    }
  }
}

TEST(SimilarityIndex, MsgPassFingerprintRespectsAgreeModulo) {
  auto rule = min_after_round(2);
  MsgPassModel model(3, *rule);
  check_fingerprint_contract(model, 1);
}

TEST(SimilarityIndex, MsgPassSyncFingerprintRespectsAgreeModulo) {
  auto rule = min_after_round(2);
  MsgPassSyncModel model(3, *rule);
  check_fingerprint_contract(model, 2);
}

// The mailbox masking is not vacuous: two states whose in-transit messages
// differ only inside j's mailbox must agree modulo j and share the erase-j
// fingerprint, while differing at every other erased coordinate.
TEST(SimilarityIndex, MailboxMaskedFingerprintIgnoresOwnMailbox) {
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // Full round [0,1,2] vs. the same with {0,1} concurrent: the paper's
  // Section 5.1 chain — they agree modulo 1 only.
  const StateId a = model.apply_schedule(
      x0, Schedule{{0, -1}, {1, -1}, {2, -1}});
  const StateId b = model.apply_schedule(x0, Schedule{{0, 1}, {2, -1}});
  ASSERT_TRUE(model.agree_modulo(a, b, 1));
  EXPECT_EQ(model.similarity_fingerprint(a, 1),
            model.similarity_fingerprint(b, 1));
  EXPECT_FALSE(model.agree_modulo(a, b, 0));
  EXPECT_NE(model.similarity_fingerprint(a, 0),
            model.similarity_fingerprint(b, 0));
}

}  // namespace
}  // namespace lacon
