// Unit tests for src/relation: graph algorithms and the similarity relation.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "models/mobile/mobile_model.hpp"
#include "relation/graph.hpp"
#include "relation/similarity.hpp"
#include "util/rng.hpp"

namespace lacon {
namespace {

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph(0).connected());
  EXPECT_TRUE(Graph(1).connected());
  EXPECT_FALSE(Graph(2).connected());
}

TEST(Graph, PathConnectivityAndDiameter) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.connected());
  ASSERT_TRUE(g.diameter());
  EXPECT_EQ(*g.diameter(), 3u);
  EXPECT_EQ(*g.distance(0, 3), 3u);
  EXPECT_EQ(g.shortest_path(0, 3).size(), 4u);
}

TEST(Graph, DisconnectedComponentsAndDiameter) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  EXPECT_FALSE(g.diameter());
  EXPECT_FALSE(g.distance(0, 2));
  EXPECT_TRUE(g.shortest_path(0, 2).empty());
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[4]);
}

TEST(Graph, FromRelationBuildsSymmetricEdges) {
  const Graph g = Graph::from_relation(
      4, [](std::size_t a, std::size_t b) { return a + 1 == b; });
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(Graph, CompleteGraphDiameterOne) {
  const Graph g =
      Graph::from_relation(6, [](std::size_t, std::size_t) { return true; });
  ASSERT_TRUE(g.diameter());
  EXPECT_EQ(*g.diameter(), 1u);
}

// Property test: on random graphs, distance() is symmetric and satisfies
// the triangle inequality along shortest paths.
TEST(Graph, RandomGraphDistanceProperties) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = 2 + rng.below(10);
    Graph g(size);
    for (std::size_t a = 0; a < size; ++a) {
      for (std::size_t b = a + 1; b < size; ++b) {
        if (rng.below(3) == 0) g.add_edge(a, b);
      }
    }
    for (std::size_t a = 0; a < size; ++a) {
      for (std::size_t b = 0; b < size; ++b) {
        const auto ab = g.distance(a, b);
        const auto ba = g.distance(b, a);
        ASSERT_EQ(ab.has_value(), ba.has_value());
        if (ab) {
          ASSERT_EQ(*ab, *ba);
          const auto path = g.shortest_path(a, b);
          ASSERT_EQ(path.size(), *ab + 1);
        }
      }
    }
  }
}

TEST(Similarity, InitialStatesDifferingInOneInput) {
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const auto& con0 = model.initial_states();
  ASSERT_EQ(con0.size(), 8u);
  // Count similar pairs: each pair of assignments at Hamming distance 1.
  int similar_pairs = 0;
  for (std::size_t a = 0; a < con0.size(); ++a) {
    for (std::size_t b = a + 1; b < con0.size(); ++b) {
      if (similar(model, con0[a], con0[b])) ++similar_pairs;
    }
  }
  // The 3-cube has 12 edges.
  EXPECT_EQ(similar_pairs, 12);
}

TEST(Similarity, WitnessIsTheDifferingProcess) {
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const auto& con0 = model.initial_states();
  for (std::size_t a = 0; a < con0.size(); ++a) {
    for (std::size_t b = a + 1; b < con0.size(); ++b) {
      const auto w = similarity_witness(model, con0[a], con0[b]);
      if (!w) continue;
      EXPECT_TRUE(model.agree_modulo(con0[a], con0[b], *w));
    }
  }
}

TEST(Similarity, Con0GraphIsCube) {
  auto rule = never_decide();
  MobileModel model(4, *rule);
  const auto& con0 = model.initial_states();
  const Graph g = similarity_graph(model, con0);
  EXPECT_TRUE(g.connected());
  // Q4: 32 edges, diameter 4.
  EXPECT_EQ(g.edge_count(), 32u);
  ASSERT_TRUE(s_diameter(model, con0));
  EXPECT_EQ(*s_diameter(model, con0), 4u);
}

TEST(Similarity, SelfSimilarityHoldsViaAnyWitness) {
  auto rule = never_decide();
  MobileModel model(2, *rule);
  const auto& con0 = model.initial_states();
  for (StateId x : con0) {
    EXPECT_TRUE(similar(model, x, x));
  }
}

}  // namespace
}  // namespace lacon
