// Tests for lacon::trace (src/runtime/trace.{hpp,cc}) and the span
// Histogram (src/runtime/stats.hpp): bucket boundaries, the off-mode
// emits-nothing contract, span nesting and thread attribution as seen
// through the Chrome trace-event export, MetricsSnapshot determinism
// across worker counts, and a kTaskBody fault soak with tracing on (ci.sh
// re-runs this binary under TSan and ASan with LACON_TRACE=spans, which is
// what proves the span-buffer publish protocol race-free).
//
// Mode is process-global state, so every test that flips it restores
// Mode::kOff and clears the buffers on exit; tests in this binary are safe
// in any order but must not run concurrently with each other (gtest's
// default).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/reports.hpp"
#include "engine/explore.hpp"
#include "runtime/fault.hpp"
#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trace.hpp"

namespace lacon {
namespace {

using runtime::Histogram;
using runtime::WorkerCountOverride;

// RAII mode override: set, and on exit drop buffered spans and restore off.
class ModeGuard {
 public:
  explicit ModeGuard(trace::Mode m) { trace::set_mode(m); }
  ~ModeGuard() {
    trace::set_mode(trace::Mode::kOff);
    trace::clear();
  }
};

constinit trace::SpanSite g_outer_site{"test", "outer"};
constinit trace::SpanSite g_inner_site{"test", "inner"};
constinit trace::SpanSite g_instant_site{"test", "tick"};

// --- Histogram bucket boundaries --------------------------------------

TEST(Histogram, BucketOfPowerOfTwoBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket b >= 1 holds
  // [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketLowerInvertsBucketOf) {
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t lower = Histogram::bucket_lower(b);
    EXPECT_EQ(Histogram::bucket_of(lower), b) << "bucket " << b;
    if (lower > 0) {
      EXPECT_EQ(Histogram::bucket_of(lower - 1), b - 1) << "bucket " << b;
    }
  }
}

TEST(Histogram, RecordAccumulatesCountSumAndBuckets) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(1), 1u);  // value 1
  EXPECT_EQ(h.bucket(3), 2u);  // values in [4, 8)
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --- Mode knob ---------------------------------------------------------

TEST(TraceMode, ParseAcceptsKnownValuesAndFallsBack) {
  EXPECT_EQ(trace::parse_mode("off", trace::Mode::kSpans), trace::Mode::kOff);
  EXPECT_EQ(trace::parse_mode("counters", trace::Mode::kOff),
            trace::Mode::kCounters);
  EXPECT_EQ(trace::parse_mode("spans", trace::Mode::kOff),
            trace::Mode::kSpans);
  EXPECT_EQ(trace::parse_mode(nullptr, trace::Mode::kCounters),
            trace::Mode::kCounters);
  EXPECT_EQ(trace::parse_mode("", trace::Mode::kSpans), trace::Mode::kSpans);
  EXPECT_EQ(trace::parse_mode("bogus", trace::Mode::kOff), trace::Mode::kOff);
}

// --- Off mode: emits nothing -------------------------------------------

TEST(TraceOff, SpansAndInstantsEmitNothing) {
  trace::set_mode(trace::Mode::kOff);
  trace::clear();
  const std::uint64_t before = g_outer_site.histogram().count();
  {
    trace::ScopedSpan outer(g_outer_site, 7);
    trace::ScopedSpan inner(g_inner_site);
    trace::instant(g_instant_site);
    LACON_TRACE_SPAN("test", "macro_site");
  }
  EXPECT_TRUE(trace::collect().empty());
  EXPECT_EQ(trace::spans_recorded(), 0u);
  EXPECT_EQ(g_outer_site.histogram().count(), before);
}

TEST(TraceCounters, HistogramsPopulateButNoEvents) {
  ModeGuard mode(trace::Mode::kCounters);
  const std::uint64_t before = g_outer_site.histogram().count();
  { trace::ScopedSpan span(g_outer_site); }
  EXPECT_EQ(g_outer_site.histogram().count(), before + 1);
  EXPECT_TRUE(trace::collect().empty());
}

// --- Spans mode: nesting, instants, thread attribution -----------------

TEST(TraceSpans, RecordsNestingDepthAndArgs) {
  ModeGuard mode(trace::Mode::kSpans);
  trace::clear();
  {
    trace::ScopedSpan outer(g_outer_site, 42);
    trace::ScopedSpan inner(g_inner_site);
    trace::instant(g_instant_site, 3);
  }
  const std::vector<trace::CollectedSpan> spans = trace::collect();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].arg, 42u);
  EXPECT_FALSE(spans[0].is_instant);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "tick");
  EXPECT_TRUE(spans[2].is_instant);
  EXPECT_EQ(spans[2].arg, 3u);
  // Containment: inner starts after outer and ends no later.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
  // All on the calling thread.
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_EQ(spans[0].tid, spans[2].tid);
}

TEST(TraceSpans, DistinctThreadsGetDistinctTids) {
  ModeGuard mode(trace::Mode::kSpans);
  trace::clear();
  { trace::ScopedSpan span(g_outer_site); }
  std::thread t1([] { trace::ScopedSpan span(g_inner_site); });
  t1.join();
  std::thread t2([] { trace::ScopedSpan span(g_inner_site); });
  t2.join();
  const std::vector<trace::CollectedSpan> spans = trace::collect();
  ASSERT_EQ(spans.size(), 3u);  // retired threads keep their events
  std::set<std::uint32_t> tids;
  for (const auto& s : spans) tids.insert(s.tid);
  EXPECT_EQ(tids.size(), 3u);
}

TEST(TraceSpans, PhaseScopeNamesWorkerChunks) {
  ModeGuard mode(trace::Mode::kSpans);
  WorkerCountOverride workers(4);
  trace::clear();
  {
    LACON_TRACE_PHASE("test", "phased", 64);
    std::atomic<std::size_t> count{0};
    runtime::parallel_for(64, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 64u);
  }
  const std::vector<trace::CollectedSpan> spans = trace::collect();
  // The phase span itself plus one chunk span per executed chunk, all
  // attributed to the phase's site name.
  std::size_t phased = 0;
  for (const auto& s : spans) {
    if (std::string_view(s.name) == "phased") ++phased;
  }
  EXPECT_GE(phased, 2u) << "chunk spans did not inherit the phase name";
  EXPECT_EQ(trace::current_phase(), nullptr);
}

TEST(TraceSpans, ChromeExportCarriesEventsAndThreadNames) {
  ModeGuard mode(trace::Mode::kSpans);
  trace::clear();
  {
    trace::ScopedSpan outer(g_outer_site, 9);
    trace::ScopedSpan inner(g_inner_site);
    trace::instant(g_instant_site);
  }
  const std::string json = trace::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\":9"), std::string::npos);
}

// --- MetricsSnapshot ----------------------------------------------------

TEST(MetricsSnapshot, JsonIsDeterministicForFixedStats) {
  ModeGuard mode(trace::Mode::kCounters);
  { trace::ScopedSpan span(g_outer_site); }
  const std::string a = trace::metrics_snapshot_json();
  const std::string b = trace::metrics_snapshot_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"lacon.metrics.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"trace_mode\":\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"span.test.outer\""), std::string::npos);
}

// The analysis counters in the snapshot must not depend on the worker
// count: the engine's determinism contract extends to its observability.
TEST(MetricsSnapshot, EngineCountersMatchAcrossWorkerCounts) {
  auto run_and_grab = [](unsigned workers) {
    WorkerCountOverride scoped(workers);
    runtime::Stats::global().reset();
    static const auto rule = min_when_all_known(1);  // outlives the model
    auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
    reachable_by_depth(*model, 2);
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const runtime::StatSample& s :
         runtime::Stats::global().snapshot()) {
      // Pool scheduling counters vary with the worker count by design, and
      // so do the arena contention counters (shard_waits counts try-lock
      // failures; racing idempotent layer computations add extra
      // hit-interns). Everything the *engine* counts must not.
      if (s.is_timer || s.name.rfind("pool.", 0) == 0 ||
          s.name.rfind("arena.", 0) == 0) {
        continue;
      }
      counters.emplace_back(s.name, s.value);
    }
    return counters;
  };
  const auto serial = run_and_grab(1);
  const auto parallel = run_and_grab(4);
  EXPECT_EQ(serial, parallel);
  runtime::Stats::global().reset();
}

// --- Fault soak with tracing on ----------------------------------------

// A task-body fault mid-section must not corrupt the span buffers: the
// throwing chunk's span unwinds, the section rethrows, and both tracing
// and the pool stay usable. Under TSan/ASan (ci.sh soak) this doubles as
// the race/leak check for the unwind path.
TEST(TraceFaultSoak, TaskBodyFaultsWithTracingOn) {
  ModeGuard mode(trace::Mode::kSpans);
  std::uint64_t seed = 20260805;
  if (const auto env = fault::config_from_env()) seed = env->seed;
  for (unsigned workers : {1u, 4u}) {
    WorkerCountOverride scoped(workers);
    trace::clear();
    {
      fault::FaultScope scope(
          seed, 1.0, 1u << static_cast<unsigned>(fault::Site::kTaskBody));
      LACON_TRACE_PHASE("test", "soak", 400);
      EXPECT_THROW(runtime::parallel_for(400, [](std::size_t) {}),
                   fault::InjectedFault)
          << "workers=" << workers;
    }
    // Tracing still works after the unwind...
    {
      trace::ScopedSpan span(g_outer_site);
      std::atomic<std::size_t> count{0};
      runtime::parallel_for(100, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
      EXPECT_EQ(count.load(), 100u) << "workers=" << workers;
    }
    // ...and the collected events are well-formed (every span closed).
    for (const trace::CollectedSpan& s : trace::collect()) {
      EXPECT_NE(s.name, nullptr);
      if (!s.is_instant) {
        EXPECT_GE(s.dur_ns, 0u);
      }
    }
  }
}

// clear() empties both live and retired buffers.
TEST(TraceSpans, ClearDropsEverything) {
  ModeGuard mode(trace::Mode::kSpans);
  { trace::ScopedSpan span(g_outer_site); }
  std::thread t([] { trace::ScopedSpan span(g_inner_site); });
  t.join();
  EXPECT_GE(trace::spans_recorded(), 2u);
  trace::clear();
  EXPECT_EQ(trace::spans_recorded(), 0u);
  EXPECT_TRUE(trace::collect().empty());
}

}  // namespace
}  // namespace lacon
