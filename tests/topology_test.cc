// Tests for src/topology: simplexes, complexes, thick connectivity, the
// task catalog and the solvability conditions of Section 7.
#include <gtest/gtest.h>

#include "topology/complex.hpp"
#include "topology/simplex.hpp"
#include "topology/solvability.hpp"
#include "topology/tasks.hpp"

namespace lacon {
namespace {

TEST(Simplex, MakeSortsById) {
  const Simplex s = make_simplex({{2, 5}, {0, 1}, {1, 3}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].id, 0);
  EXPECT_EQ(s[1].id, 1);
  EXPECT_EQ(s[2].id, 2);
}

TEST(Simplex, AssignmentSimplex) {
  const Simplex s = assignment_simplex({1, 0, 1});
  EXPECT_EQ(s, make_simplex({{0, 1}, {1, 0}, {2, 1}}));
}

TEST(Simplex, FacesAndIntersection) {
  const Simplex big = make_simplex({{0, 1}, {1, 0}, {2, 1}});
  const Simplex face = make_simplex({{0, 1}, {2, 1}});
  const Simplex other = make_simplex({{0, 0}, {1, 0}});
  EXPECT_TRUE(is_face(face, big));
  EXPECT_TRUE(is_face(Simplex{}, big));
  EXPECT_FALSE(is_face(other, big));
  EXPECT_EQ(simplex_intersection(big, other), make_simplex({{1, 0}}));
  EXPECT_EQ(simplex_intersection(big, face), face);
}

TEST(Complex, MembershipByFace) {
  Complex c;
  c.add(assignment_simplex({0, 0, 0}));
  EXPECT_TRUE(c.contains(make_simplex({{1, 0}})));
  EXPECT_TRUE(c.contains(assignment_simplex({0, 0, 0})));
  EXPECT_FALSE(c.contains(make_simplex({{1, 1}})));
  EXPECT_TRUE(c.contains(Simplex{}));  // the empty simplex is a face
}

TEST(Complex, SimplexesOfSize) {
  Complex c;
  c.add(assignment_simplex({0, 1, 1}));
  EXPECT_EQ(c.simplexes_of_size(3).size(), 1u);
  EXPECT_EQ(c.simplexes_of_size(2).size(), 3u);
  EXPECT_EQ(c.simplexes_of_size(1).size(), 3u);
  c.add(assignment_simplex({0, 1, 0}));
  EXPECT_EQ(c.simplexes_of_size(3).size(), 2u);
  // The two top simplexes share vertices (0:0) and (1:1).
  EXPECT_EQ(c.simplexes_of_size(1).size(), 4u);
}

TEST(Complex, ThickConnectivity) {
  // Two disjoint triangles: not even n-thick connected... k=n allows empty
  // intersections, so k = n makes everything with >= 1 simplex connected.
  Complex c;
  c.add(assignment_simplex({0, 0, 0}));
  c.add(assignment_simplex({1, 1, 1}));
  EXPECT_FALSE(c.k_thick_connected(3, 1));
  EXPECT_FALSE(c.k_thick_connected(3, 2));
  EXPECT_TRUE(c.k_thick_connected(3, 3));
  // Adding a bridging simplex sharing 2 vertices with each side makes it
  // 1-thick connected.
  c.add(assignment_simplex({0, 0, 1}));
  c.add(assignment_simplex({0, 1, 1}));
  EXPECT_TRUE(c.k_thick_connected(3, 1));
  ASSERT_TRUE(c.thick_diameter(3, 1));
  EXPECT_EQ(*c.thick_diameter(3, 1), 3u);
}

TEST(Tasks, ConsensusDeltaRespectsValidity) {
  const DecisionProblem p = consensus_task(3);
  ASSERT_EQ(p.inputs.size(), 8u);
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    const auto& in = p.inputs[i];
    const bool unanimous =
        std::all_of(in.begin(), in.end(), [&](Value v) { return v == in[0]; });
    EXPECT_EQ(p.allowed_outputs[i].size(), unanimous ? 1u : 2u);
    for (const auto& out : p.allowed_outputs[i]) {
      // all-same output, value present among inputs
      EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                              [&](Value v) { return v == out[0]; }));
      EXPECT_NE(std::find(in.begin(), in.end(), out[0]), in.end());
    }
  }
}

TEST(Tasks, SetAgreementOutputsBounded) {
  const DecisionProblem p = set_agreement_task(3, 2, 3);
  ASSERT_EQ(p.inputs.size(), 27u);
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    for (const auto& out : p.allowed_outputs[i]) {
      std::set<Value> distinct(out.begin(), out.end());
      EXPECT_LE(distinct.size(), 2u);
      for (Value v : distinct) {
        EXPECT_NE(std::find(p.inputs[i].begin(), p.inputs[i].end(), v),
                  p.inputs[i].end());
      }
    }
    EXPECT_FALSE(p.allowed_outputs[i].empty());
  }
}

TEST(Solvability, InputSimilarityIsHammingAtMostOne) {
  EXPECT_TRUE(inputs_similar({0, 1, 1}, {0, 0, 1}));
  EXPECT_TRUE(inputs_similar({0, 1, 1}, {0, 1, 1}));
  EXPECT_FALSE(inputs_similar({0, 1, 1}, {1, 0, 1}));
}

TEST(Solvability, ConsensusIsNot1ThickConnected) {
  // Theorem 7.2 / Corollary 7.3: consensus is not solvable 1-resiliently,
  // and the checker proves it exhaustively over all subproblems.
  const DecisionProblem p = consensus_task(3);
  const ThickResult r = problem_k_thick_connected(p, 1);
  EXPECT_EQ(r.verdict, ThickVerdict::kNotConnected) << r.detail;
}

TEST(Solvability, ConsensusIsNThickConnected) {
  // With k = n the intersection requirement vanishes.
  const DecisionProblem p = consensus_task(3);
  const ThickResult r = problem_k_thick_connected(p, 3);
  EXPECT_EQ(r.verdict, ThickVerdict::kConnected) << r.detail;
}

TEST(Solvability, TrivialTaskIs1ThickConnected) {
  const DecisionProblem p = trivial_task(3);
  const ThickResult r = problem_k_thick_connected(p, 1);
  EXPECT_EQ(r.verdict, ThickVerdict::kConnected) << r.detail;
}

TEST(Solvability, ConstantTaskIs1ThickConnected) {
  const DecisionProblem p = constant_task(3, 0);
  const ThickResult r = problem_k_thick_connected(p, 1);
  EXPECT_EQ(r.verdict, ThickVerdict::kConnected) << r.detail;
}

TEST(Solvability, WeakAgreementNeedsSubproblemSearch) {
  // The full Δ generates a disconnected complex, but the constant
  // subproblem works — exercising the ∃Δ' quantifier.
  const DecisionProblem p = weak_agreement_task(3);
  const ThickResult r = problem_k_thick_connected(p, 1);
  EXPECT_EQ(r.verdict, ThickVerdict::kConnected) << r.detail;
  EXPECT_NE(r.detail.find("single-choice"), std::string::npos) << r.detail;
}

TEST(Solvability, TwoSetAgreementIs1ThickConnected) {
  // 1-resilient 2-set agreement is solvable (t < k); the condition must
  // come out connected (sampled I-sets: the instance has 27 inputs).
  const DecisionProblem p = set_agreement_task(3, 2, 3);
  const ThickResult r = problem_k_thick_connected(p, 1);
  EXPECT_EQ(r.verdict, ThickVerdict::kConnected) << r.detail;
}

TEST(Solvability, DiameterBoundRecurrence) {
  // d_X^{m+1} = d_X d_Y + d_X + d_Y, d_Y^m = 2(n-m).
  EXPECT_EQ(diameter_bound(3, 0, 3), 3);
  // t=1: dY = 6 -> 3*6+3+6 = 27.
  EXPECT_EQ(diameter_bound(3, 1, 3), 27);
  // t=2: next dY = 4 -> 27*4+27+4 = 139.
  EXPECT_EQ(diameter_bound(3, 2, 3), 139);
}

TEST(Solvability, DiameterConditionForTrivialTask) {
  const DecisionProblem p = trivial_task(3);
  // The trivial task's output complex over any I has diameter <= n, far
  // below the synchronous-round bound.
  EXPECT_TRUE(diameter_condition_holds(p, 1, diameter_bound(3, 1, 3)));
  // A bound of 0 is unsatisfiable once I contains two different inputs.
  EXPECT_FALSE(diameter_condition_holds(p, 1, 0));
}

TEST(Solvability, ConsensusFailsDiameterCondition) {
  const DecisionProblem p = consensus_task(3);
  // Disconnected output complexes have no finite diameter at all.
  EXPECT_FALSE(diameter_condition_holds(p, 1, 1000));
}

TEST(Solvability, SimilarityConnectedSetsEnumerated) {
  const DecisionProblem p = consensus_task(2);  // the 4 corners of Q2
  const auto sets = similarity_connected_input_sets(p);
  // Q2's connected vertex subsets: 4 singletons + 4 edges + 4 paths of 3
  // + 1 full square = 13 (the 2 antipodal pairs are disconnected).
  EXPECT_EQ(sets.size(), 13u);
  // Largest set first (the most discriminating for failures).
  EXPECT_EQ(sets.front().size(), 4u);
}

}  // namespace
}  // namespace lacon
