// The mechanized lemma suite (DESIGN.md §3): every numbered result of
// Sections 3-6, checked on concrete instances of all four models.
#include <gtest/gtest.h>

#include "analysis/reports.hpp"
#include "engine/lemmas.hpp"
#include "models/synchronous/sync_model.hpp"

namespace lacon {
namespace {

// ---- Cross-model suite, parameterized over the model kind -----------------

class LemmaSuite : public ::testing::TestWithParam<ModelKind> {};

TEST_P(LemmaSuite, AllChecksPass) {
  const ModelKind kind = GetParam();
  // The synchronous model runs at t = 2: for t = 1 the layer-connectivity
  // claim is vacuous (the paper asserts it only below t-1 failures).
  const bool sync = (kind == ModelKind::kSync);
  const int n = sync ? 4 : 3;
  const int t = sync ? 2 : 1;
  const int depth = 2;
  const int horizon = sync ? 4 : 3;
  auto rule = min_after_round(sync ? 3 : 2);
  for (const NamedCheck& check :
       run_lemma_suite(kind, n, t, depth, horizon, *rule)) {
    EXPECT_TRUE(check.result.ok)
        << model_kind_name(kind) << " / " << check.name << ": "
        << check.result.detail;
    EXPECT_GT(check.result.checked, 0u) << check.name << " checked nothing";
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, LemmaSuite,
                         ::testing::Values(ModelKind::kMobile,
                                           ModelKind::kSharedMem,
                                           ModelKind::kMsgPass,
                                           ModelKind::kSync),
                         [](const auto& info) {
                           switch (info.param) {
                             case ModelKind::kMobile: return "Mobile";
                             case ModelKind::kSharedMem: return "SharedMem";
                             case ModelKind::kMsgPass: return "MsgPass";
                             case ModelKind::kSync: return "Sync";
                           }
                           return "Unknown";
                         });

// ---- Individual lemmas at other parameters ---------------------------------

TEST(Lemma31, HoldsDeeperInMobileModelWithSafeRule) {
  // Lemma 3.1 hypothesizes agreement; min-when-all-known satisfies it.
  auto rule = min_when_all_known(1);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const CheckResult r = check_lemma_3_1(*model, 1, 3, 4);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Lemma32, MobileModelNobodyDecidedAtBivalentStates) {
  auto rule = min_when_all_known(1);
  auto model = make_model(ModelKind::kMobile, 4, 1, *rule);
  const CheckResult r = check_lemma_3_2(*model, 2, 3);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Lemma32, ContrapositiveNonVacuousForMinRule) {
  // With the agreement-violating min rule, bivalent states with decided
  // processes exist, and each one must lead to an agreement violation.
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const CheckResult r = check_lemma_3_2_contrapositive(*model, 3, 3);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.checked, 0u);
}

TEST(Lemma36, HoldsForNUpTo5InMobileModel) {
  for (int n = 2; n <= 5; ++n) {
    auto rule = min_after_round(2);
    auto model = make_model(ModelKind::kMobile, n, 1, *rule);
    const CheckResult r = check_lemma_3_6(*model, 3);
    EXPECT_TRUE(r.ok) << "n=" << n << ": " << r.detail;
  }
}

TEST(Lemma36, HoldsAcrossRuleCatalog) {
  std::vector<std::unique_ptr<DecisionRule>> rules;
  rules.push_back(min_after_round(1));
  rules.push_back(min_after_round(2));
  rules.push_back(majority_after_round(2));
  for (auto& rule : rules) {
    auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
    const CheckResult r = check_lemma_3_6(*model, 3);
    EXPECT_TRUE(r.ok) << rule->name() << ": " << r.detail;
  }
}

TEST(Lemma61, BivalentChainInSyncModel) {
  for (int t : {1, 2}) {
    const int n = t + 2;
    auto rule = min_after_round(t + 1);
    SyncModel model(n, t, *rule);
    const CheckResult r = check_lemma_6_1(model, t, t + 2);
    EXPECT_TRUE(r.ok) << "t=" << t << ": " << r.detail;
  }
}

TEST(Lemma62, HoldsInSyncModel) {
  auto rule = min_after_round(2);
  SyncModel model(3, 1, *rule);
  const CheckResult r = check_lemma_6_2(model, 2, 3);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.checked, 0u);
}

TEST(Lemma64, FastProtocolUnivalentAfterFailureFreeRound) {
  // min-after-round-(t+1) is a fast protocol; Lemma 6.4 says a
  // failure-free round k+1 after at most k failures forces univalence.
  const int n = 3;
  const int t = 1;
  auto rule = min_after_round(t + 1);
  SyncModel model(n, t, *rule);
  const CheckResult r = check_lemma_6_4(model, t, t + 2);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.checked, 0u);
}

TEST(Lemma64, AlsoAtT2) {
  const int n = 4;
  const int t = 2;
  auto rule = min_after_round(t + 1);
  SyncModel model(n, t, *rule);
  const CheckResult r = check_lemma_6_4(model, t, t + 2);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(LayerConnectivity, MobileModelLayersSimilarityConnected) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  const CheckResult r = check_layer_connectivity(*model, 1, 3, true);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(LayerConnectivity, AsyncLayersValenceConnectedOnly) {
  for (ModelKind kind : {ModelKind::kSharedMem, ModelKind::kMsgPass}) {
    auto rule = min_after_round(2);
    auto model = make_model(kind, 3, 1, *rule);
    const CheckResult r = check_layer_connectivity(
        *model, 1, 3, false, Exactness::kConvergence);
    EXPECT_TRUE(r.ok) << model_kind_name(kind) << ": " << r.detail;
  }
}

TEST(Corollary63, TRoundDecisionIsImpossible) {
  // The executable form of the t+1 lower bound: for every t, the protocol
  // "decide at round t" breaks agreement somewhere within the S^t submodel.
  for (int t : {1, 2}) {
    const int n = t + 2;
    auto rule = min_after_round(t);
    SyncModel model(n, t, *rule);
    const SpecReport report = check_consensus_spec(model, t + 1);
    EXPECT_TRUE(report.agreement.has_value()) << "t=" << t;
  }
}

TEST(Corollary63, TPlusOneRoundsSuffice) {
  for (int t : {1, 2}) {
    const int n = t + 2;
    auto rule = min_after_round(t + 1);
    SyncModel model(n, t, *rule);
    const SpecReport report = check_consensus_spec(model, t + 1);
    EXPECT_FALSE(report.agreement.has_value()) << "t=" << t;
    EXPECT_FALSE(report.validity.has_value()) << "t=" << t;
    EXPECT_TRUE(report.all_quiesce) << "t=" << t;
  }
}

}  // namespace
}  // namespace lacon
