// LayeredModel conformance battery: structural invariants every model must
// satisfy, run against all five models (the four of the paper plus IIS).
#include <memory>

#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "engine/explore.hpp"
#include "models/iis/iis_model.hpp"
#include "models/mobile/mobile_model.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/sharedmem/sharedmem_model.hpp"
#include "models/synchronous/sync_model.hpp"

namespace lacon {
namespace {

enum class Kind { kMobile, kSharedMem, kMsgPass, kSync, kIis };

std::unique_ptr<LayeredModel> build(Kind kind, int n,
                                    const DecisionRule& rule) {
  switch (kind) {
    case Kind::kMobile:
      return std::make_unique<MobileModel>(n, rule);
    case Kind::kSharedMem:
      return std::make_unique<SharedMemModel>(n, rule);
    case Kind::kMsgPass:
      return std::make_unique<MsgPassModel>(n, rule);
    case Kind::kSync:
      return std::make_unique<SyncModel>(n, 1, rule);
    case Kind::kIis:
      return std::make_unique<IisModel>(n, rule);
  }
  return nullptr;
}

class Conformance : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<DecisionRule> rule_ = min_after_round(2);
  std::unique_ptr<LayeredModel> model_ = build(GetParam(), 3, *rule_);
};

TEST_P(Conformance, InitialStatesAreTheBinaryCube) {
  const auto& con0 = model_->initial_states();
  EXPECT_EQ(con0.size(), 8u);
  for (StateId x : con0) {
    const StateRef s = model_->state(x);
    for (ProcessId i = 0; i < 3; ++i) {
      EXPECT_EQ(s.decisions[static_cast<std::size_t>(i)], kUndecided);
      EXPECT_EQ(model_->views().node(s.locals[static_cast<std::size_t>(i)]).round,
                0);
    }
    EXPECT_TRUE(model_->failed_at(x).empty());  // condition (iii) of §3
  }
}

TEST_P(Conformance, LayersAreSortedDedupedAndStable) {
  const StateId x0 = model_->initial_states().front();
  const auto& layer1 = model_->layer(x0);
  ASSERT_FALSE(layer1.empty());
  for (std::size_t i = 1; i < layer1.size(); ++i) {
    EXPECT_LT(layer1[i - 1], layer1[i]);
  }
  // Caching returns the same object.
  EXPECT_EQ(&model_->layer(x0), &layer1);
}

TEST_P(Conformance, AgreeModuloIsReflexiveAndEnvSensitive) {
  const StateId x0 = model_->initial_states().front();
  for (ProcessId j = 0; j < 3; ++j) {
    EXPECT_TRUE(model_->agree_modulo(x0, x0, j));
  }
  // Two different initial states differ in some process's input, so they
  // can agree modulo at most that process.
  const StateId x1 = model_->initial_states()[1];
  int agreeing = 0;
  for (ProcessId j = 0; j < 3; ++j) {
    if (model_->agree_modulo(x0, x1, j)) ++agreeing;
  }
  EXPECT_LE(agreeing, 1);
}

TEST_P(Conformance, SuccessorsAdvanceSomeProcess) {
  const StateId x0 = model_->initial_states().front();
  for (StateId y : model_->layer(x0)) {
    ASSERT_NE(y, x0);
    int advanced = 0;
    for (ProcessId i = 0; i < 3; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (model_->state(y).locals[iu] != model_->state(x0).locals[iu]) {
        ++advanced;
      }
    }
    EXPECT_GE(advanced, 2);  // all models keep >= n-1 processes moving
  }
}

TEST_P(Conformance, ViewsRecordMonotoneRounds) {
  for (StateId x : reachable_states(*model_, 2)) {
    const StateRef s = model_->state(x);
    for (ViewId v : s.locals) {
      const ViewNode& node = model_->views().node(v);
      EXPECT_LE(node.round, 2);
      if (node.prev != kNoView) {
        EXPECT_EQ(model_->views().node(node.prev).round, node.round - 1);
        EXPECT_EQ(model_->views().node(node.prev).owner, node.owner);
      }
    }
  }
}

TEST_P(Conformance, DecisionsAreWriteOnceAlongLayers) {
  for (StateId x : reachable_states(*model_, 1)) {
    for (StateId y : model_->layer(x)) {
      for (ProcessId i = 0; i < 3; ++i) {
        const Value dx = model_->state(x).decisions[static_cast<std::size_t>(i)];
        const Value dy = model_->state(y).decisions[static_cast<std::size_t>(i)];
        if (dx != kUndecided) {
          EXPECT_EQ(dx, dy);
        }
      }
    }
  }
}

TEST_P(Conformance, FailedSetMonotoneAlongLayers) {
  for (StateId x : reachable_states(*model_, 2)) {
    const ProcessSet fx = model_->failed_at(x);
    for (StateId y : model_->layer(x)) {
      const ProcessSet fy = model_->failed_at(y);
      EXPECT_EQ(fx & fy, fx) << "failure evidence must persist";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, Conformance,
                         ::testing::Values(Kind::kMobile, Kind::kSharedMem,
                                           Kind::kMsgPass, Kind::kSync,
                                           Kind::kIis),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kMobile: return "Mobile";
                             case Kind::kSharedMem: return "SharedMem";
                             case Kind::kMsgPass: return "MsgPass";
                             case Kind::kSync: return "Sync";
                             case Kind::kIis: return "Iis";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace lacon
