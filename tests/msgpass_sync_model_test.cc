// Tests for the synchronic layering over asynchronous message passing —
// the paper's "completely analogous proof for message passing" remark made
// executable. The structure must mirror the shared-memory S^rw tests,
// message-persistence effects included.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "engine/bivalence.hpp"
#include "engine/lemmas.hpp"
#include "engine/spec.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/msgpass/msgpass_sync_model.hpp"
#include "relation/similarity.hpp"

namespace lacon {
namespace {

TEST(MsgPassSync, TimedZeroIsIndependentOfJ) {
  auto rule = never_decide();
  MsgPassSyncModel model(3, *rule);
  const StateId x0 = model.initial_states().back();
  const StateId base = model.apply_timed(x0, 0, 0);
  for (ProcessId j = 1; j < 3; ++j) {
    EXPECT_EQ(model.apply_timed(x0, j, 0), base);
  }
}

TEST(MsgPassSync, AbsentProcessFrozen) {
  auto rule = never_decide();
  MsgPassSyncModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply_absent(x0, 1);
  EXPECT_EQ(model.state(y).locals[1], model.state(x0).locals[1]);
  EXPECT_NE(model.state(y).locals[0], model.state(x0).locals[0]);
  // The proper processes' messages to 1 pile up in 1's mailbox.
  int to_1 = 0;
  for (std::int64_t m : model.state(y).env) {
    if (message_receiver(m) == 1) ++to_1;
  }
  EXPECT_EQ(to_1, 2);
}

TEST(MsgPassSync, EarlyReadersMissTheSlowMessage) {
  auto rule = never_decide();
  MsgPassSyncModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // (j=0, k=n): the proper processes receive in R1, before 0's S2 send.
  const StateId y = model.apply_timed(x0, 0, 3);
  const ViewNode& v1 = model.views().node(model.state(y).locals[1]);
  for (const Obs& o : v1.obs) {
    EXPECT_NE(o.source, 0) << "R1 receiver must miss the S2 message";
  }
  // 0's message is still in transit, addressed to 1 and 2.
  int from_0 = 0;
  for (std::int64_t m : model.state(y).env) {
    if (message_sender(m) == 0) ++from_0;
  }
  EXPECT_EQ(from_0, 2);
  // The slow process itself received everything.
  const ViewNode& v0 = model.views().node(model.state(y).locals[0]);
  EXPECT_EQ(v0.obs.size(), 2u);
}

TEST(MsgPassSync, StaleMessageArrivesNextRound) {
  // Message persistence: after x(j,n), the next round delivers j's stale
  // message — the register analogue is reading V_j's old value.
  auto rule = never_decide();
  MsgPassSyncModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply_timed(x0, 0, 3);
  const StateId z = model.apply_absent(y, 0);
  const ViewNode& v1 = model.views().node(model.state(z).locals[1]);
  bool saw_stale = false;
  for (const Obs& o : v1.obs) {
    if (o.source == 0 && o.view == model.state(x0).locals[0]) saw_stale = true;
  }
  EXPECT_TRUE(saw_stale);
}

TEST(MsgPassSync, Lemma53BridgeAgreesModuloJ) {
  auto rule = never_decide();
  for (int n : {2, 3}) {
    MsgPassSyncModel model(n, *rule);
    for (StateId x0 : {model.initial_states().front(),
                       model.initial_states().back()}) {
      for (ProcessId j = 0; j < n; ++j) {
        const StateId y = model.apply_absent(model.apply_timed(x0, j, n), j);
        const StateId yp =
            model.apply_timed(model.apply_absent(x0, j), j, 0);
        EXPECT_TRUE(model.agree_modulo(y, yp, j)) << "n=" << n << " j=" << j;
        EXPECT_TRUE(similar(model, y, yp));
      }
    }
  }
}

TEST(MsgPassSync, TimedSubsetSimilarityConnected) {
  auto rule = never_decide();
  MsgPassSyncModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  std::vector<StateId> Y;
  for (ProcessId j = 0; j < 3; ++j) {
    for (int k = 0; k <= 3; ++k) Y.push_back(model.apply_timed(x0, j, k));
  }
  std::sort(Y.begin(), Y.end());
  Y.erase(std::unique(Y.begin(), Y.end()), Y.end());
  EXPECT_TRUE(similarity_connected(model, Y));
}

TEST(MsgPassSync, LayerValenceConnectedAndBivalentRunExtends) {
  auto rule = min_after_round(2);
  MsgPassSyncModel model(3, *rule);
  const CheckResult connectivity = check_layer_connectivity(
      model, 1, 3, /*expect_similarity=*/false, Exactness::kConvergence);
  EXPECT_TRUE(connectivity.ok) << connectivity.detail;

  ValenceEngine engine(model, 3, Exactness::kConvergence);
  const BivalentRunResult run = extend_bivalent_run(engine, 4);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
}

TEST(MsgPassSync, Lemma36AndTrilemma) {
  auto rule = min_after_round(2);
  MsgPassSyncModel model(3, *rule);
  const CheckResult lemma36 =
      check_lemma_3_6(model, 3, Exactness::kConvergence);
  EXPECT_TRUE(lemma36.ok) << lemma36.detail;

  MsgPassSyncModel model2(3, *rule);
  const TrilemmaVerdict v = consensus_trilemma(model2, 3, 3);
  EXPECT_NE(v.violated, TrilemmaVerdict::Violated::kNone);
}

TEST(MsgPassSync, AtMostOneProcessSkipsEachRound) {
  auto rule = never_decide();
  MsgPassSyncModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  for (StateId y : model.layer(x0)) {
    int stayed = 0;
    for (ProcessId i = 0; i < 3; ++i) {
      if (model.state(y).locals[static_cast<std::size_t>(i)] ==
          model.state(x0).locals[static_cast<std::size_t>(i)]) {
        ++stayed;
      }
    }
    EXPECT_LE(stayed, 1);  // the S^sync-runs are fair
  }
}

}  // namespace
}  // namespace lacon
