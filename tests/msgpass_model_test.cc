// Tests for the asynchronous message-passing model and the permutation
// layering S^per (Section 5.1): the diamond identity, the similarity chain
// across transpositions, and the mailbox reading of agree-modulo.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "relation/similarity.hpp"

namespace lacon {
namespace {

Schedule seq(std::initializer_list<ProcessId> order) {
  Schedule s;
  for (ProcessId p : order) s.push_back(SchedGroup{p, -1});
  return s;
}

Schedule with_pair(std::initializer_list<ProcessId> order, int pair_pos) {
  Schedule s;
  int pos = 0;
  auto it = order.begin();
  while (it != order.end()) {
    if (pos == pair_pos) {
      const ProcessId a = *it++;
      const ProcessId b = *it++;
      s.push_back(SchedGroup{a, b});
      pos += 2;
    } else {
      s.push_back(SchedGroup{*it++, -1});
      ++pos;
    }
  }
  return s;
}

TEST(MsgPass, PackUnpackRoundTrip) {
  for (ProcessId s = 0; s < 5; ++s) {
    for (ProcessId t = 0; t < 5; ++t) {
      const std::int64_t m = pack_message(s, t, 12345);
      EXPECT_EQ(message_sender(m), s);
      EXPECT_EQ(message_receiver(m), t);
      EXPECT_EQ(message_view(m), 12345);
    }
  }
}

TEST(MsgPass, ScheduleCountMatchesFormula) {
  auto rule = never_decide();
  for (int n : {2, 3, 4}) {
    MsgPassModel model(n, *rule);
    long long fact = 1;
    for (int i = 2; i <= n; ++i) fact *= i;
    // n! full + n! drop-last + (n-1) * n!/2 adjacent-pair actions.
    EXPECT_EQ(static_cast<long long>(model.schedules().size()),
              fact + fact + (n - 1) * fact / 2)
        << "n=" << n;
  }
}

TEST(MsgPass, DiamondIdentity) {
  // x[p1..pn][p1..p_{n-1}] == x[p1..p_{n-1}][pn, p1..p_{n-1}] — the paper's
  // reduction of the FLP diamond argument to a state equality.
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  for (StateId x0 : model.initial_states()) {
    const StateId lhs =
        model.apply_schedule(model.apply_schedule(x0, seq({0, 1, 2})),
                             seq({0, 1}));
    const StateId rhs =
        model.apply_schedule(model.apply_schedule(x0, seq({0, 1})),
                             seq({2, 0, 1}));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(MsgPass, DiamondIdentityAllPermutations) {
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const Schedule full_perms[] = {seq({0, 1, 2}), seq({1, 2, 0}),
                                 seq({2, 0, 1})};
  for (const Schedule& full : full_perms) {
    Schedule dropped = full;
    const ProcessId last = dropped.back().a;
    dropped.pop_back();
    Schedule rotated;
    rotated.push_back(SchedGroup{last, -1});
    for (const SchedGroup& g : dropped) rotated.push_back(g);
    const StateId lhs = model.apply_schedule(model.apply_schedule(x0, full),
                                             dropped);
    const StateId rhs = model.apply_schedule(model.apply_schedule(x0, dropped),
                                             rotated);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(MsgPass, SimilarityChainSequentialPairConcurrent) {
  // x[.., pk, pk+1, ..] ~s x[.., {pk,pk+1}, ..] ~s x[.., pk+1, pk, ..]
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  for (StateId x0 : model.initial_states()) {
    const StateId a = model.apply_schedule(x0, seq({0, 1, 2}));
    const StateId m = model.apply_schedule(x0, with_pair({0, 1, 2}, 0));
    const StateId b = model.apply_schedule(x0, seq({1, 0, 2}));
    // Left link differs only at process 1 (it missed 0's fresh message and
    // that message sits in its mailbox).
    EXPECT_TRUE(model.agree_modulo(a, m, 1));
    EXPECT_TRUE(similar(model, a, m));
    // Right link differs only at process 0.
    EXPECT_TRUE(model.agree_modulo(m, b, 0));
    EXPECT_TRUE(similar(model, m, b));
  }
}

TEST(MsgPass, SimilarityChainAtSecondPosition) {
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId a = model.apply_schedule(x0, seq({2, 0, 1}));
  const StateId m = model.apply_schedule(x0, with_pair({2, 0, 1}, 1));
  const StateId b = model.apply_schedule(x0, seq({2, 1, 0}));
  EXPECT_TRUE(model.agree_modulo(a, m, 1));
  EXPECT_TRUE(model.agree_modulo(m, b, 0));
}

TEST(MsgPass, FullAndDropLastAreNotSimilar) {
  // The paper's remark: x[p1..pn] and x[p1..p_{n-1}] differ both in p_n's
  // local state and in other processes' mailboxes (p_n's unsent messages),
  // so they are not similar — this is exactly where the valence-based
  // diamond argument is needed.
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  for (StateId x0 : model.initial_states()) {
    const StateId a = model.apply_schedule(x0, seq({0, 1, 2}));
    const StateId b = model.apply_schedule(x0, seq({0, 1}));
    EXPECT_FALSE(similar(model, a, b));
  }
}

TEST(MsgPass, TranspositionChainConnectsFullActions) {
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // All 6 full-permutation successors are similarity connected via the
  // pair-mediated chain.
  std::vector<StateId> full_states;
  for (const Schedule& s :
       {seq({0, 1, 2}), seq({0, 2, 1}), seq({1, 0, 2}), seq({1, 2, 0}),
        seq({2, 0, 1}), seq({2, 1, 0})}) {
    full_states.push_back(model.apply_schedule(x0, s));
  }
  // Add the pair states, which are the bridges.
  for (int pos : {0, 1}) {
    for (const auto order :
         {std::initializer_list<ProcessId>{0, 1, 2},
          std::initializer_list<ProcessId>{0, 2, 1},
          std::initializer_list<ProcessId>{1, 2, 0}}) {
      full_states.push_back(model.apply_schedule(x0, with_pair(order, pos)));
    }
  }
  std::sort(full_states.begin(), full_states.end());
  full_states.erase(std::unique(full_states.begin(), full_states.end()),
                    full_states.end());
  EXPECT_TRUE(similarity_connected(model, full_states));
}

TEST(MsgPass, DropLastStarvesExactlyOneProcess) {
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply_schedule(x0, seq({0, 1}));
  EXPECT_EQ(model.state(y).locals[2], model.state(x0).locals[2]);
  EXPECT_NE(model.state(y).locals[0], model.state(x0).locals[0]);
  EXPECT_NE(model.state(y).locals[1], model.state(x0).locals[1]);
  // The starved process's mailbox accumulates messages across layers.
  const StateId z = model.apply_schedule(y, seq({0, 1}));
  int to_2 = 0;
  for (std::int64_t m : model.state(z).env) {
    if (message_receiver(m) == 2) ++to_2;
  }
  EXPECT_EQ(to_2, 4);  // two senders, two layers
}

TEST(MsgPass, MessageContentIsPrePhaseView) {
  auto rule = never_decide();
  MsgPassModel model(2, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply_schedule(x0, seq({0, 1}));
  // Process 0's message carries its *initial* view (content fixed before
  // its phase's deliveries).
  for (std::int64_t m : model.state(y).env) {
    if (message_sender(m) == 0) {
      EXPECT_EQ(message_view(m), model.state(x0).locals[0]);
    }
  }
}

TEST(MsgPass, LayerIsDeduplicated) {
  auto rule = never_decide();
  MsgPassModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const auto& layer = model.layer(x0);
  for (std::size_t i = 1; i < layer.size(); ++i) {
    EXPECT_LT(layer[i - 1], layer[i]);
  }
  EXPECT_LE(layer.size(), model.schedules().size());
}

}  // namespace
}  // namespace lacon
