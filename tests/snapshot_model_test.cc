// Tests for the immediate-snapshot shared-memory model: snapshot atomicity,
// register persistence, IS-style similarity structure, and the
// impossibility machinery.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "engine/bivalence.hpp"
#include "engine/spec.hpp"
#include "models/snapshot/snapshot_model.hpp"
#include "relation/similarity.hpp"

namespace lacon {
namespace {

OrderedPartition blocks(
    std::initializer_list<std::initializer_list<ProcessId>> bs) {
  OrderedPartition p;
  for (const auto& b : bs) {
    ProcessSet set;
    for (ProcessId i : b) set.insert(i);
    p.push_back(set);
  }
  return p;
}

TEST(Snapshot, PartitionEnumerationOverSubsets) {
  EXPECT_EQ(ordered_partitions_of(ProcessSet::all(3)).size(), 13u);
  ProcessSet two = ProcessSet::all(3);
  two.erase(1);
  EXPECT_EQ(ordered_partitions_of(two).size(), 3u);
}

TEST(Snapshot, LayerSizeCombinesFullAndDropOne) {
  auto rule = never_decide();
  SnapshotModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // 13 full partitions + 3 * 3 drop-one partitions = 22 actions, with some
  // state coincidences possible.
  EXPECT_LE(model.layer(x0).size(), 22u);
  EXPECT_GT(model.layer(x0).size(), 10u);
}

TEST(Snapshot, BlockMembersSeeEachOtherAndPersistentValues) {
  auto rule = never_decide();
  SnapshotModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // Round 1: only {0,2} participate (1 slow), 0 and 2 in one block.
  const StateId y = model.apply_partition(x0, blocks({{0, 2}}));
  const ViewNode& v0 = model.views().node(model.state(y).locals[0]);
  // Snapshot covers all registers: 0's own, 1's (never written: kNoView),
  // and 2's fresh write.
  ASSERT_EQ(v0.obs.size(), 3u);
  EXPECT_EQ(v0.obs[1].source, 1);
  EXPECT_EQ(v0.obs[1].view, kNoView);
  EXPECT_EQ(v0.obs[2].view, model.state(x0).locals[2]);
  // 1 did not act.
  EXPECT_EQ(model.state(y).locals[1], model.state(x0).locals[1]);
}

TEST(Snapshot, RegistersPersistAcrossRounds) {
  auto rule = never_decide();
  SnapshotModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // Round 1: everyone writes. Round 2: 1 is slow; 0 still sees 1's round-1
  // register value (the stale-value bridge).
  const StateId y = model.apply_partition(x0, blocks({{0, 1, 2}}));
  const StateId z = model.apply_partition(y, blocks({{0, 2}}));
  const ViewNode& v0 = model.views().node(model.state(z).locals[0]);
  EXPECT_EQ(v0.obs[1].source, 1);
  EXPECT_EQ(v0.obs[1].view, model.state(x0).locals[1]);  // round-1 write
}

TEST(Snapshot, SingletonRefinementIsSimilarityStep) {
  auto rule = never_decide();
  SnapshotModel model(3, *rule);
  for (StateId x0 : model.initial_states()) {
    const StateId coarse = model.apply_partition(x0, blocks({{0, 1, 2}}));
    const StateId fine = model.apply_partition(x0, blocks({{0}, {1, 2}}));
    EXPECT_TRUE(model.agree_modulo(coarse, fine, 0));
    EXPECT_TRUE(similar(model, coarse, fine));
  }
}

TEST(Snapshot, FullPartitionsAreSimilarityConnectedSubset) {
  auto rule = never_decide();
  SnapshotModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  std::vector<StateId> full;
  for (const OrderedPartition& p :
       ordered_partitions_of(ProcessSet::all(3))) {
    full.push_back(model.apply_partition(x0, p));
  }
  std::sort(full.begin(), full.end());
  full.erase(std::unique(full.begin(), full.end()), full.end());
  EXPECT_TRUE(similarity_connected(model, full));
}

TEST(Snapshot, ImpossibilityMachineryRuns) {
  auto rule = min_after_round(2);
  SnapshotModel model(3, *rule);
  const TrilemmaVerdict v = consensus_trilemma(model, 3, 3);
  EXPECT_NE(v.violated, TrilemmaVerdict::Violated::kNone);

  SnapshotModel model2(3, *rule);
  ValenceEngine engine(model2, 3, Exactness::kConvergence);
  const BivalentRunResult run = extend_bivalent_run(engine, 3);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
}

TEST(Snapshot, NoFiniteFailure) {
  auto rule = never_decide();
  SnapshotModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  for (StateId y : model.layer(x0)) {
    EXPECT_TRUE(model.failed_at(y).empty());
  }
}

}  // namespace
}  // namespace lacon
