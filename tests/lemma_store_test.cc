// Tests for the cross-level lemma store (engine/lemma_store.hpp): the
// budget-vs-lookahead hit rule, the exact-facts-only filter, the merge
// semantics of publish, export/import round-trips, and the engine
// integration guarantee — a warm store never changes a verdict, it only
// removes the subtree walks that would re-prove it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "engine/explore.hpp"
#include "engine/lemma_store.hpp"
#include "engine/valence.hpp"
#include "models/iis/iis_model.hpp"
#include "runtime/stats.hpp"

namespace lacon {
namespace {

ValenceInfo exact_info(bool v0, bool v1) {
  ValenceInfo info;
  info.v0 = v0;
  info.v1 = v1;
  info.exact = true;
  return info;
}

TEST(LemmaStoreTest, HitRequiresBudgetToCoverLookahead) {
  LemmaStore store;
  store.publish({1, 2}, 3, exact_info(true, false));
  // A shallower request must fall through to its own computation: serving
  // the deeper fact would make truncated results depend on store warmth.
  EXPECT_FALSE(store.lookup({1, 2}, 0).has_value());
  EXPECT_FALSE(store.lookup({1, 2}, 2).has_value());
  const auto hit = store.lookup({1, 2}, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->v0);
  EXPECT_FALSE(hit->v1);
  EXPECT_TRUE(hit->exact);
  EXPECT_TRUE(store.lookup({1, 2}, 100).has_value());
  EXPECT_FALSE(store.lookup({9, 9}, 100).has_value());
}

TEST(LemmaStoreTest, InexactResultsAreNotLemmas) {
  LemmaStore store;
  ValenceInfo truncated;
  truncated.v0 = true;
  truncated.exact = false;
  store.publish({5, 5}, 4, truncated);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.lookup({5, 5}, 10).has_value());
}

TEST(LemmaStoreTest, RepublishKeepsCheapestProofAndFirstSet) {
  LemmaStore store;
  store.publish({7, 7}, 5, exact_info(false, true));
  store.publish({7, 7}, 2, exact_info(false, true));
  EXPECT_TRUE(store.lookup({7, 7}, 2).has_value());
  ASSERT_EQ(store.export_facts().size(), 1u);
  EXPECT_EQ(store.export_facts()[0].lookahead, 2);
  // A conflicting valence set (a signature collision, or misuse across
  // decision rules) must not clobber the original fact.
  store.publish({7, 7}, 1, exact_info(true, true));
  const auto hit = store.lookup({7, 7}, 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->v0);
  EXPECT_TRUE(hit->v1);
}

TEST(LemmaStoreTest, ExportIsSortedAndImportRoundTrips) {
  LemmaStore store;
  store.publish({3, 1}, 2, exact_info(true, false));
  store.publish({1, 9}, 1, exact_info(false, true));
  store.publish({1, 4}, 0, exact_info(true, true));
  const std::vector<LemmaStore::Fact> facts = store.export_facts();
  ASSERT_EQ(facts.size(), 3u);
  for (std::size_t i = 1; i < facts.size(); ++i) {
    EXPECT_LT(std::make_pair(facts[i - 1].sig_hi, facts[i - 1].sig_lo),
              std::make_pair(facts[i].sig_hi, facts[i].sig_lo));
  }
  LemmaStore warm;
  warm.import_facts(facts);
  EXPECT_EQ(warm.size(), 3u);
  const auto hit = warm.lookup({3, 1}, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->v0);
  EXPECT_FALSE(hit->v1);
  EXPECT_EQ(warm.export_facts().size(), facts.size());
}

// A fresh engine sharing a warm store must (i) actually hit it and (ii)
// return exactly the verdicts a cold engine computes — the store is a
// shortcut, never an oracle with different answers.
TEST(LemmaStoreTest, EngineReusesFactsAcrossHorizonsWithoutChangingVerdicts) {
  const auto rule = min_after_round(2);
  IisModel model(3, *rule);
  std::vector<StateId> all;
  for (const auto& level : reachable_by_depth(model, 2)) {
    all.insert(all.end(), level.begin(), level.end());
  }

  LemmaStore store;
  ValenceEngine warm(model, 3, Exactness::kQuiescence, &store);
  for (StateId x : all) warm.valence(x);
  EXPECT_GT(store.size(), 0u);

  auto& hits = runtime::Stats::global().counter("lemmas.hits");
  const std::uint64_t hits_before = hits.value();
  ValenceEngine reuse(model, 4, Exactness::kQuiescence, &store);
  ValenceEngine cold(model, 4, Exactness::kQuiescence);
  for (StateId x : all) {
    const ValenceInfo a = reuse.valence(x);
    const ValenceInfo b = cold.valence(x);
    EXPECT_TRUE(a.same_set(b)) << "state " << x;
    EXPECT_EQ(a.exact, b.exact) << "state " << x;
  }
  EXPECT_GT(hits.value(), hits_before);
}

}  // namespace
}  // namespace lacon
