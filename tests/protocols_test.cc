// Tests for the Tier-B protocols (FloodSet, EIG, early-deciding) under the
// synchronous simulator, including exhaustive adversary sweeps: the upper
// bounds matching Corollary 6.3, and the f+2 early-deciding curve.
#include <gtest/gtest.h>

#include "protocols/early_deciding.hpp"
#include "protocols/eig.hpp"
#include "protocols/floodset.hpp"
#include "sim/sync_sim.hpp"

namespace lacon {
namespace {

std::vector<std::vector<Value>> all_inputs(int n) {
  std::vector<std::vector<Value>> out;
  for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
    std::vector<Value> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = (bits >> i) & 1;
    out.push_back(in);
  }
  return out;
}

TEST(EigLabel, PackUnpackRoundTrip) {
  for (const EigLabel& label :
       {EigLabel{}, EigLabel{3}, EigLabel{0, 1}, EigLabel{5, 2, 7, 0}}) {
    EXPECT_EQ(unpack_label(pack_label(label)), label);
  }
}

TEST(FloodSet, FailureFreeDecidesMinEverywhere) {
  const auto factory = floodset_factory();
  for (const auto& inputs : all_inputs(4)) {
    const SyncRunResult r = run_sync(*factory, 4, 2, inputs, no_crashes());
    const Value expected = *std::min_element(inputs.begin(), inputs.end());
    for (ProcessId i = 0; i < 4; ++i) {
      ASSERT_TRUE(r.decisions[static_cast<std::size_t>(i)]);
      EXPECT_EQ(*r.decisions[static_cast<std::size_t>(i)], expected);
    }
    EXPECT_TRUE(r.outcome.agreement);
    EXPECT_TRUE(r.outcome.validity);
    EXPECT_TRUE(r.outcome.all_decided);
  }
}

// Exhaustive adversary sweep: every crash plan with at most t crashes, every
// input assignment — the simulator-level counterpart of the t-resilience
// claim. Parameterized over the three protocol factories.
class ProtocolSweep
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<RoundProtocolFactory> make() const {
    const std::string which = GetParam();
    if (which == "floodset") return floodset_factory();
    if (which == "eig") return eig_factory();
    return early_deciding_factory();
  }
};

TEST_P(ProtocolSweep, CorrectUnderEveryCrashPlanN3T1) {
  const auto factory = make();
  const int n = 3;
  const int t = 1;
  const auto plans = all_crash_plans(n, t, t + 1);
  ASSERT_GT(plans.size(), 1u);
  for (const auto& inputs : all_inputs(n)) {
    for (const CrashPlan& plan : plans) {
      const SyncRunResult r = run_sync(*factory, n, t, inputs, plan);
      EXPECT_TRUE(r.outcome.all_decided)
          << factory->name() << " undecided survivor";
      EXPECT_TRUE(r.outcome.agreement) << factory->name();
      EXPECT_TRUE(r.outcome.validity) << factory->name();
    }
  }
}

TEST_P(ProtocolSweep, CorrectUnderEveryCrashPlanN4T2) {
  const auto factory = make();
  const int n = 4;
  const int t = 2;
  for (const auto& inputs :
       {std::vector<Value>{0, 1, 1, 1}, std::vector<Value>{1, 0, 1, 0}}) {
    for (const CrashPlan& plan : all_crash_plans(n, t, t + 1)) {
      const SyncRunResult r = run_sync(*factory, n, t, inputs, plan);
      EXPECT_TRUE(r.outcome.all_decided) << factory->name();
      EXPECT_TRUE(r.outcome.agreement) << factory->name();
      EXPECT_TRUE(r.outcome.validity) << factory->name();
    }
  }
}

TEST_P(ProtocolSweep, RandomAdversaryProperty) {
  const auto factory = make();
  const int n = 5;
  const int t = 2;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const CrashPlan plan = random_crashes(n, t, t + 1, seed);
    const std::vector<Value> inputs = {1, 0, 1, 1, 0};
    const SyncRunResult r = run_sync(*factory, n, t, inputs, plan);
    EXPECT_TRUE(r.outcome.all_decided) << factory->name() << " seed " << seed;
    EXPECT_TRUE(r.outcome.agreement) << factory->name() << " seed " << seed;
    EXPECT_TRUE(r.outcome.validity) << factory->name() << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(All, ProtocolSweep,
                         ::testing::Values("floodset", "eig",
                                           "early-deciding"));

TEST(FloodSet, HidingChainForcesFullTPlus1Rounds) {
  // The value-hiding chain keeps the minimum at exactly one alive process
  // through round t, so decisions cannot stabilize earlier; FloodSet
  // decides at round t+1 by construction, and the chain shows the last
  // survivor learning the minimum only in round t.
  const int n = 5;
  for (int t = 1; t <= 3; ++t) {
    const auto factory = floodset_factory();
    std::vector<Value> inputs(n, 1);
    inputs[0] = 0;  // the hidden minimum starts at the first crasher
    const SyncRunResult r =
        run_sync(*factory, n, t, inputs, hiding_chain(n, t));
    EXPECT_TRUE(r.outcome.agreement);
    EXPECT_EQ(r.outcome.max_decision_round, t + 1);
    // The minimum did propagate through the chain: survivors decide 0.
    for (ProcessId i = t; i < n; ++i) {
      ASSERT_TRUE(r.decisions[static_cast<std::size_t>(i)]);
      EXPECT_EQ(*r.decisions[static_cast<std::size_t>(i)], 0) << "t=" << t;
    }
  }
}

TEST(EarlyDeciding, FailureFreeDecidesInOneCleanRound) {
  const auto factory = early_deciding_factory();
  const SyncRunResult r =
      run_sync(*factory, 4, 2, {1, 0, 1, 1}, no_crashes());
  EXPECT_TRUE(r.outcome.agreement);
  // Round 1 is clean (heard everyone, same as the implicit round 0).
  EXPECT_EQ(r.outcome.max_decision_round, 1);
}

TEST(EarlyDeciding, DecisionRoundBoundedByFPlus2) {
  const auto factory = early_deciding_factory();
  const int n = 5;
  const int t = 3;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const CrashPlan plan = random_crashes(n, t, t + 1, seed);
    const int f = static_cast<int>(plan.size());
    const SyncRunResult r =
        run_sync(*factory, n, t, {1, 1, 0, 1, 1}, plan);
    EXPECT_TRUE(r.outcome.agreement) << "seed " << seed;
    EXPECT_LE(r.outcome.max_decision_round, std::min(f + 2, t + 1))
        << "seed " << seed << " f=" << f;
  }
}

TEST(EarlyDeciding, ViolatesUniformAgreementSomewhere) {
  // Plain vs uniform consensus: early deciding solves *plain* consensus
  // (agreement among survivors) but a process can decide in a clean round
  // and crash holding a value nobody else ever has — a uniform-agreement
  // violation. FloodSet (always t+1 rounds) never exhibits this at t=1.
  // Two crashes are needed for the violation (the early decider must
  // itself die), so t = 2.
  const int n = 4;
  const int t = 2;
  const std::vector<Value> inputs = {0, 1, 1, 1};
  auto judge_uniform = [&](const RoundProtocolFactory& factory) {
    for (const CrashPlan& plan : all_crash_plans(n, t, t + 1)) {
      const SyncRunResult r = run_sync(factory, n, t, inputs, plan);
      // Uniform agreement: ALL decisions (crashed included) equal.
      std::optional<Value> seen;
      for (const auto& d : r.decisions) {
        if (!d) continue;
        if (seen && *seen != *d) return false;
        seen = *d;
      }
    }
    return true;
  };
  EXPECT_FALSE(judge_uniform(*early_deciding_factory()));
  EXPECT_TRUE(judge_uniform(*floodset_factory()));
}

TEST(Eig, TreeGrowsAlongRelayChains) {
  const auto factory = eig_factory();
  const SyncRunResult r = run_sync(*factory, 3, 1, {0, 1, 1}, no_crashes());
  EXPECT_TRUE(r.outcome.all_decided);
  // Run a manual instance to look inside the tree.
  Eig eig(3, 1, 0, 0);
  std::vector<std::optional<Message>> round1(3);
  Eig p1(3, 1, 1, 1), p2(3, 1, 2, 1);
  round1[0] = *eig.broadcast(1);
  round1[1] = *p1.broadcast(1);
  round1[2] = *p2.broadcast(1);
  eig.receive(1, round1);
  EXPECT_EQ(eig.tree().size(), 3u);  // [0], [1], [2]
  EXPECT_EQ(eig.tree().at(EigLabel{1}), 1);
  std::vector<std::optional<Message>> round2(3);
  round2[0] = *eig.broadcast(2);
  round2[1] = *p1.broadcast(2);
  p1.receive(1, round1);
  round2[1] = *p1.broadcast(2);
  eig.receive(2, round2);
  // Level-2 nodes from p1's relays: [0,1] and [2,1].
  EXPECT_TRUE(eig.tree().contains(EigLabel{0, 1}));
  EXPECT_TRUE(eig.tree().contains(EigLabel{2, 1}));
}

TEST(Eig, TreeSizeMatchesTheCombinatorialBound) {
  // After r failure-free rounds the tree holds exactly
  // sum_{k=1..r} n!/(n-k)! nodes: every label of distinct ids up to
  // length r.
  const int n = 4;
  const int t = 3;
  std::vector<Eig> procs;
  for (ProcessId i = 0; i < n; ++i) procs.emplace_back(n, t, i, i % 2);
  long long expected = 0;
  long long perms = 1;
  for (int round = 1; round <= t + 1; ++round) {
    std::vector<std::optional<Message>> sent(static_cast<std::size_t>(n));
    for (ProcessId i = 0; i < n; ++i) {
      sent[static_cast<std::size_t>(i)] =
          procs[static_cast<std::size_t>(i)].broadcast(round);
    }
    for (ProcessId i = 0; i < n; ++i) {
      procs[static_cast<std::size_t>(i)].receive(round, sent);
    }
    perms *= (n - round + 1);
    expected += perms;  // n! / (n-round)!
    for (ProcessId i = 0; i < n; ++i) {
      EXPECT_EQ(static_cast<long long>(
                    procs[static_cast<std::size_t>(i)].tree().size()),
                expected)
          << "round " << round << " process " << i;
    }
  }
}

TEST(Outcome, JudgeDetectsDisagreementAndInvalidity) {
  const std::vector<std::optional<Value>> decisions = {0, 1, std::nullopt};
  const std::vector<int> rounds = {1, 2, 0};
  const std::vector<Value> inputs = {0, 1, 1};
  const std::vector<bool> crashed = {false, false, true};
  const ConsensusOutcome o = judge_outcome(decisions, rounds, inputs, crashed);
  EXPECT_TRUE(o.all_decided);  // the undecided process crashed
  EXPECT_FALSE(o.agreement);
  EXPECT_TRUE(o.validity);
  EXPECT_EQ(o.max_decision_round, 2);
  // An out-of-domain decision breaks validity.
  const ConsensusOutcome o2 = judge_outcome({5, 5, 5}, {1, 1, 1}, inputs,
                                            {false, false, false});
  EXPECT_FALSE(o2.validity);
  EXPECT_TRUE(o2.agreement);
}

}  // namespace
}  // namespace lacon
