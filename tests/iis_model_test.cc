// Tests for the iterated immediate snapshot model: ordered-partition
// enumeration, immediate-snapshot semantics, similarity structure, and the
// impossibility machinery running on it.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "engine/bivalence.hpp"
#include "engine/spec.hpp"
#include "models/iis/iis_model.hpp"
#include "relation/similarity.hpp"

namespace lacon {
namespace {

OrderedPartition blocks(std::initializer_list<std::initializer_list<ProcessId>> bs) {
  OrderedPartition p;
  for (const auto& b : bs) {
    ProcessSet set;
    for (ProcessId i : b) set.insert(i);
    p.push_back(set);
  }
  return p;
}

TEST(Iis, OrderedPartitionCountsAreFubiniNumbers) {
  EXPECT_EQ(all_ordered_partitions(2).size(), 3u);
  EXPECT_EQ(all_ordered_partitions(3).size(), 13u);
  EXPECT_EQ(all_ordered_partitions(4).size(), 75u);
}

TEST(Iis, PartitionsCoverEveryProcessExactlyOnce) {
  for (const OrderedPartition& p : all_ordered_partitions(3)) {
    ProcessSet seen;
    int total = 0;
    for (const ProcessSet& block : p) {
      EXPECT_TRUE((seen & block).empty());
      seen = seen | block;
      total += block.size();
    }
    EXPECT_EQ(total, 3);
    EXPECT_EQ(seen, ProcessSet::all(3));
  }
}

TEST(Iis, BlockMembersSeeEachOther) {
  auto rule = never_decide();
  IisModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // {0,1} first, then {2}: 0 and 1 see each other but not 2; 2 sees all.
  const StateId y = model.apply_partition(x0, blocks({{0, 1}, {2}}));
  const ViewNode& v0 = model.views().node(model.state(y).locals[0]);
  ASSERT_EQ(v0.obs.size(), 1u);
  EXPECT_EQ(v0.obs[0].source, 1);
  const ViewNode& v2 = model.views().node(model.state(y).locals[2]);
  EXPECT_EQ(v2.obs.size(), 2u);
}

TEST(Iis, SoloFirstProcessSeesNothing) {
  auto rule = never_decide();
  IisModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply_partition(x0, blocks({{1}, {0, 2}}));
  const ViewNode& v1 = model.views().node(model.state(y).locals[1]);
  EXPECT_TRUE(v1.obs.empty());
}

TEST(Iis, SingletonRefinementIsSimilarityStep) {
  // Splitting a process solo-first off a block changes only that process's
  // view (the others in the block saw it anyway — immediate snapshot).
  auto rule = never_decide();
  IisModel model(3, *rule);
  for (StateId x0 : model.initial_states()) {
    const StateId coarse = model.apply_partition(x0, blocks({{0, 1, 2}}));
    const StateId fine = model.apply_partition(x0, blocks({{0}, {1, 2}}));
    EXPECT_TRUE(model.agree_modulo(coarse, fine, 0));
    EXPECT_TRUE(similar(model, coarse, fine));
  }
}

TEST(Iis, LayersAreSimilarityConnected) {
  auto rule = never_decide();
  IisModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  EXPECT_TRUE(similarity_connected(model, model.layer(x0)));
  const StateId x1 = model.layer(x0)[1];
  EXPECT_TRUE(similarity_connected(model, model.layer(x1)));
}

TEST(Iis, EveryProcessActsEveryLayer) {
  auto rule = never_decide();
  IisModel model(3, *rule);
  StateId x = model.initial_states().front();
  for (int d = 1; d <= 3; ++d) {
    x = model.layer(x).front();
    for (ViewId v : model.state(x).locals) {
      EXPECT_EQ(model.views().node(v).round, d);
    }
  }
  EXPECT_TRUE(model.failed_at(x).empty());
}

TEST(Iis, ImpossibilityMachineryRuns) {
  // The min rule violates agreement in IIS (a solo-first 1-holder decides 1
  // while a later process that saw the 0 decides 0), and the bivalent-run
  // construction extends — the wait-free impossibility in our terms.
  auto rule = min_after_round(2);
  IisModel model(3, *rule);
  const SpecReport report = check_consensus_spec(model, 3);
  EXPECT_TRUE(report.agreement.has_value());

  ValenceEngine engine(model, 3);
  const BivalentRunResult run = extend_bivalent_run(engine, 4);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
}

TEST(Iis, UnanimousStatesDecideCorrectly) {
  auto rule = min_after_round(1);
  IisModel model(3, *rule);
  const StateId x0 = model.initial_states().front();  // all-zero inputs
  const StateId y = model.layer(x0).front();
  for (Value d : model.state(y).decisions) EXPECT_EQ(d, 0);
}

}  // namespace
}  // namespace lacon
