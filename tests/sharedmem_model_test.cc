// Tests for the shared-memory model M^rw and the synchronic layering S^rw
// (Section 5.1), including the valence-bridge state identity from the proof
// of Lemma 5.3: y = x(j,n)(j,A) and y' = x(j,A)(j,0) agree modulo j.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "models/sharedmem/sharedmem_model.hpp"
#include "relation/similarity.hpp"

namespace lacon {
namespace {

TEST(SharedMem, RegistersStartUnwritten) {
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  for (std::int64_t reg : model.state(x0).env) {
    EXPECT_EQ(reg, static_cast<std::int64_t>(kNoView));
  }
}

TEST(SharedMem, TimedActionWritesAllRegisters) {
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply_timed(x0, 1, 2);
  const StateRef sx = model.state(x0);
  const StateRef sy = model.state(y);
  // Registers hold the pre-phase views (the write precedes the reads).
  for (ProcessId i = 0; i < 3; ++i) {
    EXPECT_EQ(sy.env[static_cast<std::size_t>(i)],
              static_cast<std::int64_t>(sx.locals[static_cast<std::size_t>(i)]));
  }
}

TEST(SharedMem, AbsentProcessUnchanged) {
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const StateId y = model.apply_absent(x0, 2);
  const StateRef sx = model.state(x0);
  const StateRef sy = model.state(y);
  EXPECT_EQ(sy.locals[2], sx.locals[2]);          // no local phase
  EXPECT_EQ(sy.env[2], sx.env[2]);                // register untouched
  EXPECT_NE(sy.locals[0], sx.locals[0]);          // proper processes moved
  EXPECT_NE(sy.locals[1], sx.locals[1]);
}

TEST(SharedMem, TimedZeroIsIndependentOfJ) {
  auto rule = never_decide();
  SharedMemModel model(4, *rule);
  const StateId x0 = model.initial_states().back();
  const StateId base = model.apply_timed(x0, 0, 0);
  for (ProcessId j = 1; j < 4; ++j) {
    EXPECT_EQ(model.apply_timed(x0, j, 0), base);
  }
}

TEST(SharedMem, EarlyReadersMissTheSlowWrite) {
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  // (j=0, k=n): every proper process reads in R1 and misses 0's W2 write;
  // only 0 itself reads in R2 and sees it.
  const StateId y = model.apply_timed(x0, 0, 3);
  const StateRef sx = model.state(x0);
  const StateRef sy = model.state(y);
  const ViewNode& v1 = model.views().node(sy.locals[1]);
  bool saw_stale_v0 = false;
  for (const Obs& o : v1.obs) {
    if (o.source == 0) saw_stale_v0 = (o.view == kNoView);  // unwritten V_0
  }
  EXPECT_TRUE(saw_stale_v0);
  const ViewNode& v0 = model.views().node(sy.locals[0]);
  bool saw_fresh_v0 = false;
  for (const Obs& o : v0.obs) {
    if (o.source == 0) saw_fresh_v0 = (o.view == sx.locals[0]);
  }
  EXPECT_TRUE(saw_fresh_v0);
}

TEST(SharedMem, Lemma53BridgeStatesAgreeModuloJ) {
  auto rule = never_decide();
  for (int n : {2, 3, 4}) {
    SharedMemModel model(n, *rule);
    for (StateId x0 : {model.initial_states().front(),
                       model.initial_states().back()}) {
      for (ProcessId j = 0; j < n; ++j) {
        const StateId y = model.apply_absent(model.apply_timed(x0, j, n), j);
        const StateId yp = model.apply_timed(model.apply_absent(x0, j), j, 0);
        EXPECT_NE(y, yp);  // j's own view differs ...
        EXPECT_TRUE(model.agree_modulo(y, yp, j))
            << "n=" << n << " j=" << j;  // ... but nothing else does
        EXPECT_TRUE(similar(model, y, yp));
      }
    }
  }
}

TEST(SharedMem, LayerSizeAndComposition) {
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  const auto& layer = model.layer(x0);
  // n(n+1) timed actions + n absent actions, with the (j,0) states
  // coinciding across j (and possibly further coincidences).
  EXPECT_LE(layer.size(), static_cast<std::size_t>(3 * 4 + 3));
  EXPECT_GT(layer.size(), static_cast<std::size_t>(3));
}

TEST(SharedMem, TimedSubsetOfLayerIsSimilarityConnected) {
  // The proof of Lemma 5.3 shows the subset Y = {x(j,k)} is similarity
  // connected; the absent states are bridged by valence only.
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  std::vector<StateId> Y;
  for (ProcessId j = 0; j < 3; ++j) {
    for (int k = 0; k <= 3; ++k) Y.push_back(model.apply_timed(x0, j, k));
  }
  std::sort(Y.begin(), Y.end());
  Y.erase(std::unique(Y.begin(), Y.end()), Y.end());
  EXPECT_TRUE(similarity_connected(model, Y));
}

TEST(SharedMem, AtMostOneProcessSkipsEachRound) {
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  for (StateId y : model.layer(x0)) {
    int stayed = 0;
    for (ProcessId i = 0; i < 3; ++i) {
      if (model.state(y).locals[static_cast<std::size_t>(i)] ==
          model.state(x0).locals[static_cast<std::size_t>(i)]) {
        ++stayed;
      }
    }
    EXPECT_LE(stayed, 1);  // the S^rw-runs are fair
  }
}

TEST(SharedMem, AlmostSynchronousRoundKnowledge) {
  // The paper's "strongest explicit FLP" remark: in the S^rw submodel, in
  // every round at least n-1 processes perform a full phase, so under the
  // full-information protocol at least n-1 processes always know the
  // current virtual round number (their view round equals the layer depth).
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  std::vector<StateId> frontier = model.initial_states();
  for (int depth = 1; depth <= 3; ++depth) {
    std::vector<StateId> next;
    for (StateId x : frontier) {
      for (StateId y : model.layer(x)) next.push_back(y);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    for (StateId y : next) {
      int at_current_round = 0;
      for (ViewId v : model.state(y).locals) {
        if (model.views().node(v).round == depth) ++at_current_round;
      }
      EXPECT_GE(at_current_round, 2) << "depth " << depth;
    }
    // Follow only the all-proper successors to keep the sweep bounded while
    // still covering every action at the final depth.
    frontier.clear();
    for (StateId y : next) {
      bool all_current = true;
      for (ViewId v : model.state(y).locals) {
        if (model.views().node(v).round != depth) all_current = false;
      }
      if (all_current) frontier.push_back(y);
    }
  }
}

TEST(SharedMem, NoFiniteFailure) {
  auto rule = never_decide();
  SharedMemModel model(3, *rule);
  const StateId x0 = model.initial_states().front();
  EXPECT_TRUE(model.failed_at(x0).empty());
  for (StateId y : model.layer(x0)) EXPECT_TRUE(model.failed_at(y).empty());
}

}  // namespace
}  // namespace lacon
