// Tests for the valence engine (Section 3): exactness, bivalence,
// shared-valence graphs and the constructive Lemma 3.4.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "engine/valence.hpp"
#include "models/mobile/mobile_model.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/sharedmem/sharedmem_model.hpp"
#include "models/synchronous/sync_model.hpp"

namespace lacon {
namespace {

StateId initial_with_inputs(LayeredModel& model,
                            const std::vector<Value>& inputs) {
  for (StateId s : model.initial_states()) {
    bool match = true;
    for (ProcessId i = 0; i < model.n(); ++i) {
      if (model.views().node(model.state(s).locals[static_cast<std::size_t>(i)])
              .input != inputs[static_cast<std::size_t>(i)]) {
        match = false;
      }
    }
    if (match) return s;
  }
  ADD_FAILURE() << "input assignment not found";
  return 0;
}

TEST(Valence, UnanimousInitialStatesAreUnivalent) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 3);
  const StateId all0 = initial_with_inputs(model, {0, 0, 0});
  const StateId all1 = initial_with_inputs(model, {1, 1, 1});
  const ValenceInfo v0 = engine.valence(all0);
  EXPECT_TRUE(v0.exact);
  EXPECT_TRUE(v0.univalent());
  EXPECT_EQ(v0.value(), 0);
  const ValenceInfo v1 = engine.valence(all1);
  EXPECT_TRUE(v1.univalent());
  EXPECT_EQ(v1.value(), 1);
}

TEST(Valence, MixedInitialStateIsBivalentInMobileModel) {
  // With one mobile failure the environment can hide the 0-input (silence
  // its holder) or reveal it, so a mixed state has both futures.
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 3);
  const StateId mixed = initial_with_inputs(model, {0, 1, 1});
  const ValenceInfo v = engine.valence(mixed);
  EXPECT_TRUE(v.bivalent());
}

TEST(Valence, QuiescentStateHasExactValence) {
  auto rule = min_after_round(1);
  MobileModel model(3, *rule);
  const StateId x0 = initial_with_inputs(model, {1, 1, 1});
  const StateId y = model.layer(x0).front();
  EXPECT_TRUE(quiescent(model, y));
  ValenceEngine engine(model, 0);  // no lookahead needed when quiescent
  const ValenceInfo v = engine.valence(y);
  EXPECT_TRUE(v.exact);
  EXPECT_TRUE(v.univalent());
}

TEST(Valence, HorizonZeroOnUndecidedStateIsInexact) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 0);
  const ValenceInfo v = engine.valence(model.initial_states().front());
  EXPECT_FALSE(v.exact);
  EXPECT_FALSE(v.v0);
  EXPECT_FALSE(v.v1);
}

TEST(Valence, MonotoneInHorizon) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  const StateId mixed = initial_with_inputs(model, {0, 1, 1});
  ValenceEngine shallow(model, 1);
  ValenceEngine deep(model, 3);
  const ValenceInfo a = shallow.valence(mixed);
  const ValenceInfo b = deep.valence(mixed);
  EXPECT_LE(a.v0, b.v0);
  EXPECT_LE(a.v1, b.v1);
}

TEST(Valence, ConvergenceModeMarksStableSetsExact) {
  auto rule = min_after_round(2);
  SharedMemModel model(3, *rule);
  ValenceEngine engine(model, 3, Exactness::kConvergence);
  for (StateId x : model.initial_states()) {
    const ValenceInfo v = engine.valence(x);
    EXPECT_TRUE(v.exact) << "state " << x;
    EXPECT_TRUE(v.v0 || v.v1);
  }
}

TEST(Valence, SharedValenceAndGraph) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 3);
  const StateId all0 = initial_with_inputs(model, {0, 0, 0});
  const StateId all1 = initial_with_inputs(model, {1, 1, 1});
  const StateId mixed = initial_with_inputs(model, {0, 1, 1});
  EXPECT_FALSE(engine.shared_valence(all0, all1));
  EXPECT_TRUE(engine.shared_valence(all0, mixed));  // mixed is bivalent
  EXPECT_TRUE(engine.shared_valence(all1, mixed));
  EXPECT_TRUE(engine.valence_connected({all0, mixed, all1}));
  EXPECT_FALSE(engine.valence_connected({all0, all1}));
}

TEST(Valence, FindBivalentReturnsFirstBivalent) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 3);
  const StateId all0 = initial_with_inputs(model, {0, 0, 0});
  const StateId mixed = initial_with_inputs(model, {1, 0, 1});
  const auto found = engine.find_bivalent({all0, mixed});
  ASSERT_TRUE(found);
  EXPECT_EQ(*found, mixed);
  EXPECT_FALSE(engine.find_bivalent({all0}));
}

TEST(Valence, SyncModelStateWithTFailuresIsUnivalent) {
  // Proof of Lemma 6.2: a state with t failed processes has a unique
  // S^t extension, hence is univalent.
  auto rule = min_after_round(3);
  SyncModel model(3, 1, *rule);
  ValenceEngine engine(model, 4);
  const StateId mixed = initial_with_inputs(model, {0, 1, 1});
  const StateId y = model.apply(mixed, 0, 3);  // crash the 0-holder
  ASSERT_EQ(model.failed_at(y).size(), 1);
  const ValenceInfo v = engine.valence(y);
  EXPECT_TRUE(v.exact);
  EXPECT_TRUE(v.univalent());
}

TEST(Valence, MsgPassMixedInitialIsBivalent) {
  auto rule = min_after_round(2);
  MsgPassModel model(3, *rule);
  ValenceEngine engine(model, 3, Exactness::kConvergence);
  const StateId mixed = initial_with_inputs(model, {0, 1, 1});
  EXPECT_TRUE(engine.valence(mixed).bivalent());
}

TEST(Valence, DecidedValencesReadsNonFailedOnly) {
  auto rule = min_after_round(1);
  SyncModel model(3, 1, *rule);
  const StateId x0 = initial_with_inputs(model, {0, 1, 1});
  const StateId y = model.apply(x0, 0, 3);  // 0 crashes; survivors decide 1
  const ValenceInfo v = decided_valences(model, y);
  EXPECT_FALSE(v.v0);  // 0's own decision does not witness, it is failed
  EXPECT_TRUE(v.v1);
}

}  // namespace
}  // namespace lacon
