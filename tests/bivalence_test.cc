// Tests for the bivalent-run constructor — the executable Theorem 4.2 — in
// all three 1-resilient models, plus the spec checker / trilemma verdicts.
#include <gtest/gtest.h>

#include "core/decision_rule.hpp"
#include "engine/bivalence.hpp"
#include "engine/spec.hpp"
#include "models/mobile/mobile_model.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/sharedmem/sharedmem_model.hpp"
#include "models/synchronous/sync_model.hpp"

namespace lacon {
namespace {

TEST(BivalentRun, MobileModelExtendsIndefinitely) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 3);
  const BivalentRunResult run = extend_bivalent_run(engine, 8);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
  EXPECT_EQ(run.run.size(), 9u);
  // Every state on the run really is bivalent.
  for (StateId x : run.run) {
    EXPECT_TRUE(engine.valence(x).bivalent());
  }
  // Consecutive states are layer successors.
  for (std::size_t i = 1; i < run.run.size(); ++i) {
    const auto& layer = model.layer(run.run[i - 1]);
    EXPECT_NE(std::find(layer.begin(), layer.end(), run.run[i]), layer.end());
  }
}

TEST(BivalentRun, SharedMemoryModelExtends) {
  auto rule = min_after_round(2);
  SharedMemModel model(3, *rule);
  ValenceEngine engine(model, 3, Exactness::kConvergence);
  const BivalentRunResult run = extend_bivalent_run(engine, 5);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
}

TEST(BivalentRun, MessagePassingModelExtends) {
  auto rule = min_after_round(2);
  MsgPassModel model(3, *rule);
  ValenceEngine engine(model, 3, Exactness::kConvergence);
  const BivalentRunResult run = extend_bivalent_run(engine, 4);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
}

TEST(BivalentRun, NeverDecideHasNoBivalentInitial) {
  // Without any decisions there are no valences at all, so the construction
  // reports the precise failure instead of a run.
  auto rule = never_decide();
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 3);
  const BivalentRunResult run = extend_bivalent_run(engine, 3);
  EXPECT_FALSE(run.complete);
  EXPECT_EQ(run.stuck_reason, "no bivalent initial state");
}

TEST(BivalentRun, FromGivenState) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  ValenceEngine engine(model, 3);
  const auto start = engine.find_bivalent(model.initial_states());
  ASSERT_TRUE(start);
  const BivalentRunResult run = extend_bivalent_run_from(engine, *start, 3);
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.run.front(), *start);
}

TEST(BivalentRun, SyncModelChainLengthTMinusOne) {
  // Lemma 6.1 with f = 0: a bivalent chain of t-1 layers exists; afterwards
  // (Lemma 6.2) at least one more undecided state exists in the next layer.
  const int n = 4;
  const int t = 2;
  auto rule = min_after_round(t + 1);
  SyncModel model(n, t, *rule);
  ValenceEngine engine(model, t + 2);
  const BivalentRunResult run = extend_bivalent_run(engine, t - 1);
  EXPECT_TRUE(run.complete) << run.stuck_reason;
}

TEST(SpecChecker, MinRuleInMobileViolatesAgreementOnly) {
  auto rule = min_after_round(2);
  MobileModel model(3, *rule);
  const SpecReport report = check_consensus_spec(model, 3);
  EXPECT_TRUE(report.agreement.has_value());
  EXPECT_FALSE(report.validity.has_value());
  ASSERT_TRUE(report.agreement);
  EXPECT_NE(report.agreement->p, report.agreement->q);
}

TEST(SpecChecker, FloodSetRuleInSyncModelIsCorrect) {
  // In the t-resilient synchronous model, min-after-round-(t+1) *is* a
  // correct consensus protocol (FloodSet): no violations, full quiescence.
  const int n = 3;
  const int t = 1;
  auto rule = min_after_round(t + 1);
  SyncModel model(n, t, *rule);
  const SpecReport report = check_consensus_spec(model, t + 1);
  EXPECT_FALSE(report.agreement.has_value());
  EXPECT_FALSE(report.validity.has_value());
  EXPECT_TRUE(report.all_quiesce);
}

TEST(SpecChecker, FloodSetTooEarlyViolatesAgreement) {
  // Deciding after only t rounds is exactly what Corollary 6.3 forbids.
  const int n = 3;
  const int t = 1;
  auto rule = min_after_round(t);
  SyncModel model(n, t, *rule);
  const SpecReport report = check_consensus_spec(model, t + 1);
  EXPECT_TRUE(report.agreement.has_value());
}

TEST(Trilemma, SyncModelCorrectProtocolPasses) {
  const int n = 3;
  const int t = 1;
  auto rule = min_after_round(t + 1);
  SyncModel model(n, t, *rule);
  const TrilemmaVerdict v = consensus_trilemma(model, t + 2, t + 2);
  EXPECT_EQ(v.violated, TrilemmaVerdict::Violated::kNone) << v.witness;
}

TEST(Trilemma, EveryCandidateFailsInAsyncModels) {
  struct Candidate {
    std::unique_ptr<DecisionRule> rule;
  };
  std::vector<std::unique_ptr<DecisionRule>> rules;
  rules.push_back(min_after_round(2));
  rules.push_back(own_input_after_round(1));
  rules.push_back(majority_after_round(2));
  for (auto& rule : rules) {
    SharedMemModel model(3, *rule);
    const TrilemmaVerdict v = consensus_trilemma(model, 3, 3);
    EXPECT_NE(v.violated, TrilemmaVerdict::Violated::kNone)
        << rule->name() << ": " << v.witness;
  }
}

TEST(Trilemma, SafeButNonDecidingRuleViolatesDecision) {
  // unanimity-only (deadline never reached within the explored window is
  // not what we test; instead use never-decide, which is trivially safe and
  // never decides).
  auto rule = never_decide();
  MobileModel model(3, *rule);
  const TrilemmaVerdict v = consensus_trilemma(model, 3, 3);
  EXPECT_EQ(v.violated, TrilemmaVerdict::Violated::kDecision);
}

}  // namespace
}  // namespace lacon
