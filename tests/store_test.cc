// lacon::store — snapshot round-trips, rejection paths and env knobs.
//
// The round-trip contract under test (ISSUE: snapshot lossless for n <= 8):
// save a model after analysis, load into a fresh model, and (i) every
// restored object keeps its stored id, (ii) content hashes match position
// by position, (iii) re-running the analysis interns nothing new — the
// arena miss counters stay put while "arena.*_restored" carry the replayed
// population, (iv) canonical analysis output is identical. Rejection paths:
// truncated files, flipped bytes, wrong version, wrong model identity,
// non-empty target — each with its typed Status, never a crash (these run
// under ASan in ci.sh like every other test).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/reports.hpp"
#include "core/sym.hpp"
#include "engine/explore.hpp"
#include "engine/lemma_store.hpp"
#include "engine/valence.hpp"
#include "models/iis/iis_model.hpp"
#include "relation/similarity.hpp"
#include "runtime/stats.hpp"
#include "store/env.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace lacon {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lacon_store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

struct Instance {
  std::unique_ptr<DecisionRule> rule;
  std::unique_ptr<LayeredModel> model;
  std::unique_ptr<ValenceEngine> engine;
};

Instance make_instance(ModelKind kind, int n, int t, int horizon) {
  Instance inst;
  inst.rule = min_after_round(kind == ModelKind::kSync ? t + 1 : 2);
  inst.model = make_model(kind, n, t, *inst.rule);
  inst.engine = std::make_unique<ValenceEngine>(*inst.model, horizon,
                                                default_exactness(kind));
  return inst;
}

// Explores, classifies and sweeps similarity so the snapshot has a layer
// cache, a memo and fingerprint rows to carry.
std::vector<StateId> analyze(Instance& inst, int depth) {
  const auto levels = reachable_by_depth(*inst.model, depth);
  const std::vector<StateId>& frontier = levels.back();
  inst.engine->classify_all(frontier);
  similarity_graph(*inst.model, frontier);
  return frontier;
}

std::vector<std::uint64_t> state_hashes(const LayeredModel& model) {
  std::vector<std::uint64_t> out;
  out.reserve(model.num_states());
  for (std::size_t id = 0; id < model.num_states(); ++id) {
    out.push_back(StateArena::content_hash(model.state(static_cast<StateId>(id))));
  }
  return out;
}

std::vector<std::uint64_t> view_hashes(const LayeredModel& model) {
  std::vector<std::uint64_t> out;
  out.reserve(model.num_views());
  for (std::size_t id = 0; id < model.num_views(); ++id) {
    out.push_back(ViewArena::content_hash(model.views().node(static_cast<ViewId>(id))));
  }
  return out;
}

TEST_F(StoreTest, RoundTripPreservesContentAndIds) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  analyze(cold, 2);
  const std::string file = path("mobile.store");
  ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

  auto warm = make_instance(ModelKind::kMobile, 3, 1, 3);
  const store::Result r = store::load(*warm.model, file, warm.engine.get());
  ASSERT_TRUE(r.ok()) << r.detail;

  ASSERT_EQ(warm.model->num_states(), cold.model->num_states());
  ASSERT_EQ(warm.model->num_views(), cold.model->num_views());
  // Position-by-position content hashes: id i names the same content.
  EXPECT_EQ(state_hashes(*warm.model), state_hashes(*cold.model));
  EXPECT_EQ(view_hashes(*warm.model), view_hashes(*cold.model));
}

// PR-4/§13 invariant: the padding halves of odd-n packed locals/decisions
// words are zero at intern time AND after a snapshot restore (restore goes
// through the same intern path). The SIMD kernels may read whole packed
// words, so a restore that left stale bytes in the padding lane would make
// pool-word comparisons diverge from lane-exact semantics.
TEST_F(StoreTest, RestoredOddNStatesKeepZeroedPadding) {
  constexpr std::size_t kN = 3;  // odd: one padding lane per packed array
  auto cold = make_instance(ModelKind::kMobile, kN, 1, 3);
  analyze(cold, 2);
  const std::string file = path("padding.store");
  ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

  auto warm = make_instance(ModelKind::kMobile, kN, 1, 3);
  const store::Result r = store::load(*warm.model, file, warm.engine.get());
  ASSERT_TRUE(r.ok()) << r.detail;
  ASSERT_GT(warm.model->num_states(), 0u);
  for (std::size_t id = 0; id < warm.model->num_states(); ++id) {
    const StateRef s = warm.model->state(static_cast<StateId>(id));
    ASSERT_EQ(s.locals.size(), kN);
    // Lane kN is the high half of the last packed word — one past the span
    // but inside the pool allocation ((n+1)/2 whole words per array).
    const auto* locals32 =
        reinterpret_cast<const std::uint32_t*>(s.locals.data());
    const auto* decisions32 =
        reinterpret_cast<const std::uint32_t*>(s.decisions.data());
    EXPECT_EQ(locals32[kN], 0u) << "state " << id;
    EXPECT_EQ(decisions32[kN], 0u) << "state " << id;
  }
}

TEST_F(StoreTest, WarmAnalysisInternsNothingNew) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  analyze(cold, 2);
  const std::string file = path("warm.store");
  ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

  auto& stats = runtime::Stats::global();
  auto warm = make_instance(ModelKind::kMobile, 3, 1, 3);
  ASSERT_TRUE(store::load(*warm.model, file, warm.engine.get()).ok());

  const std::uint64_t restored = stats.counter("arena.state_restored").value();
  EXPECT_GE(restored, cold.model->num_states());

  const std::uint64_t misses_before =
      stats.counter("arena.state_misses").value();
  const std::uint64_t view_misses_before =
      stats.counter("arena.view_misses").value();
  const std::uint64_t hits_before = stats.counter("arena.state_hits").value();

  // The full analysis replays as hits against the restored index.
  const auto frontier = analyze(warm, 2);
  EXPECT_EQ(stats.counter("arena.state_misses").value(), misses_before);
  EXPECT_EQ(stats.counter("arena.view_misses").value(), view_misses_before);
  EXPECT_GT(stats.counter("arena.state_hits").value(), hits_before);
  EXPECT_EQ(warm.model->num_states(), cold.model->num_states());

  // Valence answers agree entry for entry (memo was imported).
  const auto cold_frontier = analyze(cold, 2);
  ASSERT_EQ(frontier.size(), cold_frontier.size());
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const ValenceInfo a = warm.engine->valence(frontier[i]);
    const ValenceInfo b = cold.engine->valence(cold_frontier[i]);
    EXPECT_EQ(a.v0, b.v0);
    EXPECT_EQ(a.v1, b.v1);
    EXPECT_EQ(a.exact, b.exact);
  }
}

// --- mmap zero-copy loading (LACON_MMAP, FORMATS.md "Alignment") ---
//
// The contract under test: a mapped load and a streaming load of the same
// snapshot are INDISTINGUISHABLE to every consumer — same ids, same content
// hashes, same analysis output, zero re-interns — the only difference being
// where the flat state words live (the mapping vs the arena pool). Even n
// adopts in place ("arena.state_mapped" counts the adoptions); odd n, a
// failed map and LACON_MMAP=off all fall back to the streaming decode with
// no behavior change.

TEST_F(StoreTest, MmapAndStreamingLoadsAreEquivalent) {
  constexpr int kN = 4;  // even: disk records match the pool layout
  auto cold = make_instance(ModelKind::kMobile, kN, 1, 3);
  analyze(cold, 2);
  const std::string file = path("mmap.store");
  ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

  auto& stats = runtime::Stats::global();
  const std::uint64_t mapped_before =
      stats.counter("arena.state_mapped").value();
  const std::uint64_t mmap_loads_before =
      stats.counter("store.mmap_loads").value();

  ::setenv("LACON_MMAP", "on", 1);
  auto warm_map = make_instance(ModelKind::kMobile, kN, 1, 3);
  const store::Result rm = store::load(*warm_map.model, file,
                                       warm_map.engine.get());
  ASSERT_TRUE(rm.ok()) << rm.detail;
  // The load went through the mapping and adopted every state in place.
  EXPECT_EQ(stats.counter("store.mmap_loads").value(), mmap_loads_before + 1);
  EXPECT_EQ(stats.counter("arena.state_mapped").value(),
            mapped_before + cold.model->num_states());

  ::setenv("LACON_MMAP", "off", 1);
  auto warm_stream = make_instance(ModelKind::kMobile, kN, 1, 3);
  ASSERT_TRUE(store::load(*warm_stream.model, file,
                          warm_stream.engine.get()).ok());
  ::unsetenv("LACON_MMAP");

  // Same population, position by position, on both paths.
  EXPECT_EQ(state_hashes(*warm_map.model), state_hashes(*cold.model));
  EXPECT_EQ(state_hashes(*warm_stream.model), state_hashes(*cold.model));
  EXPECT_EQ(view_hashes(*warm_map.model), view_hashes(*cold.model));

  // Re-running the analysis over the mapped arena interns nothing new and
  // produces output identical to the streaming-loaded model's.
  const std::uint64_t misses_before =
      stats.counter("arena.state_misses").value();
  const auto frontier_map = analyze(warm_map, 2);
  const auto frontier_stream = analyze(warm_stream, 2);
  EXPECT_EQ(stats.counter("arena.state_misses").value(), misses_before);
  EXPECT_EQ(frontier_map, frontier_stream);
  EXPECT_EQ(warm_map.model->num_states(), warm_stream.model->num_states());
  EXPECT_EQ(state_hashes(*warm_map.model), state_hashes(*warm_stream.model));
  for (std::size_t i = 0; i < frontier_map.size(); ++i) {
    const ValenceInfo a = warm_map.engine->valence(frontier_map[i]);
    const ValenceInfo b = warm_stream.engine->valence(frontier_stream[i]);
    EXPECT_EQ(a.v0, b.v0);
    EXPECT_EQ(a.v1, b.v1);
    EXPECT_EQ(a.exact, b.exact);
  }
}

TEST_F(StoreTest, OddNFallsBackToStreamingUnderMmap) {
  // Odd n pads its lane words in the pool but not on disk, so the record
  // layout differs from the pool encoding and adoption must not happen —
  // the "misaligned file" of the mmap contract. The load still succeeds,
  // through the streaming decode.
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  analyze(cold, 2);
  const std::string file = path("odd_mmap.store");
  ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

  auto& stats = runtime::Stats::global();
  const std::uint64_t mapped_before =
      stats.counter("arena.state_mapped").value();

  ::setenv("LACON_MMAP", "on", 1);
  auto warm = make_instance(ModelKind::kMobile, 3, 1, 3);
  const store::Result r = store::load(*warm.model, file, warm.engine.get());
  ::unsetenv("LACON_MMAP");
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(stats.counter("arena.state_mapped").value(), mapped_before);
  EXPECT_EQ(state_hashes(*warm.model), state_hashes(*cold.model));
}

TEST_F(StoreTest, MmapLoadRejectsTruncationAtEveryPrefix) {
  // Every proper prefix of a snapshot must be rejected on the mmap path
  // exactly as on the streaming path — mapping a file does not skip any
  // length or checksum validation.
  constexpr int kN = 4;
  auto cold = make_instance(ModelKind::kMobile, kN, 1, 2);
  analyze(cold, 1);
  const std::string file = path("mmap_trunc.store");
  ASSERT_TRUE(store::save(*cold.model, file, nullptr).ok());

  std::ifstream in(file, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 0u);

  ::setenv("LACON_MMAP", "on", 1);
  // Every prefix for small files; a deterministic stride (still covering
  // every 8-byte boundary and both ends) once the quadratic checksum work
  // would dominate the suite.
  const std::size_t stride = bytes.size() > 8192 ? 7 : 1;
  for (std::size_t keep = 0; keep < bytes.size(); keep += stride) {
    const std::string cut = path("mmap_cut.store");
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();

    auto target = make_instance(ModelKind::kMobile, kN, 1, 2);
    const store::Result r = store::load(*target.model, cut, nullptr);
    EXPECT_FALSE(r.ok()) << "prefix of " << keep << " bytes was accepted";
  }
  ::unsetenv("LACON_MMAP");
}

TEST_F(StoreTest, OddNPadsLanesAndRoundTrips) {
  // n = 3 and n = 5 exercise the odd lane-padding path in the flat arena;
  // round-trip each and re-intern a frontier state to prove id stability.
  for (const int n : {3, 5}) {
    auto cold = make_instance(ModelKind::kSync, n, 1, 2);
    analyze(cold, 1);
    const std::string file = path("odd" + std::to_string(n) + ".store");
    ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

    auto warm = make_instance(ModelKind::kSync, n, 1, 2);
    ASSERT_TRUE(store::load(*warm.model, file, warm.engine.get()).ok());
    EXPECT_EQ(state_hashes(*warm.model), state_hashes(*cold.model));

    // Re-interning restored content yields the restored id, not a new one.
    const std::size_t before = warm.model->num_states();
    const StateRef s = warm.model->state(0);
    GlobalState copy;
    copy.env.assign(s.env.begin(), s.env.end());
    copy.locals.assign(s.locals.begin(), s.locals.end());
    copy.decisions.assign(s.decisions.begin(), s.decisions.end());
    EXPECT_EQ(warm.model->restore_state(std::move(copy)), 0u);
    EXPECT_EQ(warm.model->num_states(), before);
  }
}

TEST_F(StoreTest, ProbeReportsIdentityAndInventory) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  analyze(cold, 2);
  const std::string file = path("probe.store");
  ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

  store::SnapshotMeta meta;
  ASSERT_TRUE(store::probe(file, &meta).ok());
  EXPECT_EQ(meta.model_name, cold.model->name());
  EXPECT_EQ(meta.n, 3);
  EXPECT_EQ(meta.max_faulty, 1);
  EXPECT_EQ(meta.num_states, cold.model->num_states());
  EXPECT_EQ(meta.num_views, cold.model->num_views());
  EXPECT_GT(meta.memo_entries, 0u);
  EXPECT_GT(meta.fingerprint_rows, 0u);
}

TEST_F(StoreTest, TruncatedFilesAreRejectedAtEveryLength) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 2);
  analyze(cold, 1);
  const std::string file = path("trunc.store");
  ASSERT_TRUE(store::save(*cold.model, file, nullptr).ok());

  std::ifstream in(file, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  // A spread of prefix lengths: inside the prelude, inside the header,
  // inside each section region, and one byte short of complete.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{20}, std::size_t{60},
        bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    const std::string cut = path("cut.store");
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();

    auto target = make_instance(ModelKind::kMobile, 3, 1, 2);
    const store::Result r = store::load(*target.model, cut, nullptr);
    EXPECT_FALSE(r.ok()) << "prefix of " << keep << " bytes was accepted";
  }
}

TEST_F(StoreTest, CorruptPayloadFailsChecksum) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 2);
  analyze(cold, 1);
  const std::string file = path("corrupt.store");
  ASSERT_TRUE(store::save(*cold.model, file, nullptr).ok());

  std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-9, std::ios::end);  // a payload byte near the tail
  char byte;
  f.seekg(-9, std::ios::end);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(-9, std::ios::end);
  f.write(&byte, 1);
  f.close();

  auto target = make_instance(ModelKind::kMobile, 3, 1, 2);
  const store::Result r = store::load(*target.model, file, nullptr);
  EXPECT_EQ(r.status, store::Status::kCorrupt) << r.detail;
}

TEST_F(StoreTest, ForwardVersionsAreRefused) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 2);
  analyze(cold, 1);
  const std::string file = path("v2.store");
  ASSERT_TRUE(store::save(*cold.model, file, nullptr).ok());

  std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
  const std::uint32_t v2 = 2;
  f.seekp(8);  // the u32 version right after the magic
  f.write(reinterpret_cast<const char*>(&v2), sizeof v2);
  f.close();

  auto target = make_instance(ModelKind::kMobile, 3, 1, 2);
  EXPECT_EQ(store::load(*target.model, file, nullptr).status,
            store::Status::kBadVersion);
  EXPECT_EQ(store::probe(file, nullptr).status, store::Status::kBadVersion);
}

TEST_F(StoreTest, BadMagicAndMissingFile) {
  const std::string file = path("not.store");
  std::ofstream(file) << "definitely not a snapshot";
  auto target = make_instance(ModelKind::kMobile, 3, 1, 2);
  EXPECT_EQ(store::load(*target.model, file, nullptr).status,
            store::Status::kBadMagic);
  EXPECT_EQ(store::load(*target.model, path("absent.store"), nullptr).status,
            store::Status::kIoError);
}

TEST_F(StoreTest, ModelMismatchAndNonEmptyTargetAreRefused) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 2);
  analyze(cold, 1);
  const std::string file = path("identity.store");
  ASSERT_TRUE(store::save(*cold.model, file, nullptr).ok());

  // Wrong n.
  auto wrong_n = make_instance(ModelKind::kMobile, 4, 1, 2);
  EXPECT_EQ(store::load(*wrong_n.model, file, nullptr).status,
            store::Status::kModelMismatch);
  // Wrong model family.
  auto wrong_kind = make_instance(ModelKind::kSync, 3, 1, 2);
  EXPECT_EQ(store::load(*wrong_kind.model, file, nullptr).status,
            store::Status::kModelMismatch);
  // Right identity, but the target has already interned content.
  auto warm = make_instance(ModelKind::kMobile, 3, 1, 2);
  warm.model->initial_states();
  EXPECT_EQ(store::load(*warm.model, file, nullptr).status,
            store::Status::kNotEmpty);
}

TEST_F(StoreTest, MemoSkippedOnHorizonMismatch) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  analyze(cold, 2);
  const std::string file = path("memo.store");
  ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());

  // A horizon-2 engine must not inherit horizon-3 entries; the load itself
  // still succeeds and the model is fully usable.
  auto warm = make_instance(ModelKind::kMobile, 3, 1, 2);
  const std::uint64_t skipped_before =
      runtime::Stats::global().counter("store.memo_skipped").value();
  ASSERT_TRUE(store::load(*warm.model, file, warm.engine.get()).ok());
  EXPECT_GT(runtime::Stats::global().counter("store.memo_skipped").value(),
            skipped_before);
  EXPECT_EQ(warm.model->num_states(), cold.model->num_states());
}

TEST_F(StoreTest, SaveWithoutEngineOmitsMemo) {
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 2);
  analyze(cold, 1);
  const std::string file = path("nomemo.store");
  ASSERT_TRUE(store::save(*cold.model, file, nullptr).ok());
  store::SnapshotMeta meta;
  ASSERT_TRUE(store::probe(file, &meta).ok());
  EXPECT_EQ(meta.memo_entries, 0u);

  auto warm = make_instance(ModelKind::kMobile, 3, 1, 2);
  EXPECT_TRUE(store::load(*warm.model, file, warm.engine.get()).ok());
}

// --- WAL (lacon.wal.v1): crash-durable deltas over snapshots --------------

std::vector<char> read_file(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& file, const char* data, std::size_t len) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(data, static_cast<std::streamsize>(len));
}

// Interns one novel state (a copy of state 0 with a perturbed decision),
// giving the WAL a deliberately tiny delta record for tail-fuzz tests.
void intern_one_extra_state(LayeredModel& model) {
  const StateRef s = model.state(0);
  GlobalState copy;
  copy.env.assign(s.env.begin(), s.env.end());
  copy.locals.assign(s.locals.begin(), s.locals.end());
  copy.decisions.assign(s.decisions.begin(), s.decisions.end());
  copy.decisions[0] = copy.decisions[0] == 7 ? 8 : 7;
  const std::size_t before = model.num_states();
  ASSERT_EQ(model.restore_state(std::move(copy)), before);
}

TEST_F(StoreTest, WalAppendReplayRoundTrip) {
  const std::string file = path("roundtrip.wal");
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  {
    store::Wal wal;
    ASSERT_TRUE(wal.open(*cold.model, file).ok());
    ASSERT_TRUE(wal.replay(*cold.model, cold.engine.get(), nullptr).ok());
    analyze(cold, 2);
    ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
    EXPECT_EQ(wal.records_appended(), 1u);
    // Nothing new interned since the commit: append is a no-op.
    ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
    EXPECT_EQ(wal.records_appended(), 1u);
  }

  auto& stats = runtime::Stats::global();
  auto warm = make_instance(ModelKind::kMobile, 3, 1, 3);
  store::Wal wal;
  ASSERT_TRUE(wal.open(*warm.model, file).ok());
  store::WalReplayStats rs;
  const store::Result r = wal.replay(*warm.model, warm.engine.get(), nullptr, &rs);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(rs.records_applied, 1u);
  EXPECT_EQ(rs.truncated_bytes, 0u);
  EXPECT_EQ(rs.states_applied, cold.model->num_states());

  ASSERT_EQ(warm.model->num_states(), cold.model->num_states());
  ASSERT_EQ(warm.model->num_views(), cold.model->num_views());
  EXPECT_EQ(state_hashes(*warm.model), state_hashes(*cold.model));
  EXPECT_EQ(view_hashes(*warm.model), view_hashes(*cold.model));

  // Re-running the analysis interns nothing new (zero re-interns contract)
  // and the imported memo answers agree entry for entry.
  const std::uint64_t misses_before =
      stats.counter("arena.state_misses").value();
  const auto frontier = analyze(warm, 2);
  EXPECT_EQ(stats.counter("arena.state_misses").value(), misses_before);
  EXPECT_EQ(warm.model->num_states(), cold.model->num_states());
  const auto cold_frontier = analyze(cold, 2);
  ASSERT_EQ(frontier.size(), cold_frontier.size());
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const ValenceInfo a = warm.engine->valence(frontier[i]);
    const ValenceInfo b = cold.engine->valence(cold_frontier[i]);
    EXPECT_EQ(a.v0, b.v0);
    EXPECT_EQ(a.v1, b.v1);
  }
}

TEST_F(StoreTest, WalReplaysDeltaOverSnapshot) {
  const std::string snap = path("delta.store");
  const std::string file = path("delta.wal");
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  // Snapshot bare depth-1 exploration (no valence lookahead yet), so the
  // full analysis afterwards is guaranteed to intern past it.
  reachable_by_depth(*cold.model, 1);
  ASSERT_TRUE(store::save(*cold.model, snap, nullptr).ok());
  {
    // The WAL opens over the snapshot-covered model and logs only what the
    // deeper analysis adds past it.
    store::Wal wal;
    ASSERT_TRUE(wal.open(*cold.model, file).ok());
    ASSERT_TRUE(wal.replay(*cold.model, cold.engine.get(), nullptr).ok());
    analyze(cold, 2);
    ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  }

  auto warm = make_instance(ModelKind::kMobile, 3, 1, 3);
  ASSERT_TRUE(store::load(*warm.model, snap, warm.engine.get()).ok());
  const std::size_t from_snapshot = warm.model->num_states();
  store::Wal wal;
  ASSERT_TRUE(wal.open(*warm.model, file).ok());
  store::WalReplayStats rs;
  ASSERT_TRUE(wal.replay(*warm.model, warm.engine.get(), nullptr, &rs).ok());
  EXPECT_EQ(rs.records_applied, 1u);
  EXPECT_GT(warm.model->num_states(), from_snapshot);
  ASSERT_EQ(warm.model->num_states(), cold.model->num_states());
  EXPECT_EQ(state_hashes(*warm.model), state_hashes(*cold.model));
  EXPECT_EQ(view_hashes(*warm.model), view_hashes(*cold.model));
}

TEST_F(StoreTest, WalSkipsRecordsCoveredBySnapshot) {
  const std::string snap = path("covered.store");
  const std::string file = path("covered.wal");
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  {
    store::Wal wal;
    ASSERT_TRUE(wal.open(*cold.model, file).ok());
    ASSERT_TRUE(wal.replay(*cold.model, cold.engine.get(), nullptr).ok());
    analyze(cold, 1);
    ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
    intern_one_extra_state(*cold.model);
    ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
    // Snapshot saved AFTER both records, crash before the log was reset:
    // replay must recognize both records as covered and skip them.
    ASSERT_TRUE(store::save(*cold.model, snap, cold.engine.get()).ok());
  }

  auto warm = make_instance(ModelKind::kMobile, 3, 1, 3);
  ASSERT_TRUE(store::load(*warm.model, snap, warm.engine.get()).ok());
  const std::size_t from_snapshot = warm.model->num_states();
  store::Wal wal;
  ASSERT_TRUE(wal.open(*warm.model, file).ok());
  store::WalReplayStats rs;
  ASSERT_TRUE(wal.replay(*warm.model, warm.engine.get(), nullptr, &rs).ok());
  EXPECT_EQ(rs.records_applied, 0u);
  EXPECT_EQ(rs.records_skipped, 2u);
  EXPECT_EQ(warm.model->num_states(), from_snapshot);
  EXPECT_EQ(state_hashes(*warm.model), state_hashes(*cold.model));
}

// Satellite (d): SIGKILL can land mid-write, so the final record may end at
// ANY byte. Fuzz every truncation point of the last record and demand the
// same answer each time: kOk, everything before the tear intact, the torn
// tail physically truncated, and the log usable for appends again.
TEST_F(StoreTest, WalTornTailRecoversAtEveryByteOffset) {
  const std::string file = path("torn.wal");
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  store::Wal wal;
  ASSERT_TRUE(wal.open(*cold.model, file).ok());
  ASSERT_TRUE(wal.replay(*cold.model, cold.engine.get(), nullptr).ok());
  analyze(cold, 1);
  ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  const std::size_t record1_states = cold.model->num_states();
  const auto boundary = static_cast<std::size_t>(fs::file_size(file));
  intern_one_extra_state(*cold.model);
  ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  wal.close();
  const std::vector<char> bytes = read_file(file);
  ASSERT_GT(bytes.size(), boundary);

  for (std::size_t keep = boundary; keep < bytes.size(); ++keep) {
    const std::string cut = path("torn.cut.wal");
    write_file(cut, bytes.data(), keep);

    auto target = make_instance(ModelKind::kMobile, 3, 1, 3);
    store::Wal w;
    ASSERT_TRUE(w.open(*target.model, cut).ok()) << "keep=" << keep;
    store::WalReplayStats rs;
    const store::Result r = w.replay(*target.model, target.engine.get(), nullptr, &rs);
    ASSERT_TRUE(r.ok()) << "keep=" << keep << ": " << r.detail;
    EXPECT_EQ(rs.records_applied, 1u) << "keep=" << keep;
    EXPECT_EQ(rs.truncated_bytes, keep - boundary) << "keep=" << keep;
    EXPECT_EQ(target.model->num_states(), record1_states) << "keep=" << keep;
    // Replay physically cut the tail back to the last valid record...
    EXPECT_EQ(fs::file_size(cut), boundary) << "keep=" << keep;
    // ...so the log keeps working: the next commit lands cleanly.
    intern_one_extra_state(*target.model);
    ASSERT_TRUE(w.append(*target.model, target.engine.get()).ok())
        << "keep=" << keep;
  }
}

TEST_F(StoreTest, WalBitFlippedTailIsTruncatedNotFatal) {
  const std::string file = path("flip.wal");
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  store::Wal wal;
  ASSERT_TRUE(wal.open(*cold.model, file).ok());
  ASSERT_TRUE(wal.replay(*cold.model, cold.engine.get(), nullptr).ok());
  analyze(cold, 1);
  ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  const std::size_t record1_states = cold.model->num_states();
  const auto boundary = static_cast<std::size_t>(fs::file_size(file));
  intern_one_extra_state(*cold.model);
  ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  wal.close();

  std::vector<char> bytes = read_file(file);
  // Flip one byte in the final record's body: the frame parses but the
  // checksum refutes it, so replay truncates the record, not the process.
  bytes[boundary + 30] = static_cast<char>(bytes[boundary + 30] ^ 0x10);
  write_file(file, bytes.data(), bytes.size());

  auto target = make_instance(ModelKind::kMobile, 3, 1, 3);
  store::Wal w;
  ASSERT_TRUE(w.open(*target.model, file).ok());
  store::WalReplayStats rs;
  ASSERT_TRUE(w.replay(*target.model, target.engine.get(), nullptr, &rs).ok());
  EXPECT_EQ(rs.records_applied, 1u);
  EXPECT_EQ(rs.truncated_bytes, bytes.size() - boundary);
  EXPECT_EQ(target.model->num_states(), record1_states);
  EXPECT_EQ(fs::file_size(file), boundary);
}

TEST_F(StoreTest, WalHeaderDamageIsTyped) {
  const std::string file = path("header.wal");
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 2);
  {
    store::Wal wal;
    ASSERT_TRUE(wal.open(*cold.model, file).ok());
  }
  const std::vector<char> bytes = read_file(file);

  // Wrong identity: same file, different instance.
  auto wrong_n = make_instance(ModelKind::kMobile, 4, 1, 2);
  store::Wal w1;
  EXPECT_EQ(w1.open(*wrong_n.model, file).status,
            store::Status::kModelMismatch);
  auto wrong_kind = make_instance(ModelKind::kSync, 3, 1, 2);
  store::Wal w2;
  EXPECT_EQ(w2.open(*wrong_kind.model, file).status,
            store::Status::kModelMismatch);

  // Garbage prelude.
  write_file(file, "not a write-ahead log....", 25);
  store::Wal w3;
  EXPECT_EQ(w3.open(*cold.model, file).status, store::Status::kBadMagic);

  // Future version.
  std::vector<char> versioned = bytes;
  versioned[8] = 2;  // the u32 version right after the magic
  write_file(file, versioned.data(), versioned.size());
  store::Wal w4;
  EXPECT_EQ(w4.open(*cold.model, file).status, store::Status::kBadVersion);

  // Corrupted header body (checksum mismatch).
  std::vector<char> flipped = bytes;
  flipped[26] = static_cast<char>(flipped[26] ^ 0x04);
  write_file(file, flipped.data(), flipped.size());
  store::Wal w5;
  EXPECT_EQ(w5.open(*cold.model, file).status, store::Status::kCorrupt);

  // Header prefixes: every cut inside prelude+header is a typed refusal
  // (unlike a torn record tail, which is recovery).
  for (std::size_t keep = 1; keep < bytes.size(); ++keep) {
    write_file(file, bytes.data(), keep);
    store::Wal w;
    const store::Result r = w.open(*cold.model, file);
    EXPECT_FALSE(r.ok()) << "header prefix of " << keep << " bytes accepted";
    EXPECT_FALSE(w.is_open());
  }
}

TEST_F(StoreTest, WalResetToAfterSnapshotLogsOnlyNewWork) {
  const std::string snap = path("compact.store");
  const std::string file = path("compact.wal");
  auto cold = make_instance(ModelKind::kMobile, 3, 1, 3);
  store::Wal wal;
  ASSERT_TRUE(wal.open(*cold.model, file).ok());
  ASSERT_TRUE(wal.replay(*cold.model, cold.engine.get(), nullptr).ok());
  analyze(cold, 1);
  ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  EXPECT_GT(wal.log_bytes(), 0u);

  // Compaction: fold the log into a snapshot, then reset the log to it.
  ASSERT_TRUE(store::save(*cold.model, snap, cold.engine.get()).ok());
  store::SnapshotMeta meta;
  ASSERT_TRUE(store::probe(snap, &meta).ok());
  ASSERT_TRUE(
      wal.reset_to(*cold.model, meta.num_views, meta.num_states,
                   cold.engine.get())
          .ok());
  EXPECT_EQ(wal.log_bytes(), 0u);
  EXPECT_EQ(wal.records_appended(), 0u);

  // Post-compaction commits log only the new work; snapshot + log together
  // still recover the full space.
  analyze(cold, 2);
  ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  EXPECT_EQ(wal.records_appended(), 1u);
  wal.close();

  auto warm = make_instance(ModelKind::kMobile, 3, 1, 3);
  ASSERT_TRUE(store::load(*warm.model, snap, warm.engine.get()).ok());
  store::Wal w;
  ASSERT_TRUE(w.open(*warm.model, file).ok());
  store::WalReplayStats rs;
  ASSERT_TRUE(w.replay(*warm.model, warm.engine.get(), nullptr, &rs).ok());
  EXPECT_EQ(rs.records_applied, 1u);
  ASSERT_EQ(warm.model->num_states(), cold.model->num_states());
  EXPECT_EQ(state_hashes(*warm.model), state_hashes(*cold.model));

  // should_compact has a 64 KiB floor: a small log never forces compaction
  // just because the snapshot is tiny.
  EXPECT_FALSE(w.should_compact(/*snapshot_bytes=*/1, /*ratio=*/1));
}

// --- symmetry mode recording and lemma-fact persistence ---------------------

// A snapshot saved over the full space must never replay into an
// orbit-quotiented model (or vice versa): the file records the mode and
// mode-mismatched loads are refused typed, leaving the target untouched.
// msgpass declares kFull symmetry, so the knob genuinely flips its mode.
TEST_F(StoreTest, SymmetryMismatchedSnapshotRejected) {
  const std::string file = path("fullspace.store");
  {
    sym::ScopedSymmetry off(false);
    auto cold = make_instance(ModelKind::kMsgPass, 3, 1, 2);
    analyze(cold, 1);
    ASSERT_FALSE(cold.model->sym_quotient_active());
    ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());
    store::SnapshotMeta meta;
    ASSERT_TRUE(store::probe(file, &meta).ok());
    EXPECT_FALSE(meta.symmetry);
  }
  sym::ScopedSymmetry on(true);
  auto warm = make_instance(ModelKind::kMsgPass, 3, 1, 2);
  ASSERT_TRUE(warm.model->sym_quotient_active());
  const store::Result r = store::load(*warm.model, file, warm.engine.get());
  EXPECT_EQ(r.status, store::Status::kSymmetryMismatch);
  EXPECT_EQ(warm.model->num_states(), 0u);
  EXPECT_EQ(warm.model->num_views(), 0u);
}

TEST_F(StoreTest, QuotientSnapshotRejectedByFullSpaceModel) {
  const std::string file = path("quotient.store");
  {
    sym::ScopedSymmetry on(true);
    auto cold = make_instance(ModelKind::kMsgPass, 3, 1, 2);
    analyze(cold, 1);
    ASSERT_TRUE(cold.model->sym_quotient_active());
    ASSERT_TRUE(store::save(*cold.model, file, cold.engine.get()).ok());
    store::SnapshotMeta meta;
    ASSERT_TRUE(store::probe(file, &meta).ok());
    EXPECT_TRUE(meta.symmetry);
    // Same mode loads fine.
    auto same = make_instance(ModelKind::kMsgPass, 3, 1, 2);
    ASSERT_TRUE(store::load(*same.model, file, same.engine.get()).ok());
  }
  sym::ScopedSymmetry off(false);
  auto warm = make_instance(ModelKind::kMsgPass, 3, 1, 2);
  const store::Result r = store::load(*warm.model, file, warm.engine.get());
  EXPECT_EQ(r.status, store::Status::kSymmetryMismatch);
  EXPECT_EQ(warm.model->num_states(), 0u);
}

TEST_F(StoreTest, SymmetryMismatchedWalRefusedOnOpen) {
  const std::string file = path("fullspace.wal");
  {
    sym::ScopedSymmetry off(false);
    auto cold = make_instance(ModelKind::kMsgPass, 3, 1, 2);
    store::Wal wal;
    ASSERT_TRUE(wal.open(*cold.model, file).ok());
    ASSERT_TRUE(wal.replay(*cold.model, cold.engine.get()).ok());
    analyze(cold, 1);
    ASSERT_TRUE(wal.append(*cold.model, cold.engine.get()).ok());
  }
  sym::ScopedSymmetry on(true);
  auto warm = make_instance(ModelKind::kMsgPass, 3, 1, 2);
  store::Wal wal;
  const store::Result r = wal.open(*warm.model, file);
  EXPECT_EQ(r.status, store::Status::kSymmetryMismatch);
  EXPECT_FALSE(wal.is_open());
}

void expect_same_facts(const std::vector<LemmaStore::Fact>& a,
                       const std::vector<LemmaStore::Fact>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sig_hi, b[i].sig_hi);
    EXPECT_EQ(a[i].sig_lo, b[i].sig_lo);
    EXPECT_EQ(a[i].lookahead, b[i].lookahead);
    EXPECT_EQ(a[i].v0, b[i].v0);
    EXPECT_EQ(a[i].v1, b[i].v1);
  }
}

// Classify every state reachable within `depth` so the engine publishes a
// healthy batch of exact facts (the frontier alone can end all-inexact at
// shallow horizons, which would make these tests vacuous).
void classify_reachable(IisModel& model, ValenceEngine& eng, int depth) {
  for (const auto& level : reachable_by_depth(model, depth)) {
    for (StateId x : level) eng.valence(x);
  }
}

TEST_F(StoreTest, LemmaFactsRoundTripThroughSnapshot) {
  const std::string file = path("lemmas.store");
  auto rule = min_after_round(2);
  IisModel model(3, *rule);
  LemmaStore lemmas;
  ValenceEngine eng(model, 3, Exactness::kQuiescence, &lemmas);
  classify_reachable(model, eng, 2);
  ASSERT_GT(lemmas.size(), 0u);
  ASSERT_TRUE(store::save(model, file, &eng, &lemmas).ok());

  store::SnapshotMeta meta;
  ASSERT_TRUE(store::probe(file, &meta).ok());
  EXPECT_EQ(meta.lemma_entries, lemmas.size());

  auto rule2 = min_after_round(2);
  IisModel model2(3, *rule2);
  LemmaStore warm;
  ValenceEngine eng2(model2, 3, Exactness::kQuiescence, &warm);
  ASSERT_TRUE(store::load(model2, file, &eng2, &warm).ok());
  expect_same_facts(warm.export_facts(), lemmas.export_facts());

  // A loader without a store simply skips the section.
  auto rule3 = min_after_round(2);
  IisModel model3(3, *rule3);
  ASSERT_TRUE(store::load(model3, file, nullptr, nullptr).ok());
}

TEST_F(StoreTest, LemmaFactsSurviveWalReplay) {
  const std::string file = path("lemmas.wal");
  std::vector<LemmaStore::Fact> written;
  {
    auto rule = min_after_round(2);
    IisModel model(3, *rule);
    LemmaStore lemmas;
    ValenceEngine eng(model, 3, Exactness::kQuiescence, &lemmas);
    store::Wal wal;
    ASSERT_TRUE(wal.open(model, file).ok());
    ASSERT_TRUE(wal.replay(model, &eng, &lemmas).ok());
    classify_reachable(model, eng, 2);
    ASSERT_GT(lemmas.size(), 0u);
    ASSERT_TRUE(wal.append(model, &eng, &lemmas).ok());
    // Already persisted: a second commit with no new work is a no-op.
    const std::uint64_t appended = wal.records_appended();
    ASSERT_TRUE(wal.append(model, &eng, &lemmas).ok());
    EXPECT_EQ(wal.records_appended(), appended);
    written = lemmas.export_facts();
  }

  auto rule = min_after_round(2);
  IisModel model(3, *rule);
  LemmaStore warm;
  ValenceEngine eng(model, 3, Exactness::kQuiescence, &warm);
  store::Wal wal;
  ASSERT_TRUE(wal.open(model, file).ok());
  store::WalReplayStats rs;
  ASSERT_TRUE(wal.replay(model, &eng, &warm, &rs).ok());
  EXPECT_GT(rs.records_applied, 0u);
  expect_same_facts(warm.export_facts(), written);
}

// --- env knob parsing (the LACON_THREADS warn-once contract) --------------

TEST(StoreEnvTest, ParseModeKeywords) {
  using store::Mode;
  EXPECT_EQ(store::parse_mode("off", Mode::kLoadSave), Mode::kOff);
  EXPECT_EQ(store::parse_mode("load", Mode::kOff), Mode::kLoad);
  EXPECT_EQ(store::parse_mode("save", Mode::kOff), Mode::kSave);
  EXPECT_EQ(store::parse_mode("loadsave", Mode::kOff), Mode::kLoadSave);
  // Null/empty fall back silently.
  EXPECT_EQ(store::parse_mode(nullptr, Mode::kSave), Mode::kSave);
  EXPECT_EQ(store::parse_mode("", Mode::kLoad), Mode::kLoad);
  // Malformed values fall back (and warn once, not per call).
  EXPECT_EQ(store::parse_mode("LOAD", Mode::kOff), Mode::kOff);
  EXPECT_EQ(store::parse_mode("load,save", Mode::kOff), Mode::kOff);
  EXPECT_EQ(store::parse_mode("1", Mode::kOff), Mode::kOff);
}

TEST(StoreEnvTest, ParseDirLengthGuard) {
  EXPECT_EQ(store::parse_dir(nullptr, "fallback"), "fallback");
  EXPECT_EQ(store::parse_dir("", "fallback"), "fallback");
  EXPECT_EQ(store::parse_dir("/var/lib/lacon", "fallback"), "/var/lib/lacon");
  // The ERANGE analogue: a plausible prefix of absurd length falls back.
  const std::string absurd(store::kMaxDirLength + 1, 'x');
  EXPECT_EQ(store::parse_dir(absurd.c_str(), "fallback"), "fallback");
  const std::string exactly_max(store::kMaxDirLength, 'x');
  EXPECT_EQ(store::parse_dir(exactly_max.c_str(), "fallback"), exactly_max);
}

TEST(StoreEnvTest, LoadsSavesHalves) {
  using store::Mode;
  EXPECT_FALSE(store::loads(Mode::kOff));
  EXPECT_FALSE(store::saves(Mode::kOff));
  EXPECT_TRUE(store::loads(Mode::kLoad));
  EXPECT_FALSE(store::saves(Mode::kLoad));
  EXPECT_FALSE(store::loads(Mode::kSave));
  EXPECT_TRUE(store::saves(Mode::kSave));
  EXPECT_TRUE(store::loads(Mode::kLoadSave));
  EXPECT_TRUE(store::saves(Mode::kLoadSave));
}

TEST(StoreEnvTest, SnapshotFilenameSanitizes) {
  EXPECT_EQ(store::snapshot_filename("M^mf/S1", 3, 1),
            "M_mf_S1.n3.t1.lacon.store");
  EXPECT_EQ(store::snapshot_filename("Sync/S^t", 4, 2),
            "Sync_S_t.n4.t2.lacon.store");
  EXPECT_EQ(store::snapshot_path("/data", "M^mf/S1", 3, 1),
            "/data/M_mf_S1.n3.t1.lacon.store");
  EXPECT_EQ(store::snapshot_path("/data/", "M^mf/S1", 3, 1),
            "/data/M_mf_S1.n3.t1.lacon.store");
}

TEST(StoreEnvTest, ParseWalKeywords) {
  EXPECT_FALSE(store::parse_wal("off", true));
  EXPECT_TRUE(store::parse_wal("on", false));
  // Null/empty fall back silently; malformed values fall back with a warn.
  EXPECT_TRUE(store::parse_wal(nullptr, true));
  EXPECT_FALSE(store::parse_wal("", false));
  EXPECT_FALSE(store::parse_wal("ON", false));
  EXPECT_FALSE(store::parse_wal("1", false));
  EXPECT_FALSE(store::parse_wal("yes", false));
}

TEST(StoreEnvTest, ParseMmapKeywords) {
  EXPECT_FALSE(store::parse_mmap("off", true));
  EXPECT_TRUE(store::parse_mmap("on", false));
  // Null/empty fall back silently; malformed values fall back with a warn.
  EXPECT_TRUE(store::parse_mmap(nullptr, true));
  EXPECT_FALSE(store::parse_mmap("", false));
  EXPECT_FALSE(store::parse_mmap("ON", false));
  EXPECT_FALSE(store::parse_mmap("1", false));
  EXPECT_FALSE(store::parse_mmap("mmap", false));
}

TEST(StoreEnvTest, ParseWalCompactRange) {
  EXPECT_EQ(store::parse_wal_compact(nullptr, 8), 8u);
  EXPECT_EQ(store::parse_wal_compact("", 8), 8u);
  EXPECT_EQ(store::parse_wal_compact("1", 8), 1u);
  EXPECT_EQ(store::parse_wal_compact("16", 8), 16u);
  EXPECT_EQ(store::parse_wal_compact(
                std::to_string(store::kMaxWalCompactRatio).c_str(), 8),
            store::kMaxWalCompactRatio);
  // Out-of-range and malformed values fall back, never clamp.
  EXPECT_EQ(store::parse_wal_compact("0", 8), 8u);
  EXPECT_EQ(store::parse_wal_compact(
                std::to_string(store::kMaxWalCompactRatio + 1).c_str(), 8),
            8u);
  EXPECT_EQ(store::parse_wal_compact("-4", 8), 8u);
  EXPECT_EQ(store::parse_wal_compact("8x", 8), 8u);
  EXPECT_EQ(store::parse_wal_compact("ratio", 8), 8u);
}

TEST(StoreEnvTest, WalPathRidesSnapshotPath) {
  auto rule = min_after_round(2);
  auto model = make_model(ModelKind::kMobile, 3, 1, *rule);
  EXPECT_EQ(store::wal_path(*model), store::snapshot_path(*model) + ".wal");
}

}  // namespace
}  // namespace lacon
