#!/usr/bin/env python3
"""Quotient-vs-full identity gate for the laconrd protocol (ci.sh lane).

Usage:
    bench/check_identity.py FULL.jsonl QUOTIENT.jsonl

Both files hold one laconrd response per line, produced by the same request
sequence against a LACON_SYMMETRY=off daemon (FULL) and a LACON_SYMMETRY=on
daemon (QUOTIENT). The symmetry contract (DESIGN.md §15) says the quotient
may only change how much work an answer costs, never the answer: the
mode-independent response fields — id, status, truncation, error, result —
must match byte-for-byte after JSON canonicalization. The "metrics" object
is deliberately excluded: raw arena counts are mode-dependent (one
representative per orbit) and elapsed_ms varies run to run.

The gate also refuses to pass vacuously: at least one QUOTIENT response
must carry metrics.symmetry == true, proving the on-daemon actually folded
orbits rather than silently falling back to the full space.
"""

import json
import sys

_KEPT = ("id", "status", "truncation", "error", "result")


def canonical_rows(path):
    rows = []
    quotiented = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            rows.append({k: doc[k] for k in _KEPT if k in doc})
            if doc.get("metrics", {}).get("symmetry") is True:
                quotiented += 1
    return rows, quotiented


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    full_path, quot_path = sys.argv[1], sys.argv[2]
    full, _ = canonical_rows(full_path)
    quot, quotiented = canonical_rows(quot_path)

    if len(full) != len(quot):
        print(f"FAIL: {full_path} has {len(full)} response(s), "
              f"{quot_path} has {len(quot)}", file=sys.stderr)
        return 1
    if not full:
        print("FAIL: no responses to compare", file=sys.stderr)
        return 1

    bad = 0
    for i, (a, b) in enumerate(zip(full, quot)):
        if a != b:
            bad += 1
            print(f"FAIL: response {i} (id={a.get('id')!r}) differs:",
                  file=sys.stderr)
            print(f"  full:     {json.dumps(a, sort_keys=True)}",
                  file=sys.stderr)
            print(f"  quotient: {json.dumps(b, sort_keys=True)}",
                  file=sys.stderr)
    if bad:
        print(f"FAIL: {bad}/{len(full)} response(s) differ between "
              f"LACON_SYMMETRY=off and =on", file=sys.stderr)
        return 1

    if quotiented == 0:
        print(f"FAIL: no response in {quot_path} reports "
              "metrics.symmetry=true — the quotient never engaged, the "
              "identity check is vacuous", file=sys.stderr)
        return 1

    print(f"OK: {len(full)} response(s) identical across symmetry modes "
          f"({quotiented} served from the quotient)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
