// T3 — Bivalent-run construction (Theorem 4.2 / Corollaries 5.2, 5.4, and
// the permutation-layering FLP proof). For each 1-resilient model: extend
// an all-bivalent run to depth D, reporting whether the construction ever
// gets stuck (it must not — consensus is impossible), plus the number of
// interned states and valence evaluations, and per-layer timing.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>

#include "analysis/reports.hpp"
#include "engine/bivalence.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

void print_table() {
  Table table({"model", "depth", "complete", "states interned",
               "valence evals"});
  for (ModelKind kind :
       {ModelKind::kMobile, ModelKind::kSharedMem, ModelKind::kMsgPass}) {
    const int max_depth = (kind == ModelKind::kMobile) ? 8 : 5;
    for (int depth = 2; depth <= max_depth; depth += 2) {
      auto rule = min_after_round(2);
      auto model = make_model(kind, 3, 1, *rule);
      ValenceEngine engine(*model, 3, default_exactness(kind));
      const BivalentRunResult run = extend_bivalent_run(engine, depth);
      table.add_row({model_kind_name(kind),
                     cell(static_cast<long long>(depth)),
                     run.complete ? "yes" : run.stuck_reason,
                     cell(static_cast<long long>(model->num_states())),
                     cell(static_cast<long long>(engine.evaluations()))});
    }
  }
  std::fputs(
      table.to_string("T3: bivalent-run construction (Theorem 4.2)").c_str(),
      stdout);
}

void BM_ExtendBivalentRun(benchmark::State& state, ModelKind kind) {
  const int depth = static_cast<int>(state.range(0));
  auto rule = min_after_round(2);
  for (auto _ : state) {
    auto model = make_model(kind, 3, 1, *rule);
    ValenceEngine engine(*model, 3, default_exactness(kind));
    const BivalentRunResult run = extend_bivalent_run(engine, depth);
    benchmark::DoNotOptimize(run.complete);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}

BENCHMARK_CAPTURE(BM_ExtendBivalentRun, mobile, ModelKind::kMobile)
    ->Arg(4)
    ->Arg(8);
BENCHMARK_CAPTURE(BM_ExtendBivalentRun, sharedmem, ModelKind::kSharedMem)
    ->Arg(3)
    ->Arg(5);
BENCHMARK_CAPTURE(BM_ExtendBivalentRun, msgpass, ModelKind::kMsgPass)->Arg(3);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
