#!/usr/bin/env python3
"""Schema validation for lacon observability artifacts.

Usage:
    bench/validate_metrics.py --kind metrics METRICS_t9_runtime.json ...
    bench/validate_metrics.py --kind trace TRACE_t9_runtime.json ...

--kind metrics checks a MetricsSnapshot (schema "lacon.metrics.v1", see
DESIGN.md §11): every top-level key present, counters/timers/histograms
well-formed, histogram bucket lists sparse and sorted by lower bound.

--kind trace checks a Chrome trace-event file: traceEvents is a list, every
event carries ph/ts/pid/tid, "X" events carry dur, and at least one complete
span is present (a trace emitted under LACON_TRACE=spans that contains no
spans means the instrumentation went missing).

Exit status: 0 when all files validate, 1 otherwise. Each failure prints a
path-prefixed reason so CI logs show which artifact is broken.
"""

import argparse
import json
import sys

METRICS_KEYS = {
    "schema", "workers", "trace_mode", "guard", "counters", "timers",
    "histograms", "spans",
}
GUARD_KEYS = {"budget_ms", "max_states", "max_bytes", "trips"}
TRIP_KEYS = {"deadline", "state_budget", "cancelled"}


def fail(path, reason):
    print(f"{path}: INVALID — {reason}", file=sys.stderr)
    return False


def check_metrics(path, doc):
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    missing = METRICS_KEYS - doc.keys()
    if missing:
        return fail(path, f"missing keys: {sorted(missing)}")
    if doc["schema"] != "lacon.metrics.v1":
        return fail(path, f"unexpected schema {doc['schema']!r}")
    if not isinstance(doc["workers"], int) or doc["workers"] < 1:
        return fail(path, f"workers must be a positive int, got {doc['workers']!r}")
    if doc["trace_mode"] not in ("off", "counters", "spans"):
        return fail(path, f"unknown trace_mode {doc['trace_mode']!r}")
    guard = doc["guard"]
    if not isinstance(guard, dict) or GUARD_KEYS - guard.keys():
        return fail(path, f"guard block must carry {sorted(GUARD_KEYS)}")
    if TRIP_KEYS - guard["trips"].keys():
        return fail(path, f"guard.trips must carry {sorted(TRIP_KEYS)}")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            return fail(path, f"counter {name!r} is not a non-negative int")
    for name, row in doc["timers"].items():
        if not isinstance(row, dict) or {"ns", "calls"} - row.keys():
            return fail(path, f"timer {name!r} must carry ns and calls")
    for name, row in doc["histograms"].items():
        if not isinstance(row, dict) or {"count", "sum", "buckets"} - row.keys():
            return fail(path, f"histogram {name!r} must carry count/sum/buckets")
        buckets = row["buckets"]
        lowers = [b[0] for b in buckets]
        if lowers != sorted(lowers):
            return fail(path, f"histogram {name!r} buckets not sorted")
        if sum(b[1] for b in buckets) != row["count"]:
            return fail(path, f"histogram {name!r} bucket counts != count")
    spans = doc["spans"]
    if not isinstance(spans, dict) or {"recorded", "dropped"} - spans.keys():
        return fail(path, "spans block must carry recorded and dropped")
    return True


def check_trace(path, doc):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(path, "missing traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    complete = 0
    for i, ev in enumerate(events):
        for key in ("ph", "pid", "tid"):
            if key not in ev:
                return fail(path, f"event {i} missing {key!r}")
        if ev["ph"] in ("X", "i") and "ts" not in ev:
            return fail(path, f"event {i} ({ev['ph']}) missing ts")
        if ev["ph"] == "X":
            if "dur" not in ev:
                return fail(path, f"event {i} (X) missing dur")
            complete += 1
    if complete == 0:
        return fail(path, "no complete ('X') span events")
    return True


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--kind", choices=("metrics", "trace"), required=True)
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    check = check_metrics if args.kind == "metrics" else check_trace
    ok = True
    for path in args.files:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            ok = fail(path, str(e))
            continue
        if check(path, doc):
            print(f"{path}: ok")
        else:
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
