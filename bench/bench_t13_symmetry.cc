// T13 — Process-permutation symmetry quotient (core/sym.hpp).
//
// A/B bench of the orbit-quotiented intern path against the full state
// space on the IIS model (full symmetric group, permutation-closed inputs):
// the same exploration + valence classification runs with the quotient
// forced off and forced on via sym::ScopedSymmetry, so the pair of rows
// measures exactly what the canonicalization buys (and costs — shape
// hashing plus tie-group enumeration are paid per intern). The printed
// table is EXPERIMENTS.md T13: per n, the full and orbit state counts, the
// fold counter, and the reduction factor n!/|Stab| realizes in practice.
//
// Both modes are registered regardless of the LACON_SYMMETRY environment so
// bench names stay stable for the ci.sh baseline comparison.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>
#include <string>

#include "core/sym.hpp"
#include "engine/explore.hpp"
#include "engine/valence.hpp"
#include "models/iis/iis_model.hpp"
#include "runtime/stats.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

constexpr int kDepth = 1;    // one full layer below Con_0
constexpr int kHorizon = 2;  // valence budget for the classify rows

std::size_t explore_total(IisModel& model, int depth) {
  std::size_t total = 0;
  for (const auto& level : reachable_by_depth(model, depth)) {
    total += level.size();
  }
  return total;
}

void explore_and_classify(benchmark::State& state, int n, bool symmetry) {
  sym::ScopedSymmetry mode(symmetry);
  const auto rule = min_after_round(2);
  for (auto _ : state) {
    IisModel model(n, *rule);
    const auto levels = reachable_by_depth(model, kDepth);
    ValenceEngine engine(model, kHorizon, Exactness::kQuiescence);
    engine.classify_all(levels.back());
    benchmark::DoNotOptimize(model.num_states());
  }
}

// The benchmark n sweep stops at 4: the full-space rows are the cost being
// quotiented away, and already at n=5 the unquotiented classify runs tens
// of seconds — the T13 table above covers the larger n via exploration
// counts, which is where the cut itself is measured.
void register_n_sweep(const char* name, bool symmetry) {
  for (const int n : {3, 4}) {
    benchmark::RegisterBenchmark(
        (std::string(name) + "/n:" + std::to_string(n)).c_str(),
        explore_and_classify, n, symmetry)
        ->Unit(benchmark::kMillisecond);
  }
}

// T13: measured state-space cut per n. The weighted column re-expands each
// representative by its orbit weight; matching the full count is the
// correctness identity the quotient rests on.
void print_table() {
  auto& folds = runtime::Stats::global().counter("arena.sym_folds");
  Table table({"n", "full states", "orbit reps", "weighted", "sym_folds",
               "reduction"});
  const auto rule = min_after_round(2);
  for (int n = 3; n <= 6; ++n) {
    std::size_t full_total = 0;
    {
      sym::ScopedSymmetry off(false);
      IisModel model(n, *rule);
      full_total = explore_total(model, kDepth);
    }
    const std::uint64_t folds_before = folds.value();
    sym::ScopedSymmetry on(true);
    IisModel model(n, *rule);
    std::size_t quotient_total = 0;
    std::uint64_t weighted_total = 0;
    for (const auto& level : reachable_by_depth(model, kDepth)) {
      quotient_total += level.size();
      for (const StateId x : level) weighted_total += model.orbit_weight(x);
    }
    char reduction[32];
    std::snprintf(reduction, sizeof(reduction), "%.2fx",
                  quotient_total != 0
                      ? static_cast<double>(full_total) /
                            static_cast<double>(quotient_total)
                      : 0.0);
    table.add_row({std::to_string(n), std::to_string(full_total),
                   std::to_string(quotient_total),
                   std::to_string(weighted_total),
                   std::to_string(folds.value() - folds_before), reduction});
  }
  std::fputs(table
                 .to_string("T13: orbit quotient state-space cut "
                            "(IIS, depth " +
                            std::to_string(kDepth) + ")")
                 .c_str(),
             stdout);
}

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::register_n_sweep("BM_ExploreClassifyFull", false);
  lacon::register_n_sweep("BM_ExploreClassifyQuotient", true);
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
