// Shared flag handling for the bench mains: --budget-ms / --max-states.
//
// Every bench accepts
//   --budget-ms=N    wall-clock budget per top-level engine call
//   --max-states=N   state budget evaluated at depth boundaries
// (space-separated value forms work too). init() strips them from argv
// before benchmark::Initialize sees them — google-benchmark aborts on
// unknown flags — and stores them in guard::process_guard_spec(), which the
// unguarded engine entry points consult; each top-level call then runs
// under a fresh Guard whose deadline counts from that call's start.
//
// The benches print their analysis tables *before* benchmark::Initialize,
// so by the time add_json_context() runs, any truncation those analyses
// suffered is recorded in the guard.trips_* stats counters and lands in the
// benchmark JSON context. Truncations during the timed benchmark loops
// appear in the runtime_report() table printed at exit instead.
//
// finish() is the common epilogue: it prints runtime_report() and emits the
// observability artifacts requested via LACON_METRICS_FILE (MetricsSnapshot
// JSON, always when set) and LACON_TRACE_FILE (Chrome trace JSON, only under
// LACON_TRACE=spans). bench/run_all.sh points both at the output directory
// so every BENCH_<tag>.json gains a METRICS_<tag>.json sibling.
#pragma once

#include <benchmark/benchmark.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/reports.hpp"
#include "runtime/guard.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"

namespace lacon::benchflags {

inline bool parse_u64(const char* text, unsigned long long* out) {
  if (text == nullptr || *text < '0' || *text > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

inline void init(int* argc, char** argv) {
  guard::GuardSpec& spec = guard::process_guard_spec();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    bool is_budget;
    const char* value;
    if (std::strncmp(arg, "--budget-ms", 11) == 0 &&
        (arg[11] == '\0' || arg[11] == '=')) {
      is_budget = true;
      value = arg[11] == '=' ? arg + 12 : nullptr;
    } else if (std::strncmp(arg, "--max-states", 12) == 0 &&
               (arg[12] == '\0' || arg[12] == '=')) {
      is_budget = false;
      value = arg[12] == '=' ? arg + 13 : nullptr;
    } else {
      argv[out++] = argv[i];
      continue;
    }
    if (value == nullptr) {  // "--budget-ms 100" space-separated form
      value = (i + 1 < *argc) ? argv[++i] : "";
    }
    unsigned long long parsed = 0;
    if (!parse_u64(value, &parsed) || parsed == 0) {
      std::fprintf(stderr, "lacon: ignoring malformed %s value '%s'\n",
                   is_budget ? "--budget-ms" : "--max-states", value);
      continue;
    }
    if (is_budget) {
      spec.budget_ms = static_cast<std::int64_t>(parsed);
    } else {
      spec.max_states = static_cast<std::size_t>(parsed);
    }
  }
  for (int i = out; i < *argc; ++i) argv[i] = nullptr;
  *argc = out;
}

inline void add_json_context() {
  const guard::GuardSpec& spec = guard::process_guard_spec();
  if (!spec.limited()) return;
  if (spec.budget_ms > 0) {
    benchmark::AddCustomContext("lacon_budget_ms",
                                std::to_string(spec.budget_ms));
  }
  if (spec.max_states > 0) {
    benchmark::AddCustomContext("lacon_max_states",
                                std::to_string(spec.max_states));
  }
  std::string truncation;
  for (const runtime::StatSample& s : runtime::Stats::global().snapshot()) {
    constexpr const char* kPrefix = "guard.trips_";
    if (!s.is_timer && s.name.rfind(kPrefix, 0) == 0 && s.value > 0) {
      if (!truncation.empty()) truncation += ",";
      truncation +=
          s.name.substr(std::strlen(kPrefix)) + ":" + std::to_string(s.value);
    }
  }
  benchmark::AddCustomContext("lacon_truncation",
                              truncation.empty() ? "none" : truncation);
}

// Common bench epilogue: human-readable stats table to stdout, then the
// machine-readable artifacts (metrics snapshot and, under LACON_TRACE=spans,
// the Chrome trace) to the paths named by the environment.
inline void finish() {
  std::fputs(runtime_report().c_str(), stdout);
  trace::write_env_artifacts();
}

}  // namespace lacon::benchflags
