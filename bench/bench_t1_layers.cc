// T1 — Layer anatomy. For every model and n, the number of environment
// actions of the layering, the number of *distinct* successor states
// |S(x)| at an initial state, and the dedup ratio. Expected values (from
// the layering definitions):
//   S1:    n(n+1) actions, n^2-n+1 distinct states
//   S^rw:  n(n+2) actions
//   S^per: n! + n! + (n-1)n!/2 actions
//   S^t:   1 + n^2 actions while failures remain
// plus google-benchmark timings of layer enumeration.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>

#include "analysis/reports.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

long long actions_of(ModelKind kind, int n) {
  switch (kind) {
    case ModelKind::kMobile:
      return static_cast<long long>(n) * (n + 1);
    case ModelKind::kSharedMem:
      return static_cast<long long>(n) * (n + 2);
    case ModelKind::kMsgPass: {
      long long fact = 1;
      for (int i = 2; i <= n; ++i) fact *= i;
      return fact + fact + (n - 1) * fact / 2;
    }
    case ModelKind::kSync:
      return 1 + static_cast<long long>(n) * n;
  }
  return 0;
}

void print_table() {
  Table table({"model", "n", "actions", "|S(x)| distinct", "dedup ratio"});
  auto rule = never_decide();
  for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                         ModelKind::kMsgPass, ModelKind::kSync}) {
    const int max_n = (kind == ModelKind::kMsgPass) ? 5 : 6;
    for (int n = (kind == ModelKind::kSync ? 3 : 2); n <= max_n; ++n) {
      auto model = make_model(kind, n, 1, *rule);
      const StateId x0 = model->initial_states().front();
      const long long actions = actions_of(kind, n);
      const long long distinct =
          static_cast<long long>(model->layer(x0).size());
      table.add_row({model_kind_name(kind), cell(static_cast<long long>(n)),
                     cell(actions), cell(distinct),
                     cell(static_cast<double>(actions) /
                              static_cast<double>(distinct),
                          2)});
    }
  }
  std::fputs(table.to_string("T1: layer anatomy").c_str(), stdout);
}

void BM_LayerEnumeration(benchmark::State& state, ModelKind kind) {
  const int n = static_cast<int>(state.range(0));
  auto rule = never_decide();
  for (auto _ : state) {
    // Rebuild the model each iteration so the layer cache does not trivialize
    // the measurement.
    auto model = make_model(kind, n, 1, *rule);
    benchmark::DoNotOptimize(
        model->layer(model->initial_states().front()).size());
  }
}

BENCHMARK_CAPTURE(BM_LayerEnumeration, mobile, ModelKind::kMobile)
    ->Arg(3)
    ->Arg(5);
BENCHMARK_CAPTURE(BM_LayerEnumeration, sharedmem, ModelKind::kSharedMem)
    ->Arg(3)
    ->Arg(5);
BENCHMARK_CAPTURE(BM_LayerEnumeration, msgpass, ModelKind::kMsgPass)
    ->Arg(3)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_LayerEnumeration, sync, ModelKind::kSync)->Arg(3)->Arg(5);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
