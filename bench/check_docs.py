#!/usr/bin/env python3
"""Docs drift gate: every LACON_* knob the source reads is documented.

Usage:
    bench/check_docs.py [REPO_ROOT]

Scans src/ for environment reads of LACON_* variables (getenv call sites)
and asserts each one has a row in README.md's knob table — the `|
`LACON_X` | ...` rows. The reverse direction is checked too: a knob row
whose variable no source file reads anymore is stale documentation and
fails the gate just the same. This keeps the README's operational surface
exactly in sync with the code; FORMATS.md / PROTOCOL.md cover the on-disk
and wire surfaces, but the knob table is the one place operators learn
what the process environment does.
"""

import os
import re
import sys

_GETENV = re.compile(r'getenv\s*\(\s*"(LACON_[A-Z0-9_]+)"')
_KNOB_ROW = re.compile(r"^\|\s*`(LACON_[A-Z0-9_]+)`\s*\|")


def knobs_read_in_src(root):
    knobs = {}
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in filenames:
            if not name.endswith((".cc", ".hpp", ".h")):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                for knob in _GETENV.findall(f.read()):
                    knobs.setdefault(knob, os.path.relpath(path, root))
    return knobs


def knobs_documented(root):
    rows = set()
    with open(os.path.join(root, "README.md"), encoding="utf-8") as f:
        for line in f:
            m = _KNOB_ROW.match(line)
            if m:
                rows.add(m.group(1))
    return rows


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    read = knobs_read_in_src(root)
    documented = knobs_documented(root)

    failures = 0
    for knob in sorted(set(read) - documented):
        print(
            f"check_docs: FAIL {knob} is read ({read[knob]}) but has no "
            "README.md knob-table row"
        )
        failures += 1
    for knob in sorted(documented - set(read)):
        print(
            f"check_docs: FAIL {knob} has a README.md knob-table row but "
            "no src/ getenv reads it"
        )
        failures += 1

    if failures:
        return 1
    print(
        f"check_docs: OK ({len(read)} knobs read in src/, every one "
        "documented, no stale rows)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
