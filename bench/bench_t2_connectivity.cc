// T2 — Connectivity of Con_0 and of layers (Lemmas 3.6, 5.1(iii), 5.3(iii)).
// For every model and n: is Con_0 similarity connected (must be yes), its
// s-diameter (= n, by the Lemma 3.6 chain), is Con_0 valence connected, is
// a bivalent initial state found, and are the layers of the initial states
// valence connected. Timings: connectivity checks.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "analysis/reports.hpp"
#include "relation/similarity.hpp"
#include "relation/similarity_index.hpp"
#include "runtime/stats.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

bool graphs_identical(const Graph& a, const Graph& b) {
  if (a.size() != b.size() || a.edge_count() != b.edge_count()) return false;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

// Indexed-vs-naive ablation over Con_0: for each model and n, the number of
// pairs each strategy evaluates (relation.pairs_evaluated deltas), wall
// time, and a byte-identity check of the two graphs. The mobile rows grow n
// well past what the naive sweep's timings invite — that is the point.
void print_index_ablation() {
  Table table({"model", "n", "|X|", "naive pairs", "indexed pairs",
               "pairs ratio", "naive ms", "indexed ms", "identical"});
  auto& pairs = runtime::Stats::global().counter("relation.pairs_evaluated");
  auto rule = never_decide();
  struct Cfg {
    ModelKind kind;
    int n;
  };
  const Cfg cfgs[] = {{ModelKind::kMobile, 5},    {ModelKind::kMobile, 6},
                      {ModelKind::kMobile, 7},    {ModelKind::kMobile, 8},
                      {ModelKind::kSharedMem, 5}, {ModelKind::kMsgPass, 3},
                      {ModelKind::kSync, 5}};
  for (const Cfg& cfg : cfgs) {
    const int t = cfg.kind == ModelKind::kSync ? cfg.n - 2 : 1;
    auto model = make_model(cfg.kind, cfg.n, t, *rule);
    const auto& con0 = model->initial_states();
    using Clock = std::chrono::steady_clock;

    const std::uint64_t pairs0 = pairs.value();
    const auto t0 = Clock::now();
    const Graph naive = similarity_graph_naive(*model, con0);
    const auto t1 = Clock::now();
    const std::uint64_t naive_pairs = pairs.value() - pairs0;
    const Graph indexed = similarity_graph_indexed(*model, con0);
    const auto t2 = Clock::now();
    const std::uint64_t indexed_pairs = pairs.value() - pairs0 - naive_pairs;

    const auto ms = [](auto d) {
      return std::chrono::duration<double, std::milli>(d).count();
    };
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.1fx",
                  indexed_pairs == 0
                      ? 0.0
                      : static_cast<double>(naive_pairs) /
                            static_cast<double>(indexed_pairs));
    char naive_ms[32], indexed_ms[32];
    std::snprintf(naive_ms, sizeof naive_ms, "%.2f", ms(t1 - t0));
    std::snprintf(indexed_ms, sizeof indexed_ms, "%.2f", ms(t2 - t1));
    table.add_row({model_kind_name(cfg.kind),
                   cell(static_cast<long long>(cfg.n)),
                   cell(static_cast<long long>(con0.size())),
                   cell(static_cast<long long>(naive_pairs)),
                   cell(static_cast<long long>(indexed_pairs)), ratio,
                   naive_ms, indexed_ms,
                   cell(graphs_identical(naive, indexed))});
  }
  std::fputs(table
                 .to_string("T2b: similarity-index ablation on Con_0 "
                            "(naive sweep vs erase-one fingerprint index)")
                 .c_str(),
             stdout);
}

void print_table() {
  Table table({"model", "n", "Con0 ~s conn", "s-diam", "Con0 ~v conn",
               "bivalent init", "layer ~v conn"});
  for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                         ModelKind::kMsgPass, ModelKind::kSync}) {
    const int max_n = (kind == ModelKind::kMsgPass) ? 3 : 4;
    for (int n = 3; n <= max_n; ++n) {
      const int t = (kind == ModelKind::kSync) ? n - 2 : 1;
      auto rule = min_after_round(kind == ModelKind::kSync ? t + 1 : 2);
      auto model = make_model(kind, n, t, *rule);
      const auto& con0 = model->initial_states();
      const bool sim = similarity_connected(*model, con0);
      const auto diam = s_diameter(*model, con0);
      ValenceEngine engine(*model, t + 2, default_exactness(kind));
      const bool val = engine.valence_connected(con0);
      const bool biv = engine.find_bivalent(con0).has_value();
      // Layer connectivity at the first bivalent initial state (where it
      // matters for the Theorem 4.2 construction).
      bool layer_val = true;
      if (const auto start = engine.find_bivalent(con0)) {
        layer_val = engine.valence_connected(model->layer(*start));
      }
      table.add_row({model_kind_name(kind), cell(static_cast<long long>(n)),
                     cell(sim),
                     diam ? cell(static_cast<long long>(*diam)) : "inf",
                     cell(val), cell(biv), cell(layer_val)});
    }
  }
  std::fputs(
      table.to_string("T2: connectivity of Con_0 and of layers").c_str(),
      stdout);
}

void BM_Con0SimilarityConnectivity(benchmark::State& state, ModelKind kind) {
  const int n = static_cast<int>(state.range(0));
  auto rule = never_decide();
  auto model = make_model(kind, n, 1, *rule);
  const auto& con0 = model->initial_states();
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity_connected(*model, con0));
  }
}

void BM_Con0ValenceConnectivity(benchmark::State& state, ModelKind kind) {
  const int n = static_cast<int>(state.range(0));
  auto rule = min_after_round(2);
  for (auto _ : state) {
    auto model = make_model(kind, n, 1, *rule);
    ValenceEngine engine(*model, 3, default_exactness(kind));
    benchmark::DoNotOptimize(
        engine.valence_connected(model->initial_states()));
  }
}

BENCHMARK_CAPTURE(BM_Con0SimilarityConnectivity, mobile, ModelKind::kMobile)
    ->Arg(3)
    ->Arg(5);
BENCHMARK_CAPTURE(BM_Con0SimilarityConnectivity, sharedmem,
                  ModelKind::kSharedMem)
    ->Arg(3)
    ->Arg(5);
BENCHMARK_CAPTURE(BM_Con0ValenceConnectivity, mobile, ModelKind::kMobile)
    ->Arg(3);
BENCHMARK_CAPTURE(BM_Con0ValenceConnectivity, sharedmem,
                  ModelKind::kSharedMem)
    ->Arg(3);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::print_index_ablation();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
