// T2 — Connectivity of Con_0 and of layers (Lemmas 3.6, 5.1(iii), 5.3(iii)).
// For every model and n: is Con_0 similarity connected (must be yes), its
// s-diameter (= n, by the Lemma 3.6 chain), is Con_0 valence connected, is
// a bivalent initial state found, and are the layers of the initial states
// valence connected. Timings: connectivity checks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/reports.hpp"
#include "relation/similarity.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

void print_table() {
  Table table({"model", "n", "Con0 ~s conn", "s-diam", "Con0 ~v conn",
               "bivalent init", "layer ~v conn"});
  for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                         ModelKind::kMsgPass, ModelKind::kSync}) {
    const int max_n = (kind == ModelKind::kMsgPass) ? 3 : 4;
    for (int n = 3; n <= max_n; ++n) {
      const int t = (kind == ModelKind::kSync) ? n - 2 : 1;
      auto rule = min_after_round(kind == ModelKind::kSync ? t + 1 : 2);
      auto model = make_model(kind, n, t, *rule);
      const auto& con0 = model->initial_states();
      const bool sim = similarity_connected(*model, con0);
      const auto diam = s_diameter(*model, con0);
      ValenceEngine engine(*model, t + 2, default_exactness(kind));
      const bool val = engine.valence_connected(con0);
      const bool biv = engine.find_bivalent(con0).has_value();
      // Layer connectivity at the first bivalent initial state (where it
      // matters for the Theorem 4.2 construction).
      bool layer_val = true;
      if (const auto start = engine.find_bivalent(con0)) {
        layer_val = engine.valence_connected(model->layer(*start));
      }
      table.add_row({model_kind_name(kind), cell(static_cast<long long>(n)),
                     cell(sim),
                     diam ? cell(static_cast<long long>(*diam)) : "inf",
                     cell(val), cell(biv), cell(layer_val)});
    }
  }
  std::fputs(
      table.to_string("T2: connectivity of Con_0 and of layers").c_str(),
      stdout);
}

void BM_Con0SimilarityConnectivity(benchmark::State& state, ModelKind kind) {
  const int n = static_cast<int>(state.range(0));
  auto rule = never_decide();
  auto model = make_model(kind, n, 1, *rule);
  const auto& con0 = model->initial_states();
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity_connected(*model, con0));
  }
}

void BM_Con0ValenceConnectivity(benchmark::State& state, ModelKind kind) {
  const int n = static_cast<int>(state.range(0));
  auto rule = min_after_round(2);
  for (auto _ : state) {
    auto model = make_model(kind, n, 1, *rule);
    ValenceEngine engine(*model, 3, default_exactness(kind));
    benchmark::DoNotOptimize(
        engine.valence_connected(model->initial_states()));
  }
}

BENCHMARK_CAPTURE(BM_Con0SimilarityConnectivity, mobile, ModelKind::kMobile)
    ->Arg(3)
    ->Arg(5);
BENCHMARK_CAPTURE(BM_Con0SimilarityConnectivity, sharedmem,
                  ModelKind::kSharedMem)
    ->Arg(3)
    ->Arg(5);
BENCHMARK_CAPTURE(BM_Con0ValenceConnectivity, mobile, ModelKind::kMobile)
    ->Arg(3);
BENCHMARK_CAPTURE(BM_Con0ValenceConnectivity, sharedmem,
                  ModelKind::kSharedMem)
    ->Arg(3);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::fputs(lacon::runtime_report().c_str(), stdout);
  return 0;
}
