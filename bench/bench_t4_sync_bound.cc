// T4 — The synchronous lower bound (Corollary 6.3) and its tightness.
// For t = 1..3:
//   * the Lemma 6.1 bivalent chain built inside S^t has length t-1;
//   * "decide at round t" breaks agreement somewhere in S^t (lower bound);
//   * FloodSet and EIG decide in exactly t+1 rounds in the worst case
//     (tightness), with the value-hiding chain as the forcing adversary;
//   * the early-deciding variant decides by min(f+2, t+1).
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>

#include "analysis/reports.hpp"

#include "engine/bivalence.hpp"
#include "engine/spec.hpp"
#include "models/synchronous/sync_model.hpp"
#include "protocols/early_deciding.hpp"
#include "protocols/eig.hpp"
#include "protocols/floodset.hpp"
#include "sim/sync_sim.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

void print_lower_bound_table() {
  Table table({"t", "n", "bivalent chain len", "round-t rule breaks",
               "floodset worst rnd", "eig worst rnd"});
  for (int t = 1; t <= 3; ++t) {
    const int n = t + 2;
    // Lemma 6.1 chain.
    auto rule = min_after_round(t + 1);
    SyncModel model(n, t, *rule);
    ValenceEngine engine(model, t + 2);
    const BivalentRunResult chain = extend_bivalent_run(engine, t - 1);
    // Lower bound: the "decide at round t" rule violates agreement.
    auto early_rule = min_after_round(t);
    SyncModel early(n, t, *early_rule);
    const SpecReport report = check_consensus_spec(early, t + 1);
    // Tightness: worst-case decision rounds under the hiding chain.
    std::vector<Value> inputs(static_cast<std::size_t>(n), 1);
    inputs[0] = 0;
    const auto fs = run_sync(*floodset_factory(), n, t, inputs,
                             hiding_chain(n, t));
    const auto eg = run_sync(*eig_factory(), n, t, inputs, hiding_chain(n, t));
    table.add_row({cell(static_cast<long long>(t)),
                   cell(static_cast<long long>(n)),
                   cell(static_cast<long long>(chain.run.size()) - 1),
                   cell(report.agreement.has_value()),
                   cell(static_cast<long long>(fs.outcome.max_decision_round)),
                   cell(static_cast<long long>(eg.outcome.max_decision_round))});
  }
  std::fputs(
      table.to_string("T4a: t+1 lower bound and tightness").c_str(), stdout);
}

void print_early_deciding_table() {
  // Early-deciding curve: worst decision round over random adversaries with
  // exactly f crashes, vs the min(f+2, t+1) bound.
  const int n = 6;
  const int t = 4;
  Table table({"f (actual crashes)", "worst decision round", "bound f+2",
               "bound t+1"});
  for (int f = 0; f <= t; ++f) {
    int worst = 0;
    for (std::uint64_t seed = 0; seed < 400; ++seed) {
      const CrashPlan plan = random_crashes(n, t, t + 1, seed);
      if (static_cast<int>(plan.size()) != f) continue;
      const auto r = run_sync(*early_deciding_factory(), n, t,
                              {1, 0, 1, 1, 0, 1}, plan);
      worst = std::max(worst, r.outcome.max_decision_round);
    }
    table.add_row({cell(static_cast<long long>(f)),
                   cell(static_cast<long long>(worst)),
                   cell(static_cast<long long>(f + 2)),
                   cell(static_cast<long long>(t + 1))});
  }
  std::fputs(
      table.to_string("T4b: early-deciding rounds vs f (n=6, t=4)").c_str(),
      stdout);
}

void BM_Lemma61Chain(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int n = t + 2;
  auto rule = min_after_round(t + 1);
  for (auto _ : state) {
    SyncModel model(n, t, *rule);
    ValenceEngine engine(model, t + 2);
    benchmark::DoNotOptimize(extend_bivalent_run(engine, t - 1).complete);
  }
}
BENCHMARK(BM_Lemma61Chain)->Arg(1)->Arg(2);

void BM_FloodSetWorstCase(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int n = t + 2;
  const auto factory = floodset_factory();
  std::vector<Value> inputs(static_cast<std::size_t>(n), 1);
  inputs[0] = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_sync(*factory, n, t, inputs, hiding_chain(n, t))
            .outcome.max_decision_round);
  }
}
BENCHMARK(BM_FloodSetWorstCase)->Arg(1)->Arg(3)->Arg(5);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_lower_bound_table();
  lacon::print_early_deciding_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
