// T12 — Runtime-dispatched SIMD kernels (util/simd.hpp, DESIGN.md §13).
//
// Per-kernel scalar-vs-dispatched A/B over the four hot loops the kernel
// table serves — agree_modulo word/lane compares, erase-one fingerprint
// rows, DenseBitset bulk sweeps, and the BFS frontier-advance step behind
// Graph::diameter — plus an end-to-end n=8 explore + similarity + diameter
// workload per table. Benchmarks are registered once per kernel table the
// host can execute (always "scalar"; "avx2"/"neon" where supported), so
// names stay stable per host family and the ci.sh baseline gate compares
// like with like. The printed T12 table reports the per-kernel speedup of
// each dispatched table over scalar; the identity of the *results* is the
// tests' job (tests/simd_test.cc), not this harness's.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "analysis/reports.hpp"
#include "core/state.hpp"
#include "engine/explore.hpp"
#include "relation/graph.hpp"
#include "relation/similarity_index.hpp"
#include "runtime/simd_dispatch.hpp"
#include "runtime/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

using simd::Kernels;

std::vector<const Kernels*> available_tables() {
  std::vector<const Kernels*> out = {&simd::scalar_kernels()};
  for (simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (const Kernels* k = simd::kernels_for(isa)) out.push_back(k);
  }
  return out;
}

// --- Kernel workloads (shared by the benchmarks and the speedup table) ------

constexpr std::size_t kStates = 2048;     // agree/fingerprint population
constexpr std::size_t kEnvWords = 3;      // env prefix, as in exploration
constexpr std::size_t kN = 8;             // lanes per state (n = 8)
constexpr std::size_t kBitWords = 4096;   // bitset sweep width (256 Kbit)

struct StatePayload {
  std::vector<std::int64_t> env;
  std::vector<std::int32_t> locals;
  std::vector<std::int32_t> decisions;
};

std::vector<StatePayload> make_states() {
  std::vector<StatePayload> out(kStates);
  for (std::size_t s = 0; s < kStates; ++s) {
    auto& p = out[s];
    p.env.resize(kEnvWords);
    p.locals.resize(kN);
    p.decisions.resize(kN);
    // Near-identical neighbors: consecutive states differ in one lane, so
    // the compares mostly run to the end — the hot case agree_modulo's
    // callers (the similarity index's candidate confirmation) produce.
    for (std::size_t e = 0; e < kEnvWords; ++e) {
      p.env[e] = static_cast<std::int64_t>(mix64(e + 1));
    }
    for (std::size_t i = 0; i < kN; ++i) {
      p.locals[i] = static_cast<std::int32_t>(i * 17);
      p.decisions[i] = -1;
    }
    p.locals[s % kN] = static_cast<std::int32_t>(mix64(s) & 0xffff);
  }
  return out;
}

std::uint64_t agree_pass(const Kernels& k,
                         const std::vector<StatePayload>& states) {
  std::uint64_t agreed = 0;
  for (std::size_t s = 0; s + 1 < states.size(); ++s) {
    const auto& a = states[s];
    const auto& b = states[s + 1];
    const auto j = s % kN;
    agreed += static_cast<std::uint64_t>(
        k.words_equal(a.env.data(), b.env.data(), kEnvWords) &&
        k.lanes_equal_skip(a.locals.data(), b.locals.data(), kN, j) &&
        k.lanes_equal_skip(a.decisions.data(), b.decisions.data(), kN, j));
  }
  return agreed;
}

std::uint64_t fingerprint_pass(const Kernels& k,
                               const std::vector<StatePayload>& states) {
  std::uint64_t acc = 0;
  std::uint64_t row[kN];
  for (std::size_t s = 0; s < states.size(); ++s) {
    k.fingerprint_lanes(mix64(s), states[s].locals.data(),
                        states[s].decisions.data(), kN, row);
    acc ^= row[s % kN];
  }
  return acc;
}

struct BitsetPayload {
  std::vector<std::uint64_t> dst;
  std::vector<std::uint64_t> src;
};

BitsetPayload make_bitsets() {
  BitsetPayload p;
  p.dst.resize(kBitWords);
  p.src.resize(kBitWords);
  for (std::size_t i = 0; i < kBitWords; ++i) {
    p.dst[i] = mix64(i);
    p.src[i] = mix64(i + kBitWords);
  }
  return p;
}

std::uint64_t bitset_pass(const Kernels& k, BitsetPayload& p) {
  k.bitset_or(p.dst.data(), p.src.data(), kBitWords);
  k.bitset_andnot(p.dst.data(), p.src.data(), kBitWords);
  k.bitset_and(p.dst.data(), p.src.data(), kBitWords);
  return k.bitset_popcount(p.dst.data(), kBitWords) ^
         k.bitset_find_first(p.dst.data(), kBitWords);
}

struct FrontierPayload {
  std::vector<std::uint64_t> next0;     // pristine wave, copied per pass
  std::vector<std::uint64_t> visited0;
  std::vector<std::uint64_t> next;
  std::vector<std::uint64_t> visited;
  std::vector<std::uint32_t> out;
};

FrontierPayload make_frontier() {
  FrontierPayload p;
  p.next0.assign(kBitWords, 0);
  p.visited0.assign(kBitWords, 0);
  std::mt19937_64 rng(0x7431325f73696dULL);
  // A sparse wave over a mostly-unvisited space: ~1/16 of the words carry
  // frontier bits, matching the mid-BFS shape of the diameter sweeps.
  for (std::size_t i = 0; i < kBitWords / 16; ++i) {
    p.next0[rng() % kBitWords] = rng();
    p.visited0[rng() % kBitWords] = rng();
  }
  p.next.resize(kBitWords);
  p.visited.resize(kBitWords);
  p.out.resize(kBitWords * 64);
  return p;
}

std::uint64_t frontier_pass(const Kernels& k, FrontierPayload& p) {
  p.next = p.next0;
  p.visited = p.visited0;
  return k.frontier_advance(p.next.data(), p.visited.data(), kBitWords,
                            p.out.data());
}

// --- google-benchmark registrations, one per available table ----------------

void register_per_kernel(const Kernels* k) {
  const std::string suffix = std::string("/") + k->name;
  benchmark::RegisterBenchmark(
      ("BM_AgreeModulo" + suffix).c_str(),
      [k](benchmark::State& state) {
        const auto states = make_states();
        for (auto _ : state) {
          benchmark::DoNotOptimize(agree_pass(*k, states));
        }
        state.counters["pairs_per_iter"] =
            static_cast<double>(kStates - 1);
      })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      ("BM_FingerprintRow" + suffix).c_str(),
      [k](benchmark::State& state) {
        const auto states = make_states();
        for (auto _ : state) {
          benchmark::DoNotOptimize(fingerprint_pass(*k, states));
        }
        state.counters["rows_per_iter"] = static_cast<double>(kStates);
      })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      ("BM_BitsetSweep" + suffix).c_str(),
      [k](benchmark::State& state) {
        auto payload = make_bitsets();
        for (auto _ : state) {
          benchmark::DoNotOptimize(bitset_pass(*k, payload));
        }
        state.counters["words_per_iter"] = static_cast<double>(kBitWords);
      })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      ("BM_FrontierAdvance" + suffix).c_str(),
      [k](benchmark::State& state) {
        auto payload = make_frontier();
        for (auto _ : state) {
          benchmark::DoNotOptimize(frontier_pass(*k, payload));
        }
        state.counters["words_per_iter"] = static_cast<double>(kBitWords);
      })
      ->Unit(benchmark::kMicrosecond);
}

// End-to-end acceptance workload per table: explore the n=8 mobile model one
// layer below Con_0 (agree_modulo in the interning path), build the indexed
// similarity graph of the frontier (fingerprint rows + candidate
// confirmation), check its connectivity and fold the s-diameters of the
// first initial layers (bitmap BFS). One worker: this measures kernels, not
// scheduling.
void register_end_to_end(const Kernels* k) {
  benchmark::RegisterBenchmark(
      (std::string("BM_ExploreSimilarityDiameterN8/") + k->name).c_str(),
      [k](benchmark::State& state) {
        runtime::WorkerCountOverride workers(1);
        simd::KernelOverride override_k(*k);
        auto rule = never_decide();
        for (auto _ : state) {
          auto model = make_model(ModelKind::kMobile, 8, 1, *rule);
          const auto levels = reachable_by_depth(*model, 1);
          const Graph g = similarity_graph_indexed(*model, levels.back());
          benchmark::DoNotOptimize(g.connected());
          std::size_t worst = 0;
          const auto& initial = model->initial_states();
          for (std::size_t i = 0; i < 16 && i < initial.size(); ++i) {
            const Graph layer_graph = similarity_graph_indexed(
                *model, model->layer(initial[i]));
            if (const auto d = layer_graph.diameter()) {
              worst = std::max(worst, *d);
            }
          }
          benchmark::DoNotOptimize(worst);
        }
      })
      ->Unit(benchmark::kMillisecond);
}

// --- T12 table: per-kernel speedup of each dispatched table over scalar -----

template <typename Fn>
double time_ns_per_pass(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  // One warmup, then best-of-3 timed batches to shrug off scheduler noise.
  fn();
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    constexpr int kBatch = 20;
    const auto t0 = Clock::now();
    for (int i = 0; i < kBatch; ++i) fn();
    const auto t1 = Clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kBatch);
  }
  return best;
}

void print_table() {
  const auto tables = available_tables();
  const auto states = make_states();
  auto bits = make_bitsets();
  auto frontier = make_frontier();
  std::uint64_t sink = 0;

  Table table({"kernel", "table", "ns/pass", "speedup vs scalar"});
  const char* kernel_names[] = {"agree_modulo", "fingerprint_row",
                                "bitset_sweep", "frontier_advance"};
  for (int which = 0; which < 4; ++which) {
    double scalar_ns = 0;
    for (const Kernels* k : tables) {
      const double ns = time_ns_per_pass([&] {
        switch (which) {
          case 0: sink ^= agree_pass(*k, states); break;
          case 1: sink ^= fingerprint_pass(*k, states); break;
          case 2: sink ^= bitset_pass(*k, bits); break;
          default: sink ^= frontier_pass(*k, frontier); break;
        }
      });
      if (k == &simd::scalar_kernels()) scalar_ns = ns;
      char ns_text[32], speedup[32];
      std::snprintf(ns_text, sizeof ns_text, "%.0f", ns);
      std::snprintf(speedup, sizeof speedup, "%.2fx",
                    ns > 0 ? scalar_ns / ns : 0.0);
      table.add_row({kernel_names[which], k->name, ns_text, speedup});
    }
  }
  benchmark::DoNotOptimize(sink);
  std::fputs(table
                 .to_string(std::string("T12: SIMD kernel A/B (active() "
                                        "dispatch would pick '") +
                            simd::active_name() + "')")
                 .c_str(),
             stdout);
}

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  for (const lacon::simd::Kernels* k : lacon::available_tables()) {
    lacon::register_per_kernel(k);
    lacon::register_end_to_end(k);
  }
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
