// T7 — Protocol simulation: the upper-bound protocols at realistic sizes
// and the randomized/deterministic contrast on the asynchronous simulator.
//   * FloodSet / EIG / early-deciding decision rounds under no-failure,
//     random, and hiding-chain adversaries;
//   * Ben-Or expected phases and deliveries vs n (randomization escapes the
//     impossibility with probability 1);
//   * rotating coordinator: decides under fair schedules, wedges under the
//     starvation scheduler.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>

#include "analysis/reports.hpp"

#include "protocols/benor.hpp"
#include "protocols/coordinator.hpp"
#include "protocols/early_deciding.hpp"
#include "protocols/eig.hpp"
#include "protocols/floodset.hpp"
#include "sim/async_sim.hpp"
#include "sim/sync_sim.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

std::vector<Value> mixed_inputs(int n) {
  std::vector<Value> in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = i % 2;
  return in;
}

void print_sync_table() {
  Table table({"protocol", "n", "t", "rounds (no fail)", "rounds (chain)",
               "avg rounds (random)", "msgs (no fail)"});
  for (const auto& factory :
       {floodset_factory(), eig_factory(), early_deciding_factory()}) {
    for (int t : {2, 4}) {
      const int n = 2 * t;
      const auto inputs = mixed_inputs(n);
      const auto clean = run_sync(*factory, n, t, inputs, no_crashes());
      std::vector<Value> hidden(static_cast<std::size_t>(n), 1);
      hidden[0] = 0;
      const auto chain =
          run_sync(*factory, n, t, hidden, hiding_chain(n, t));
      double total = 0;
      int runs = 0;
      for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const auto r = run_sync(*factory, n, t, inputs,
                                random_crashes(n, t, t + 1, seed));
        total += r.outcome.max_decision_round;
        ++runs;
      }
      table.add_row(
          {factory->name(), cell(static_cast<long long>(n)),
           cell(static_cast<long long>(t)),
           cell(static_cast<long long>(clean.outcome.max_decision_round)),
           cell(static_cast<long long>(chain.outcome.max_decision_round)),
           cell(total / runs, 2),
           cell(static_cast<long long>(clean.messages_delivered))});
    }
  }
  std::fputs(table.to_string("T7a: synchronous protocols").c_str(), stdout);
}

void print_async_table() {
  Table table({"protocol", "n", "scheduler", "runs decided", "avg deliveries"});
  const auto benor = benor_factory();
  for (int n : {4, 6, 8}) {
    int decided = 0;
    double deliveries = 0;
    const int runs = 50;
    for (std::uint64_t seed = 0; seed < runs; ++seed) {
      Rng rng(seed);
      auto sched = random_scheduler(seed + 99);
      const auto r = run_async(*benor, n, (n - 1) / 2, mixed_inputs(n),
                               *sched, rng,
                               std::vector<long>(static_cast<std::size_t>(n), -1),
                               500000);
      if (r.all_alive_decided) ++decided;
      deliveries += static_cast<double>(r.deliveries);
    }
    table.add_row({"ben-or", cell(static_cast<long long>(n)), "fair-random",
                   cell(static_cast<long long>(decided)) + "/" +
                       std::to_string(runs),
                   cell(deliveries / runs, 1)});
  }
  const auto coord = rotating_coordinator_factory();
  {
    Rng rng(5);
    auto fair = random_scheduler(7);
    const auto r1 = run_async(*coord, 3, 1, {1, 0, 1}, *fair, rng,
                              {-1, -1, -1}, 100000);
    auto starve = starve_sender_scheduler(0, 7);
    const auto r2 = run_async(*coord, 3, 1, {1, 0, 1}, *starve, rng,
                              {-1, -1, -1}, 100000);
    table.add_row({"rot-coordinator", "3", "fair-random",
                   r1.all_alive_decided ? "3/3 procs" : "0",
                   cell(static_cast<double>(r1.deliveries), 1)});
    table.add_row({"rot-coordinator", "3", "starve-coordinator",
                   r2.stalled ? "wedged (0 decide)" : "decided?!",
                   cell(static_cast<double>(r2.deliveries), 1)});
  }
  std::fputs(table.to_string("T7b: asynchronous protocols").c_str(), stdout);
}

void BM_FloodSetRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 2 - 1;
  const auto factory = floodset_factory();
  const auto inputs = mixed_inputs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_sync(*factory, n, t, inputs, no_crashes()).rounds_executed);
  }
  state.SetItemsProcessed(state.iterations() * n * (t + 1));
}
BENCHMARK(BM_FloodSetRun)->Arg(8)->Arg(16)->Arg(32);

void BM_EigRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = 2;
  const auto factory = eig_factory();
  const auto inputs = mixed_inputs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_sync(*factory, n, t, inputs, no_crashes()).rounds_executed);
  }
}
BENCHMARK(BM_EigRun)->Arg(6)->Arg(8);

void BM_BenOrRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto factory = benor_factory();
  const auto inputs = mixed_inputs(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed);
    auto sched = random_scheduler(seed++);
    benchmark::DoNotOptimize(
        run_async(*factory, n, (n - 1) / 2, inputs, *sched, rng,
                  std::vector<long>(static_cast<std::size_t>(n), -1), 500000)
            .deliveries);
  }
}
BENCHMARK(BM_BenOrRun)->Arg(4)->Arg(8);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_sync_table();
  lacon::print_async_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
