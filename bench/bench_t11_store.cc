// T11 — lacon.store.v1 snapshot cold-start vs warm-start (store/snapshot.hpp).
//
// Two workloads: the t10 acceptance exploration (mobile n=8, one layer —
// interning-dominated, ~18k states / ~150k views) and a full small analysis
// (mobile n=4, depth 2, valence + s-diameter — memo- and cache-dominated).
// For each, BM_Cold pays the full exploration; BM_Warm loads a snapshot
// saved once per process and reruns the identical analysis, so the timing
// gap is exactly what the snapshot buys. BM_Load and BM_Save isolate the
// (de)serialization cost itself. The audit table shows the acceptance
// evidence: after a warm start the arena miss counters are 0 — the analysis
// re-interned nothing — while "arena.*_restored" carry the population.
//
// File IO makes the absolute numbers noisier than the in-memory benches;
// the committed baseline is gated accordingly in ci.sh (looser threshold
// than the t9/t10 hard gate).
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>

#include "analysis/reports.hpp"
#include "engine/explore.hpp"
#include "engine/valence.hpp"
#include "relation/similarity.hpp"
#include "runtime/stats.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

struct Workload {
  const char* tag;
  int n;
  int depth;
  int horizon;
  bool analyze;  // classify the frontier and take its s-diameter
};

constexpr Workload kExplore{"mobile_n8_d1", 8, 1, 2, false};
constexpr Workload kAnalyze{"mobile_n4_d2", 4, 2, 3, true};

struct Instance {
  std::unique_ptr<DecisionRule> rule;
  std::unique_ptr<LayeredModel> model;
  std::unique_ptr<ValenceEngine> engine;
};

Instance make_instance(const Workload& w) {
  Instance inst;
  inst.rule = min_after_round(2);
  inst.model = make_model(ModelKind::kMobile, w.n, 1, *inst.rule);
  if (w.analyze) {
    inst.engine = std::make_unique<ValenceEngine>(
        *inst.model, w.horizon, default_exactness(ModelKind::kMobile));
  }
  return inst;
}

std::size_t run_analysis(Instance& inst, const Workload& w) {
  const auto levels = reachable_by_depth(*inst.model, w.depth);
  const std::vector<StateId>& frontier = levels.back();
  if (w.analyze) {
    benchmark::DoNotOptimize(inst.engine->classify_all(frontier).size());
    benchmark::DoNotOptimize(s_diameter(*inst.model, frontier).has_value());
  }
  return frontier.size();
}

// One snapshot per workload per process, saved lazily from a cold run.
const std::string& snapshot_file(const Workload& w) {
  static std::string dir = [] {
    const std::string d = (std::filesystem::temp_directory_path() /
                           ("lacon_t11_store_" + std::to_string(::getpid())))
                              .string();
    std::filesystem::create_directories(d);
    return d;
  }();
  static std::string paths[2];
  std::string& path = paths[w.analyze ? 1 : 0];
  if (path.empty()) {
    path = dir + "/" + w.tag + ".lacon.store";
    Instance inst = make_instance(w);
    run_analysis(inst, w);
    const store::Result r = store::save(*inst.model, path, inst.engine.get());
    if (!r.ok()) {
      std::fprintf(stderr, "bench_t11_store: save failed: %s\n",
                   r.detail.c_str());
      std::exit(1);
    }
  }
  return path;
}

void cleanup_snapshots() {
  std::error_code ec;
  std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                  ("lacon_t11_store_" +
                                   std::to_string(::getpid())),
                              ec);
}

void BM_Cold(benchmark::State& state, const Workload& w) {
  std::size_t frontier = 0;
  for (auto _ : state) {
    Instance inst = make_instance(w);
    frontier = run_analysis(inst, w);
  }
  state.counters["frontier"] = static_cast<double>(frontier);
}

void BM_Warm(benchmark::State& state, const Workload& w) {
  const std::string& path = snapshot_file(w);
  auto& misses = runtime::Stats::global().counter("arena.state_misses");
  std::uint64_t new_misses = 0;
  for (auto _ : state) {
    Instance inst = make_instance(w);
    const std::uint64_t before = misses.value();
    const store::Result r = store::load(*inst.model, path, inst.engine.get());
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    benchmark::DoNotOptimize(run_analysis(inst, w));
    new_misses += misses.value() - before;
  }
  // The acceptance criterion: a warm start re-interns nothing.
  state.counters["warm_state_misses"] = static_cast<double>(new_misses);
}

// The same warm start with the loader path pinned (store/env.hpp:
// LACON_MMAP): the "mmap" row maps the snapshot and adopts the flat state
// payloads in place — zero copy, zero per-state allocation — while the
// "stream" row forces the byte-for-byte decode the loader always did. The
// workloads use even n, so adoption covers every state; the row pair is
// exactly what the mapping buys (acceptance: mmap warm beats streaming
// warm). "mapped_states" carries the proof that adoption actually ran.
void BM_WarmPinned(benchmark::State& state, const Workload& w,
                   const char* mode) {
  ::setenv("LACON_MMAP", mode, 1);
  const std::string& path = snapshot_file(w);
  auto& mapped = runtime::Stats::global().counter("arena.state_mapped");
  std::uint64_t new_mapped = 0;
  for (auto _ : state) {
    Instance inst = make_instance(w);
    const std::uint64_t before = mapped.value();
    const store::Result r = store::load(*inst.model, path, inst.engine.get());
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    benchmark::DoNotOptimize(run_analysis(inst, w));
    new_mapped += mapped.value() - before;
  }
  ::unsetenv("LACON_MMAP");
  state.counters["mapped_states"] = static_cast<double>(
      new_mapped / static_cast<std::uint64_t>(
                       state.iterations() > 0 ? state.iterations() : 1));
}

void BM_WarmMmap(benchmark::State& state, const Workload& w) {
  BM_WarmPinned(state, w, "on");
}

void BM_WarmStream(benchmark::State& state, const Workload& w) {
  BM_WarmPinned(state, w, "off");
}

void BM_Load(benchmark::State& state, const Workload& w) {
  const std::string& path = snapshot_file(w);
  for (auto _ : state) {
    Instance inst = make_instance(w);
    const store::Result r = store::load(*inst.model, path, inst.engine.get());
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    benchmark::DoNotOptimize(inst.model->num_states());
  }
  state.counters["file_bytes"] =
      static_cast<double>(std::filesystem::file_size(path));
}

void BM_Save(benchmark::State& state, const Workload& w) {
  Instance inst = make_instance(w);
  run_analysis(inst, w);
  const std::string scratch = snapshot_file(w) + ".scratch";
  for (auto _ : state) {
    const store::Result r = store::save(*inst.model, scratch,
                                        inst.engine.get());
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
  }
}

// One WAL commit of the entire workload delta (record encode + write +
// fsync): the per-request durability tax laconrd pays with LACON_WAL=on,
// measured at its worst case (a cold session's first commit; steady-state
// records are far smaller). reset_to() rewinds the watermarks each
// iteration so the same content re-appends as a fresh record.
void BM_WalAppend(benchmark::State& state, const Workload& w) {
  Instance inst = make_instance(w);
  run_analysis(inst, w);
  const std::string path = snapshot_file(w) + ".append.wal";
  store::Wal wal;
  store::Result r = wal.open(*inst.model, path);
  if (!r.ok()) state.SkipWithError(r.detail.c_str());
  for (auto _ : state) {
    r = wal.reset_to(*inst.model, 0, 0, inst.engine.get());
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    r = wal.append(*inst.model, inst.engine.get());
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
  }
  state.counters["record_bytes"] = static_cast<double>(wal.log_bytes());
}

// Group commit vs serialized fsync: the same four-client commit round —
// one full delta record plus one memo-carrying record per additional
// engine horizon — lands in the log either as ONE coalesced write+fsync
// (the batch append laconrd's commit leader performs) or as four
// sequential fsync'd appends (the old per-request discipline). The
// acceptance criterion is that the group row costs no more per round than
// the serial row — in practice it approaches a quarter, since the fsync
// dominates and the group pays it once.
constexpr int kCommitClients = 4;

struct CommitFixture {
  Instance inst;
  std::vector<std::unique_ptr<ValenceEngine>> extra;
  std::vector<ValenceEngine*> engines;  // kCommitClients distinct horizons
};

CommitFixture make_commit_fixture(const Workload& w) {
  CommitFixture f;
  f.inst = make_instance(w);
  const auto levels = reachable_by_depth(*f.inst.model, w.depth);
  const std::vector<StateId>& frontier = levels.back();
  f.inst.engine->classify_all(frontier);
  f.engines.push_back(f.inst.engine.get());
  for (int i = 1; i < kCommitClients; ++i) {
    auto eng = std::make_unique<ValenceEngine>(
        *f.inst.model, w.horizon + i, default_exactness(ModelKind::kMobile));
    eng->classify_all(frontier);
    f.engines.push_back(eng.get());
    f.extra.push_back(std::move(eng));
  }
  return f;
}

void BM_WalGroupCommit(benchmark::State& state, const Workload& w) {
  CommitFixture f = make_commit_fixture(w);
  const std::string path = snapshot_file(w) + ".group.wal";
  store::Wal wal;
  store::Result r = wal.open(*f.inst.model, path);
  if (!r.ok()) state.SkipWithError(r.detail.c_str());
  for (auto _ : state) {
    r = wal.reset_to(*f.inst.model, 0, 0, nullptr);
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    r = wal.append(*f.inst.model, f.engines);
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
  }
  state.counters["fsyncs_per_round"] = 1.0;
  state.counters["round_bytes"] = static_cast<double>(wal.log_bytes());
}

void BM_WalSerialCommit(benchmark::State& state, const Workload& w) {
  CommitFixture f = make_commit_fixture(w);
  const std::string path = snapshot_file(w) + ".serial.wal";
  store::Wal wal;
  store::Result r = wal.open(*f.inst.model, path);
  if (!r.ok()) state.SkipWithError(r.detail.c_str());
  for (auto _ : state) {
    r = wal.reset_to(*f.inst.model, 0, 0, nullptr);
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    for (ValenceEngine* eng : f.engines) {
      r = wal.append(*f.inst.model, eng);
      if (!r.ok()) state.SkipWithError(r.detail.c_str());
    }
  }
  state.counters["fsyncs_per_round"] = static_cast<double>(kCommitClients);
  state.counters["round_bytes"] = static_cast<double>(wal.log_bytes());
}

// Crash recovery itself: replaying that record into an empty model —
// BM_Load's sibling for the log path.
void BM_WalReplay(benchmark::State& state, const Workload& w) {
  const std::string path = snapshot_file(w) + ".replay.wal";
  {
    Instance inst = make_instance(w);
    store::Wal wal;
    store::Result r = wal.open(*inst.model, path);
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    wal.replay(*inst.model, inst.engine.get(), nullptr);
    run_analysis(inst, w);
    r = wal.append(*inst.model, inst.engine.get());
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
  }
  std::uint64_t states = 0;
  for (auto _ : state) {
    Instance inst = make_instance(w);
    store::Wal wal;
    store::Result r = wal.open(*inst.model, path);
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    store::WalReplayStats rs;
    r = wal.replay(*inst.model, inst.engine.get(), nullptr, &rs);
    if (!r.ok()) state.SkipWithError(r.detail.c_str());
    states = rs.states_applied;
  }
  state.counters["states_replayed"] = static_cast<double>(states);
}

// Cold-vs-warm audit: one measured run each, with the counter evidence that
// the warm analysis hit the restored index instead of re-interning.
void print_table() {
  auto& stats = runtime::Stats::global();
  Table table({"workload", "cold ms", "warm ms", "file KiB", "restored",
               "warm misses"});
  for (const Workload& w : {kExplore, kAnalyze}) {
    const std::string& path = snapshot_file(w);  // also the cold run
    using clock = std::chrono::steady_clock;

    const auto cold_start = clock::now();
    {
      Instance inst = make_instance(w);
      run_analysis(inst, w);
    }
    const double cold_ms =
        std::chrono::duration<double, std::milli>(clock::now() - cold_start)
            .count();

    stats.counter("arena.state_restored").reset();
    stats.counter("arena.view_restored").reset();
    stats.counter("arena.state_misses").reset();
    stats.counter("arena.view_misses").reset();
    const auto warm_start = clock::now();
    {
      Instance inst = make_instance(w);
      store::load(*inst.model, path, inst.engine.get());
      run_analysis(inst, w);
    }
    const double warm_ms =
        std::chrono::duration<double, std::milli>(clock::now() - warm_start)
            .count();

    const std::uint64_t restored =
        stats.counter("arena.state_restored").value() +
        stats.counter("arena.view_restored").value();
    const std::uint64_t warm_misses =
        stats.counter("arena.state_misses").value() +
        stats.counter("arena.view_misses").value();
    char cold_buf[32], warm_buf[32];
    std::snprintf(cold_buf, sizeof cold_buf, "%.1f", cold_ms);
    std::snprintf(warm_buf, sizeof warm_buf, "%.1f", warm_ms);
    table.add_row({w.tag, cold_buf, warm_buf,
                   std::to_string(std::filesystem::file_size(path) / 1024),
                   std::to_string(restored), std::to_string(warm_misses)});
  }
  std::fputs(
      table.to_string("T11: lacon.store.v1 snapshot cold vs warm start")
          .c_str(),
      stdout);
}

void register_workloads(const char* name,
                        void (*fn)(benchmark::State&, const Workload&)) {
  for (const Workload& w : {kExplore, kAnalyze}) {
    benchmark::RegisterBenchmark(
        (std::string(name) + "/" + w.tag).c_str(),
        [fn, w](benchmark::State& s) { fn(s, w); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::register_workloads("BM_Cold", lacon::BM_Cold);
  lacon::register_workloads("BM_Warm", lacon::BM_Warm);
  lacon::register_workloads("BM_WarmMmap", lacon::BM_WarmMmap);
  lacon::register_workloads("BM_WarmStream", lacon::BM_WarmStream);
  lacon::register_workloads("BM_Load", lacon::BM_Load);
  lacon::register_workloads("BM_Save", lacon::BM_Save);
  lacon::register_workloads("BM_WalAppend", lacon::BM_WalAppend);
  // The commit benches need an engine per horizon: analyze-workload only.
  benchmark::RegisterBenchmark(
      (std::string("BM_WalGroupCommit/") + lacon::kAnalyze.tag).c_str(),
      [](benchmark::State& s) { lacon::BM_WalGroupCommit(s, lacon::kAnalyze); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      (std::string("BM_WalSerialCommit/") + lacon::kAnalyze.tag).c_str(),
      [](benchmark::State& s) { lacon::BM_WalSerialCommit(s, lacon::kAnalyze); })
      ->Unit(benchmark::kMillisecond);
  lacon::register_workloads("BM_WalReplay", lacon::BM_WalReplay);
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  lacon::cleanup_snapshots();
  return 0;
}
