// T9 — The parallel analysis runtime (src/runtime/).
//
// Serial-vs-parallel wall clock for the three ported hot paths — frontier
// expansion, the ~s pair sweep, per-initial-state valence classification —
// together with a determinism audit: each workload's complete analysis
// output (connectivity verdict, s-diameter, per-level state counts, valence
// tags) is rendered to a string under 1 worker and under the configured
// maximum and must be byte-identical. On a >= 4-core machine the pair-sweep
// row is the acceptance workload for the >= 2x speedup criterion; worker
// counts are capped to the hardware so a single-core host degenerates to a
// (still byte-identical) 1-vs-1 comparison.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "analysis/reports.hpp"
#include "engine/explore.hpp"
#include "engine/valence.hpp"
#include "relation/similarity.hpp"
#include "runtime/thread_pool.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

unsigned max_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return runtime::parse_worker_env(std::getenv("LACON_THREADS"), hw);
}

// The audit workload: explore, sweep ~s over the deepest level, classify
// Con_0. Returns the full analysis output as a printable string.
std::string run_workload(ModelKind kind, int n, int depth,
                         std::string* timings) {
  const int t = 1;
  auto rule = min_after_round(2);
  auto model = make_model(kind, n, t, *rule);

  const auto t0 = std::chrono::steady_clock::now();
  const auto levels = reachable_by_depth(*model, depth);
  const auto t1 = std::chrono::steady_clock::now();
  const auto& deepest = levels.back();
  const bool conn = similarity_connected(*model, deepest);
  const auto diam = s_diameter(*model, deepest);
  const auto t2 = std::chrono::steady_clock::now();
  ValenceEngine engine(*model, depth + 1, default_exactness(kind));
  const auto infos = engine.classify_all(model->initial_states());
  const auto t3 = std::chrono::steady_clock::now();

  if (timings != nullptr) {
    const auto ms = [](auto a, auto b) {
      return cell(std::chrono::duration<double, std::milli>(b - a).count(),
                  1);
    };
    *timings = ms(t0, t1) + " / " + ms(t1, t2) + " / " + ms(t2, t3);
  }

  std::string out = model_kind_name(kind) + " n=" + std::to_string(n);
  out += " levels=";
  for (const auto& level : levels) {
    out += std::to_string(level.size()) + ",";
  }
  out += " deepest_conn=" + std::string(conn ? "y" : "n");
  out += " s_diam=" + (diam ? std::to_string(*diam) : std::string("inf"));
  out += " tags=";
  for (const ValenceInfo& v : infos) {
    out += v.bivalent() ? 'b' : (v.value() == 0 ? '0' : '1');
    out += v.exact ? '!' : '?';
  }
  return out;
}

void print_table() {
  const unsigned workers = max_workers();
  Table table({"workload", "serial ms (explore/sweep/valence)",
               "parallel ms (w=" + std::to_string(workers) + ")",
               "identical output"});
  struct Row {
    ModelKind kind;
    int n;
    int depth;
  };
  for (const Row& row : {Row{ModelKind::kMobile, 4, 2},
                         Row{ModelKind::kSharedMem, 3, 2},
                         Row{ModelKind::kSync, 4, 2}}) {
    std::string serial_ms, parallel_ms, serial_out, parallel_out;
    {
      runtime::WorkerCountOverride serial(1);
      serial_out = run_workload(row.kind, row.n, row.depth, &serial_ms);
    }
    {
      runtime::WorkerCountOverride parallel(workers);
      parallel_out = run_workload(row.kind, row.n, row.depth, &parallel_ms);
    }
    table.add_row({model_kind_name(row.kind) + " n=" + std::to_string(row.n),
                   serial_ms, parallel_ms,
                   cell(serial_out == parallel_out)});
    if (serial_out != parallel_out) {
      std::fprintf(stderr,
                   "T9 DETERMINISM VIOLATION\n serial:   %s\n parallel: %s\n",
                   serial_out.c_str(), parallel_out.c_str());
    }
  }
  std::fputs(table.to_string("T9: parallel runtime, serial vs parallel")
                 .c_str(),
             stdout);
}

// Acceptance workload: the ~s pair sweep over a deep mobile-model level.
void BM_SimilaritySweep(benchmark::State& state) {
  runtime::WorkerCountOverride workers(
      static_cast<unsigned>(state.range(0)));
  auto rule = never_decide();
  auto model = make_model(ModelKind::kMobile, 4, 1, *rule);
  const auto X = reachable_states(*model, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity_graph(*model, X).edge_count());
  }
  state.counters["states"] = static_cast<double>(X.size());
}

void BM_Explore(benchmark::State& state) {
  runtime::WorkerCountOverride workers(
      static_cast<unsigned>(state.range(0)));
  auto rule = never_decide();
  for (auto _ : state) {
    auto model = make_model(ModelKind::kMobile, 4, 1, *rule);
    benchmark::DoNotOptimize(reachable_states(*model, 2).size());
  }
}

void BM_ValenceClassify(benchmark::State& state) {
  runtime::WorkerCountOverride workers(
      static_cast<unsigned>(state.range(0)));
  auto rule = min_after_round(2);
  for (auto _ : state) {
    auto model = make_model(ModelKind::kSharedMem, 3, 1, *rule);
    ValenceEngine engine(*model, 3,
                         default_exactness(ModelKind::kSharedMem));
    benchmark::DoNotOptimize(
        engine.classify_all(model->initial_states()).size());
  }
}

void register_worker_sweep(const char* name,
                           void (*fn)(benchmark::State&)) {
  const unsigned cap = max_workers();
  for (unsigned w = 1; w <= cap; w *= 2) {
    benchmark::RegisterBenchmark(
        (std::string(name) + "/workers:" + std::to_string(w)).c_str(), fn)
        ->Arg(static_cast<int>(w))
        ->Unit(benchmark::kMillisecond);
  }
  if ((cap & (cap - 1)) != 0) {  // cap itself if not a power of two
    benchmark::RegisterBenchmark(
        (std::string(name) + "/workers:" + std::to_string(cap)).c_str(), fn)
        ->Arg(static_cast<int>(cap))
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::register_worker_sweep("BM_SimilaritySweep",
                               lacon::BM_SimilaritySweep);
  lacon::register_worker_sweep("BM_Explore", lacon::BM_Explore);
  lacon::register_worker_sweep("BM_ValenceClassify",
                               lacon::BM_ValenceClassify);
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
