// A1 — Ablations of the design choices called out in DESIGN.md:
//   * valence lookahead horizon: evaluations and wall time vs horizon (the
//     price of the finite-horizon discharge of the infinite-run quantifier);
//   * exactness criterion: quiescence vs convergence (the convergence mode
//     runs a second memoized pass at horizon+1);
//   * layer caching: cold vs warm layer() calls (hash-consing pays off as
//     soon as a state is revisited, which the valence DAG does constantly).
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>

#include "analysis/reports.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

void print_table() {
  Table table({"ablation", "setting", "valence evals", "states interned",
               "check ok"});
  // Horizon sweep on the shared-memory model.
  for (int horizon = 1; horizon <= 4; ++horizon) {
    auto rule = min_after_round(2);
    auto model = make_model(ModelKind::kSharedMem, 3, 1, *rule);
    ValenceEngine engine(*model, horizon, Exactness::kQuiescence);
    const auto bivalent = engine.find_bivalent(model->initial_states());
    table.add_row({"horizon", cell(static_cast<long long>(horizon)),
                   cell(static_cast<long long>(engine.evaluations())),
                   cell(static_cast<long long>(model->num_states())),
                   cell(bivalent.has_value())});  // check: bivalent found
  }
  // Exactness criterion.
  for (Exactness mode : {Exactness::kQuiescence, Exactness::kConvergence}) {
    auto rule = min_after_round(2);
    auto model = make_model(ModelKind::kSharedMem, 3, 1, *rule);
    ValenceEngine engine(*model, 3, mode);
    int exact = 0;
    for (StateId x : model->initial_states()) {
      if (engine.valence(x).exact) ++exact;
    }
    table.add_row({"exactness",
                   mode == Exactness::kQuiescence ? "quiescence"
                                                  : "convergence",
                   cell(static_cast<long long>(engine.evaluations())),
                   cell(static_cast<long long>(model->num_states())),
                   cell(exact == 8)});
  }
  std::fputs(table.to_string("A1: engine ablations (M^rw, n=3)").c_str(),
             stdout);
}

void BM_ValenceHorizon(benchmark::State& state) {
  const int horizon = static_cast<int>(state.range(0));
  auto rule = min_after_round(2);
  for (auto _ : state) {
    auto model = make_model(ModelKind::kSharedMem, 3, 1, *rule);
    ValenceEngine engine(*model, horizon);
    benchmark::DoNotOptimize(
        engine.find_bivalent(model->initial_states()).has_value());
  }
}
BENCHMARK(BM_ValenceHorizon)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ExactnessMode(benchmark::State& state, Exactness mode) {
  auto rule = min_after_round(2);
  for (auto _ : state) {
    auto model = make_model(ModelKind::kSharedMem, 3, 1, *rule);
    ValenceEngine engine(*model, 3, mode);
    ValenceInfo last;
    for (StateId x : model->initial_states()) last = engine.valence(x);
    benchmark::DoNotOptimize(last.exact);
  }
}
BENCHMARK_CAPTURE(BM_ExactnessMode, quiescence, Exactness::kQuiescence);
BENCHMARK_CAPTURE(BM_ExactnessMode, convergence, Exactness::kConvergence);

void BM_LayerColdVsWarm(benchmark::State& state, bool warm) {
  auto rule = never_decide();
  auto model = make_model(ModelKind::kMsgPass, 4, 1, *rule);
  const StateId x0 = model->initial_states().front();
  if (warm) benchmark::DoNotOptimize(model->layer(x0).size());
  for (auto _ : state) {
    if (!warm) {
      auto fresh = make_model(ModelKind::kMsgPass, 4, 1, *rule);
      benchmark::DoNotOptimize(
          fresh->layer(fresh->initial_states().front()).size());
    } else {
      benchmark::DoNotOptimize(model->layer(x0).size());
    }
  }
}
BENCHMARK_CAPTURE(BM_LayerColdVsWarm, cold, false);
BENCHMARK_CAPTURE(BM_LayerColdVsWarm, warm, true);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
