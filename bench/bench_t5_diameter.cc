// T5 — The s-diameter recurrence (Lemma 7.6 / Theorem 7.7). In the S^t
// synchronous model, measure the s-diameter of the set of states reachable
// at the end of round m and compare with the paper's bound
//   d_X^{m+1} = d_X^m d_Y^m + d_X^m + d_Y^m,  d_Y^m = 2(n-m),
// starting from d_X^0 = s-diameter(Con_0) = n. Measured must never exceed
// the bound (the bound is loose — that is expected and reported).
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "analysis/reports.hpp"
#include <unordered_set>

#include "core/decision_rule.hpp"
#include "engine/explore.hpp"
#include "models/synchronous/sync_model.hpp"
#include "relation/similarity.hpp"
#include "relation/similarity_index.hpp"
#include "runtime/stats.hpp"
#include "topology/solvability.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

// The set of states the Theorem 7.7 recurrence actually governs: states at
// the end of round m reachable with at most r failures by the end of every
// round r <= m (the runs traversed by the Lemma 7.4 construction). The
// *full* round-m sets of R_{S^t} disconnect for m >= 2 — budget-exhausted
// states (e.g. two processes silenced from round 1 on) are similarity
// isolated — which is a sharpening of the paper's premises found by this
// mechanization; see EXPERIMENTS.md.
std::vector<std::vector<StateId>> graded_levels(SyncModel& model, int depth) {
  std::vector<std::vector<StateId>> out = {model.initial_states()};
  for (int r = 1; r <= depth; ++r) {
    std::unordered_set<StateId> next;
    for (StateId x : out.back()) {
      for (StateId y : model.layer(x)) {
        if (model.failed_at(y).size() <= r) next.insert(y);
      }
    }
    std::vector<StateId> level(next.begin(), next.end());
    std::sort(level.begin(), level.end());
    out.push_back(std::move(level));
  }
  return out;
}

void print_table() {
  Table table({"n", "t", "layering", "round m", "|states|",
               "measured s-diam", "bound d_X^m", "within bound"});
  auto rule = never_decide();
  struct Config {
    int n;
    int t;
  };
  for (const Config cfg : {Config{3, 1}, Config{4, 2}}) {
    for (SyncLayering lay :
         {SyncLayering::kOnePerRound, SyncLayering::kMultiFailure}) {
      SyncModel model(cfg.n, cfg.t, *rule, {}, lay);
      const auto levels = graded_levels(model, cfg.t);
      for (std::size_t m = 0; m < levels.size(); ++m) {
        const auto diam = s_diameter(model, levels[m]);
        const long long bound =
            diameter_bound(cfg.n, static_cast<int>(m), cfg.n);
        const long long measured = diam ? static_cast<long long>(*diam) : -1;
        table.add_row(
            {cell(static_cast<long long>(cfg.n)),
             cell(static_cast<long long>(cfg.t)),
             lay == SyncLayering::kOnePerRound ? "S^t (1/round)" : "full round",
             cell(static_cast<long long>(m)),
             cell(static_cast<long long>(levels[m].size())),
             diam ? cell(measured) : "disconnected", cell(bound),
             cell(diam && measured <= bound)});
      }
    }
  }
  std::fputs(
      table
          .to_string(
              "T5: graded s-diameter growth vs Lemma 7.6 bound (m <= t)")
          .c_str(),
      stdout);

  // The per-layer diameter premise d_Y^m <= 2(n-m). The paper derives it
  // for the one-per-round S^t layers (multi-failure layers are wider: at
  // n=4, t=2 their round-1 diameter is 8 > 6, absorbed by the slack of the
  // overall recurrence).
  Table layer_table({"n", "t", "round m", "max layer s-diam",
                     "bound 2(n-m)"});
  for (const Config cfg : {Config{3, 1}, Config{4, 2}}) {
    SyncModel model(cfg.n, cfg.t, *rule, {}, SyncLayering::kOnePerRound);
    const auto levels = graded_levels(model, cfg.t);
    for (std::size_t m = 0; m + 1 < levels.size(); ++m) {
      std::size_t worst = 0;
      for (StateId x : levels[m]) {
        const auto d = s_diameter(model, model.layer(x));
        if (d) worst = std::max(worst, *d);
      }
      layer_table.add_row({cell(static_cast<long long>(cfg.n)),
                           cell(static_cast<long long>(cfg.t)),
                           cell(static_cast<long long>(m)),
                           cell(static_cast<long long>(worst)),
                           cell(2LL * (cfg.n - static_cast<long long>(m)))});
    }
  }
  std::fputs(layer_table.to_string("T5b: layer s-diameters d_Y^m").c_str(),
             stdout);

  // Indexed-vs-naive ablation on the graded reachable levels — the largest
  // similarity graphs this bench touches. Reports the pair counts each
  // strategy feeds relation.pairs_evaluated, wall time of the graph build,
  // and a byte-identity check.
  Table ablation({"n", "t", "round m", "|X|", "naive pairs", "indexed pairs",
                  "pairs ratio", "naive ms", "indexed ms", "identical"});
  auto& pairs = runtime::Stats::global().counter("relation.pairs_evaluated");
  for (const Config cfg : {Config{3, 1}, Config{4, 2}, Config{5, 2}}) {
    SyncModel model(cfg.n, cfg.t, *rule, {}, SyncLayering::kOnePerRound);
    const auto levels = graded_levels(model, cfg.t);
    for (std::size_t m = 0; m < levels.size(); ++m) {
      using Clock = std::chrono::steady_clock;
      const std::uint64_t pairs0 = pairs.value();
      const auto t0 = Clock::now();
      const Graph naive = similarity_graph_naive(model, levels[m]);
      const auto t1 = Clock::now();
      const std::uint64_t naive_pairs = pairs.value() - pairs0;
      const Graph indexed = similarity_graph_indexed(model, levels[m]);
      const auto t2 = Clock::now();
      const std::uint64_t indexed_pairs =
          pairs.value() - pairs0 - naive_pairs;
      const auto ms = [](auto d) {
        return std::chrono::duration<double, std::milli>(d).count();
      };
      const bool identical = [&] {
        if (naive.size() != indexed.size() ||
            naive.edge_count() != indexed.edge_count()) {
          return false;
        }
        for (std::size_t v = 0; v < naive.size(); ++v) {
          const auto nn = naive.neighbors(v);
          const auto ni = indexed.neighbors(v);
          if (!std::equal(nn.begin(), nn.end(), ni.begin(), ni.end())) {
            return false;
          }
        }
        return true;
      }();
      char ratio[32], naive_ms[32], indexed_ms[32];
      std::snprintf(ratio, sizeof ratio, "%.1fx",
                    indexed_pairs == 0
                        ? 0.0
                        : static_cast<double>(naive_pairs) /
                              static_cast<double>(indexed_pairs));
      std::snprintf(naive_ms, sizeof naive_ms, "%.2f", ms(t1 - t0));
      std::snprintf(indexed_ms, sizeof indexed_ms, "%.2f", ms(t2 - t1));
      ablation.add_row({cell(static_cast<long long>(cfg.n)),
                        cell(static_cast<long long>(cfg.t)),
                        cell(static_cast<long long>(m)),
                        cell(static_cast<long long>(levels[m].size())),
                        cell(static_cast<long long>(naive_pairs)),
                        cell(static_cast<long long>(indexed_pairs)), ratio,
                        naive_ms, indexed_ms, cell(identical)});
    }
  }
  std::fputs(ablation
                 .to_string("T5c: similarity-index ablation on graded "
                            "levels (naive sweep vs fingerprint index)")
                 .c_str(),
             stdout);
}

void BM_LevelDiameter(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto rule = never_decide();
  for (auto _ : state) {
    SyncModel model(3, 1, *rule);
    const auto levels = reachable_by_depth(model, depth);
    benchmark::DoNotOptimize(s_diameter(model, levels.back()));
  }
}
BENCHMARK(BM_LevelDiameter)->Arg(1)->Arg(2);

void BM_DiameterBoundRecurrence(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(diameter_bound(8, 6, 8));
  }
}
BENCHMARK(BM_DiameterBoundRecurrence);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
