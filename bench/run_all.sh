#!/usr/bin/env bash
# Runs every bench binary and records machine-readable results, one JSON
# file per experiment, so the perf trajectory across PRs is diffable:
#
#   bench/run_all.sh [--workers N1,N2,...] [BUILD_DIR] [OUT_DIR]
#
# defaults: BUILD_DIR=build, OUT_DIR=bench_results. Each bench writes
# OUT_DIR/BENCH_<tag>.json via google-benchmark's --benchmark_out (the
# experiment tables still go to stdout, captured as BENCH_<tag>.txt) plus a
# METRICS_<tag>.json MetricsSnapshot sibling (schema lacon.metrics.v1 —
# counters, timers, span histograms, guard truncation state; see DESIGN.md
# §11). Under LACON_TRACE=spans each bench additionally writes
# TRACE_<tag>.json, a Chrome trace-event file loadable in Perfetto
# (https://ui.perfetto.dev) or chrome://tracing.
#
# --workers runs the whole suite once per worker count with LACON_THREADS
# pinned, suffixing every artifact with _w<N> (BENCH_t9_runtime_w4.json,
# METRICS_t9_runtime_w4.json, ...). Summarize a sweep into a speedup /
# efficiency table with:
#
#   bench/compare_baseline.py --sweep OUT_DIR --workers N1,N2,...
#
# Extra arguments for the bench binaries can be passed via BENCH_ARGS,
# e.g. BENCH_ARGS=--benchmark_min_time=0.01 for a smoke run.
set -euo pipefail

WORKERS=""
if [[ "${1:-}" == "--workers" ]]; then
  WORKERS="${2:?--workers needs a comma-separated list, e.g. 1,2,4,8}"
  shift 2
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results}"
BENCH_ARGS="${BENCH_ARGS:-}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

status=0
ran=0
failed=()

# run_suite SUFFIX [THREADS] — one pass over every bench binary. SUFFIX is
# appended to each artifact tag; THREADS (when non-empty) pins LACON_THREADS
# for the pass so the sweep measures the runtime at that worker count.
run_suite() {
  local suffix="$1" threads="${2:-}"
  local bench name tag
  for bench in "$BUILD_DIR"/bench/bench_*; do
    [[ -x "$bench" ]] || continue
    ran=$((ran + 1))
    name="$(basename "$bench")"
    tag="${name#bench_}$suffix"
    echo "=== $name${threads:+ (LACON_THREADS=$threads)} -> $OUT_DIR/BENCH_$tag.json"
    # Per-bench observability artifacts: the metrics snapshot is always
    # emitted; the span trace only materializes when LACON_TRACE=spans (the
    # runtime skips LACON_TRACE_FILE otherwise, so pointing it somewhere is
    # harmless in the default counters mode).
    if ! env ${threads:+LACON_THREADS="$threads"} \
        LACON_METRICS_FILE="$OUT_DIR/METRICS_$tag.json" \
        LACON_TRACE_FILE="${LACON_TRACE_FILE:-$OUT_DIR/TRACE_$tag.json}" \
        "$bench" \
        --benchmark_out="$OUT_DIR/BENCH_$tag.json" \
        --benchmark_out_format=json \
        ${BENCH_ARGS} \
        | tee "$OUT_DIR/BENCH_$tag.txt"; then
      echo "FAILED: $name$suffix" >&2
      status=1
      failed+=("$name$suffix")
    fi
  done
}

if [[ -n "$WORKERS" ]]; then
  for w in ${WORKERS//,/ }; do
    [[ "$w" =~ ^[0-9]+$ && "$w" -ge 1 ]] || {
      echo "error: bad worker count '$w' in --workers $WORKERS" >&2
      exit 2
    }
    run_suite "_w$w" "$w"
  done
else
  run_suite ""
fi

if [[ "$ran" -eq 0 ]]; then
  echo "error: no bench binaries found under $BUILD_DIR/bench" >&2
  exit 1
fi

# Schema-validate every observability artifact the benches emitted. Both
# kinds gate the exit status: a malformed METRICS_ snapshot and a malformed
# TRACE_ span export are equally a regression (a span trace that silently
# stops validating is how instrumentation rot slips past CI).
script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
metrics_files=("$OUT_DIR"/METRICS_*.json)
if [[ -e "${metrics_files[0]}" ]]; then
  echo "=== validating ${#metrics_files[@]} metrics snapshot(s)"
  if ! python3 "$script_dir/validate_metrics.py" --kind metrics \
      "${metrics_files[@]}"; then
    status=1
    failed+=("validate:metrics")
  fi
fi
trace_files=("$OUT_DIR"/TRACE_*.json)
if [[ -e "${trace_files[0]}" ]]; then
  echo "=== validating ${#trace_files[@]} span trace(s)"
  if ! python3 "$script_dir/validate_metrics.py" --kind trace \
      "${trace_files[@]}"; then
    status=1
    failed+=("validate:trace")
  fi
fi

# A sweep run closes with the speedup/efficiency summary over the artifacts
# it just wrote (diagnostic: the summary never changes the exit status).
if [[ -n "$WORKERS" && "$status" -eq 0 ]]; then
  echo "=== worker sweep summary (speedup vs efficiency)"
  python3 "$script_dir/compare_baseline.py" --sweep "$OUT_DIR" \
    --workers "$WORKERS" || true
fi

if [[ "$status" -ne 0 ]]; then
  echo "bench failures (${#failed[@]}/$ran): ${failed[*]}" >&2
fi
exit $status
