// T10 — Concurrent sharded hash-consing arenas (core/state.hpp).
//
// Intern contention microbench: every worker hammers StateArena::intern
// under two key-set regimes — disjoint (each op interns distinct content:
// all misses, no index sharing) and overlapping (all workers intern the
// same small key set: hit-heavy, racing equal-content interns that must
// agree on one id). The worker sweep is fixed at 1/2/4/8 regardless of the
// host's core count so bench names stay stable for the baseline comparison
// in ci.sh; on a single-core host the >1-worker rows measure contention
// structure (shard waits), not parallel speedup. BM_ExploreN8 is the
// acceptance workload: the n=8 mobile-model exploration whose cost is
// dominated by state/view interning.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdint>
#include <cstdio>
#include <string>

#include "analysis/reports.hpp"
#include "core/state.hpp"
#include "engine/explore.hpp"
#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

constexpr std::size_t kOps = 1 << 14;       // interns per iteration
constexpr std::uint64_t kDistinct = 256;    // overlapping-regime key count

// Deterministic synthetic state; locals are arbitrary ids (StateArena never
// dereferences them). n=8 lanes + a short env mirror the exploration mix.
GlobalState make_state(std::uint64_t i) {
  GlobalState s;
  for (std::size_t e = 0; e < 3; ++e) {
    s.env.push_back(static_cast<std::int64_t>(mix64(i * 31 + e)));
  }
  for (std::size_t p = 0; p < 8; ++p) {
    s.locals.push_back(static_cast<ViewId>(mix64(i + p) & 0xffffff));
    s.decisions.push_back(kUndecided);
  }
  return s;
}

void BM_InternDisjoint(benchmark::State& state) {
  runtime::WorkerCountOverride workers(
      static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    StateArena arena;
    runtime::parallel_for(kOps, [&](std::size_t i) {
      benchmark::DoNotOptimize(
          arena.intern(make_state(static_cast<std::uint64_t>(i))));
    });
    benchmark::DoNotOptimize(arena.size());
  }
  state.counters["interns_per_iter"] = static_cast<double>(kOps);
}

void BM_InternOverlapping(benchmark::State& state) {
  runtime::WorkerCountOverride workers(
      static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    StateArena arena;
    runtime::parallel_for(kOps, [&](std::size_t i) {
      benchmark::DoNotOptimize(arena.intern(
          make_state(static_cast<std::uint64_t>(i) % kDistinct)));
    });
    benchmark::DoNotOptimize(arena.size());
  }
  state.counters["interns_per_iter"] = static_cast<double>(kOps);
  state.counters["distinct"] = static_cast<double>(kDistinct);
}

// The n=8 exploration interning path: one mobile-model layer below Con_0
// interns ~18k global states and ~150k views through the sharded arenas.
void BM_ExploreN8(benchmark::State& state) {
  runtime::WorkerCountOverride workers(
      static_cast<unsigned>(state.range(0)));
  auto rule = never_decide();
  for (auto _ : state) {
    auto model = make_model(ModelKind::kMobile, 8, 1, *rule);
    benchmark::DoNotOptimize(reachable_states(*model, 1).size());
  }
}

// Serial-vs-8-worker audit table with the shard-contention counters, so a
// run shows at a glance how often interns actually waited on a shard.
void print_table() {
  auto& stats = runtime::Stats::global();
  Table table({"regime", "workers", "unique states", "hits", "misses",
               "shard waits"});
  for (const unsigned w : {1u, 8u}) {
    for (const bool overlapping : {false, true}) {
      stats.counter("arena.state_hits").reset();
      stats.counter("arena.state_misses").reset();
      stats.counter("arena.state_shard_waits").reset();
      runtime::WorkerCountOverride workers(w);
      StateArena arena;
      runtime::parallel_for(kOps, [&](std::size_t i) {
        const auto key = static_cast<std::uint64_t>(i);
        arena.intern(make_state(overlapping ? key % kDistinct : key));
      });
      table.add_row({overlapping ? "overlapping" : "disjoint",
                     std::to_string(w), std::to_string(arena.size()),
                     std::to_string(stats.counter("arena.state_hits").value()),
                     std::to_string(
                         stats.counter("arena.state_misses").value()),
                     std::to_string(
                         stats.counter("arena.state_shard_waits").value())});
    }
  }
  std::fputs(
      table
          .to_string("T10: sharded arena intern contention (" +
                     std::to_string(arena_shard_count()) + " shards)")
          .c_str(),
      stdout);
}

void register_worker_sweep(const char* name,
                           void (*fn)(benchmark::State&)) {
  for (const unsigned w : {1u, 2u, 4u, 8u}) {
    benchmark::RegisterBenchmark(
        (std::string(name) + "/workers:" + std::to_string(w)).c_str(), fn)
        ->Arg(static_cast<int>(w))
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::register_worker_sweep("BM_InternDisjoint", lacon::BM_InternDisjoint);
  lacon::register_worker_sweep("BM_InternOverlapping",
                               lacon::BM_InternOverlapping);
  lacon::register_worker_sweep("BM_ExploreN8", lacon::BM_ExploreN8);
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
