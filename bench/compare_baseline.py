#!/usr/bin/env python3
"""Bench regression gate: compare a google-benchmark JSON against a committed
baseline and fail on real_time regressions beyond a threshold.

Usage:
    bench/compare_baseline.py BASELINE.json CURRENT.json \
        [--max-regression 0.25] [--floor-ms 1.0] \
        [--baseline-metrics METRICS.json --metrics METRICS.json]

    bench/compare_baseline.py --sweep OUT_DIR --workers 1,2,4,8

The second form summarizes a `bench/run_all.sh --workers ...` sweep: for
every benchmark present at every worker count it prints wall time, speedup
vs the smallest worker count, and parallel efficiency (speedup / workers).
The sweep table is informational and exits 0 unless no artifacts match —
multi-core scaling is evidence to read, not a regression gate (a 1-core CI
host would fail any efficiency threshold for reasons that say nothing
about the code).

When both --baseline-metrics and --metrics name MetricsSnapshot files
(schema lacon.metrics.v1, emitted next to each BENCH_*.json by
bench/run_all.sh), a per-phase timer comparison is printed after the gate
rows. The phase diff is diagnostic only — it localizes WHICH subsystem
moved when the gate fires, but never changes the exit status, because
per-phase times at smoke budgets are far noisier than the benchmark loop's
repeated-measurement real_time.

Only benchmarks present in BOTH files are compared (renames and newly added
benchmarks never fail the gate, but an empty intersection does — that means
the baseline is stale and must be regenerated). Aggregate rows (mean/median/
stddev) are skipped. Entries whose baseline and current real_time both sit
under --floor-ms are skipped too: at smoke budgets the sub-floor rows are
dominated by scheduler noise, not code, and a 25%% swing there is
meaningless. The floor is deliberately small next to the arena benches
(~5-40 ms) it guards.
"""

import argparse
import json
import sys

_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_times_ms(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row["name"]
        times[name] = row["real_time"] * _UNIT_TO_MS[row.get("time_unit", "ns")]
    return times


def load_phase_timers_ms(path):
    """Timer name -> total milliseconds from a lacon.metrics.v1 snapshot."""
    with open(path) as f:
        doc = json.load(f)
    return {name: row["ns"] * 1e-6
            for name, row in doc.get("timers", {}).items()}


def print_phase_diff(baseline_path, current_path, floor_ms):
    base = load_phase_timers_ms(baseline_path)
    cur = load_phase_timers_ms(current_path)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("note: no shared phase timers between metrics snapshots")
        return
    print(f"phase timers ({baseline_path} -> {current_path}, diagnostic):")
    for name in shared:
        b, c = base[name], cur[name]
        if b < floor_ms and c < floor_ms:
            continue
        ratio = c / b if b > 0 else float("inf")
        print(f"            {name}: {b:.3f} ms -> {c:.3f} ms "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")


def run_sweep(out_dir, workers_csv, floor_ms):
    """Speedup/efficiency table over BENCH_<tag>_w<N>.json sweep artifacts."""
    import glob
    import os

    workers = []
    for tok in workers_csv.split(","):
        tok = tok.strip()
        if not tok.isdigit() or int(tok) < 1:
            print(f"error: bad worker count {tok!r} in --workers "
                  f"{workers_csv}", file=sys.stderr)
            return 2
        workers.append(int(tok))
    workers = sorted(set(workers))
    base_w = workers[0]

    # tag -> worker count -> {benchmark name -> ms}
    tags = {}
    for w in workers:
        for path in sorted(glob.glob(os.path.join(out_dir,
                                                  f"BENCH_*_w{w}.json"))):
            stem = os.path.basename(path)[len("BENCH_"):-len(".json")]
            tag = stem[:-len(f"_w{w}")]
            tags.setdefault(tag, {})[w] = load_times_ms(path)
    if not tags:
        print(f"error: no BENCH_*_w<N>.json sweep artifacts under {out_dir} "
              f"for workers {workers_csv} — run "
              f"bench/run_all.sh --workers {workers_csv} first",
              file=sys.stderr)
        return 2

    header = f"{'benchmark':<48}" + "".join(
        f"  w={w:<14}" for w in workers)
    print(header)
    print(f"{'':<48}" + "".join(f"  {'ms  spd  eff':<15}" for _ in workers))
    rows = 0
    for tag in sorted(tags):
        per_worker = tags[tag]
        if sorted(per_worker) != workers:
            missing = [w for w in workers if w not in per_worker]
            print(f"note: {tag}: missing worker count(s) "
                  f"{missing} — skipped")
            continue
        shared = sorted(set.intersection(
            *(set(per_worker[w]) for w in workers)))
        for name in shared:
            base_ms = per_worker[base_w][name]
            if all(per_worker[w][name] < floor_ms for w in workers):
                continue
            cells = []
            for w in workers:
                ms = per_worker[w][name]
                speedup = base_ms / ms if ms > 0 else float("inf")
                eff = speedup * base_w / w
                cells.append(f"  {ms:7.2f} {speedup:4.2f} {eff:4.2f}")
            print(f"{name:<48}" + "".join(cells))
            rows += 1
    if rows == 0:
        print("note: every shared benchmark sat under the floor; nothing "
              "to summarize")
    else:
        print(f"({rows} benchmark(s); spd = t(w={base_w})/t(w=N), "
              f"eff = spd*{base_w}/N)")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--sweep", default=None,
                    help="summarize a --workers sweep in this artifact dir")
    ap.add_argument("--workers", default="1,2,4,8",
                    help="comma-separated worker counts of the sweep")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="fail when current > baseline * (1 + this)")
    ap.add_argument("--floor-ms", type=float, default=1.0,
                    help="skip rows where both times are under this")
    ap.add_argument("--baseline-metrics", default=None,
                    help="baseline MetricsSnapshot for the phase diff")
    ap.add_argument("--metrics", default=None,
                    help="current MetricsSnapshot for the phase diff")
    args = ap.parse_args()

    if args.sweep is not None:
        return run_sweep(args.sweep, args.workers, args.floor_ms)
    if args.baseline is None or args.current is None:
        ap.error("BASELINE and CURRENT are required unless --sweep is given")

    base = load_times_ms(args.baseline)
    cur = load_times_ms(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print(f"error: no shared benchmark names between {args.baseline} "
              f"and {args.current} — regenerate the baseline", file=sys.stderr)
        return 2

    failures = []
    for name in shared:
        b, c = base[name], cur[name]
        if b < args.floor_ms and c < args.floor_ms:
            continue
        ratio = c / b if b > 0 else float("inf")
        marker = "REGRESSION" if ratio > 1.0 + args.max_regression else "ok"
        print(f"{marker:>10}  {name}: {b:.3f} ms -> {c:.3f} ms "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
        if marker == "REGRESSION":
            failures.append(name)
    skipped = [n for n in sorted(set(cur) - set(base))]
    if skipped:
        print(f"note: {len(skipped)} benchmark(s) not in baseline (skipped): "
              + ", ".join(skipped))

    if args.baseline_metrics and args.metrics:
        try:
            print_phase_diff(args.baseline_metrics, args.metrics,
                             args.floor_ms)
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
            # Diagnostic output must never mask the gate verdict.
            print(f"note: phase diff unavailable ({e})", file=sys.stderr)

    if failures:
        print(f"FAIL: {len(failures)}/{len(shared)} benchmark(s) regressed "
              f">{args.max_regression * 100:.0f}% vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"OK: {len(shared)} benchmark(s) within "
          f"{args.max_regression * 100:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
