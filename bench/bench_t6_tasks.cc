// T6 — Task-solvability catalog (Theorem 7.2, Corollary 7.3, Theorem 7.7).
// For each decision problem: is it 1-thick connected (the 1-resilient
// characterization), n-thick connected, does the diameter condition hold,
// and what is the known solvability status — the verdict column must match
// the known column for every row.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>

#include "analysis/reports.hpp"

#include "topology/solvability.hpp"
#include "topology/tasks.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

std::string verdict_str(ThickVerdict v) {
  switch (v) {
    case ThickVerdict::kConnected:
      return "connected";
    case ThickVerdict::kNotConnected:
      return "NOT connected";
    case ThickVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

void print_table() {
  struct Entry {
    DecisionProblem problem;
    const char* known;  // known 1-resilient solvability
  };
  std::vector<Entry> catalog;
  catalog.push_back({consensus_task(3), "unsolvable"});
  catalog.push_back({trivial_task(3), "solvable"});
  catalog.push_back({constant_task(3, 0), "solvable"});
  catalog.push_back({weak_agreement_task(3), "solvable"});
  catalog.push_back({set_agreement_task(3, 2, 3), "solvable"});

  Table table({"task", "1-thick", "subproblems tried", "diam cond",
               "known (1-resilient)"});
  for (const Entry& e : catalog) {
    const ThickResult r = problem_k_thick_connected(e.problem, 1);
    const bool diam = diameter_condition_holds(
        e.problem, 1, diameter_bound(e.problem.n, 1, e.problem.n));
    table.add_row({e.problem.name, verdict_str(r.verdict),
                   cell(static_cast<long long>(r.subproblems_tried)),
                   cell(diam), e.known});
  }
  std::fputs(
      table.to_string("T6: 1-thick connectivity vs known solvability")
          .c_str(),
      stdout);
}

void BM_ConsensusThickConnectivity(benchmark::State& state) {
  const DecisionProblem p = consensus_task(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem_k_thick_connected(p, 1).verdict);
  }
}
BENCHMARK(BM_ConsensusThickConnectivity)->Arg(2)->Arg(3);

void BM_TrivialTaskThickConnectivity(benchmark::State& state) {
  const DecisionProblem p = trivial_task(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem_k_thick_connected(p, 1).verdict);
  }
}
BENCHMARK(BM_TrivialTaskThickConnectivity);

void BM_ThickGraphConstruction(benchmark::State& state) {
  const DecisionProblem p = set_agreement_task(3, 2, 3);
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < p.inputs.size(); ++i) all.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.output_complex(all).k_thick_connected(3, 1));
  }
}
BENCHMARK(BM_ThickGraphConstruction);

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
