#!/usr/bin/env python3
"""Assert laconrd kill-and-recover produced byte-identical, zero-re-intern
responses (ci.sh kill-and-recover lane; DESIGN.md §14).

Usage:
  check_recovery.py BEFORE.jsonl AFTER.jsonl PROBE.json

BEFORE.jsonl  responses served by the WAL-enabled daemon before SIGKILL
AFTER.jsonl   responses to the identical requests after restart
PROBE.json    one response with "metrics":true from the restarted daemon

Checks:
  * every pre-crash response was "ok" (the lane actually exercised work);
  * line for line, the post-restart response carries the identical result
    payload (everything except the per-request "metrics"/"snapshot" blocks,
    compared with sorted keys so the check is content-exact);
  * every post-restart response re-interned nothing (metrics.new_states and
    metrics.new_views are 0) — recovery came from the log, not re-analysis;
  * the restarted daemon's counters show arena.state_restored > 0 and
    arena.state_misses == 0.
"""

import json
import sys


def fail(msg):
    print(f"check_recovery: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def result_payload(line):
    doc = json.loads(line)
    return {k: v for k, v in doc.items() if k not in ("metrics", "snapshot")}


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    before = [l for l in open(sys.argv[1]) if l.strip()]
    after = [l for l in open(sys.argv[2]) if l.strip()]
    probe = json.load(open(sys.argv[3]))

    if not before:
        fail("no pre-crash responses")
    if len(before) != len(after):
        fail(f"{len(before)} pre-crash responses but {len(after)} after")

    for i, (b, a) in enumerate(zip(before, after)):
        if json.loads(b).get("status") != "ok":
            fail(f"pre-crash response {i} was not ok: {b.strip()}")
        want = json.dumps(result_payload(b), sort_keys=True)
        got = json.dumps(result_payload(a), sort_keys=True)
        if want != got:
            fail(f"response {i} diverged after recovery\n"
                 f"  want {want}\n  got  {got}")
        metrics = json.loads(a).get("metrics", {})
        if metrics.get("new_states") != 0 or metrics.get("new_views") != 0:
            fail(f"response {i} re-interned after recovery: {metrics}")

    counters = probe.get("snapshot", {}).get("counters", {})
    if counters.get("arena.state_restored", 0) <= 0:
        fail("arena.state_restored == 0: nothing was replayed from the WAL")
    if counters.get("arena.state_misses", -1) != 0:
        fail(f"arena.state_misses == {counters.get('arena.state_misses')}: "
             "recovery re-interned into the arena")

    print(f"check_recovery: OK ({len(before)} responses byte-identical, "
          f"{counters['arena.state_restored']:.0f} objects restored, "
          "0 re-interns)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
