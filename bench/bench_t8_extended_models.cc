// T8 — The extended model family (the Corollary 7.3 equivalence remark):
// layer anatomy and the impossibility construction for the models beyond
// the paper's four — the synchronic layering over message passing (the
// "completely analogous proof" of Section 5.1), immediate-snapshot shared
// memory, and iterated immediate snapshots. The uniform verdict across all
// of them is the paper's headline: one analysis, many models.
#include <benchmark/benchmark.h>

#include "bench_flags.hpp"

#include <cstdio>

#include "analysis/reports.hpp"
#include <memory>

#include "core/decision_rule.hpp"
#include "engine/bivalence.hpp"
#include "engine/spec.hpp"
#include "models/iis/iis_model.hpp"
#include "models/msgpass/msgpass_sync_model.hpp"
#include "models/snapshot/snapshot_model.hpp"
#include "util/table.hpp"

namespace lacon {
namespace {

std::unique_ptr<LayeredModel> build(const std::string& which, int n,
                                    const DecisionRule& rule) {
  if (which == "AsyncMP/S^sync") return std::make_unique<MsgPassSyncModel>(n, rule);
  if (which == "M^snap/IS") return std::make_unique<SnapshotModel>(n, rule);
  return std::make_unique<IisModel>(n, rule);
}

void print_table() {
  Table table({"model", "n", "|S(x)|", "bivalent run depth 4",
               "violated requirement"});
  for (const char* which_cstr : {"AsyncMP/S^sync", "M^snap/IS", "IIS"}) {
    const std::string which = which_cstr;
    for (int n : {3}) {
      auto rule = min_after_round(2);
      auto model = build(which, n, *rule);
      const std::size_t layer =
          model->layer(model->initial_states().front()).size();

      auto model2 = build(which, n, *rule);
      const Exactness mode =
          which == "IIS" ? Exactness::kQuiescence : Exactness::kConvergence;
      ValenceEngine engine(*model2, 3, mode);
      const BivalentRunResult run = extend_bivalent_run(engine, 4);

      auto model3 = build(which, n, *rule);
      const TrilemmaVerdict v = consensus_trilemma(*model3, 3, 3);
      const char* what = "none";
      switch (v.violated) {
        case TrilemmaVerdict::Violated::kAgreement: what = "agreement"; break;
        case TrilemmaVerdict::Violated::kValidity: what = "validity"; break;
        case TrilemmaVerdict::Violated::kDecision: what = "decision"; break;
        case TrilemmaVerdict::Violated::kNone: break;
      }
      table.add_row({which, cell(static_cast<long long>(n)),
                     cell(static_cast<long long>(layer)),
                     run.complete ? "complete" : run.stuck_reason, what});
    }
  }
  std::fputs(
      table.to_string("T8: the extended model family (Corollary 7.3)")
          .c_str(),
      stdout);
}

void BM_ExtendedLayer(benchmark::State& state, const char* which) {
  auto rule = never_decide();
  for (auto _ : state) {
    auto model = build(which, 3, *rule);
    benchmark::DoNotOptimize(
        model->layer(model->initial_states().front()).size());
  }
}
BENCHMARK_CAPTURE(BM_ExtendedLayer, msgpass_sync, "AsyncMP/S^sync");
BENCHMARK_CAPTURE(BM_ExtendedLayer, snapshot, "M^snap/IS");
BENCHMARK_CAPTURE(BM_ExtendedLayer, iis, "IIS");

void BM_ExtendedBivalentRun(benchmark::State& state, const char* which) {
  auto rule = min_after_round(2);
  for (auto _ : state) {
    auto model = build(which, 3, *rule);
    ValenceEngine engine(*model, 3, Exactness::kConvergence);
    benchmark::DoNotOptimize(extend_bivalent_run(engine, 3).complete);
  }
}
BENCHMARK_CAPTURE(BM_ExtendedBivalentRun, msgpass_sync, "AsyncMP/S^sync");
BENCHMARK_CAPTURE(BM_ExtendedBivalentRun, snapshot, "M^snap/IS");

}  // namespace
}  // namespace lacon

int main(int argc, char** argv) {
  lacon::benchflags::init(&argc, argv);
  lacon::print_table();
  lacon::benchflags::add_json_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lacon::benchflags::finish();
  return 0;
}
