// laconrd — analysis-as-a-service daemon over a Unix-domain socket.
//
// Serves newline-delimited JSON analysis requests (service/protocol.hpp)
// against shared interned state spaces: every request for the same
// (model, n, t) hits one hash-consing arena, layer cache and valence memo,
// so repeated queries warm-start on each other's work. With
// LACON_STORE=load|loadsave the daemon warm-starts sessions from
// lacon.store.v1 snapshots in LACON_STORE_DIR; with save|loadsave it
// persists every session on clean shutdown (SIGINT/SIGTERM). With
// LACON_WAL=on every served request is additionally committed to a
// crash-durable write-ahead log before its response is written, so even a
// kill -9 recovers the sessions to their exact pre-crash content
// (DESIGN.md §14).
//
// Usage:
//   laconrd [--socket PATH]              serve until SIGINT/SIGTERM
//   laconrd [--socket PATH] --client R   send request line R, print response
//   laconrd ... --client R --timeout MS  fail the client after MS ms
//
// The --client mode makes smoke tests and transcripts dependency-free:
//   laconrd --socket /tmp/lacon.sock &
//   laconrd --socket /tmp/lacon.sock --client
//     '{"id":1,"model":"mobile","n":3,"query":"layers","depth":2}'
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/trace.hpp"
#include "service/server.hpp"
#include "store/env.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--client REQUEST_JSON] "
               "[--timeout MS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/laconrd.sock";
  std::string client_request;
  bool client_mode = false;
  int timeout_ms = 30'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--client" && i + 1 < argc) {
      client_mode = true;
      client_request = argv[++i];
    } else if (arg == "--timeout" && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  if (client_mode) {
    std::string response, error;
    if (!lacon::service::Server::request(socket_path, client_request,
                                         &response, &error, timeout_ms)) {
      std::fprintf(stderr, "laconrd: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", response.c_str());
    return 0;
  }

  lacon::service::Server server({.socket_path = socket_path});
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "laconrd: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "laconrd: listening on %s (store mode: %s, wal: %s)\n",
               socket_path.c_str(),
               lacon::store::to_string(lacon::store::mode()),
               lacon::store::wal_enabled() ? "on" : "off");

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = handle_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  while (g_stop == 0) {
    struct timespec ts {0, 100'000'000};
    nanosleep(&ts, nullptr);
  }

  std::fprintf(stderr, "laconrd: shutting down (%zu session(s))\n",
               server.sessions().session_count());
  server.sessions().save_all();  // honors LACON_STORE=save|loadsave
  server.stop();
  lacon::trace::write_env_artifacts();
  return 0;
}
