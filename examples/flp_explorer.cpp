// flp_explorer — interactive exploration of the impossibility machinery.
//
// Usage: flp_explorer [model] [rule] [depth]
//   model: mobile | sharedmem | msgpass | sync   (default: sharedmem)
//   rule:  min2 | min3 | own1 | majority2 | unanimity | safe
//   depth: layers to explore / extend              (default: 4)
//
// For the chosen model and candidate protocol the tool reports which
// consensus requirement fails (Theorem 4.2: in the asynchronous models, at
// least one always does) and, when the protocol is safe, prints the
// constructed all-bivalent run layer by layer with the decision status of
// every process.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/reports.hpp"
#include "engine/bivalence.hpp"

namespace {

using namespace lacon;

std::unique_ptr<DecisionRule> make_rule(const std::string& name) {
  if (name == "min2") return min_after_round(2);
  if (name == "min3") return min_after_round(3);
  if (name == "own1") return own_input_after_round(1);
  if (name == "majority2") return majority_after_round(2);
  if (name == "unanimity") return unanimity_then_min(2);
  if (name == "safe") return min_when_all_known(1);
  std::fprintf(stderr, "unknown rule '%s'\n", name.c_str());
  std::exit(1);
}

ModelKind make_kind(const std::string& name) {
  if (name == "mobile") return ModelKind::kMobile;
  if (name == "sharedmem") return ModelKind::kSharedMem;
  if (name == "msgpass") return ModelKind::kMsgPass;
  if (name == "sync") return ModelKind::kSync;
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(1);
}

void describe_state(LayeredModel& model, StateId x, int layer_index) {
  std::printf("  layer %d: state %u  decisions [", layer_index, x);
  const StateRef s = model.state(x);
  for (ProcessId i = 0; i < model.n(); ++i) {
    const Value d = s.decisions[static_cast<std::size_t>(i)];
    std::printf("%s%s", i ? " " : "", d == kUndecided ? "-" : std::to_string(d).c_str());
  }
  std::printf("]  failed %s\n", model.failed_at(x).to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "sharedmem";
  const std::string rule_name = argc > 2 ? argv[2] : "min2";
  const int depth = argc > 3 ? std::atoi(argv[3]) : 4;

  const ModelKind kind = make_kind(model_name);
  const auto rule = make_rule(rule_name);
  const int n = 3;
  const int t = 1;

  std::printf("model %s, protocol %s, n=%d\n\n", model_kind_name(kind).c_str(),
              rule->name().c_str(), n);

  auto model = make_model(kind, n, t, *rule);
  const TrilemmaVerdict verdict = consensus_trilemma(*model, depth, depth);
  const char* what = "none (all requirements hold to the explored depth)";
  switch (verdict.violated) {
    case TrilemmaVerdict::Violated::kAgreement: what = "AGREEMENT"; break;
    case TrilemmaVerdict::Violated::kValidity: what = "VALIDITY"; break;
    case TrilemmaVerdict::Violated::kDecision: what = "DECISION"; break;
    case TrilemmaVerdict::Violated::kNone: break;
  }
  std::printf("violated requirement: %s\n  witness: %s\n\n", what,
              verdict.witness.c_str());

  // When the protocol is safe, show the bivalent run explicitly.
  auto model2 = make_model(kind, n, t, *rule);
  ValenceEngine engine(*model2, depth, default_exactness(kind));
  const BivalentRunResult run = extend_bivalent_run(engine, depth);
  if (!run.run.empty()) {
    std::printf("all-bivalent run (%s):\n",
                run.complete ? "complete" : run.stuck_reason.c_str());
    for (std::size_t i = 0; i < run.run.size(); ++i) {
      describe_state(*model2, run.run[i], static_cast<int>(i));
    }
  } else {
    std::printf("no bivalent initial state: %s\n", run.stuck_reason.c_str());
  }

  // Arena accounting for the run-construction model. approx_bytes is a
  // content-derived estimate (per-state/per-view formulas, DESIGN.md §9) —
  // deliberately NOT allocator or pool occupancy, so it is identical for
  // every worker count. It is the same quantity the guard's memory budget
  // evaluates and the metrics snapshot reports as guard.max_bytes headroom.
  std::printf("\ninterned: %zu states, approx_bytes %zu "
              "(content-derived, scheduling-independent)\n",
              model2->num_states(), model2->memory_footprint());
  return 0;
}
