// sync_lower_bound — the t+1-round story (Section 6), end to end.
//
// Usage: sync_lower_bound [t]   (default t = 2; n = t + 2)
//
// 1. Lower bound (Corollary 6.3): the rule "decide at round t" violates
//    agreement somewhere in the S^t submodel; the Lemma 6.1 chain keeps a
//    bivalent state alive through round t-1 and Lemma 6.2 shows two more
//    rounds are needed.
// 2. Tightness: FloodSet and EIG decide in exactly t+1 rounds under the
//    value-hiding chain adversary, and never violate safety under an
//    exhaustive sweep of crash plans (small t) or a randomized sweep.
// 3. Early stopping: the early-deciding variant finishes by min(f+2, t+1).
#include <cstdio>
#include <cstdlib>

#include "engine/bivalence.hpp"
#include "engine/spec.hpp"
#include "models/synchronous/sync_model.hpp"
#include "protocols/early_deciding.hpp"
#include "protocols/eig.hpp"
#include "protocols/floodset.hpp"
#include "sim/sync_sim.hpp"

int main(int argc, char** argv) {
  using namespace lacon;
  const int t = argc > 1 ? std::atoi(argv[1]) : 2;
  const int n = t + 2;
  std::printf("t = %d, n = %d\n\n", t, n);

  // --- 1. the lower bound inside the layered submodel ----------------------
  {
    auto too_early = min_after_round(t);
    SyncModel model(n, t, *too_early);
    const SpecReport report = check_consensus_spec(model, t + 1);
    std::printf("[lower bound] 'decide at round %d' violates agreement: %s\n",
                t, report.agreement ? "yes" : "NO (unexpected!)");

    auto rule = min_after_round(t + 1);
    SyncModel good(n, t, *rule);
    ValenceEngine engine(good, t + 2);
    const BivalentRunResult chain = extend_bivalent_run(engine, t - 1);
    std::printf(
        "[Lemma 6.1]   bivalent chain of %zu layers built (need %d)\n",
        chain.run.size() - 1, t - 1);
    const SpecReport ok = check_consensus_spec(good, t + 1);
    std::printf(
        "[tight]       'decide at round %d' is a correct consensus protocol: "
        "%s\n\n",
        t + 1,
        (!ok.agreement && !ok.validity && ok.all_quiesce) ? "yes" : "NO");
  }

  // --- 2. simulator-level tightness ----------------------------------------
  std::vector<Value> inputs(static_cast<std::size_t>(n), 1);
  inputs[0] = 0;
  for (const auto& factory : {floodset_factory(), eig_factory()}) {
    const SyncRunResult r =
        run_sync(*factory, n, t, inputs, hiding_chain(n, t));
    std::printf("[%s] hiding-chain adversary: last decision at round %d "
                "(t+1 = %d), agreement %s, survivors decide %d\n",
                factory->name().c_str(), r.outcome.max_decision_round, t + 1,
                r.outcome.agreement ? "ok" : "VIOLATED",
                r.decisions[static_cast<std::size_t>(n - 1)].value_or(-1));
  }

  // --- 3. early stopping -----------------------------------------------------
  std::printf("\n[early-deciding] decision round by actual failures f:\n");
  const auto early = early_deciding_factory();
  for (int f = 0; f <= t; ++f) {
    int worst = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      const CrashPlan plan = random_crashes(n, t, t + 1, seed);
      if (static_cast<int>(plan.size()) != f) continue;
      const SyncRunResult r = run_sync(*early, n, t, inputs, plan);
      worst = std::max(worst, r.outcome.max_decision_round);
    }
    std::printf("  f = %d: worst round %d  (bound min(f+2, t+1) = %d)\n", f,
                worst, std::min(f + 2, t + 1));
  }
  return 0;
}
