// store_roundtrip — the lacon.store.v1 cold-vs-warm equivalence harness.
//
// Runs one canonical analysis (explore to depth, classify the frontier,
// s-diameter) and prints a canonical, id-free transcript on stdout:
// level sizes, sorted canonical state renderings, valence counts, diameter.
// Everything on stdout is deterministic across runs and worker counts
// (raw ids never appear — DESIGN.md §9), so the CI lane can demand
// byte-identical output between:
//
//   store_roundtrip --save snap.store   cold: explore, analyze, snapshot
//   store_roundtrip --load snap.store   warm: load snapshot, re-analyze
//
// Counter evidence (stderr, not compared): after a warm start the arena
// miss counters stay at 0 — every state the analysis touches was replayed
// from the snapshot — while "arena.state_restored" carries the population.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/reports.hpp"
#include "engine/explore.hpp"
#include "engine/valence.hpp"
#include "relation/similarity.hpp"
#include "runtime/stats.hpp"
#include "store/snapshot.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--save PATH | --load PATH) [--model "
               "mobile|sharedmem|msgpass|sync] [--n N] [--t T] [--depth D] "
               "[--horizon H]\n",
               argv0);
  return 2;
}

// Canonical rendering of one state: environment term plus each process's
// view term and decision. Scheduling-independent by construction.
std::string render_state(lacon::LayeredModel& model, lacon::StateId x) {
  const lacon::StateRef s = model.state(x);
  std::string out = "env{" + model.env_to_string(x) + "}";
  for (int i = 0; i < model.n(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    out += " p" + std::to_string(i) + "=" +
           model.views().to_string(s.locals[idx]) + "/d" +
           std::to_string(s.decisions[idx]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string save_path, load_path, model_name = "mobile";
  int n = 3, t = 1, depth = 2, horizon = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (arg == "--load" && i + 1 < argc) {
      load_path = argv[++i];
    } else if (arg == "--model" && i + 1 < argc) {
      model_name = argv[++i];
    } else if (arg == "--n") {
      if (!next(&n)) return usage(argv[0]);
    } else if (arg == "--t") {
      if (!next(&t)) return usage(argv[0]);
    } else if (arg == "--depth") {
      if (!next(&depth)) return usage(argv[0]);
    } else if (arg == "--horizon") {
      if (!next(&horizon)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (save_path.empty() == load_path.empty()) return usage(argv[0]);

  lacon::ModelKind kind;
  if (model_name == "mobile") {
    kind = lacon::ModelKind::kMobile;
  } else if (model_name == "sharedmem") {
    kind = lacon::ModelKind::kSharedMem;
  } else if (model_name == "msgpass") {
    kind = lacon::ModelKind::kMsgPass;
  } else if (model_name == "sync") {
    kind = lacon::ModelKind::kSync;
  } else {
    return usage(argv[0]);
  }

  const auto rule =
      lacon::min_after_round(kind == lacon::ModelKind::kSync ? t + 1 : 2);
  const auto model = lacon::make_model(kind, n, t, *rule);
  lacon::ValenceEngine engine(*model, horizon,
                              lacon::default_exactness(kind));

  if (!load_path.empty()) {
    const lacon::store::Result r =
        lacon::store::load(*model, load_path, &engine);
    if (!r.ok()) {
      std::fprintf(stderr, "store_roundtrip: load failed (%s): %s\n",
                   lacon::store::to_string(r.status), r.detail.c_str());
      return 1;
    }
  }

  // The canonical analysis. After a warm start every intern below is a hit.
  const auto levels = lacon::reachable_by_depth(*model, depth);
  std::printf("model %s n=%d t=%d depth=%d horizon=%d\n",
              model->name().c_str(), n, t, depth, horizon);
  for (std::size_t d = 0; d < levels.size(); ++d) {
    std::printf("level %zu: %zu states\n", d, levels[d].size());
  }
  const std::vector<lacon::StateId>& frontier = levels.back();

  std::vector<std::string> rendered;
  rendered.reserve(frontier.size());
  for (lacon::StateId x : frontier) rendered.push_back(render_state(*model, x));
  std::sort(rendered.begin(), rendered.end());
  for (const std::string& s : rendered) std::printf("state %s\n", s.c_str());

  const auto infos = engine.classify_all(frontier);
  std::size_t bivalent = 0, uni0 = 0, uni1 = 0, exact = 0;
  for (const lacon::ValenceInfo& v : infos) {
    if (v.bivalent()) ++bivalent;
    if (v.univalent() && v.value() == 0) ++uni0;
    if (v.univalent() && v.value() == 1) ++uni1;
    if (v.exact) ++exact;
  }
  std::printf("valence bivalent=%zu uni0=%zu uni1=%zu exact=%zu\n", bivalent,
              uni0, uni1, exact);

  const auto diam = lacon::s_diameter(*model, frontier);
  if (diam.has_value()) {
    std::printf("s-diameter %zu\n", *diam);
  } else {
    std::printf("s-diameter disconnected\n");
  }

  auto& stats = lacon::runtime::Stats::global();
  std::fprintf(stderr,
               "counters: state_misses=%llu state_hits=%llu "
               "state_restored=%llu view_misses=%llu view_restored=%llu\n",
               static_cast<unsigned long long>(
                   stats.counter("arena.state_misses").value()),
               static_cast<unsigned long long>(
                   stats.counter("arena.state_hits").value()),
               static_cast<unsigned long long>(
                   stats.counter("arena.state_restored").value()),
               static_cast<unsigned long long>(
                   stats.counter("arena.view_misses").value()),
               static_cast<unsigned long long>(
                   stats.counter("arena.view_restored").value()));

  if (!load_path.empty() &&
      stats.counter("arena.state_misses").value() != 0) {
    std::fprintf(stderr,
                 "store_roundtrip: warm start interned new states — the "
                 "snapshot was incomplete\n");
    return 1;
  }

  if (!save_path.empty()) {
    const lacon::store::Result r =
        lacon::store::save(*model, save_path, &engine);
    if (!r.ok()) {
      std::fprintf(stderr, "store_roundtrip: save failed (%s): %s\n",
                   lacon::store::to_string(r.status), r.detail.c_str());
      return 1;
    }
    std::fprintf(stderr, "saved %s\n", save_path.c_str());
  }
  return 0;
}
