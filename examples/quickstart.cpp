// Quickstart: the paper's layered analysis on the mobile-failure model.
//
// Builds M^mf with n = 3 processes running the full-information protocol
// with the FloodSet-style decision rule "decide the minimum known input
// after 2 rounds", then
//   1. verifies Lemma 3.6: Con_0 is similarity connected, valence connected,
//      and contains a bivalent initial state;
//   2. runs the Theorem 4.2 construction: extends an all-bivalent run layer
//      by layer — the executable form of "consensus is impossible with one
//      mobile failure" (Corollary 5.2);
//   3. prints the trilemma verdict for a catalog of candidate protocols:
//      each violates one of decision / agreement / validity;
//   4. demonstrates the observability layer: the whole analysis runs under
//      LACON_TRACE=counters-equivalent tracing, and the program finishes by
//      writing quickstart_trace.json (open it at https://ui.perfetto.dev)
//      and printing where the time went, span by span.
#include <cstdio>

#include "analysis/reports.hpp"
#include "engine/bivalence.hpp"
#include "engine/explore.hpp"
#include "models/mobile/mobile_model.hpp"
#include "relation/similarity.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"

int main() {
  using namespace lacon;
  const int n = 3;
  const int horizon = 3;

  // Record spans for everything below. Equivalent to running any lacon
  // binary with LACON_TRACE=spans in the environment; the explicit call
  // just makes the quickstart self-contained. Tracing never changes
  // results — with the default LACON_TRACE=off a span site costs one
  // relaxed atomic load.
  trace::set_mode(trace::Mode::kSpans);

  auto rule = min_after_round(2);
  MobileModel model(n, *rule);

  // --- Lemma 3.6 -----------------------------------------------------------
  const auto& con0 = model.initial_states();
  std::printf("Con_0: %zu initial states\n", con0.size());
  const auto levels = reachable_by_depth(model, 2);
  std::size_t reachable = 0;
  for (const auto& level : levels) reachable += level.size();
  std::printf("  reachable to depth 2: %zu states\n", reachable);
  std::printf("  similarity connected: %s\n",
              similarity_connected(model, con0) ? "yes" : "no");
  ValenceEngine engine(model, horizon);
  std::printf("  valence connected:    %s\n",
              engine.valence_connected(con0) ? "yes" : "no");
  const auto bivalent = engine.find_bivalent(con0);
  std::printf("  bivalent initial:     %s\n",
              bivalent ? "found" : "none");

  // --- Theorem 4.2 construction -------------------------------------------
  const int depth = 6;
  const BivalentRunResult run = extend_bivalent_run(engine, depth);
  std::printf("bivalent run: extended %zu layers (%s)\n", run.run.size() - 1,
              run.complete ? "complete" : run.stuck_reason.c_str());

  // --- Trilemma for candidate protocols ------------------------------------
  struct Candidate {
    const char* label;
    std::unique_ptr<DecisionRule> rule;
  };
  Candidate candidates[] = {
      {"min-after-round-2", min_after_round(2)},
      {"own-input-after-round-2", own_input_after_round(2)},
      {"unanimity-then-min-2", unanimity_then_min(2)},
  };
  for (auto& c : candidates) {
    MobileModel m(n, *c.rule);
    const TrilemmaVerdict v = consensus_trilemma(m, 4, horizon);
    const char* what = "none";
    switch (v.violated) {
      case TrilemmaVerdict::Violated::kAgreement: what = "agreement"; break;
      case TrilemmaVerdict::Violated::kValidity: what = "validity"; break;
      case TrilemmaVerdict::Violated::kDecision: what = "decision"; break;
      case TrilemmaVerdict::Violated::kNone: what = "none"; break;
    }
    std::printf("%-26s violates %-9s : %s\n", c.label, what,
                v.witness.c_str());
  }

  // --- Where did the time go? ----------------------------------------------
  // Every span recorded above also fed a log2 latency histogram
  // "span.<category>.<name>" in the stats registry; print the per-phase
  // totals, then export the full event timeline as a Chrome trace. In the
  // Perfetto UI each worker thread is a lane, engine phases appear as
  // explore.expand / explore.merge / valence.classify spans, and work
  // steals show as instants.
  for (const runtime::HistogramSample& h :
       runtime::Stats::global().histogram_snapshot()) {
    if (h.count == 0) continue;
    std::printf("%-28s %6llu spans, %8.3f ms total\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count),
                static_cast<double>(h.sum) * 1e-6);
  }
  const char* trace_path = "quickstart_trace.json";
  if (trace::write_chrome_trace(trace_path)) {
    std::printf("%zu span events -> %s (drag into https://ui.perfetto.dev)\n",
                trace::spans_recorded(), trace_path);
  }
  return 0;
}
