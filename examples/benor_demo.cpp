// benor_demo — the two escapes from the impossibility, on the asynchronous
// simulator.
//
// The paper proves deterministic 1-resilient asynchronous consensus
// impossible even in barely-asynchronous submodels. This demo shows, on the
// systems side:
//   * a deterministic rotating-coordinator protocol decides under fair
//     random scheduling but wedges forever when the adversary starves the
//     coordinator's messages;
//   * Ben-Or's randomized protocol decides with probability 1 under the
//     same adversary class, with the expected-phase statistics by n.
#include <cstdio>

#include "protocols/benor.hpp"
#include "protocols/coordinator.hpp"
#include "sim/async_sim.hpp"

int main() {
  using namespace lacon;

  std::printf("-- rotating coordinator (deterministic) --\n");
  {
    const auto factory = rotating_coordinator_factory();
    Rng rng(1);
    auto fair = random_scheduler(17);
    const AsyncRunResult ok = run_async(*factory, 3, 1, {1, 0, 1}, *fair, rng,
                                        {-1, -1, -1}, 100000);
    std::printf("fair scheduler:    decided=%s after %zu deliveries\n",
                ok.all_alive_decided ? "yes" : "no", ok.deliveries);
    auto starve = starve_sender_scheduler(0, 17);
    const AsyncRunResult bad = run_async(*factory, 3, 1, {1, 0, 1}, *starve,
                                         rng, {-1, -1, -1}, 100000);
    std::printf("starve p0:         %s after %zu deliveries "
                "(the FLP adversary, concretely)\n",
                bad.stalled ? "WEDGED — nobody ever decides" : "decided?!",
                bad.deliveries);
  }

  std::printf("\n-- Ben-Or (randomized), mixed inputs, fair scheduling --\n");
  for (int n : {4, 6, 8}) {
    const auto factory = benor_factory();
    const int t = (n - 1) / 2;
    std::vector<Value> inputs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) inputs[static_cast<std::size_t>(i)] = i % 2;
    int decided = 0;
    double deliveries = 0;
    const int runs = 100;
    for (std::uint64_t seed = 0; seed < runs; ++seed) {
      Rng rng(seed);
      auto sched = random_scheduler(seed * 31 + 7);
      const AsyncRunResult r =
          run_async(*factory, n, t, inputs, *sched, rng,
                    std::vector<long>(static_cast<std::size_t>(n), -1),
                    500000);
      if (r.all_alive_decided) ++decided;
      deliveries += static_cast<double>(r.deliveries);
    }
    std::printf("n=%d t=%d: %d/%d runs decide, avg %.0f deliveries\n", n, t,
                decided, runs, deliveries / runs);
  }

  std::printf("\n-- Ben-Or under the starving adversary --\n");
  {
    const auto factory = benor_factory();
    Rng rng(3);
    auto starve = starve_sender_scheduler(0, 23);
    const AsyncRunResult r = run_async(*factory, 4, 1, {0, 1, 1, 1}, *starve,
                                       rng, {-1, -1, -1, -1}, 500000);
    int decided = 0;
    for (ProcessId i = 1; i < 4; ++i) {
      if (r.decisions[static_cast<std::size_t>(i)]) ++decided;
    }
    std::printf("quorums of n-t ignore the starved sender: %d/3 of the "
                "others decide (deliveries %zu)\n",
                decided, r.deliveries);
  }
  return 0;
}
