// task_solvability — the Section 7 characterization on the task catalog.
//
// For each decision problem the tool evaluates the 1-thick-connectivity
// condition (Theorem 7.2 / Corollary 7.3: solvable 1-resiliently iff
// 1-thick connected) and the synchronous t-round diameter condition
// (Theorem 7.7), and compares with the known classification.
#include <cstdio>

#include "topology/solvability.hpp"
#include "topology/tasks.hpp"

int main() {
  using namespace lacon;

  struct Entry {
    DecisionProblem problem;
    const char* known;
  };
  const Entry catalog[] = {
      {consensus_task(3), "unsolvable 1-resiliently (FLP)"},
      {trivial_task(3), "solvable (no communication needed)"},
      {constant_task(3, 0), "solvable (decide 0)"},
      {weak_agreement_task(3), "solvable (decide 0; needs a subproblem!)"},
      {set_agreement_task(3, 2, 3), "solvable (2-set agreement, t=1 < k=2)"},
  };

  for (const Entry& e : catalog) {
    std::printf("== %s ==\n", e.problem.name.c_str());
    std::printf("   inputs: %zu assignments\n", e.problem.inputs.size());
    const ThickResult one = problem_k_thick_connected(e.problem, 1);
    const char* verdict = one.verdict == ThickVerdict::kConnected
                              ? "1-thick CONNECTED  => solvable 1-resiliently"
                          : one.verdict == ThickVerdict::kNotConnected
                              ? "NOT 1-thick connected => unsolvable"
                              : "undecided (search bound)";
    std::printf("   %s\n   (%s; %llu subproblems examined)\n", verdict,
                one.detail.c_str(),
                static_cast<unsigned long long>(one.subproblems_tried));
    const long long bound = diameter_bound(e.problem.n, 1, e.problem.n);
    std::printf("   t=1-round diameter condition (<= %lld): %s\n", bound,
                diameter_condition_holds(e.problem, 1, bound) ? "holds"
                                                              : "fails");
    std::printf("   known: %s\n\n", e.known);
  }
  return 0;
}
