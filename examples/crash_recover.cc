// crash_recover — kill -9 a WAL-enabled daemon mid-workload and prove the
// restart serves byte-identical results with zero re-interning.
//
// The durability contract under test (DESIGN.md §14): with LACON_WAL=on,
// every response on the wire implies its session deltas are fsync'd in the
// write-ahead log, so a SIGKILL at ANY point afterwards — including with a
// request in flight — recovers the session to its exact pre-crash content.
//
// Three phases, all forked from a single-threaded parent (the parent never
// starts a thread, so the harness is fork-safe under TSan; the children are
// free to multi-thread after the fork):
//
//   A  reference daemon, persistence off: run the workload, keep responses.
//   B  crash daemon, LACON_WAL=on over a fresh store dir: same workload
//      (responses must already match A), then SIGKILL it with at least four
//      forked clients concurrently in flight — same-session requests at
//      different horizons riding the group-commit path, plus a larger
//      session mid-interning — so the kill lands inside the coalesced
//      append+fsync discipline, not a quiet daemon.
//   C  recovery daemon over the same store dir: the workload again must
//      yield responses byte-identical to A, with metrics.new_states == 0 and
//      new_views == 0 on every request (nothing re-interned), and the
//      lacon.metrics.v1 snapshot must show arena.state_restored > 0 with
//      arena.state_misses == 0 — the space came back from the log, not from
//      re-exploration.
//
// Exits 0 on success; any violated assertion prints a diagnostic and exits
// nonzero. Used by ci.sh's kill-and-recover lane and the sanitizer soaks.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "service/json.hpp"
#include "service/server.hpp"

namespace {

using lacon::service::Json;
using lacon::service::Server;
using lacon::service::ServerOptions;

int g_failures = 0;

void fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "crash_recover: FAIL %s: %s\n", what, detail.c_str());
  ++g_failures;
}

// The committed workload: four query families against one shared session.
// Responses are id-free by protocol design, so byte-identical replies across
// independent daemon processes is a fair contract.
const std::vector<std::string>& workload() {
  static const std::vector<std::string> kRequests = {
      R"({"id":1,"model":"mobile","n":3,"query":"layers","depth":2})",
      R"({"id":2,"model":"mobile","n":3,"query":"valence","depth":2,"horizon":3})",
      R"({"id":3,"model":"mobile","n":3,"query":"diameter","depth":2})",
      R"({"id":4,"model":"mobile","n":3,"query":"similarity","depth":2})",
  };
  return kRequests;
}

// The requests in flight when the SIGKILL lands, one forked client each.
// Three hammer the committed session concurrently at distinct horizons —
// concurrent commit_wal calls stage into one group-commit round, so the
// kill can land inside the coalesced append+fsync — and the fourth interns
// a bigger fresh session so live arena growth is interrupted too.
const std::vector<std::string>& inflight_requests() {
  static const std::vector<std::string> kRequests = {
      R"({"id":5,"model":"mobile","n":3,"query":"valence","depth":2,"horizon":4})",
      R"({"id":6,"model":"mobile","n":3,"query":"valence","depth":2,"horizon":5})",
      R"({"id":7,"model":"mobile","n":3,"query":"layers","depth":3})",
      R"({"id":8,"model":"mobile","n":4,"query":"layers","depth":3})",
  };
  return kRequests;
}

// Forked daemon child: sets the persistence env, serves until SIGTERM.
// Never returns.
[[noreturn]] void run_daemon(const std::string& socket_path,
                             const std::string& store_dir, bool wal) {
  if (wal) {
    setenv("LACON_WAL", "on", 1);
    setenv("LACON_STORE_DIR", store_dir.c_str(), 1);
    setenv("LACON_STORE", "off", 1);  // recovery must not lean on save_all
  } else {
    unsetenv("LACON_WAL");
    unsetenv("LACON_STORE");
  }
  static volatile sig_atomic_t stop = 0;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = [](int) { stop = 1; };
  sigaction(SIGTERM, &sa, nullptr);

  Server server(ServerOptions{.socket_path = socket_path});
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "crash_recover: daemon start failed: %s\n",
                 error.c_str());
    _exit(3);
  }
  while (stop == 0) {
    struct timespec ts{0, 20'000'000};
    nanosleep(&ts, nullptr);
  }
  server.stop();
  _exit(0);
}

// Waits (in the single-threaded parent, raw syscalls only) until the
// daemon's socket accepts a connection.
bool wait_ready(const std::string& socket_path, int attempts = 200) {
  for (int i = 0; i < attempts; ++i) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd >= 0) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                    socket_path.c_str());
      const bool ok = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                                sizeof addr) == 0;
      ::close(fd);
      if (ok) return true;
    }
    struct timespec ts{0, 25'000'000};
    nanosleep(&ts, nullptr);
  }
  return false;
}

bool send_request(const std::string& socket_path, const std::string& line,
                  std::string* response) {
  std::string error;
  if (!Server::request(socket_path, line, response, &error, 30'000)) {
    fail("request", line + " -> " + error);
    return false;
  }
  return true;
}

// Everything but the "metrics"/"snapshot" members (elapsed_ms is wall-clock
// noise); what remains is the result payload the contract promises.
std::string result_fields(const std::string& response_line) {
  auto doc = Json::parse(response_line);
  if (!doc) {
    fail("parse", response_line);
    return response_line;
  }
  Json::Object& obj = doc->object();
  std::erase_if(obj, [](const std::pair<std::string, Json>& member) {
    return member.first == "metrics" || member.first == "snapshot";
  });
  return doc->dump();
}

double metrics_field(const std::string& response_line, const char* name,
                     double fallback) {
  auto doc = Json::parse(response_line);
  if (!doc) return fallback;
  const Json* metrics = doc->find("metrics");
  if (metrics == nullptr) return fallback;
  const Json* field = metrics->find(name);
  return field == nullptr ? fallback : field->as_number(fallback);
}

double counter_field(const std::string& response_line, const char* name,
                     double fallback) {
  auto doc = Json::parse(response_line);
  if (!doc) return fallback;
  const Json* snapshot = doc->find("snapshot");
  if (snapshot == nullptr) return fallback;
  const Json* counters = snapshot->find("counters");
  if (counters == nullptr) return fallback;
  const Json* field = counters->find(name);
  return field == nullptr ? fallback : field->as_number(fallback);
}

pid_t spawn_daemon(const std::string& socket_path, const std::string& store_dir,
                   bool wal) {
  const pid_t pid = ::fork();
  if (pid == 0) run_daemon(socket_path, store_dir, wal);
  if (pid < 0) {
    std::perror("crash_recover: fork");
    std::exit(3);
  }
  if (!wait_ready(socket_path)) {
    fail("startup", "daemon never became ready on " + socket_path);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    std::exit(3);
  }
  return pid;
}

void stop_daemon(pid_t pid) {
  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    fail("shutdown", "daemon exited abnormally (status " +
                         std::to_string(status) + ")");
  }
}

}  // namespace

int main() {
  char dir_template[] = "/tmp/crash_recover.XXXXXX";
  const char* tmp = ::mkdtemp(dir_template);
  if (tmp == nullptr) {
    std::perror("crash_recover: mkdtemp");
    return 3;
  }
  const std::string store_dir = tmp;
  const std::string sock_a = store_dir + "/a.sock";
  const std::string sock_b = store_dir + "/b.sock";
  const std::string sock_c = store_dir + "/c.sock";

  // Phase A: reference run, persistence off.
  std::vector<std::string> reference;
  {
    const pid_t pid = spawn_daemon(sock_a, store_dir, /*wal=*/false);
    for (const std::string& req : workload()) {
      std::string resp;
      if (!send_request(sock_a, req, &resp)) return 3;
      reference.push_back(result_fields(resp));
    }
    stop_daemon(pid);
  }

  // Phase B: WAL-enabled run over a fresh store dir, killed mid-workload.
  {
    const pid_t pid = spawn_daemon(sock_b, store_dir, /*wal=*/true);
    for (std::size_t i = 0; i < workload().size(); ++i) {
      std::string resp;
      if (!send_request(sock_b, workload()[i], &resp)) return 3;
      if (result_fields(resp) != reference[i]) {
        fail("phase B", "cold WAL run diverged from reference on " +
                            workload()[i]);
      }
      if (i == 0 && metrics_field(resp, "new_states", 0) <= 0) {
        fail("phase B", "first request interned nothing — workload is vacuous");
      }
    }
    // Put the concurrent requests in flight, one forked client each, then
    // SIGKILL the daemon under them. The clients' outcomes are irrelevant
    // (some may even finish); what matters is that the kill lands with the
    // daemon mid-work — including mid group-commit — and that phase C still
    // recovers every response phase B already delivered.
    std::vector<pid_t> clients;
    for (const std::string& req : inflight_requests()) {
      const pid_t client = ::fork();
      if (client == 0) {
        std::string resp, error;
        Server::request(sock_b, req, &resp, &error, 10'000);
        _exit(0);
      }
      if (client > 0) clients.push_back(client);
    }
    struct timespec ts{0, 100'000'000};
    nanosleep(&ts, nullptr);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      fail("phase B", "daemon was not killed by SIGKILL (status " +
                          std::to_string(status) + ")");
    }
    for (const pid_t client : clients) ::waitpid(client, &status, 0);
  }

  // Phase C: recovery run over the same store dir.
  {
    const pid_t pid = spawn_daemon(sock_c, store_dir, /*wal=*/true);
    for (std::size_t i = 0; i < workload().size(); ++i) {
      std::string resp;
      if (!send_request(sock_c, workload()[i], &resp)) return 3;
      if (result_fields(resp) != reference[i]) {
        fail("recovery", "response diverged from reference\n  want " +
                             reference[i] + "\n  got  " + result_fields(resp));
      }
      if (metrics_field(resp, "new_states", -1) != 0 ||
          metrics_field(resp, "new_views", -1) != 0) {
        fail("recovery", "request re-interned states after recovery: " +
                             workload()[i]);
      }
    }
    // The metrics snapshot proves the mechanism, not just the outcome: the
    // session content was restored from the log (state_restored > 0) and
    // nothing was re-explored into the arena (state_misses == 0).
    std::string resp;
    const std::string probe =
        R"({"id":9,"model":"mobile","n":3,"query":"layers","depth":2,"metrics":true})";
    if (!send_request(sock_c, probe, &resp)) return 3;
    if (counter_field(resp, "arena.state_restored", 0) <= 0) {
      fail("recovery", "arena.state_restored == 0 — nothing replayed");
    }
    if (counter_field(resp, "arena.state_misses", -1) != 0) {
      fail("recovery", "arena.state_misses != 0 — recovery re-interned");
    }
    stop_daemon(pid);
  }

  if (g_failures != 0) {
    std::fprintf(stderr, "crash_recover: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("crash_recover: OK (kill -9 recovered byte-identical, "
              "zero re-interns)\n");
  return 0;
}
