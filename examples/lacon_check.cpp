// lacon_check — one-shot mechanized verification report.
//
// Usage: lacon_check [n] [t] [depth] [horizon] [--dot]
//
// Runs the full lemma suite on all four of the paper's models (plus the
// trilemma verdicts and the topology catalog), prints a report table, and
// exits non-zero if any check fails — suitable for CI. With --dot, also
// prints the DOT rendering of Con_0's similarity graph for the mobile
// model (pipe into `dot -Tsvg`).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/dot.hpp"
#include "analysis/reports.hpp"
#include "topology/solvability.hpp"
#include "topology/tasks.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lacon;
  const int n = argc > 1 ? std::atoi(argv[1]) : 3;
  const int t = argc > 2 ? std::atoi(argv[2]) : 1;
  const int depth = argc > 3 ? std::atoi(argv[3]) : 2;
  const int horizon = argc > 4 ? std::atoi(argv[4]) : 3;
  const bool dot = argc > 5 && std::strcmp(argv[5], "--dot") == 0;

  bool all_ok = true;
  Table table({"model", "check", "ok", "checked", "detail"});
  for (ModelKind kind : {ModelKind::kMobile, ModelKind::kSharedMem,
                         ModelKind::kMsgPass, ModelKind::kSync}) {
    const bool sync = kind == ModelKind::kSync;
    auto rule = min_after_round(sync ? t + 1 : 2);
    for (const NamedCheck& check : run_lemma_suite(
             kind, n, t, depth, sync ? t + 2 : horizon, *rule)) {
      all_ok = all_ok && check.result.ok;
      table.add_row({model_kind_name(kind), check.name, cell(check.result.ok),
                     cell(static_cast<long long>(check.result.checked)),
                     check.result.detail});
    }
    // Trilemma: in the 1-resilient models the rule must violate something;
    // the synchronous t+1-round protocol must pass.
    auto model = make_model(kind, n, t, *rule);
    const TrilemmaVerdict v =
        consensus_trilemma(*model, depth + 1, sync ? t + 2 : horizon);
    const bool expected = sync ? v.violated == TrilemmaVerdict::Violated::kNone
                               : v.violated != TrilemmaVerdict::Violated::kNone;
    all_ok = all_ok && expected;
    table.add_row({model_kind_name(kind), "Trilemma (Theorem 4.2 / Cor 6.3)",
                   cell(expected), "1", v.witness});
  }
  std::fputs(table.to_string("lacon_check: mechanized lemma suite").c_str(),
             stdout);

  // Topology side.
  const bool consensus_rejected =
      problem_k_thick_connected(consensus_task(n), 1).verdict ==
      ThickVerdict::kNotConnected;
  const bool trivial_accepted =
      problem_k_thick_connected(trivial_task(n), 1).verdict ==
      ThickVerdict::kConnected;
  all_ok = all_ok && consensus_rejected && trivial_accepted;
  std::printf("\ntopology: consensus not 1-thick connected: %s; trivial task "
              "1-thick connected: %s\n",
              consensus_rejected ? "yes" : "NO",
              trivial_accepted ? "yes" : "NO");

  if (dot) {
    auto rule = min_after_round(2);
    {
      auto model = make_model(ModelKind::kMobile, n, 1, *rule);
      ValenceEngine engine(*model, horizon);
      std::fputs("\n", stdout);
      std::fputs(
          similarity_graph_dot(*model, model->initial_states(), &engine)
              .c_str(),
          stdout);
    }
  }

  std::printf("\noverall: %s\n", all_ok ? "ALL CHECKS PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
