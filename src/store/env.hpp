// Environment knobs for the persistent snapshot store (lacon::store).
//
//   LACON_STORE        off | load | save | loadsave   (default: off)
//   LACON_STORE_DIR    directory snapshots live in    (default: lacon_store)
//   LACON_WAL          off | on                       (default: off)
//   LACON_WAL_COMPACT  log-to-snapshot size ratio that triggers compaction,
//                      integer in [1, 1024]           (default: 8)
//   LACON_MMAP         off | on — mmap zero-copy snapshot loading
//                                                     (default: on)
//
// `load` warm-starts a model from an existing snapshot before analysis,
// `save` writes one after analysis, `loadsave` does both (load if present,
// save what the run added). Parsing follows the LACON_THREADS contract
// (runtime/thread_pool.hpp): a malformed value earns one stderr warning per
// process and falls back to the default — it never aborts and never
// silently changes meaning. The parse_* functions are pure (testable
// without touching the environment); mode()/dir() read the environment on
// every call so harnesses can retarget the store between phases.
#pragma once

#include <cstdint>
#include <string>

namespace lacon {
class LayeredModel;
}  // namespace lacon

namespace lacon::store {

enum class Mode : std::uint8_t { kOff = 0, kLoad, kSave, kLoadSave };

const char* to_string(Mode mode) noexcept;

// True when the mode asks for a load / save half, respectively.
inline bool loads(Mode m) noexcept {
  return m == Mode::kLoad || m == Mode::kLoadSave;
}
inline bool saves(Mode m) noexcept {
  return m == Mode::kSave || m == Mode::kLoadSave;
}

// Parses a LACON_STORE-style value. Empty/null yields the fallback
// silently; anything other than the four keywords warns once per process
// and yields the fallback.
Mode parse_mode(const char* text, Mode fallback) noexcept;

// Parses a LACON_STORE_DIR-style value. Empty/null yields the fallback
// silently; a value longer than kMaxDirLength (the ERANGE analogue for a
// path-valued knob: plausible prefix, absurd length) warns once per process
// and yields the fallback.
inline constexpr std::size_t kMaxDirLength = 3072;
std::string parse_dir(const char* text, const std::string& fallback);

// Parses a LACON_WAL-style value: "off"/"on". Empty/null yields the
// fallback silently; anything else warns once per process and yields the
// fallback.
bool parse_wal(const char* text, bool fallback) noexcept;

// Parses a LACON_WAL_COMPACT-style value: a decimal integer clamped-by-
// rejection to [1, kMaxWalCompactRatio] (out-of-range or non-numeric warns
// once and yields the fallback).
inline constexpr std::uint64_t kMaxWalCompactRatio = 1024;
std::uint64_t parse_wal_compact(const char* text,
                                std::uint64_t fallback) noexcept;

// Parses a LACON_MMAP-style value: "off"/"on". Empty/null yields the
// fallback silently; anything else warns once per process and yields the
// fallback.
bool parse_mmap(const char* text, bool fallback) noexcept;

// The knobs as configured by the environment right now.
Mode mode();
std::string dir();
bool wal_enabled();
std::uint64_t wal_compact_ratio();
bool mmap_enabled();

// Canonical snapshot filename for a model instance:
// <dir>/<sanitized-model-name>.n<n>.t<max_faulty>.lacon.store — model names
// contain '/' and '^', which sanitize to '_' so every instance maps to one
// flat file per directory.
std::string snapshot_filename(const std::string& model_name, int n,
                              int max_faulty);
std::string snapshot_path(const std::string& directory,
                          const std::string& model_name, int n,
                          int max_faulty);
// Convenience overload reading name/n/max_faulty off the model and the
// directory off LACON_STORE_DIR.
std::string snapshot_path(const LayeredModel& model);

// The WAL lives next to the snapshot it replays over: snapshot path + ".wal".
std::string wal_path(const LayeredModel& model);

}  // namespace lacon::store
