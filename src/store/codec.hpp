// Shared byte-level codecs for the persistent store formats.
//
// lacon.store.v1 snapshots (store/snapshot.hpp) and lacon.wal.v1 delta logs
// (store/wal.hpp) serialize the same record shapes — ViewNode, flat
// GlobalState, layer-cache entry, valence-memo entry, fingerprint row — so
// the per-record encodings live here, used by both writers and both
// loaders. A record decoded by the WAL replayer is byte-for-byte the record
// the snapshot loader would decode; only the framing (sectioned file vs
// append-only log) differs.
//
// Everything is little-endian (the host the toolchain targets); a
// big-endian port would swap inside Writer/Reader and nowhere else. The
// Reader is bounds-checked: every getter reports truncation instead of
// walking off the end, so a short or lying file can never make a loader
// read wild memory. Decoders validate only what the byte stream itself can
// show (length sanity against the remaining bytes); semantic validation
// (id ranges, DAG invariants) stays with the callers, which know the
// replay horizon.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "core/state.hpp"
#include "core/view.hpp"
#include "engine/lemma_store.hpp"
#include "engine/valence.hpp"

namespace lacon::store::codec {

inline std::uint64_t fnv1a(const std::uint8_t* p, std::size_t bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// Append-only little-endian byte sink.
class Writer {
 public:
  void raw(const void* p, std::size_t bytes) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + bytes);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void pad_to_8() {
    while (buf_.size() % 8 != 0) buf_.push_back(0);
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::uint8_t* data() const noexcept { return buf_.data(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked reads over a byte span.
class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t bytes) : p_(p), end_(p + bytes) {}

  bool raw(void* out, std::size_t bytes) {
    if (static_cast<std::size_t>(end_ - p_) < bytes) return false;
    std::memcpy(out, p_, bytes);
    p_ += bytes;
    return true;
  }
  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool i32(std::int32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i64(std::int64_t* v) { return raw(v, sizeof *v); }
  bool skip(std::size_t bytes) {
    if (static_cast<std::size_t>(end_ - p_) < bytes) return false;
    p_ += bytes;
    return true;
  }
  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// --- ViewNode ---------------------------------------------------------------

inline void encode_view(Writer& w, const ViewNode& v) {
  w.i32(static_cast<std::int32_t>(v.owner));
  w.i32(v.round);
  w.i32(static_cast<std::int32_t>(v.input));
  w.i32(static_cast<std::int32_t>(v.prev));
  w.u32(static_cast<std::uint32_t>(v.obs.size()));
  for (const Obs& o : v.obs) {
    w.i32(o.source);
    w.i32(static_cast<std::int32_t>(o.view));
  }
}

inline bool decode_view(Reader& r, ViewNode* v) {
  std::int32_t owner = 0, input = 0, prev = 0;
  std::uint32_t obs_count = 0;
  if (!r.i32(&owner) || !r.i32(&v->round) || !r.i32(&input) || !r.i32(&prev) ||
      !r.u32(&obs_count) || obs_count > r.remaining() / 8) {
    return false;
  }
  v->owner = static_cast<ProcessId>(owner);
  v->input = static_cast<Value>(input);
  v->prev = static_cast<ViewId>(prev);
  v->obs.resize(obs_count);
  for (Obs& o : v->obs) {
    r.i32(&o.source);
    std::int32_t view = 0;
    r.i32(&view);
    o.view = static_cast<ViewId>(view);
  }
  return true;
}

// --- GlobalState (env i64 words + 32-bit locals/decisions lanes) ------------

inline void encode_state(Writer& w, const StateRef& s) {
  w.u64(s.env.size());
  for (std::int64_t word : s.env) w.i64(word);
  for (ViewId v : s.locals) w.i32(static_cast<std::int32_t>(v));
  for (Value d : s.decisions) w.i32(static_cast<std::int32_t>(d));
}

inline bool decode_state(Reader& r, int n, GlobalState* s) {
  std::uint64_t env_len = 0;
  if (!r.u64(&env_len) || env_len > r.remaining() / 8) return false;
  s->env.resize(static_cast<std::size_t>(env_len));
  for (std::int64_t& w : s->env) {
    if (!r.i64(&w)) return false;
  }
  s->locals.resize(static_cast<std::size_t>(n));
  s->decisions.resize(static_cast<std::size_t>(n));
  for (ViewId& v : s->locals) {
    std::int32_t raw = 0;
    if (!r.i32(&raw)) return false;
    v = static_cast<ViewId>(raw);
  }
  for (Value& d : s->decisions) {
    std::int32_t raw = 0;
    if (!r.i32(&raw)) return false;
    d = static_cast<Value>(raw);
  }
  return true;
}

// --- Layer-cache entry ------------------------------------------------------

inline void encode_layer_entry(Writer& w, StateId x,
                               const std::vector<StateId>& succ) {
  w.u32(x);
  w.u32(static_cast<std::uint32_t>(succ.size()));
  for (StateId y : succ) w.u32(y);
}

inline bool decode_layer_entry(Reader& r, StateId* x,
                               std::vector<StateId>* succ) {
  std::uint32_t len = 0;
  if (!r.u32(x) || !r.u32(&len) || len > r.remaining() / 4) return false;
  succ->resize(len);
  for (StateId& y : *succ) {
    if (!r.u32(&y)) return false;
  }
  return true;
}

// --- Valence-memo entry -----------------------------------------------------

inline constexpr std::uint32_t kMemoV0 = 1u << 0;
inline constexpr std::uint32_t kMemoV1 = 1u << 1;
inline constexpr std::uint32_t kMemoExact = 1u << 2;
inline constexpr std::uint32_t kMemoDeep = 1u << 3;

inline void encode_memo_entry(Writer& w, const ValenceEngine::MemoEntry& e) {
  w.u32(e.x);
  w.i32(e.lookahead);
  std::uint32_t flags = 0;
  if (e.v0) flags |= kMemoV0;
  if (e.v1) flags |= kMemoV1;
  if (e.exact) flags |= kMemoExact;
  if (e.deep) flags |= kMemoDeep;
  w.u32(flags);
}

inline bool decode_memo_entry(Reader& r, ValenceEngine::MemoEntry* e) {
  std::uint32_t flags = 0;
  if (!r.u32(&e->x) || !r.i32(&e->lookahead) || !r.u32(&flags)) return false;
  e->v0 = (flags & kMemoV0) != 0;
  e->v1 = (flags & kMemoV1) != 0;
  e->exact = (flags & kMemoExact) != 0;
  e->deep = (flags & kMemoDeep) != 0;
  return true;
}

// --- Lemma fact (24 bytes: 128-bit canonical signature + proof metadata) ----

inline constexpr std::uint32_t kLemmaV0 = 1u << 0;
inline constexpr std::uint32_t kLemmaV1 = 1u << 1;
inline constexpr std::size_t kLemmaEntryBytes = 24;

inline void encode_lemma_entry(Writer& w, const LemmaStore::Fact& f) {
  w.u64(f.sig_hi);
  w.u64(f.sig_lo);
  w.i32(f.lookahead);
  std::uint32_t flags = 0;
  if (f.v0) flags |= kLemmaV0;
  if (f.v1) flags |= kLemmaV1;
  w.u32(flags);
}

inline bool decode_lemma_entry(Reader& r, LemmaStore::Fact* f) {
  std::uint32_t flags = 0;
  if (!r.u64(&f->sig_hi) || !r.u64(&f->sig_lo) || !r.i32(&f->lookahead) ||
      !r.u32(&flags) || f->lookahead < 0 || (flags & ~(kLemmaV0 | kLemmaV1))) {
    return false;
  }
  f->v0 = (flags & kLemmaV0) != 0;
  f->v1 = (flags & kLemmaV1) != 0;
  return true;
}

// --- Fingerprint row (u32 id + u32 pad keeps the u64 hashes 8-aligned) ------

inline void encode_fingerprint_row(Writer& w, StateId x,
                                   const std::uint64_t* row, int n) {
  w.u32(x);
  w.u32(0);
  for (int j = 0; j < n; ++j) w.u64(row[static_cast<std::size_t>(j)]);
}

inline bool decode_fingerprint_row(Reader& r, int n, StateId* x,
                                   std::uint64_t* row) {
  std::uint32_t pad = 0;
  if (!r.u32(x) || !r.u32(&pad)) return false;
  for (int j = 0; j < n; ++j) {
    if (!r.u64(&row[static_cast<std::size_t>(j)])) return false;
  }
  return true;
}

}  // namespace lacon::store::codec
