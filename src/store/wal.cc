#include "store/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "engine/valence.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"
#include "store/codec.hpp"

namespace lacon::store {

namespace {

using codec::Reader;
using codec::Writer;
using codec::fnv1a;

constexpr std::size_t kWalPreludeBytes = 8 + 4 + 4 + 8;
constexpr std::size_t kWalFrameBytes = 4 + 4 + 8 + 8;
// Floor for should_compact: a near-empty snapshot must not force a
// compaction cycle after every record.
constexpr std::uint64_t kCompactFloorBytes = 64 * 1024;

Result fail(Status status, std::string detail) {
  return Result{status, std::move(detail)};
}

// (x, lookahead, flags) packed for the persisted-memo set. A strengthened
// entry (deeper lookahead or new flags) gets a new key and re-appends;
// import_memo's strongest-wins merge makes the duplicate harmless.
std::uint64_t memo_key(const ValenceEngine::MemoEntry& e) noexcept {
  std::uint32_t flags = 0;
  if (e.v0) flags |= codec::kMemoV0;
  if (e.v1) flags |= codec::kMemoV1;
  if (e.exact) flags |= codec::kMemoExact;
  if (e.deep) flags |= codec::kMemoDeep;
  return (static_cast<std::uint64_t>(e.x) << 32) |
         (static_cast<std::uint64_t>(e.lookahead & 0xFFFFFF) << 8) | flags;
}

// (sig, lookahead) key for the persisted-lemma set: a fact min-merged to a
// cheaper proof re-appends, and the store's publish keeps the minimum.
std::tuple<std::uint64_t, std::uint64_t, std::int32_t> lemma_key(
    const LemmaStore::Fact& f) noexcept {
  return {f.sig_hi, f.sig_lo, f.lookahead};
}

Result fsync_parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return fail(Status::kIoError, "cannot open dir " + dir);
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) return fail(Status::kIoError, "cannot fsync dir " + dir);
  return {};
}

bool pread_all(int fd, std::uint8_t* out, std::size_t bytes,
               std::uint64_t offset) {
  while (bytes > 0) {
    const ssize_t got = ::pread(fd, out, bytes, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // short file
    out += got;
    bytes -= static_cast<std::size_t>(got);
    offset += static_cast<std::uint64_t>(got);
  }
  return true;
}

// One fully-decoded record, validated before anything is applied: a record
// that fails half-way through decoding must not leave the model half-ahead
// of the durability watermark.
struct DecodedRecord {
  std::uint64_t seq = 0;
  std::uint64_t base_views = 0;
  std::uint64_t new_views = 0;
  std::uint64_t base_states = 0;
  std::uint64_t new_states = 0;
  std::vector<ViewNode> views;
  std::vector<GlobalState> states;
  std::vector<std::pair<StateId, std::vector<StateId>>> layers;
  bool memo_present = false;
  std::int32_t memo_horizon = 0;
  std::uint32_t memo_mode = 0;
  std::vector<ValenceEngine::MemoEntry> memo;
  std::vector<std::pair<StateId, std::vector<std::uint64_t>>> fingerprints;
  std::vector<LemmaStore::Fact> lemmas;
};

// Decodes and semantically validates one record body. Returns false on any
// malformation — the caller treats that as a torn tail.
bool decode_record(const std::uint8_t* body, std::size_t bytes, int n,
                   DecodedRecord* rec) {
  Reader r(body, bytes);
  if (!r.u64(&rec->seq) || !r.u64(&rec->base_views) ||
      !r.u64(&rec->new_views) || !r.u64(&rec->base_states) ||
      !r.u64(&rec->new_states)) {
    return false;
  }
  if (rec->new_views > r.remaining() / 4 ||
      rec->new_states > r.remaining() / 4) {
    return false;
  }

  rec->views.resize(static_cast<std::size_t>(rec->new_views));
  for (std::uint64_t i = 0; i < rec->new_views; ++i) {
    ViewNode& v = rec->views[static_cast<std::size_t>(i)];
    if (!codec::decode_view(r, &v)) return false;
    const std::uint64_t id = rec->base_views + i;
    if (v.owner < 0 || v.owner >= n ||
        (v.prev != kNoView && static_cast<std::uint64_t>(v.prev) >= id)) {
      return false;
    }
  }

  const std::uint64_t views_end = rec->base_views + rec->new_views;
  rec->states.resize(static_cast<std::size_t>(rec->new_states));
  for (std::uint64_t i = 0; i < rec->new_states; ++i) {
    GlobalState& s = rec->states[static_cast<std::size_t>(i)];
    if (!codec::decode_state(r, n, &s)) return false;
    for (ViewId v : s.locals) {
      if (v < 0 || static_cast<std::uint64_t>(v) >= views_end) return false;
    }
  }

  const std::uint64_t states_end = rec->base_states + rec->new_states;
  std::uint64_t layer_count = 0;
  if (!r.u64(&layer_count) || layer_count > r.remaining() / 8) return false;
  rec->layers.resize(static_cast<std::size_t>(layer_count));
  for (auto& [x, succ] : rec->layers) {
    if (!codec::decode_layer_entry(r, &x, &succ) || x >= states_end) {
      return false;
    }
    for (StateId y : succ) {
      if (y >= states_end) return false;
    }
  }

  std::uint32_t memo_present = 0, reserved = 0;
  if (!r.u32(&memo_present) || !r.u32(&reserved) || memo_present > 1) {
    return false;
  }
  rec->memo_present = memo_present != 0;
  if (rec->memo_present) {
    std::uint64_t memo_count = 0;
    if (!r.i32(&rec->memo_horizon) || !r.u32(&rec->memo_mode) ||
        rec->memo_mode > 1 || !r.u64(&memo_count) ||
        memo_count > r.remaining() / 12) {
      return false;
    }
    rec->memo.resize(static_cast<std::size_t>(memo_count));
    for (ValenceEngine::MemoEntry& e : rec->memo) {
      if (!codec::decode_memo_entry(r, &e) || e.x >= states_end) return false;
    }
  }

  std::uint64_t fp_count = 0;
  const std::size_t fp_record_bytes = 8 + 8 * static_cast<std::size_t>(n);
  if (!r.u64(&fp_count) || fp_count > r.remaining() / fp_record_bytes) {
    return false;
  }
  rec->fingerprints.resize(static_cast<std::size_t>(fp_count));
  for (auto& [x, row] : rec->fingerprints) {
    row.resize(static_cast<std::size_t>(n));
    if (!codec::decode_fingerprint_row(r, n, &x, row.data()) ||
        x >= states_end) {
      return false;
    }
  }

  // Lemma block — absent in pre-lemma records, whose bodies end here with
  // only zero padding (< 8 bytes) remaining.
  if (r.remaining() >= 8) {
    std::uint64_t lemma_count = 0;
    if (!r.u64(&lemma_count) ||
        lemma_count > r.remaining() / codec::kLemmaEntryBytes) {
      return false;
    }
    rec->lemmas.resize(static_cast<std::size_t>(lemma_count));
    for (LemmaStore::Fact& f : rec->lemmas) {
      if (!codec::decode_lemma_entry(r, &f)) return false;
    }
  }

  // Anything left is zero padding to the 8-byte boundary.
  return r.remaining() < 8;
}

}  // namespace

Wal::~Wal() { close(); }

void Wal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result Wal::write_and_sync(const std::uint8_t* data, std::size_t bytes,
                           std::uint64_t at_offset) {
  std::uint64_t offset = at_offset;
  std::size_t left = bytes;
  while (left > 0) {
    const ssize_t put =
        ::pwrite(fd_, data, left, static_cast<off_t>(offset));
    if (put < 0) {
      if (errno == EINTR) continue;
      // Roll back to the previous record boundary: a failed append must
      // never leave a torn record in the middle of the log.
      ::ftruncate(fd_, static_cast<off_t>(at_offset));
      return fail(Status::kIoError,
                  path_ + ": write failed: " + std::strerror(errno));
    }
    data += put;
    left -= static_cast<std::size_t>(put);
    offset += static_cast<std::uint64_t>(put);
  }
  if (::fsync(fd_) != 0) {
    ::ftruncate(fd_, static_cast<off_t>(at_offset));
    return fail(Status::kIoError,
                path_ + ": fsync failed: " + std::strerror(errno));
  }
  return {};
}

Result Wal::open(LayeredModel& model, const std::string& path) {
  close();
  path_ = path;
  const std::uint32_t want_symmetry = model.sym_quotient_active() ? 1 : 0;

  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return fail(Status::kIoError,
                "cannot open " + path + ": " + std::strerror(errno));
  }

  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    close();
    return fail(Status::kIoError, "cannot stat " + path);
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);

  if (file_bytes == 0) {
    // Fresh log: write the identity header and make the file itself
    // durable (data, then the directory entry).
    Writer body;
    body.u32(static_cast<std::uint32_t>(model.n()));
    body.u32(static_cast<std::uint32_t>(model.max_faulty()));
    const std::string name = model.name();
    body.u32(static_cast<std::uint32_t>(name.size()));
    body.u32(want_symmetry);
    body.raw(name.data(), name.size());
    body.pad_to_8();

    Writer file;
    file.raw(kWalMagic, sizeof kWalMagic);
    file.u32(kWalFormatVersion);
    file.u32(static_cast<std::uint32_t>(body.size()));
    file.u64(fnv1a(body.data(), body.size()));
    file.raw(body.data(), body.size());

    if (Result r = write_and_sync(file.data(), file.size(), 0); !r.ok()) {
      close();
      return r;
    }
    if (Result r = fsync_parent_dir(path); !r.ok()) {
      close();
      return r;
    }
    header_end_ = file.size();
    log_end_ = header_end_;
    seq_ = 0;
    return {};
  }

  // Existing log: the header must parse and match the model. Header damage
  // is a typed error (unlike record damage, which replay truncates away) —
  // with no trustworthy identity the whole file is suspect.
  if (file_bytes < kWalPreludeBytes) {
    close();
    return fail(Status::kTruncated, path + ": shorter than the prelude");
  }
  std::uint8_t prelude[kWalPreludeBytes];
  if (!pread_all(fd_, prelude, sizeof prelude, 0)) {
    close();
    return fail(Status::kIoError, "cannot read " + path);
  }
  if (std::memcmp(prelude, kWalMagic, sizeof kWalMagic) != 0) {
    close();
    return fail(Status::kBadMagic, path + ": not a lacon.wal file");
  }
  Reader pre(prelude + sizeof kWalMagic, sizeof prelude - sizeof kWalMagic);
  std::uint32_t version = 0, header_bytes = 0;
  std::uint64_t header_checksum = 0;
  pre.u32(&version);
  pre.u32(&header_bytes);
  pre.u64(&header_checksum);
  if (version != kWalFormatVersion) {
    close();
    return fail(Status::kBadVersion,
                path + ": wal format version " + std::to_string(version) +
                    " (this build speaks only v" +
                    std::to_string(kWalFormatVersion) + ")");
  }
  if (file_bytes < kWalPreludeBytes + header_bytes) {
    close();
    return fail(Status::kTruncated, path + ": header extends past EOF");
  }
  std::vector<std::uint8_t> header(header_bytes);
  if (!pread_all(fd_, header.data(), header.size(), kWalPreludeBytes)) {
    close();
    return fail(Status::kIoError, "cannot read " + path);
  }
  if (fnv1a(header.data(), header.size()) != header_checksum) {
    close();
    return fail(Status::kCorrupt, path + ": header checksum mismatch");
  }
  Reader r(header.data(), header.size());
  std::uint32_t n = 0, max_faulty = 0, name_len = 0, symmetry = 0;
  if (!r.u32(&n) || !r.u32(&max_faulty) || !r.u32(&name_len) ||
      !r.u32(&symmetry) || symmetry > 1 || name_len > r.remaining()) {
    close();
    return fail(Status::kCorrupt, path + ": header body too short");
  }
  std::string name(name_len, '\0');
  r.raw(name.data(), name_len);
  if (name != model.name() || n != static_cast<std::uint32_t>(model.n()) ||
      max_faulty != static_cast<std::uint32_t>(model.max_faulty())) {
    close();
    return fail(Status::kModelMismatch,
                path + ": wal is " + name + " n=" + std::to_string(n) +
                    " t=" + std::to_string(max_faulty) + ", target is " +
                    model.name() + " n=" + std::to_string(model.n()) +
                    " t=" + std::to_string(model.max_faulty()));
  }
  if (symmetry != want_symmetry) {
    close();
    return fail(Status::kSymmetryMismatch,
                path + ": wal written with the orbit quotient " +
                    (symmetry != 0 ? "on" : "off") + ", target model runs it " +
                    (want_symmetry != 0 ? "on" : "off") + " (LACON_SYMMETRY)");
  }

  header_end_ = kWalPreludeBytes + header_bytes;
  log_end_ = file_bytes;  // replay() walks the records and trims the tail
  seq_ = 0;
  return {};
}

Result Wal::replay(LayeredModel& model, ValenceEngine* engine,
                   LemmaStore* lemmas, WalReplayStats* stats_out) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("wal.replay_time"));
  LACON_TRACE_PHASE("store", "wal_replay", log_end_ - header_end_);

  WalReplayStats rs;
  if (fd_ < 0) return fail(Status::kIoError, "wal not open");

  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(log_end_ - header_end_));
  if (!bytes.empty() &&
      !pread_all(fd_, bytes.data(), bytes.size(), header_end_)) {
    return fail(Status::kIoError, "cannot read " + path_);
  }

  const int n = model.n();
  std::size_t offset = 0;  // relative to header_end_
  Result applied_error;
  while (offset < bytes.size()) {
    // Frame.
    bool valid = bytes.size() - offset >= kWalFrameBytes;
    std::uint64_t body_bytes = 0;
    const std::uint8_t* body = nullptr;
    if (valid) {
      Reader fr(bytes.data() + offset, kWalFrameBytes);
      std::uint32_t magic = 0, reserved = 0;
      std::uint64_t checksum = 0;
      fr.u32(&magic);
      fr.u32(&reserved);
      fr.u64(&body_bytes);
      fr.u64(&checksum);
      body = bytes.data() + offset + kWalFrameBytes;
      valid = magic == kWalRecordMagic && body_bytes % 8 == 0 &&
              body_bytes <= bytes.size() - offset - kWalFrameBytes &&
              fnv1a(body, static_cast<std::size_t>(body_bytes)) == checksum;
    }

    // Body: decode and validate in full before touching the model.
    DecodedRecord rec;
    if (valid) {
      valid = decode_record(body, static_cast<std::size_t>(body_bytes), n,
                            &rec);
    }

    bool skip = false;
    if (valid) {
      const std::uint64_t cur_views = model.num_views();
      const std::uint64_t cur_states = model.num_states();
      if (rec.base_views == cur_views && rec.base_states == cur_states) {
        skip = false;  // applies to exactly this model state
      } else if (rec.base_views + rec.new_views <= cur_views &&
                 rec.base_states + rec.new_states <= cur_states) {
        // Fully covered by the snapshot we recovered over (saved after this
        // record was logged, crash before the log was reset).
        skip = true;
      } else {
        valid = false;  // stale/foreign record: cut it and everything after
      }
    }

    if (!valid) {
      rs.truncated_bytes = log_end_ - header_end_ - offset;
      const std::uint64_t new_end = header_end_ + offset;
      if (::ftruncate(fd_, static_cast<off_t>(new_end)) != 0 ||
          ::fsync(fd_) != 0) {
        return fail(Status::kIoError, "cannot truncate torn tail of " + path_);
      }
      log_end_ = new_end;
      break;
    }

    if (skip) {
      ++rs.records_skipped;
    } else {
      try {
        for (std::uint64_t i = 0; i < rec.new_views; ++i) {
          const ViewId got = model.views().restore(
              std::move(rec.views[static_cast<std::size_t>(i)]));
          if (static_cast<std::uint64_t>(got) != rec.base_views + i) {
            return fail(Status::kCorrupt,
                        path_ + ": view replay diverged at id " +
                            std::to_string(rec.base_views + i));
          }
        }
        for (std::uint64_t i = 0; i < rec.new_states; ++i) {
          const StateId got = model.restore_state(
              std::move(rec.states[static_cast<std::size_t>(i)]));
          if (static_cast<std::uint64_t>(got) != rec.base_states + i) {
            return fail(Status::kCorrupt,
                        path_ + ": state replay diverged at id " +
                            std::to_string(rec.base_states + i));
          }
        }
        if (!rec.layers.empty()) {
          model.import_layer_cache(std::move(rec.layers));
        }
        if (rec.memo_present && engine != nullptr &&
            engine->horizon() == rec.memo_horizon &&
            (engine->mode() == Exactness::kConvergence) ==
                (rec.memo_mode == 1)) {
          engine->import_memo(rec.memo);
        }
        for (const auto& [x, row] : rec.fingerprints) {
          model.restore_fingerprint_row(x, row.data());
        }
        if (lemmas != nullptr && !rec.lemmas.empty()) {
          lemmas->import_facts(rec.lemmas);
        }
      } catch (const std::bad_alloc&) {
        // Same contract as snapshot load: the model holds a partial replay
        // and the caller falls back to a cold start.
        return fail(Status::kIoError,
                    path_ + ": allocation failure during replay");
      }
      ++rs.records_applied;
      rs.views_applied += rec.new_views;
      rs.states_applied += rec.new_states;
    }
    seq_ = rec.seq + 1;
    offset += kWalFrameBytes + static_cast<std::size_t>(body_bytes);
  }

  // Everything the model now holds came from durable storage.
  mark_persisted_from(model, model.num_views(), model.num_states(), engine,
                      lemmas);

  stats.counter("wal.records_replayed").add(rs.records_applied);
  stats.counter("wal.records_skipped").add(rs.records_skipped);
  stats.counter("wal.bytes_replayed").add(log_end_ - header_end_);
  if (rs.truncated_bytes > 0) {
    stats.counter("wal.truncated_bytes").add(rs.truncated_bytes);
    stats.counter("wal.tails_truncated").increment();
  }
  if (stats_out != nullptr) *stats_out = rs;
  return {};
}

Result Wal::append(LayeredModel& model, ValenceEngine* engine,
                   LemmaStore* lemmas) {
  std::vector<ValenceEngine*> engines;
  if (engine != nullptr) engines.push_back(engine);
  return append(model, engines, lemmas);
}

Result Wal::append(LayeredModel& model,
                   const std::vector<ValenceEngine*>& engines,
                   LemmaStore* lemmas) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("wal.append_time"));
  if (fd_ < 0) return fail(Status::kIoError, "wal not open");

  // States first, then views: with S captured before V, every view a state
  // < S references exists (< V) — same ordering rule the snapshot relies
  // on.
  const std::uint64_t S = model.num_states();
  const std::uint64_t V = model.num_views();

  // Collect the not-yet-persisted cache entries. Bounds-filter against S:
  // an entry referencing a state interned after the capture waits for the
  // next commit.
  if (persisted_layers_.size() < S) persisted_layers_.resize(S, false);
  if (persisted_fingerprints_.size() < S) {
    persisted_fingerprints_.resize(S, false);
  }

  std::vector<std::pair<StateId, std::vector<StateId>>> layers;
  for (auto& [x, succ] : model.export_layer_cache()) {
    if (static_cast<std::uint64_t>(x) >= S || persisted_layers_[x]) continue;
    bool in_range = true;
    for (StateId y : succ) {
      in_range = in_range && static_cast<std::uint64_t>(y) < S;
    }
    if (in_range) layers.emplace_back(x, std::move(succ));
  }

  // One new-memo batch per distinct engine; a record carries one memo block
  // (with its engine's horizon/mode), so a round touching k engines emits k
  // records — all fsync'd together below.
  std::vector<std::pair<ValenceEngine*, std::vector<ValenceEngine::MemoEntry>>>
      memos;
  for (ValenceEngine* eng : engines) {
    if (eng == nullptr) continue;
    bool seen = false;
    for (const auto& [prev, unused] : memos) seen = seen || prev == eng;
    if (seen) continue;
    std::vector<ValenceEngine::MemoEntry> memo;
    for (const auto& e : eng->export_memo()) {
      if (static_cast<std::uint64_t>(e.x) >= S) continue;
      if (persisted_memo_.count({eng->horizon(), memo_key(e)}) != 0) continue;
      memo.push_back(e);
    }
    if (!memo.empty()) memos.emplace_back(eng, std::move(memo));
  }

  std::vector<StateId> fp_ids;
  for (std::uint64_t id = 0; id < S; ++id) {
    const auto x = static_cast<StateId>(id);
    if (!persisted_fingerprints_[x] &&
        model.cached_fingerprint_row(x) != nullptr) {
      fp_ids.push_back(x);
    }
  }

  std::vector<LemmaStore::Fact> facts;
  if (lemmas != nullptr) {
    // Signature-keyed, so no S-horizon filter applies: a fact is valid for
    // any state of equal canonical content, interned or not.
    for (const LemmaStore::Fact& f : lemmas->export_facts()) {
      if (persisted_lemmas_.count(lemma_key(f)) == 0) facts.push_back(f);
    }
  }

  const std::uint64_t new_views = V - persisted_views_;
  const std::uint64_t new_states = S - persisted_states_;
  if (new_views == 0 && new_states == 0 && layers.empty() && memos.empty() &&
      fp_ids.empty() && facts.empty()) {
    return {};  // nothing interned since the last commit
  }

  // The batch: the first record carries the full delta plus the first
  // engine's memo; each further engine gets a memo-only record whose base
  // counts are the NEW watermarks (zero new views/states), so sequential
  // replay applies them with no special casing.
  const int n = model.n();
  Writer batch;
  std::uint64_t records = 0;
  const auto frame = [&batch, &records](Writer& body) {
    body.pad_to_8();
    batch.u32(kWalRecordMagic);
    batch.u32(0);
    batch.u64(body.size());
    batch.u64(fnv1a(body.data(), body.size()));
    batch.raw(body.data(), body.size());
    ++records;
  };
  const auto memo_block = [](Writer& body, ValenceEngine* eng,
                             const std::vector<ValenceEngine::MemoEntry>& m) {
    body.u32(m.empty() ? 0 : 1);
    body.u32(0);
    if (m.empty()) return;
    body.i32(eng->horizon());
    body.u32(eng->mode() == Exactness::kConvergence ? 1 : 0);
    body.u64(m.size());
    for (const auto& e : m) codec::encode_memo_entry(body, e);
  };

  {
    Writer body;
    body.u64(seq_);
    body.u64(persisted_views_);
    body.u64(new_views);
    body.u64(persisted_states_);
    body.u64(new_states);
    for (std::uint64_t id = persisted_views_; id < V; ++id) {
      codec::encode_view(body, model.views().node(static_cast<ViewId>(id)));
    }
    for (std::uint64_t id = persisted_states_; id < S; ++id) {
      codec::encode_state(body, model.state(static_cast<StateId>(id)));
    }
    body.u64(layers.size());
    for (const auto& [x, succ] : layers) {
      codec::encode_layer_entry(body, x, succ);
    }
    if (memos.empty()) {
      body.u32(0);
      body.u32(0);
    } else {
      memo_block(body, memos.front().first, memos.front().second);
    }
    body.u64(fp_ids.size());
    for (StateId x : fp_ids) {
      codec::encode_fingerprint_row(body, x, model.cached_fingerprint_row(x),
                                    n);
    }
    body.u64(facts.size());
    for (const LemmaStore::Fact& f : facts) codec::encode_lemma_entry(body, f);
    frame(body);
  }
  for (std::size_t i = 1; i < memos.size(); ++i) {
    Writer body;
    body.u64(seq_ + records);
    body.u64(V);
    body.u64(0);
    body.u64(S);
    body.u64(0);
    body.u64(0);  // no layer entries
    memo_block(body, memos[i].first, memos[i].second);
    body.u64(0);  // no fingerprint rows
    body.u64(0);  // no lemma facts
    frame(body);
  }

  // One write, one fsync, for the whole round.
  if (Result r = write_and_sync(batch.data(), batch.size(), log_end_);
      !r.ok()) {
    return r;
  }

  log_end_ += batch.size();
  seq_ += records;
  persisted_views_ = V;
  persisted_states_ = S;
  for (const auto& [x, succ] : layers) persisted_layers_[x] = true;
  for (const auto& [eng, memo] : memos) {
    for (const auto& e : memo) {
      persisted_memo_.insert({eng->horizon(), memo_key(e)});
    }
  }
  for (StateId x : fp_ids) persisted_fingerprints_[x] = true;
  for (const LemmaStore::Fact& f : facts) persisted_lemmas_.insert(lemma_key(f));

  stats.counter("wal.records_appended").add(records);
  stats.counter("wal.bytes_appended").add(batch.size());
  stats.counter("wal.views_appended").add(new_views);
  stats.counter("wal.states_appended").add(new_states);
  stats.counter("wal.group_commits").increment();
  return {};
}

bool Wal::should_compact(std::uint64_t snapshot_bytes,
                         std::uint64_t ratio) const noexcept {
  if (fd_ < 0) return false;
  const std::uint64_t floor =
      snapshot_bytes > kCompactFloorBytes ? snapshot_bytes : kCompactFloorBytes;
  return log_bytes() > ratio * floor;
}

Result Wal::reset_to(LayeredModel& model, std::uint64_t num_views,
                     std::uint64_t num_states, ValenceEngine* engine,
                     LemmaStore* lemmas) {
  if (fd_ < 0) return fail(Status::kIoError, "wal not open");
  if (::ftruncate(fd_, static_cast<off_t>(header_end_)) != 0 ||
      ::fsync(fd_) != 0) {
    return fail(Status::kIoError, "cannot reset " + path_);
  }
  log_end_ = header_end_;
  seq_ = 0;
  mark_persisted_from(model, num_views, num_states, engine, lemmas);
  runtime::Stats::global().counter("wal.compactions").increment();
  return {};
}

void Wal::mark_persisted_from(LayeredModel& model, std::uint64_t num_views,
                              std::uint64_t num_states, ValenceEngine* engine,
                              LemmaStore* lemmas) {
  persisted_views_ = num_views;
  persisted_states_ = num_states;

  // The durable horizon may trail the live model (a snapshot races
  // interning); only content strictly below it counts as persisted. The
  // snapshot save side applies the same < num_states filter to the cache
  // sections, so these sets mirror the file exactly.
  const std::uint64_t live = model.num_states();
  persisted_layers_.assign(static_cast<std::size_t>(live), false);
  persisted_fingerprints_.assign(static_cast<std::size_t>(live), false);
  persisted_memo_.clear();

  for (const auto& [x, succ] : model.export_layer_cache()) {
    if (static_cast<std::uint64_t>(x) >= num_states) continue;
    bool in_range = true;
    for (StateId y : succ) {
      in_range = in_range && static_cast<std::uint64_t>(y) < num_states;
    }
    if (in_range) persisted_layers_[x] = true;
  }
  for (std::uint64_t id = 0; id < num_states && id < live; ++id) {
    const auto x = static_cast<StateId>(id);
    if (model.cached_fingerprint_row(x) != nullptr) {
      persisted_fingerprints_[x] = true;
    }
  }
  if (engine != nullptr) {
    memo_horizon_ = engine->horizon();
    memo_mode_ = engine->mode() == Exactness::kConvergence ? 1 : 0;
    for (const auto& e : engine->export_memo()) {
      if (static_cast<std::uint64_t>(e.x) < num_states) {
        persisted_memo_.insert({engine->horizon(), memo_key(e)});
      }
    }
  }
  persisted_lemmas_.clear();
  if (lemmas != nullptr) {
    // Everything the store currently holds came off durable storage (the
    // snapshot that was just saved, or the log that was just replayed).
    for (const LemmaStore::Fact& f : lemmas->export_facts()) {
      persisted_lemmas_.insert(lemma_key(f));
    }
  }
}

}  // namespace lacon::store
