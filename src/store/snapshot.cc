#include "store/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "engine/valence.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"
#include "store/codec.hpp"
#include "store/env.hpp"

namespace lacon::store {

namespace {

using codec::Reader;
using codec::Writer;
using codec::fnv1a;

// ---------------------------------------------------------------------------
// On-disk structures.

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  // absolute file offset, 8-aligned
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;  // records in the section (kind-specific)
  std::uint64_t checksum = 0;
};
static_assert(sizeof(SectionEntry) == 40);

constexpr std::size_t kPreludeBytes = 8 + 4 + 4 + 8;

struct Header {
  std::uint32_t n = 0;
  std::uint32_t max_faulty = 0;
  std::uint32_t lane_bits = 32;
  std::uint32_t word_bytes = 8;
  std::uint32_t digest_shards = 0;
  std::uint32_t name_len = 0;
  std::uint32_t section_count = 0;
  std::uint32_t symmetry = 0;  // effective quotient mode at save time (0|1)
  std::uint64_t num_views = 0;
  std::uint64_t num_states = 0;
  std::string name;
  std::vector<SectionEntry> sections;
};

Result fail(Status status, std::string detail) {
  return Result{status, std::move(detail)};
}

// The digest sections fold every record's content hash into
// digest_shards accumulators keyed the way the live arenas shard their
// indexes, (hash >> 40) & mask. A flipped payload bit therefore fails two
// independent ways — the section FNV checksum and the digest of the shard
// the record hashes into — and the digests double as a cheap cross-check
// that replay reproduced the exact interned content.
class DigestAccumulator {
 public:
  explicit DigestAccumulator(std::uint32_t shards)
      : mask_(shards - 1), sums_(shards, 0) {}

  void add(std::uint64_t content_hash) noexcept {
    sums_[(content_hash >> 40) & mask_] += content_hash;
  }
  const std::vector<std::uint64_t>& sums() const noexcept { return sums_; }

 private:
  std::uint64_t mask_;
  std::vector<std::uint64_t> sums_;
};

// ---------------------------------------------------------------------------
// Save side.

void append_section(Writer& file, std::vector<SectionEntry>& table,
                    SectionKind kind, std::uint64_t count, Writer&& body) {
  file.pad_to_8();
  SectionEntry e;
  e.kind = static_cast<std::uint32_t>(kind);
  e.offset = file.size();  // patched to absolute once the header size is known
  e.bytes = body.size();
  e.count = count;
  e.checksum = fnv1a(body.data(), body.size());
  table.push_back(e);
  file.raw(body.data(), body.size());
}

Writer encode_views(const ViewArena& views, std::uint64_t count) {
  Writer w;
  for (std::uint64_t id = 0; id < count; ++id) {
    codec::encode_view(w, views.node(static_cast<ViewId>(id)));
  }
  return w;
}

Writer encode_states(const LayeredModel& model, std::uint64_t count) {
  Writer w;
  for (std::uint64_t id = 0; id < count; ++id) {
    codec::encode_state(w, model.state(static_cast<StateId>(id)));
  }
  return w;
}

Writer encode_digests(const std::vector<std::uint64_t>& sums) {
  Writer w;
  for (std::uint64_t s : sums) w.u64(s);
  return w;
}

Writer encode_layer_cache(
    const std::vector<std::pair<StateId, std::vector<StateId>>>& entries) {
  Writer w;
  for (const auto& [x, succ] : entries) codec::encode_layer_entry(w, x, succ);
  return w;
}

Writer encode_memo(ValenceEngine& engine,
                   const std::vector<ValenceEngine::MemoEntry>& entries) {
  Writer w;
  w.i32(engine.horizon());
  w.u32(engine.mode() == Exactness::kConvergence ? 1 : 0);
  w.u64(entries.size());
  for (const auto& e : entries) codec::encode_memo_entry(w, e);
  return w;
}

Writer encode_lemmas(const std::vector<LemmaStore::Fact>& facts) {
  Writer w;
  for (const LemmaStore::Fact& f : facts) codec::encode_lemma_entry(w, f);
  return w;
}

Writer encode_fingerprints(const LayeredModel& model, std::uint64_t count,
                           std::uint64_t* rows) {
  Writer w;
  *rows = 0;
  const int n = model.n();
  for (std::uint64_t id = 0; id < count; ++id) {
    const std::uint64_t* row =
        model.cached_fingerprint_row(static_cast<StateId>(id));
    if (row == nullptr) continue;
    ++*rows;
    codec::encode_fingerprint_row(w, static_cast<StateId>(id), row, n);
  }
  return w;
}

// ---------------------------------------------------------------------------
// Header encode / decode.

Writer encode_header(const Header& h) {
  Writer w;
  w.u32(h.n);
  w.u32(h.max_faulty);
  w.u32(h.lane_bits);
  w.u32(h.word_bytes);
  w.u32(h.digest_shards);
  w.u32(h.name_len);
  w.u32(h.section_count);
  w.u32(h.symmetry);
  w.u64(h.num_views);
  w.u64(h.num_states);
  w.raw(h.name.data(), h.name.size());
  w.pad_to_8();
  for (const SectionEntry& e : h.sections) w.raw(&e, sizeof e);
  return w;
}

Result read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return fail(Status::kIoError, "cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return fail(Status::kIoError, "cannot stat " + path);
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return fail(Status::kIoError, "short read on " + path);
  }
  return {};
}

// A read-only private mapping of a whole file, released by the last owner of
// the returned keepalive (the arena outlives the load when state sections
// are adopted in place). Returns nullptr — never a typed error — on any
// failure (missing file, empty file, mmap refusal): the caller falls back to
// the streaming read, whose error vocabulary existing callers rely on.
std::shared_ptr<const void> map_file(const std::string& path,
                                     std::size_t* size) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return nullptr;
  *size = bytes;
  return std::shared_ptr<const void>(
      base, [bytes](const void* p) {
        ::munmap(const_cast<void*>(p), bytes);
      });
}

struct Bytes {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

Result parse_header(const Bytes& bytes, const std::string& path, Header* h) {
  if (bytes.size < kPreludeBytes) {
    return fail(Status::kTruncated, path + ": shorter than the prelude");
  }
  if (std::memcmp(bytes.data, kMagic, sizeof kMagic) != 0) {
    return fail(Status::kBadMagic, path + ": not a lacon.store file");
  }
  Reader pre(bytes.data + sizeof kMagic, bytes.size - sizeof kMagic);
  std::uint32_t version = 0, header_bytes = 0;
  std::uint64_t header_checksum = 0;
  pre.u32(&version);
  pre.u32(&header_bytes);
  pre.u64(&header_checksum);
  if (version != kFormatVersion) {
    return fail(Status::kBadVersion,
                path + ": format version " + std::to_string(version) +
                    " (this build speaks only v" +
                    std::to_string(kFormatVersion) + ")");
  }
  if (bytes.size < kPreludeBytes + header_bytes) {
    return fail(Status::kTruncated, path + ": header extends past EOF");
  }
  const std::uint8_t* body = bytes.data + kPreludeBytes;
  if (fnv1a(body, header_bytes) != header_checksum) {
    return fail(Status::kCorrupt, path + ": header checksum mismatch");
  }

  Reader r(body, header_bytes);
  bool ok = r.u32(&h->n) && r.u32(&h->max_faulty) && r.u32(&h->lane_bits) &&
            r.u32(&h->word_bytes) && r.u32(&h->digest_shards) &&
            r.u32(&h->name_len) && r.u32(&h->section_count) &&
            r.u32(&h->symmetry) && r.u64(&h->num_views) &&
            r.u64(&h->num_states);
  if (!ok) return fail(Status::kCorrupt, path + ": header body too short");
  if (h->symmetry > 1) {
    return fail(Status::kCorrupt, path + ": unknown symmetry mode");
  }
  if (h->name_len > header_bytes) {
    return fail(Status::kCorrupt, path + ": absurd model-name length");
  }
  h->name.resize(h->name_len);
  if (!r.raw(h->name.data(), h->name_len) ||
      !r.skip((8 - (h->name_len % 8)) % 8)) {
    return fail(Status::kCorrupt, path + ": model name extends past header");
  }
  if (h->lane_bits != 32 || h->word_bytes != 8) {
    return fail(Status::kCorrupt, path + ": unsupported word packing");
  }
  if (h->digest_shards == 0 ||
      (h->digest_shards & (h->digest_shards - 1)) != 0) {
    return fail(Status::kCorrupt, path + ": digest shard count not a power of two");
  }
  h->sections.resize(h->section_count);
  for (SectionEntry& e : h->sections) {
    if (!r.raw(&e, sizeof e)) {
      return fail(Status::kCorrupt, path + ": section table too short");
    }
    if (e.offset % 8 != 0 || e.offset > bytes.size ||
        e.bytes > bytes.size - e.offset) {
      return fail(Status::kTruncated,
                  path + ": section " + std::to_string(e.kind) +
                      " extends past EOF");
    }
  }
  return {};
}

const SectionEntry* find_section(const Header& h, SectionKind kind) {
  for (const SectionEntry& e : h.sections) {
    if (e.kind == static_cast<std::uint32_t>(kind)) return &e;
  }
  return nullptr;
}

Result checksum_section(const Bytes& bytes, const std::string& path,
                        const SectionEntry& e) {
  if (fnv1a(bytes.data + e.offset, e.bytes) != e.checksum) {
    return fail(Status::kCorrupt, path + ": section " + std::to_string(e.kind) +
                                      " checksum mismatch");
  }
  return {};
}

// Durable tmp+rename: write, fsync the tmp file, rename over the target,
// fsync the parent directory so the rename itself survives a power cut.
// Plain ofstream+rename only survives process crashes, not power failures —
// the WAL's whole point is to remove that caveat, so the snapshot the WAL
// compacts into must hold to the same standard.
Result write_file_durably(const std::string& path, const std::uint8_t* data,
                          std::size_t bytes) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return fail(Status::kIoError,
                "cannot write " + tmp + ": " + std::strerror(errno));
  }
  std::size_t left = bytes;
  const std::uint8_t* p = data;
  while (left > 0) {
    const ssize_t put = ::write(fd, p, left);
    if (put < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail(Status::kIoError,
                  "cannot write " + tmp + ": " + std::strerror(errno));
    }
    p += put;
    left -= static_cast<std::size_t>(put);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail(Status::kIoError,
                "cannot fsync " + tmp + ": " + std::strerror(errno));
  }
  ::close(fd);

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail(Status::kIoError, "cannot rename " + tmp + " -> " + path);
  }

  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return fail(Status::kIoError, "cannot open dir " + dir);
  }
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) {
    return fail(Status::kIoError, "cannot fsync dir " + dir);
  }
  return {};
}

}  // namespace

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kIoError:
      return "io-error";
    case Status::kTruncated:
      return "truncated";
    case Status::kBadMagic:
      return "bad-magic";
    case Status::kBadVersion:
      return "bad-version";
    case Status::kCorrupt:
      return "corrupt";
    case Status::kModelMismatch:
      return "model-mismatch";
    case Status::kNotEmpty:
      return "not-empty";
    case Status::kSymmetryMismatch:
      return "symmetry-mismatch";
  }
  return "?";
}

Result save(LayeredModel& model, const std::string& path,
            ValenceEngine* engine, LemmaStore* lemmas) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("store.save_time"));
  LACON_TRACE_PHASE("store", "save", model.num_states());

  const std::uint32_t digest_shards =
      static_cast<std::uint32_t>(arena_shard_count());

  // Capture the id horizons ONCE, states before views: with S read first,
  // every view a state < S references exists (< V) even if interning races
  // this save. All sections are filtered against the captured horizons so
  // the file is internally consistent regardless of concurrent growth.
  const std::uint64_t num_states = model.num_states();
  const std::uint64_t num_views = model.num_views();

  Header h;
  h.n = static_cast<std::uint32_t>(model.n());
  h.max_faulty = static_cast<std::uint32_t>(model.max_faulty());
  h.digest_shards = digest_shards;
  h.name = model.name();
  h.name_len = static_cast<std::uint32_t>(h.name.size());
  h.symmetry = model.sym_quotient_active() ? 1 : 0;
  h.num_views = num_views;
  h.num_states = num_states;

  DigestAccumulator view_digests(digest_shards);
  for (std::uint64_t id = 0; id < num_views; ++id) {
    view_digests.add(
        ViewArena::content_hash(model.views().node(static_cast<ViewId>(id))));
  }
  DigestAccumulator state_digests(digest_shards);
  for (std::uint64_t id = 0; id < num_states; ++id) {
    state_digests.add(
        StateArena::content_hash(model.state(static_cast<StateId>(id))));
  }

  // Cache entries referencing states past the captured horizon wait for the
  // next save; they would otherwise dangle for a loader that only knows
  // num_states ids.
  std::vector<std::pair<StateId, std::vector<StateId>>> layers;
  for (auto& [x, succ] : model.export_layer_cache()) {
    if (static_cast<std::uint64_t>(x) >= num_states) continue;
    bool in_range = true;
    for (StateId y : succ) {
      in_range = in_range && static_cast<std::uint64_t>(y) < num_states;
    }
    if (in_range) layers.emplace_back(x, std::move(succ));
  }
  std::uint64_t fingerprint_rows = 0;

  Writer payload;
  std::vector<SectionEntry> table;
  append_section(payload, table, SectionKind::kViews, num_views,
                 encode_views(model.views(), num_views));
  append_section(payload, table, SectionKind::kStates, num_states,
                 encode_states(model, num_states));
  append_section(payload, table, SectionKind::kStateDigests, digest_shards,
                 encode_digests(state_digests.sums()));
  append_section(payload, table, SectionKind::kViewDigests, digest_shards,
                 encode_digests(view_digests.sums()));
  append_section(payload, table, SectionKind::kLayerCache, layers.size(),
                 encode_layer_cache(layers));
  if (engine != nullptr) {
    auto memo = engine->export_memo();
    memo.erase(std::remove_if(memo.begin(), memo.end(),
                              [num_states](const auto& e) {
                                return static_cast<std::uint64_t>(e.x) >=
                                       num_states;
                              }),
               memo.end());
    append_section(payload, table, SectionKind::kValenceMemo, memo.size(),
                   encode_memo(*engine, memo));
  }
  Writer fingerprints =
      encode_fingerprints(model, num_states, &fingerprint_rows);
  append_section(payload, table, SectionKind::kFingerprints, fingerprint_rows,
                 std::move(fingerprints));
  if (lemmas != nullptr) {
    // Lemma facts are keyed by id-free canonical signatures, so unlike the
    // memo they need no horizon filtering: every fact is valid in any future
    // session of the same model identity.
    const std::vector<LemmaStore::Fact> facts = lemmas->export_facts();
    append_section(payload, table, SectionKind::kLemmas, facts.size(),
                   encode_lemmas(facts));
  }

  // Two passes over the header: encode once with payload-relative offsets to
  // learn its size, then rebase the offsets to absolute and re-encode.
  h.section_count = static_cast<std::uint32_t>(table.size());
  h.sections = table;
  const std::size_t header_bytes = encode_header(h).size();
  const std::size_t payload_base = kPreludeBytes + header_bytes;
  for (SectionEntry& e : h.sections) e.offset += payload_base;
  Writer header = encode_header(h);

  Writer file;
  file.raw(kMagic, sizeof kMagic);
  file.u32(kFormatVersion);
  file.u32(static_cast<std::uint32_t>(header.size()));
  file.u64(fnv1a(header.data(), header.size()));
  file.raw(header.data(), header.size());
  file.raw(payload.data(), payload.size());

  if (Result r = write_file_durably(path, file.data(), file.size());
      !r.ok()) {
    return r;
  }
  stats.counter("store.bytes_written").add(file.size());
  stats.counter("store.snapshots_saved").increment();
  return {};
}

Result probe(const std::string& path, SnapshotMeta* meta) {
  std::vector<std::uint8_t> file;
  if (Result r = read_file(path, &file); !r.ok()) return r;
  const Bytes bytes{file.data(), file.size()};
  Header h;
  if (Result r = parse_header(bytes, path, &h); !r.ok()) return r;
  if (meta != nullptr) {
    meta->version = kFormatVersion;
    meta->model_name = h.name;
    meta->n = static_cast<int>(h.n);
    meta->max_faulty = static_cast<int>(h.max_faulty);
    meta->num_views = h.num_views;
    meta->num_states = h.num_states;
    meta->file_bytes = bytes.size;
    if (const auto* e = find_section(h, SectionKind::kLayerCache)) {
      meta->layer_entries = e->count;
    }
    if (const auto* e = find_section(h, SectionKind::kValenceMemo)) {
      meta->memo_entries = e->count;
    }
    if (const auto* e = find_section(h, SectionKind::kFingerprints)) {
      meta->fingerprint_rows = e->count;
    }
    if (const auto* e = find_section(h, SectionKind::kLemmas)) {
      meta->lemma_entries = e->count;
    }
    meta->symmetry = h.symmetry == 1;
  }
  return {};
}

Result load(LayeredModel& model, const std::string& path,
            ValenceEngine* engine, LemmaStore* lemmas) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("store.load_time"));

  // Byte source: an mmap'ed view of the file when LACON_MMAP allows it (the
  // kStates section can then be adopted in place), otherwise a streamed
  // heap copy. A failed mmap falls back to streaming silently, so the error
  // vocabulary (missing file => kIoError, short file => kTruncated, ...) is
  // identical on both paths.
  std::vector<std::uint8_t> file;
  std::shared_ptr<const void> mapping;
  Bytes bytes;
  if (mmap_enabled()) {
    std::size_t mapped_size = 0;
    mapping = map_file(path, &mapped_size);
    if (mapping != nullptr) {
      bytes = {static_cast<const std::uint8_t*>(mapping.get()), mapped_size};
    }
  }
  if (mapping == nullptr) {
    if (Result r = read_file(path, &file); !r.ok()) return r;
    bytes = {file.data(), file.size()};
  }
  Header h;
  if (Result r = parse_header(bytes, path, &h); !r.ok()) return r;
  LACON_TRACE_PHASE("store", "load", h.num_states);

  if (h.name != model.name() ||
      h.n != static_cast<std::uint32_t>(model.n()) ||
      h.max_faulty != static_cast<std::uint32_t>(model.max_faulty())) {
    return fail(Status::kModelMismatch,
                path + ": snapshot is " + h.name + " n=" +
                    std::to_string(h.n) + " t=" + std::to_string(h.max_faulty) +
                    ", target is " + model.name() + " n=" +
                    std::to_string(model.n()) + " t=" +
                    std::to_string(model.max_faulty()));
  }
  const std::uint32_t want_symmetry = model.sym_quotient_active() ? 1 : 0;
  if (h.symmetry != want_symmetry) {
    return fail(Status::kSymmetryMismatch,
                path + ": snapshot saved with the orbit quotient " +
                    (h.symmetry != 0 ? "on" : "off") +
                    ", target model runs it " +
                    (want_symmetry != 0 ? "on" : "off") +
                    " (LACON_SYMMETRY)");
  }
  if (model.num_states() != 0 || model.num_views() != 0) {
    return fail(Status::kNotEmpty,
                path + ": load target has already interned content");
  }

  const SectionEntry* views_sec = find_section(h, SectionKind::kViews);
  const SectionEntry* states_sec = find_section(h, SectionKind::kStates);
  const SectionEntry* sdig_sec = find_section(h, SectionKind::kStateDigests);
  const SectionEntry* vdig_sec = find_section(h, SectionKind::kViewDigests);
  if (views_sec == nullptr || states_sec == nullptr || sdig_sec == nullptr ||
      vdig_sec == nullptr) {
    return fail(Status::kCorrupt, path + ": mandatory section missing");
  }
  for (const SectionEntry& e : h.sections) {
    if (Result r = checksum_section(bytes, path, e); !r.ok()) return r;
  }
  if (sdig_sec->count != h.digest_shards ||
      vdig_sec->count != h.digest_shards) {
    return fail(Status::kCorrupt, path + ": digest section count mismatch");
  }

  const int n = model.n();
  try {
    // --- Views, in stored-id order. ---------------------------------------
    DigestAccumulator view_digests(h.digest_shards);
    {
      Reader r(bytes.data + views_sec->offset, views_sec->bytes);
      for (std::uint64_t id = 0; id < views_sec->count; ++id) {
        ViewNode v;
        if (!codec::decode_view(r, &v)) {
          return fail(Status::kTruncated,
                      path + ": view record " + std::to_string(id) +
                          " extends past its section");
        }
        if (v.owner < 0 || v.owner >= n ||
            (v.prev != kNoView &&
             static_cast<std::uint64_t>(v.prev) >= id)) {
          return fail(Status::kCorrupt,
                      path + ": view record " + std::to_string(id) +
                          " references a later view or a bad owner");
        }
        view_digests.add(ViewArena::content_hash(v));
        const ViewId got = model.views().restore(std::move(v));
        if (static_cast<std::uint64_t>(got) != id) {
          return fail(Status::kCorrupt,
                      path + ": view replay diverged at id " +
                          std::to_string(id));
        }
      }
      if (r.remaining() != 0) {
        return fail(Status::kCorrupt,
                    path + ": trailing bytes in the view section");
      }
    }
    {
      Reader r(bytes.data + vdig_sec->offset, vdig_sec->bytes);
      for (std::uint32_t s = 0; s < h.digest_shards; ++s) {
        std::uint64_t stored = 0;
        if (!r.u64(&stored) || stored != view_digests.sums()[s]) {
          return fail(Status::kCorrupt,
                      path + ": view digest mismatch in shard " +
                          std::to_string(s));
        }
      }
    }

    // --- States, in stored-id order. --------------------------------------
    //
    // Two replay paths over the same record stream. The zero-copy path
    // adopts each flat payload straight out of the mapping: for even n the
    // on-disk record (env words | n packed locals lanes | n packed
    // decisions lanes) is byte-identical to the pool encoding, and every
    // record in the 8-aligned section is itself 8-aligned (8 + 8*env_len +
    // 8n bytes). Odd n pads its lane words in the pool but not on disk, so
    // it streams; LACON_MMAP=off streams everything. Either way the digest
    // cross-check below sees the identical content hashes.
    DigestAccumulator state_digests(h.digest_shards);
    const bool adopt = mapping != nullptr && n % 2 == 0;
    if (adopt && states_sec->count > 0) {
      // The mapping's lifetime transfers to the arena with the first
      // adopted state (kept alive until the model dies).
      model.adopt_mapped_states(
          reinterpret_cast<const std::int64_t*>(bytes.data), mapping);
    }
    {
      Reader r(bytes.data + states_sec->offset, states_sec->bytes);
      const std::uint64_t num_views = views_sec->count;
      const std::size_t lanes = static_cast<std::size_t>(n) / 2;
      for (std::uint64_t id = 0; id < states_sec->count; ++id) {
        if (adopt) {
          const std::size_t rec_off = states_sec->bytes - r.remaining();
          std::uint64_t env_len = 0;
          if (!r.u64(&env_len) || env_len > r.remaining() / 8 ||
              !r.skip(static_cast<std::size_t>(env_len) * 8 +
                      static_cast<std::size_t>(n) * 8)) {
            return fail(Status::kTruncated,
                        path + ": state record " + std::to_string(id) +
                            " extends past its section");
          }
          const auto* payload = reinterpret_cast<const std::int64_t*>(
              bytes.data + states_sec->offset + rec_off + 8);
          const StateRef s{
              {payload, static_cast<std::size_t>(env_len)},
              {reinterpret_cast<const ViewId*>(payload + env_len),
               static_cast<std::size_t>(n)},
              {reinterpret_cast<const Value*>(payload + env_len + lanes),
               static_cast<std::size_t>(n)}};
          for (ViewId v : s.locals) {
            if (v < 0 || static_cast<std::uint64_t>(v) >= num_views) {
              return fail(Status::kCorrupt,
                          path + ": state record " + std::to_string(id) +
                              " references an unknown view");
            }
          }
          const std::uint64_t hash = StateArena::content_hash(s);
          state_digests.add(hash);
          const std::uint64_t word_offset =
              (states_sec->offset + rec_off + 8) / 8;
          const StateId got = model.restore_mapped_state(s, word_offset, hash);
          if (static_cast<std::uint64_t>(got) != id) {
            return fail(Status::kCorrupt,
                        path + ": state replay diverged at id " +
                            std::to_string(id));
          }
          continue;
        }
        GlobalState s;
        if (!codec::decode_state(r, n, &s)) {
          return fail(Status::kTruncated,
                      path + ": state record " + std::to_string(id) +
                          " extends past its section");
        }
        for (ViewId v : s.locals) {
          if (v < 0 || static_cast<std::uint64_t>(v) >= num_views) {
            return fail(Status::kCorrupt,
                        path + ": state record " + std::to_string(id) +
                            " references an unknown view");
          }
        }
        state_digests.add(StateArena::content_hash(s));
        const StateId got = model.restore_state(std::move(s));
        if (static_cast<std::uint64_t>(got) != id) {
          return fail(Status::kCorrupt,
                      path + ": state replay diverged at id " +
                          std::to_string(id));
        }
      }
      if (r.remaining() != 0) {
        return fail(Status::kCorrupt,
                    path + ": trailing bytes in the state section");
      }
    }
    {
      Reader r(bytes.data + sdig_sec->offset, sdig_sec->bytes);
      for (std::uint32_t s = 0; s < h.digest_shards; ++s) {
        std::uint64_t stored = 0;
        if (!r.u64(&stored) || stored != state_digests.sums()[s]) {
          return fail(Status::kCorrupt,
                      path + ": state digest mismatch in shard " +
                          std::to_string(s));
        }
      }
    }

    const std::uint64_t num_states = states_sec->count;

    // --- Layer cache. ------------------------------------------------------
    if (const SectionEntry* e = find_section(h, SectionKind::kLayerCache)) {
      Reader r(bytes.data + e->offset, e->bytes);
      std::vector<std::pair<StateId, std::vector<StateId>>> entries;
      entries.reserve(static_cast<std::size_t>(e->count));
      for (std::uint64_t i = 0; i < e->count; ++i) {
        StateId x = 0;
        std::vector<StateId> succ;
        if (!codec::decode_layer_entry(r, &x, &succ) || x >= num_states) {
          return fail(Status::kCorrupt,
                      path + ": layer-cache entry " + std::to_string(i) +
                          " malformed");
        }
        for (StateId y : succ) {
          if (y >= num_states) {
            return fail(Status::kCorrupt,
                        path + ": layer-cache entry " + std::to_string(i) +
                            " references an unknown state");
          }
        }
        entries.emplace_back(x, std::move(succ));
      }
      model.import_layer_cache(std::move(entries));
      stats.counter("store.layers_loaded").add(e->count);
    }

    // --- Valence memo (only into a matching engine). -----------------------
    if (const SectionEntry* e = find_section(h, SectionKind::kValenceMemo)) {
      Reader r(bytes.data + e->offset, e->bytes);
      std::int32_t horizon = 0;
      std::uint32_t mode = 0;
      std::uint64_t count = 0;
      if (!r.i32(&horizon) || !r.u32(&mode) || !r.u64(&count) ||
          count != e->count || count > r.remaining() / 12) {
        return fail(Status::kCorrupt, path + ": valence memo header malformed");
      }
      const bool matches =
          engine != nullptr && engine->horizon() == horizon &&
          (engine->mode() == Exactness::kConvergence) == (mode == 1);
      std::vector<ValenceEngine::MemoEntry> entries;
      if (matches) entries.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        ValenceEngine::MemoEntry m;
        if (!codec::decode_memo_entry(r, &m)) {
          return fail(Status::kCorrupt,
                      path + ": memo entry " + std::to_string(i) +
                          " malformed");
        }
        if (m.x >= num_states) {
          return fail(Status::kCorrupt,
                      path + ": memo entry " + std::to_string(i) +
                          " references an unknown state");
        }
        if (matches) entries.push_back(m);
      }
      if (matches) {
        engine->import_memo(entries);
        stats.counter("store.memo_loaded").add(count);
      } else {
        stats.counter("store.memo_skipped").add(count);
      }
    }

    // --- Fingerprint rows. --------------------------------------------------
    if (const SectionEntry* e = find_section(h, SectionKind::kFingerprints)) {
      Reader r(bytes.data + e->offset, e->bytes);
      std::vector<std::uint64_t> row(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < e->count; ++i) {
        StateId x = 0;
        if (!codec::decode_fingerprint_row(r, n, &x, row.data())) {
          return fail(Status::kTruncated,
                      path + ": fingerprint row " + std::to_string(i) +
                          " extends past its section");
        }
        if (x >= num_states) {
          return fail(Status::kCorrupt,
                      path + ": fingerprint row " + std::to_string(i) +
                          " malformed");
        }
        model.restore_fingerprint_row(x, row.data());
      }
      stats.counter("store.fingerprints_loaded").add(e->count);
    }

    // --- Lemma facts. -------------------------------------------------------
    if (const SectionEntry* e = find_section(h, SectionKind::kLemmas)) {
      Reader r(bytes.data + e->offset, e->bytes);
      if (e->bytes != e->count * codec::kLemmaEntryBytes) {
        return fail(Status::kCorrupt,
                    path + ": lemma section size disagrees with its count");
      }
      std::vector<LemmaStore::Fact> facts;
      if (lemmas != nullptr) {
        facts.reserve(static_cast<std::size_t>(e->count));
      }
      for (std::uint64_t i = 0; i < e->count; ++i) {
        LemmaStore::Fact f;
        if (!codec::decode_lemma_entry(r, &f)) {
          return fail(Status::kCorrupt,
                      path + ": lemma entry " + std::to_string(i) +
                          " malformed");
        }
        if (lemmas != nullptr) facts.push_back(f);
      }
      if (lemmas != nullptr) {
        lemmas->import_facts(facts);
        stats.counter("store.lemmas_loaded").add(e->count);
      } else {
        stats.counter("store.lemmas_skipped").add(e->count);
      }
    }
  } catch (const std::bad_alloc&) {
    // Covers fault::InjectedAllocError (the arenas' restore path probes the
    // injector exactly like intern) and genuine exhaustion: the model holds
    // a partial replay and the caller falls back to a cold start.
    return fail(Status::kIoError, path + ": allocation failure during replay");
  }

  stats.counter("store.bytes_read").add(bytes.size);
  if (mapping != nullptr) stats.counter("store.mmap_loads").increment();
  stats.counter("store.snapshots_loaded").increment();
  return {};
}

}  // namespace lacon::store
