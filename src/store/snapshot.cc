#include "store/snapshot.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "engine/valence.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"

namespace lacon::store {

namespace {

// ---------------------------------------------------------------------------
// Primitives.

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// Append-only little-endian byte sink. The host is little-endian (the
// toolchain this repo targets), so fixed-width stores are plain memcpy; a
// big-endian port would swap here and in Reader, nowhere else.
class Writer {
 public:
  void raw(const void* p, std::size_t bytes) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + bytes);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void pad_to_8() {
    while (buf_.size() % 8 != 0) buf_.push_back(0);
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::uint8_t* data() const noexcept { return buf_.data(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked reads over a byte span; every getter reports truncation
// instead of walking off the end, so a short or lying file can never make
// the loader read wild memory.
class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t bytes) : p_(p), end_(p + bytes) {}

  bool raw(void* out, std::size_t bytes) {
    if (static_cast<std::size_t>(end_ - p_) < bytes) return false;
    std::memcpy(out, p_, bytes);
    p_ += bytes;
    return true;
  }
  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool i32(std::int32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i64(std::int64_t* v) { return raw(v, sizeof *v); }
  bool skip(std::size_t bytes) {
    if (static_cast<std::size_t>(end_ - p_) < bytes) return false;
    p_ += bytes;
    return true;
  }
  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// ---------------------------------------------------------------------------
// On-disk structures.

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  // absolute file offset, 8-aligned
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;  // records in the section (kind-specific)
  std::uint64_t checksum = 0;
};
static_assert(sizeof(SectionEntry) == 40);

constexpr std::size_t kPreludeBytes = 8 + 4 + 4 + 8;

struct Header {
  std::uint32_t n = 0;
  std::uint32_t max_faulty = 0;
  std::uint32_t lane_bits = 32;
  std::uint32_t word_bytes = 8;
  std::uint32_t digest_shards = 0;
  std::uint32_t name_len = 0;
  std::uint32_t section_count = 0;
  std::uint32_t reserved = 0;
  std::uint64_t num_views = 0;
  std::uint64_t num_states = 0;
  std::string name;
  std::vector<SectionEntry> sections;
};

Result fail(Status status, std::string detail) {
  return Result{status, std::move(detail)};
}

// The digest sections fold every record's content hash into
// digest_shards accumulators keyed the way the live arenas shard their
// indexes, (hash >> 40) & mask. A flipped payload bit therefore fails two
// independent ways — the section FNV checksum and the digest of the shard
// the record hashes into — and the digests double as a cheap cross-check
// that replay reproduced the exact interned content.
class DigestAccumulator {
 public:
  explicit DigestAccumulator(std::uint32_t shards)
      : mask_(shards - 1), sums_(shards, 0) {}

  void add(std::uint64_t content_hash) noexcept {
    sums_[(content_hash >> 40) & mask_] += content_hash;
  }
  const std::vector<std::uint64_t>& sums() const noexcept { return sums_; }

 private:
  std::uint64_t mask_;
  std::vector<std::uint64_t> sums_;
};

// ---------------------------------------------------------------------------
// Save side.

void append_section(Writer& file, std::vector<SectionEntry>& table,
                    SectionKind kind, std::uint64_t count, Writer&& body) {
  file.pad_to_8();
  SectionEntry e;
  e.kind = static_cast<std::uint32_t>(kind);
  e.offset = file.size();  // patched to absolute once the header size is known
  e.bytes = body.size();
  e.count = count;
  e.checksum = fnv1a(body.data(), body.size());
  table.push_back(e);
  file.raw(body.data(), body.size());
}

Writer encode_views(const ViewArena& views) {
  Writer w;
  const std::size_t count = views.size();
  for (std::size_t id = 0; id < count; ++id) {
    const ViewNode& v = views.node(static_cast<ViewId>(id));
    w.i32(static_cast<std::int32_t>(v.owner));
    w.i32(v.round);
    w.i32(static_cast<std::int32_t>(v.input));
    w.i32(static_cast<std::int32_t>(v.prev));
    w.u32(static_cast<std::uint32_t>(v.obs.size()));
    for (const Obs& o : v.obs) {
      w.i32(o.source);
      w.i32(static_cast<std::int32_t>(o.view));
    }
  }
  return w;
}

Writer encode_states(const LayeredModel& model) {
  Writer w;
  const std::size_t count = model.num_states();
  for (std::size_t id = 0; id < count; ++id) {
    const StateRef s = model.state(static_cast<StateId>(id));
    w.u64(s.env.size());
    for (std::int64_t word : s.env) w.i64(word);
    for (ViewId v : s.locals) w.i32(static_cast<std::int32_t>(v));
    for (Value d : s.decisions) w.i32(static_cast<std::int32_t>(d));
  }
  return w;
}

Writer encode_digests(const std::vector<std::uint64_t>& sums) {
  Writer w;
  for (std::uint64_t s : sums) w.u64(s);
  return w;
}

Writer encode_layer_cache(
    const std::vector<std::pair<StateId, std::vector<StateId>>>& entries) {
  Writer w;
  for (const auto& [x, succ] : entries) {
    w.u32(x);
    w.u32(static_cast<std::uint32_t>(succ.size()));
    for (StateId y : succ) w.u32(y);
  }
  return w;
}

constexpr std::uint32_t kMemoV0 = 1u << 0;
constexpr std::uint32_t kMemoV1 = 1u << 1;
constexpr std::uint32_t kMemoExact = 1u << 2;
constexpr std::uint32_t kMemoDeep = 1u << 3;

Writer encode_memo(ValenceEngine& engine,
                   const std::vector<ValenceEngine::MemoEntry>& entries) {
  Writer w;
  w.i32(engine.horizon());
  w.u32(engine.mode() == Exactness::kConvergence ? 1 : 0);
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u32(e.x);
    w.i32(e.lookahead);
    std::uint32_t flags = 0;
    if (e.v0) flags |= kMemoV0;
    if (e.v1) flags |= kMemoV1;
    if (e.exact) flags |= kMemoExact;
    if (e.deep) flags |= kMemoDeep;
    w.u32(flags);
  }
  return w;
}

Writer encode_fingerprints(const LayeredModel& model, std::uint64_t* rows) {
  Writer w;
  *rows = 0;
  const std::size_t count = model.num_states();
  const int n = model.n();
  for (std::size_t id = 0; id < count; ++id) {
    const std::uint64_t* row =
        model.cached_fingerprint_row(static_cast<StateId>(id));
    if (row == nullptr) continue;
    ++*rows;
    w.u32(static_cast<StateId>(id));
    w.u32(0);  // pad: keeps the u64 hashes 8-aligned within the section
    for (int j = 0; j < n; ++j) w.u64(row[static_cast<std::size_t>(j)]);
  }
  return w;
}

// ---------------------------------------------------------------------------
// Header encode / decode.

Writer encode_header(const Header& h) {
  Writer w;
  w.u32(h.n);
  w.u32(h.max_faulty);
  w.u32(h.lane_bits);
  w.u32(h.word_bytes);
  w.u32(h.digest_shards);
  w.u32(h.name_len);
  w.u32(h.section_count);
  w.u32(h.reserved);
  w.u64(h.num_views);
  w.u64(h.num_states);
  w.raw(h.name.data(), h.name.size());
  w.pad_to_8();
  for (const SectionEntry& e : h.sections) w.raw(&e, sizeof e);
  return w;
}

Result read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return fail(Status::kIoError, "cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return fail(Status::kIoError, "cannot stat " + path);
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return fail(Status::kIoError, "short read on " + path);
  }
  return {};
}

Result parse_header(const std::vector<std::uint8_t>& bytes,
                    const std::string& path, Header* h) {
  if (bytes.size() < kPreludeBytes) {
    return fail(Status::kTruncated, path + ": shorter than the prelude");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return fail(Status::kBadMagic, path + ": not a lacon.store file");
  }
  Reader pre(bytes.data() + sizeof kMagic, bytes.size() - sizeof kMagic);
  std::uint32_t version = 0, header_bytes = 0;
  std::uint64_t header_checksum = 0;
  pre.u32(&version);
  pre.u32(&header_bytes);
  pre.u64(&header_checksum);
  if (version != kFormatVersion) {
    return fail(Status::kBadVersion,
                path + ": format version " + std::to_string(version) +
                    " (this build speaks only v" +
                    std::to_string(kFormatVersion) + ")");
  }
  if (bytes.size() < kPreludeBytes + header_bytes) {
    return fail(Status::kTruncated, path + ": header extends past EOF");
  }
  const std::uint8_t* body = bytes.data() + kPreludeBytes;
  if (fnv1a(body, header_bytes) != header_checksum) {
    return fail(Status::kCorrupt, path + ": header checksum mismatch");
  }

  Reader r(body, header_bytes);
  bool ok = r.u32(&h->n) && r.u32(&h->max_faulty) && r.u32(&h->lane_bits) &&
            r.u32(&h->word_bytes) && r.u32(&h->digest_shards) &&
            r.u32(&h->name_len) && r.u32(&h->section_count) &&
            r.u32(&h->reserved) && r.u64(&h->num_views) &&
            r.u64(&h->num_states);
  if (!ok) return fail(Status::kCorrupt, path + ": header body too short");
  if (h->name_len > header_bytes) {
    return fail(Status::kCorrupt, path + ": absurd model-name length");
  }
  h->name.resize(h->name_len);
  if (!r.raw(h->name.data(), h->name_len) ||
      !r.skip((8 - (h->name_len % 8)) % 8)) {
    return fail(Status::kCorrupt, path + ": model name extends past header");
  }
  if (h->lane_bits != 32 || h->word_bytes != 8) {
    return fail(Status::kCorrupt, path + ": unsupported word packing");
  }
  if (h->digest_shards == 0 ||
      (h->digest_shards & (h->digest_shards - 1)) != 0) {
    return fail(Status::kCorrupt, path + ": digest shard count not a power of two");
  }
  h->sections.resize(h->section_count);
  for (SectionEntry& e : h->sections) {
    if (!r.raw(&e, sizeof e)) {
      return fail(Status::kCorrupt, path + ": section table too short");
    }
    if (e.offset % 8 != 0 || e.offset > bytes.size() ||
        e.bytes > bytes.size() - e.offset) {
      return fail(Status::kTruncated,
                  path + ": section " + std::to_string(e.kind) +
                      " extends past EOF");
    }
  }
  return {};
}

const SectionEntry* find_section(const Header& h, SectionKind kind) {
  for (const SectionEntry& e : h.sections) {
    if (e.kind == static_cast<std::uint32_t>(kind)) return &e;
  }
  return nullptr;
}

Result checksum_section(const std::vector<std::uint8_t>& bytes,
                        const std::string& path, const SectionEntry& e) {
  if (fnv1a(bytes.data() + e.offset, e.bytes) != e.checksum) {
    return fail(Status::kCorrupt, path + ": section " + std::to_string(e.kind) +
                                      " checksum mismatch");
  }
  return {};
}

}  // namespace

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kIoError:
      return "io-error";
    case Status::kTruncated:
      return "truncated";
    case Status::kBadMagic:
      return "bad-magic";
    case Status::kBadVersion:
      return "bad-version";
    case Status::kCorrupt:
      return "corrupt";
    case Status::kModelMismatch:
      return "model-mismatch";
    case Status::kNotEmpty:
      return "not-empty";
  }
  return "?";
}

Result save(LayeredModel& model, const std::string& path,
            ValenceEngine* engine) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("store.save_time"));
  LACON_TRACE_PHASE("store", "save", model.num_states());

  const std::uint32_t digest_shards =
      static_cast<std::uint32_t>(arena_shard_count());

  Header h;
  h.n = static_cast<std::uint32_t>(model.n());
  h.max_faulty = static_cast<std::uint32_t>(model.max_faulty());
  h.digest_shards = digest_shards;
  h.name = model.name();
  h.name_len = static_cast<std::uint32_t>(h.name.size());
  h.num_views = model.num_views();
  h.num_states = model.num_states();

  DigestAccumulator view_digests(digest_shards);
  for (std::size_t id = 0; id < model.num_views(); ++id) {
    view_digests.add(
        ViewArena::content_hash(model.views().node(static_cast<ViewId>(id))));
  }
  DigestAccumulator state_digests(digest_shards);
  for (std::size_t id = 0; id < model.num_states(); ++id) {
    state_digests.add(
        StateArena::content_hash(model.state(static_cast<StateId>(id))));
  }

  const auto layers = model.export_layer_cache();
  std::uint64_t fingerprint_rows = 0;

  Writer payload;
  std::vector<SectionEntry> table;
  append_section(payload, table, SectionKind::kViews, model.num_views(),
                 encode_views(model.views()));
  append_section(payload, table, SectionKind::kStates, model.num_states(),
                 encode_states(model));
  append_section(payload, table, SectionKind::kStateDigests, digest_shards,
                 encode_digests(state_digests.sums()));
  append_section(payload, table, SectionKind::kViewDigests, digest_shards,
                 encode_digests(view_digests.sums()));
  append_section(payload, table, SectionKind::kLayerCache, layers.size(),
                 encode_layer_cache(layers));
  if (engine != nullptr) {
    const auto memo = engine->export_memo();
    append_section(payload, table, SectionKind::kValenceMemo, memo.size(),
                   encode_memo(*engine, memo));
  }
  Writer fingerprints = encode_fingerprints(model, &fingerprint_rows);
  append_section(payload, table, SectionKind::kFingerprints, fingerprint_rows,
                 std::move(fingerprints));

  // Two passes over the header: encode once with payload-relative offsets to
  // learn its size, then rebase the offsets to absolute and re-encode.
  h.section_count = static_cast<std::uint32_t>(table.size());
  h.sections = table;
  const std::size_t header_bytes = encode_header(h).size();
  const std::size_t payload_base = kPreludeBytes + header_bytes;
  for (SectionEntry& e : h.sections) e.offset += payload_base;
  Writer header = encode_header(h);

  Writer file;
  file.raw(kMagic, sizeof kMagic);
  file.u32(kFormatVersion);
  file.u32(static_cast<std::uint32_t>(header.size()));
  file.u64(fnv1a(header.data(), header.size()));
  file.raw(header.data(), header.size());
  file.raw(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  {
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out ||
        !out.write(reinterpret_cast<const char*>(file.data()),
                   static_cast<std::streamsize>(file.size()))) {
      return fail(Status::kIoError, "cannot write " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return fail(Status::kIoError, "cannot rename " + tmp + " -> " + path);
  }
  stats.counter("store.bytes_written").add(file.size());
  stats.counter("store.snapshots_saved").increment();
  return {};
}

Result probe(const std::string& path, SnapshotMeta* meta) {
  std::vector<std::uint8_t> bytes;
  if (Result r = read_file(path, &bytes); !r.ok()) return r;
  Header h;
  if (Result r = parse_header(bytes, path, &h); !r.ok()) return r;
  if (meta != nullptr) {
    meta->version = kFormatVersion;
    meta->model_name = h.name;
    meta->n = static_cast<int>(h.n);
    meta->max_faulty = static_cast<int>(h.max_faulty);
    meta->num_views = h.num_views;
    meta->num_states = h.num_states;
    meta->file_bytes = bytes.size();
    if (const auto* e = find_section(h, SectionKind::kLayerCache)) {
      meta->layer_entries = e->count;
    }
    if (const auto* e = find_section(h, SectionKind::kValenceMemo)) {
      meta->memo_entries = e->count;
    }
    if (const auto* e = find_section(h, SectionKind::kFingerprints)) {
      meta->fingerprint_rows = e->count;
    }
  }
  return {};
}

Result load(LayeredModel& model, const std::string& path,
            ValenceEngine* engine) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("store.load_time"));

  std::vector<std::uint8_t> bytes;
  if (Result r = read_file(path, &bytes); !r.ok()) return r;
  Header h;
  if (Result r = parse_header(bytes, path, &h); !r.ok()) return r;
  LACON_TRACE_PHASE("store", "load", h.num_states);

  if (h.name != model.name() ||
      h.n != static_cast<std::uint32_t>(model.n()) ||
      h.max_faulty != static_cast<std::uint32_t>(model.max_faulty())) {
    return fail(Status::kModelMismatch,
                path + ": snapshot is " + h.name + " n=" +
                    std::to_string(h.n) + " t=" + std::to_string(h.max_faulty) +
                    ", target is " + model.name() + " n=" +
                    std::to_string(model.n()) + " t=" +
                    std::to_string(model.max_faulty()));
  }
  if (model.num_states() != 0 || model.num_views() != 0) {
    return fail(Status::kNotEmpty,
                path + ": load target has already interned content");
  }

  const SectionEntry* views_sec = find_section(h, SectionKind::kViews);
  const SectionEntry* states_sec = find_section(h, SectionKind::kStates);
  const SectionEntry* sdig_sec = find_section(h, SectionKind::kStateDigests);
  const SectionEntry* vdig_sec = find_section(h, SectionKind::kViewDigests);
  if (views_sec == nullptr || states_sec == nullptr || sdig_sec == nullptr ||
      vdig_sec == nullptr) {
    return fail(Status::kCorrupt, path + ": mandatory section missing");
  }
  for (const SectionEntry& e : h.sections) {
    if (Result r = checksum_section(bytes, path, e); !r.ok()) return r;
  }
  if (sdig_sec->count != h.digest_shards ||
      vdig_sec->count != h.digest_shards) {
    return fail(Status::kCorrupt, path + ": digest section count mismatch");
  }

  const int n = model.n();
  try {
    // --- Views, in stored-id order. ---------------------------------------
    DigestAccumulator view_digests(h.digest_shards);
    {
      Reader r(bytes.data() + views_sec->offset, views_sec->bytes);
      for (std::uint64_t id = 0; id < views_sec->count; ++id) {
        ViewNode v;
        std::int32_t owner = 0, input = 0, prev = 0;
        std::uint32_t obs_count = 0;
        if (!r.i32(&owner) || !r.i32(&v.round) || !r.i32(&input) ||
            !r.i32(&prev) || !r.u32(&obs_count) ||
            obs_count > r.remaining() / 8) {
          return fail(Status::kTruncated,
                      path + ": view record " + std::to_string(id) +
                          " extends past its section");
        }
        v.owner = static_cast<ProcessId>(owner);
        v.input = static_cast<Value>(input);
        v.prev = static_cast<ViewId>(prev);
        v.obs.resize(obs_count);
        for (Obs& o : v.obs) {
          r.i32(&o.source);
          std::int32_t view = 0;
          r.i32(&view);
          o.view = static_cast<ViewId>(view);
        }
        if (v.owner < 0 || v.owner >= n ||
            (v.prev != kNoView &&
             static_cast<std::uint64_t>(v.prev) >= id)) {
          return fail(Status::kCorrupt,
                      path + ": view record " + std::to_string(id) +
                          " references a later view or a bad owner");
        }
        view_digests.add(ViewArena::content_hash(v));
        const ViewId got = model.views().restore(std::move(v));
        if (static_cast<std::uint64_t>(got) != id) {
          return fail(Status::kCorrupt,
                      path + ": view replay diverged at id " +
                          std::to_string(id));
        }
      }
      if (r.remaining() != 0) {
        return fail(Status::kCorrupt,
                    path + ": trailing bytes in the view section");
      }
    }
    {
      Reader r(bytes.data() + vdig_sec->offset, vdig_sec->bytes);
      for (std::uint32_t s = 0; s < h.digest_shards; ++s) {
        std::uint64_t stored = 0;
        if (!r.u64(&stored) || stored != view_digests.sums()[s]) {
          return fail(Status::kCorrupt,
                      path + ": view digest mismatch in shard " +
                          std::to_string(s));
        }
      }
    }

    // --- States, in stored-id order. --------------------------------------
    DigestAccumulator state_digests(h.digest_shards);
    {
      Reader r(bytes.data() + states_sec->offset, states_sec->bytes);
      const std::uint64_t num_views = views_sec->count;
      for (std::uint64_t id = 0; id < states_sec->count; ++id) {
        GlobalState s;
        std::uint64_t env_len = 0;
        if (!r.u64(&env_len) || env_len > r.remaining() / 8) {
          return fail(Status::kTruncated,
                      path + ": state record " + std::to_string(id) +
                          " extends past its section");
        }
        s.env.resize(static_cast<std::size_t>(env_len));
        for (std::int64_t& w : s.env) r.i64(&w);
        s.locals.resize(static_cast<std::size_t>(n));
        s.decisions.resize(static_cast<std::size_t>(n));
        bool ok = true;
        for (ViewId& v : s.locals) {
          std::int32_t raw = 0;
          ok = ok && r.i32(&raw);
          v = static_cast<ViewId>(raw);
          if (v < 0 || static_cast<std::uint64_t>(v) >= num_views) {
            return fail(Status::kCorrupt,
                        path + ": state record " + std::to_string(id) +
                            " references an unknown view");
          }
        }
        for (Value& d : s.decisions) {
          std::int32_t raw = 0;
          ok = ok && r.i32(&raw);
          d = static_cast<Value>(raw);
        }
        if (!ok) {
          return fail(Status::kTruncated,
                      path + ": state record " + std::to_string(id) +
                          " extends past its section");
        }
        state_digests.add(StateArena::content_hash(s));
        const StateId got = model.restore_state(std::move(s));
        if (static_cast<std::uint64_t>(got) != id) {
          return fail(Status::kCorrupt,
                      path + ": state replay diverged at id " +
                          std::to_string(id));
        }
      }
      if (r.remaining() != 0) {
        return fail(Status::kCorrupt,
                    path + ": trailing bytes in the state section");
      }
    }
    {
      Reader r(bytes.data() + sdig_sec->offset, sdig_sec->bytes);
      for (std::uint32_t s = 0; s < h.digest_shards; ++s) {
        std::uint64_t stored = 0;
        if (!r.u64(&stored) || stored != state_digests.sums()[s]) {
          return fail(Status::kCorrupt,
                      path + ": state digest mismatch in shard " +
                          std::to_string(s));
        }
      }
    }

    const std::uint64_t num_states = states_sec->count;

    // --- Layer cache. ------------------------------------------------------
    if (const SectionEntry* e = find_section(h, SectionKind::kLayerCache)) {
      Reader r(bytes.data() + e->offset, e->bytes);
      std::vector<std::pair<StateId, std::vector<StateId>>> entries;
      entries.reserve(static_cast<std::size_t>(e->count));
      for (std::uint64_t i = 0; i < e->count; ++i) {
        std::uint32_t x = 0, len = 0;
        if (!r.u32(&x) || !r.u32(&len) || len > r.remaining() / 4 ||
            x >= num_states) {
          return fail(Status::kCorrupt,
                      path + ": layer-cache entry " + std::to_string(i) +
                          " malformed");
        }
        std::vector<StateId> succ(len);
        for (StateId& y : succ) {
          r.u32(&y);
          if (y >= num_states) {
            return fail(Status::kCorrupt,
                        path + ": layer-cache entry " + std::to_string(i) +
                            " references an unknown state");
          }
        }
        entries.emplace_back(static_cast<StateId>(x), std::move(succ));
      }
      model.import_layer_cache(std::move(entries));
      stats.counter("store.layers_loaded").add(e->count);
    }

    // --- Valence memo (only into a matching engine). -----------------------
    if (const SectionEntry* e = find_section(h, SectionKind::kValenceMemo)) {
      Reader r(bytes.data() + e->offset, e->bytes);
      std::int32_t horizon = 0;
      std::uint32_t mode = 0;
      std::uint64_t count = 0;
      if (!r.i32(&horizon) || !r.u32(&mode) || !r.u64(&count) ||
          count != e->count || count > r.remaining() / 12) {
        return fail(Status::kCorrupt, path + ": valence memo header malformed");
      }
      const bool matches =
          engine != nullptr && engine->horizon() == horizon &&
          (engine->mode() == Exactness::kConvergence) == (mode == 1);
      std::vector<ValenceEngine::MemoEntry> entries;
      if (matches) entries.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        ValenceEngine::MemoEntry m;
        std::uint32_t flags = 0;
        r.u32(&m.x);
        r.i32(&m.lookahead);
        r.u32(&flags);
        if (m.x >= num_states) {
          return fail(Status::kCorrupt,
                      path + ": memo entry " + std::to_string(i) +
                          " references an unknown state");
        }
        m.v0 = (flags & kMemoV0) != 0;
        m.v1 = (flags & kMemoV1) != 0;
        m.exact = (flags & kMemoExact) != 0;
        m.deep = (flags & kMemoDeep) != 0;
        if (matches) entries.push_back(m);
      }
      if (matches) {
        engine->import_memo(entries);
        stats.counter("store.memo_loaded").add(count);
      } else {
        stats.counter("store.memo_skipped").add(count);
      }
    }

    // --- Fingerprint rows. --------------------------------------------------
    if (const SectionEntry* e = find_section(h, SectionKind::kFingerprints)) {
      Reader r(bytes.data() + e->offset, e->bytes);
      std::vector<std::uint64_t> row(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < e->count; ++i) {
        std::uint32_t x = 0, pad = 0;
        if (!r.u32(&x) || !r.u32(&pad) || x >= num_states) {
          return fail(Status::kCorrupt,
                      path + ": fingerprint row " + std::to_string(i) +
                          " malformed");
        }
        for (std::uint64_t& v : row) {
          if (!r.u64(&v)) {
            return fail(Status::kTruncated,
                        path + ": fingerprint row " + std::to_string(i) +
                            " extends past its section");
          }
        }
        model.restore_fingerprint_row(static_cast<StateId>(x), row.data());
      }
      stats.counter("store.fingerprints_loaded").add(e->count);
    }
  } catch (const std::bad_alloc&) {
    // Covers fault::InjectedAllocError (the arenas' restore path probes the
    // injector exactly like intern) and genuine exhaustion: the model holds
    // a partial replay and the caller falls back to a cold start.
    return fail(Status::kIoError, path + ": allocation failure during replay");
  }

  stats.counter("store.bytes_read").add(bytes.size());
  stats.counter("store.snapshots_loaded").increment();
  return {};
}

}  // namespace lacon::store
