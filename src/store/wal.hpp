// lacon.wal.v1 — an append-only write-ahead log of interned-space deltas.
//
// A snapshot (store/snapshot.hpp) captures the whole interned space at one
// quiescent moment; the WAL makes the space *crash-durable between*
// snapshots. After each unit of work that interned new content (for
// `laconrd`, each served request), the owner calls append(): the log gains
// one checksummed, length-prefixed record holding exactly the delta since
// the previous commit — newly interned views and flat state words, newly
// cached layer entries, newly memoized valence entries, newly published
// fingerprint rows — in the same per-record encodings the snapshot sections
// use (store/codec.hpp). The record is fsync'd before append() returns, so
// a `kill -9` (or power cut) after a response was written loses nothing
// that response depended on.
//
// Layout (little-endian, records 8-aligned):
//
//   prelude   magic "LACONWL1" | u32 version=1 | u32 header_bytes
//             | u64 header_checksum (FNV-1a 64 over the header body)
//   header    u32 n, max_faulty, name_len, symmetry
//             | name bytes (zero-padded to 8)
//   records   each: frame {u32 record_magic, u32 reserved,
//                          u64 body_bytes, u64 body_checksum}
//             body  u64 seq
//                   | u64 base_views, new_views, base_states, new_states
//                   | view records | state records
//                   | u64 layer_count | layer entries
//                   | u32 memo_present, reserved
//                     [i32 horizon, u32 mode, u64 memo_count, entries]
//                   | u64 fingerprint_count | fingerprint rows
//                   | u64 lemma_count | lemma facts
//             (body zero-padded to 8; body_bytes is the padded length)
//
// The header's `symmetry` word mirrors the snapshot's (store/snapshot.hpp):
// it records the model's effective orbit-quotient mode when the log was
// created, and an existing log whose mode differs from the opening model's
// is refused with kSymmetryMismatch — a quotiented log holds only orbit
// representatives and must never replay into a full-space model (or vice
// versa). Pre-symmetry logs wrote the word as always-zero reserved padding,
// so they open exactly when the quotient is off — the mode they were
// written under. The lemma block at the end of each record is likewise
// additive: pre-lemma records simply end after the fingerprints (only zero
// padding remains), which decodes as zero lemma facts.
//
// Recovery contract (replay): the log is read over a model already holding
// the last full snapshot (or nothing). Records whose base counts match the
// model apply in order; records fully covered by the snapshot (saved after
// they were logged, crash before the log was reset) are skipped. The FIRST
// record that is torn, corrupt, or inconsistent — bad frame, checksum
// mismatch, short body, out-of-range reference — truncates the file back to
// the last valid record and replay returns kOk with the loss accounted in
// WalReplayStats; a torn tail is an expected crash artifact, never an
// error. Only damage to the prelude/header earns a typed failure.
//
// Compaction: once the log dwarfs the snapshot (should_compact), the owner
// saves a fresh snapshot and calls reset_to(), which truncates the log back
// to its header and re-derives the persisted-watermarks from what that
// snapshot actually covers.
//
// A Wal instance is not internally synchronized: callers serialize open/
// replay/append/reset_to. laconrd does this with a per-session store mutex
// plus a group-commit leader discipline (service/protocol.cc): concurrent
// requests stage their engines under a commit mutex, exactly one leader at
// a time calls append() with the staged batch, and every waiter returns
// only after a round that started at or after its own work completed.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "store/snapshot.hpp"  // Status / Result

namespace lacon {
class LayeredModel;
class LemmaStore;
class ValenceEngine;
}  // namespace lacon

namespace lacon::store {

inline constexpr char kWalMagic[8] = {'L', 'A', 'C', 'O', 'N', 'W', 'L', '1'};
inline constexpr std::uint32_t kWalFormatVersion = 1;
inline constexpr std::uint32_t kWalRecordMagic = 0x4352574Cu;  // "LWRC"

// What replay() did: applied records extend the model, skipped records were
// already covered by the snapshot, truncated bytes were cut off a torn or
// corrupt tail (truncation is recovery, not failure).
struct WalReplayStats {
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;
  std::uint64_t views_applied = 0;
  std::uint64_t states_applied = 0;
  std::uint64_t truncated_bytes = 0;
};

class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating if absent) the log at `path` for `model`'s identity.
  // A new file gets a fresh fsync'd header; an existing file's header must
  // match the model (name, n, max_faulty, orbit-quotient mode) or the open
  // fails typed — kBadMagic / kBadVersion / kCorrupt / kModelMismatch /
  // kSymmetryMismatch — leaving the file untouched so the caller can
  // quarantine it.
  Result open(LayeredModel& model, const std::string& path);

  // Replays the log over `model` (already snapshot-warm or empty) per the
  // recovery contract above, then derives the persisted watermarks from the
  // model: everything it now holds is durable. Call exactly once, after
  // open() and before the first append(). `engine` receives matching memo
  // entries; `lemmas` (may be null) receives every record's lemma facts —
  // signature-keyed, so they need no horizon match; `stats_out` may be
  // null.
  Result replay(LayeredModel& model, ValenceEngine* engine,
                LemmaStore* lemmas = nullptr,
                WalReplayStats* stats_out = nullptr);

  // Appends one delta record covering everything interned/cached past the
  // watermarks, fsyncs it, and advances the watermarks. A no-op (kOk)
  // when nothing new exists. On a short write the file is truncated back to
  // the previous record boundary so a failed append never leaves a torn
  // middle. Requires a quiescent model (same rule as snapshot save).
  Result append(LayeredModel& model, ValenceEngine* engine,
                LemmaStore* lemmas = nullptr);

  // Group-commit append: one delta record carrying everything past the
  // watermarks plus the first engine's new memo entries, then one
  // memo-only record (zero new views/states) per additional engine that
  // memoized anything new — the whole batch written and fsync'd as a
  // SINGLE write, so N concurrent requests share one durability round.
  // Every record is an ordinary v1 record; replay applies them in
  // sequence with no special casing. Nullptr and duplicate engines are
  // tolerated. This is what laconrd's commit leader calls with the engines
  // of every request staged in its round.
  Result append(LayeredModel& model,
                const std::vector<ValenceEngine*>& engines,
                LemmaStore* lemmas = nullptr);

  // True once the live log payload outweighs `snapshot_bytes` by more than
  // `ratio` (with a 64 KiB floor so tiny snapshots don't force compaction
  // on every record).
  bool should_compact(std::uint64_t snapshot_bytes,
                      std::uint64_t ratio) const noexcept;

  // After a fresh snapshot of `model` was durably saved covering
  // `num_views`/`num_states` (read them off store::probe, not the live
  // model — interning may have raced the save): truncates the log back to
  // its header, fsyncs, and recomputes the watermarks to exactly what that
  // snapshot holds.
  Result reset_to(LayeredModel& model, std::uint64_t num_views,
                  std::uint64_t num_states, ValenceEngine* engine,
                  LemmaStore* lemmas = nullptr);

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }

  // Bytes of record payload currently in the log (excludes the header).
  std::uint64_t log_bytes() const noexcept {
    return log_end_ - header_end_;
  }
  std::uint64_t records_appended() const noexcept { return seq_; }

  void close();

 private:
  Result write_and_sync(const std::uint8_t* data, std::size_t bytes,
                        std::uint64_t at_offset);
  // Rebuilds the persisted cache-entry sets from the model, counting only
  // content below the given id horizons.
  void mark_persisted_from(LayeredModel& model, std::uint64_t num_views,
                           std::uint64_t num_states, ValenceEngine* engine,
                           LemmaStore* lemmas);

  int fd_ = -1;
  std::string path_;
  std::uint64_t header_end_ = 0;  // file offset where records begin
  std::uint64_t log_end_ = 0;     // file offset past the last valid record
  std::uint64_t seq_ = 0;         // next record sequence number

  // Durability watermarks: everything below is on disk (snapshot or log).
  std::uint64_t persisted_views_ = 0;
  std::uint64_t persisted_states_ = 0;
  std::vector<bool> persisted_layers_;       // by StateId key
  std::vector<bool> persisted_fingerprints_; // by StateId
  // Memo entries are keyed (horizon, x, lookahead, flags): the horizon
  // disambiguates equal (x, lookahead) entries memoized by engines at
  // different lookahead depths (each record carries its engine's horizon,
  // and replay imports only into a matching engine), and a later
  // *stronger* entry for the same state re-appends (import_memo merges
  // strongest-wins).
  std::set<std::pair<std::int32_t, std::uint64_t>> persisted_memo_;
  // Lemma facts are keyed (sig_hi, sig_lo, lookahead): a fact whose
  // lookahead was min-merged down re-appends under the new key (the
  // store's publish keeps the cheaper proof).
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::int32_t>>
      persisted_lemmas_;
  std::int32_t memo_horizon_ = -1;
  std::uint32_t memo_mode_ = 0;
};

}  // namespace lacon::store
