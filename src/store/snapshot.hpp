// lacon.store.v1 — versioned on-disk snapshots of an interned state space.
//
// A snapshot captures everything a LayeredModel accumulates during analysis
// that is expensive to recompute: the view DAG, the flat state arena, the
// layer cache, published similarity-fingerprint rows, and (optionally) a
// ValenceEngine's memo. Loading into a freshly-constructed model of the same
// identity (name, n, max_faulty) replays views and states in stored-id
// order, so every restored object receives exactly its stored id — env words
// embedding ViewIds, layer-cache keys and memo keys all stay valid, and
// analysis after a warm start is byte-identical to a fresh exploration.
//
// Layout (little-endian, every section 8-aligned):
//
//   prelude   magic "LACONST1" | u32 version=1 | u32 header_bytes
//             | u64 header_checksum (FNV-1a 64 over the header body)
//   header    u32 n, max_faulty, lane_bits=32, word_bytes=8,
//             digest_shards, name_len, section_count, symmetry
//             | u64 num_views, num_states | name bytes (zero-padded to 8)
//             | section table: {u32 kind, u32 reserved,
//                               u64 offset, bytes, count, checksum} ...
//   sections  each FNV-1a-checksummed; kinds in SectionKind below.
//
// The `symmetry` header word records the model's effective quotient mode at
// save time (0 = full space, 1 = LACON_SYMMETRY orbit quotient,
// core/sym.hpp): a quotiented snapshot stores only orbit representatives
// and layer caches over them, so replaying it into a full-space model (or
// vice versa) would silently corrupt every analysis. Mode-mismatched loads
// are rejected with kSymmetryMismatch. The word reuses what v1 wrote as an
// always-zero reserved field, so pre-symmetry snapshots load exactly when
// the quotient is off — which is the mode they were saved under.
//
// The layout is mmap-friendly — fixed prelude, absolute section offsets,
// aligned payloads — and the loader exploits it: under LACON_MMAP=on (the
// default) load() maps the file and adopts the flat state payloads in
// place (StateArena::restore_mapped), falling back to the streaming read
// when the mapping fails, the knob is off, or the record layout differs
// from the pool encoding (odd n pads its lane words in memory but not on
// disk). FORMATS.md is the normative byte-level spec.
// Corrupt, short, or mismatched files are rejected with a typed Status and
// leave the model untouched up to the failing section (a failed load should
// be answered by constructing a fresh model). Files with version != 1 are
// refused with kBadVersion: forward compatibility is explicitly out of
// scope for v1.
#pragma once

#include <cstdint>
#include <string>

namespace lacon {
class LayeredModel;
class LemmaStore;
class ValenceEngine;
}  // namespace lacon

namespace lacon::store {

inline constexpr char kMagic[8] = {'L', 'A', 'C', 'O', 'N', 'S', 'T', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;

enum class SectionKind : std::uint32_t {
  kViews = 1,             // ViewNode records in id order
  kStates = 2,            // GlobalState records in id order
  kStateDigests = 3,      // per-digest-shard sums of state content hashes
  kViewDigests = 4,       // per-digest-shard sums of view content hashes
  kLayerCache = 5,        // (state, successor-list) entries
  kValenceMemo = 6,       // ValenceEngine memo entries (+ horizon, mode)
  kFingerprints = 7,      // published erase-one fingerprint rows
  kLemmas = 8,            // LemmaStore facts (canonical-signature keyed)
};

enum class Status : std::uint8_t {
  kOk = 0,
  kIoError,         // open/read/write/rename failed
  kTruncated,       // file shorter than its own accounting claims
  kBadMagic,        // not a lacon.store file
  kBadVersion,      // a version this build does not speak (only v1)
  kCorrupt,         // checksum, digest or internal-consistency failure
  kModelMismatch,   // snapshot identity != target model identity
  kNotEmpty,        // load target has already interned content
  kSymmetryMismatch,  // file's quotient mode != target model's (LACON_SYMMETRY)
};

const char* to_string(Status status) noexcept;

struct Result {
  Status status = Status::kOk;
  std::string detail;  // human-readable context (path, offending section)

  bool ok() const noexcept { return status == Status::kOk; }
};

// Identity and inventory read off a snapshot without replaying it.
struct SnapshotMeta {
  std::uint32_t version = 0;
  std::string model_name;
  int n = 0;
  int max_faulty = 0;
  std::uint64_t num_views = 0;
  std::uint64_t num_states = 0;
  std::uint64_t layer_entries = 0;
  std::uint64_t memo_entries = 0;
  std::uint64_t fingerprint_rows = 0;
  std::uint64_t lemma_entries = 0;
  std::uint64_t file_bytes = 0;
  bool symmetry = false;  // saved under the orbit quotient
};

// Serializes the model's interned space (and `engine`'s memo, when given) to
// `path`. Writes `path + ".tmp"` and renames, so readers never observe a
// half-written snapshot. The model must be quiescent (no analysis in
// flight); the save side only takes the same shard locks export_layer_cache
// and export_memo do.
Result save(LayeredModel& model, const std::string& path,
            ValenceEngine* engine = nullptr, LemmaStore* lemmas = nullptr);

// Replays `path` into `model`, which must be freshly constructed (same
// name/n/max_faulty as at save time, nothing interned yet — call load
// *before* initial_states()). When `engine` is given and its horizon and
// exactness mode match the stored memo's, the memo is imported too;
// otherwise the memo section is skipped. On any non-kOk result the model
// may hold a partial replay and should be discarded.
Result load(LayeredModel& model, const std::string& path,
            ValenceEngine* engine = nullptr, LemmaStore* lemmas = nullptr);

// Validates the prelude + header of `path` and fills `meta` (may be null).
// Does not checksum section payloads.
Result probe(const std::string& path, SnapshotMeta* meta);

}  // namespace lacon::store
