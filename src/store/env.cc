#include "store/env.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/model.hpp"

namespace lacon::store {

namespace {

void warn_mode_once(const char* text, Mode used) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "lacon: ignoring malformed LACON_STORE='%s' "
               "(want off|load|save|loadsave); using '%s'\n",
               text, to_string(used));
}

void warn_dir_once(std::size_t length, const std::string& used) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "lacon: ignoring overlong LACON_STORE_DIR (%zu bytes, max "
               "%zu); using '%s'\n",
               length, kMaxDirLength, used.c_str());
}

void warn_wal_once(const char* text, bool used) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "lacon: ignoring malformed LACON_WAL='%s' (want off|on); "
               "using '%s'\n",
               text, used ? "on" : "off");
}

void warn_mmap_once(const char* text, bool used) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "lacon: ignoring malformed LACON_MMAP='%s' (want off|on); "
               "using '%s'\n",
               text, used ? "on" : "off");
}

void warn_wal_compact_once(const char* text, std::uint64_t used) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "lacon: ignoring malformed LACON_WAL_COMPACT='%s' (want an "
               "integer in [1, %llu]); using %llu\n",
               text, static_cast<unsigned long long>(kMaxWalCompactRatio),
               static_cast<unsigned long long>(used));
}

}  // namespace

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kLoad:
      return "load";
    case Mode::kSave:
      return "save";
    case Mode::kLoadSave:
      return "loadsave";
  }
  return "?";
}

Mode parse_mode(const char* text, Mode fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  if (std::strcmp(text, "off") == 0) return Mode::kOff;
  if (std::strcmp(text, "load") == 0) return Mode::kLoad;
  if (std::strcmp(text, "save") == 0) return Mode::kSave;
  if (std::strcmp(text, "loadsave") == 0) return Mode::kLoadSave;
  warn_mode_once(text, fallback);
  return fallback;
}

std::string parse_dir(const char* text, const std::string& fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  const std::size_t length = std::strlen(text);
  if (length > kMaxDirLength) {
    warn_dir_once(length, fallback);
    return fallback;
  }
  return std::string(text);
}

bool parse_wal(const char* text, bool fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  if (std::strcmp(text, "off") == 0) return false;
  if (std::strcmp(text, "on") == 0) return true;
  warn_wal_once(text, fallback);
  return fallback;
}

std::uint64_t parse_wal_compact(const char* text,
                                std::uint64_t fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value < 1 ||
      value > kMaxWalCompactRatio) {
    warn_wal_compact_once(text, fallback);
    return fallback;
  }
  return static_cast<std::uint64_t>(value);
}

Mode mode() { return parse_mode(std::getenv("LACON_STORE"), Mode::kOff); }

std::string dir() {
  return parse_dir(std::getenv("LACON_STORE_DIR"), "lacon_store");
}

bool wal_enabled() { return parse_wal(std::getenv("LACON_WAL"), false); }

std::uint64_t wal_compact_ratio() {
  return parse_wal_compact(std::getenv("LACON_WAL_COMPACT"), 8);
}

bool parse_mmap(const char* text, bool fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  if (std::strcmp(text, "off") == 0) return false;
  if (std::strcmp(text, "on") == 0) return true;
  warn_mmap_once(text, fallback);
  return fallback;
}

bool mmap_enabled() { return parse_mmap(std::getenv("LACON_MMAP"), true); }

std::string snapshot_filename(const std::string& model_name, int n,
                              int max_faulty) {
  std::string sanitized;
  sanitized.reserve(model_name.size());
  for (char c : model_name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    sanitized.push_back(keep ? c : '_');
  }
  return sanitized + ".n" + std::to_string(n) + ".t" +
         std::to_string(max_faulty) + ".lacon.store";
}

std::string snapshot_path(const std::string& directory,
                          const std::string& model_name, int n,
                          int max_faulty) {
  std::string out = directory;
  if (!out.empty() && out.back() != '/') out.push_back('/');
  return out + snapshot_filename(model_name, n, max_faulty);
}

std::string snapshot_path(const LayeredModel& model) {
  return snapshot_path(dir(), model.name(), model.n(), model.max_faulty());
}

std::string wal_path(const LayeredModel& model) {
  return snapshot_path(model) + ".wal";
}

}  // namespace lacon::store
