// Exponential Information Gathering (EIG) consensus for crash failures
// (EIGStop; Lynch §6.2.3). Each process maintains the EIG tree whose nodes
// are labelled by strings of distinct process ids; the value at node
// i1 i2 ... ik is the input of i1 as relayed along the chain i2, ..., ik.
// After t+1 rounds it decides the minimum value present in the tree —
// functionally equal to FloodSet, but exercising the full relay structure
// (and the message sizes the literature attributes to EIG).
#pragma once

#include <map>

#include "protocols/round_protocol.hpp"

namespace lacon {

// A tree-node label: the relay chain, most recent relayer last. Encoded for
// messages as fixed-width 6-bit id digits with a length prefix.
using EigLabel = std::vector<ProcessId>;

std::int64_t pack_label(const EigLabel& label);
EigLabel unpack_label(std::int64_t packed);

class Eig final : public RoundProtocol {
 public:
  Eig(int n, int t, ProcessId id, Value input);

  std::optional<Message> broadcast(int round) override;
  void receive(int round,
               const std::vector<std::optional<Message>>& received) override;
  std::optional<Value> decision() const override { return decision_; }

  const std::map<EigLabel, Value>& tree() const noexcept { return tree_; }

 private:
  int n_;
  int t_;
  ProcessId id_;
  std::map<EigLabel, Value> tree_;
  std::optional<Value> decision_;
};

std::unique_ptr<RoundProtocolFactory> eig_factory();

}  // namespace lacon
