#include "protocols/floodset.hpp"

namespace lacon {

FloodSet::FloodSet(int /*n*/, int t, ProcessId /*id*/, Value input)
    : t_(t), seen_{input} {}

std::optional<Message> FloodSet::broadcast(int /*round*/) {
  return Message(seen_.begin(), seen_.end());
}

void FloodSet::receive(int round,
                       const std::vector<std::optional<Message>>& received) {
  for (const auto& msg : received) {
    if (!msg) continue;
    for (std::int64_t v : *msg) seen_.insert(static_cast<Value>(v));
  }
  if (round >= t_ + 1 && !decision_) decision_ = *seen_.begin();
}

namespace {

class Factory final : public RoundProtocolFactory {
 public:
  std::string name() const override { return "floodset"; }
  int rounds(int /*n*/, int t) const override { return t + 1; }
  std::unique_ptr<RoundProtocol> create(int n, int t, ProcessId id,
                                        Value input) const override {
    return std::make_unique<FloodSet>(n, t, id, input);
  }
};

}  // namespace

std::unique_ptr<RoundProtocolFactory> floodset_factory() {
  return std::make_unique<Factory>();
}

}  // namespace lacon
