// A naive rotating-coordinator consensus attempt for the asynchronous
// model, used to *demonstrate* the paper's impossibility from the systems
// side: the protocol is safe, and it terminates under every fair schedule,
// but an adversarial scheduler that starves the coordinator's messages keeps
// it from ever deciding — deterministic asynchronous consensus has no
// defense against exactly this (Theorem 4.2 / Corollary 5.4).
//
// Protocol sketch: in phase p the coordinator c = p mod n broadcasts its
// current estimate; a process that receives the phase-p estimate adopts it
// and acknowledges; when the coordinator collects n-t-1 acknowledgements it
// broadcasts "decide"; everyone who receives "decide" decides. A process
// also moves to the next phase when it receives a message of a later phase
// (so a crashed coordinator does not wedge the protocol under fair
// scheduling with failure-free runs — but a *slow* coordinator wedges it
// forever, which is the point).
#pragma once

#include "protocols/async_process.hpp"

namespace lacon {

class RotatingCoordinator final : public AsyncProcess {
 public:
  RotatingCoordinator(int n, int t, ProcessId id, Value input);

  std::vector<Packet> start() override;
  std::vector<Packet> on_message(const Packet& packet) override;
  std::optional<Value> decision() const override { return decision_; }

  int phase() const noexcept { return phase_; }

 private:
  std::vector<Packet> coordinator_broadcast();

  int n_;
  int t_;
  ProcessId id_;
  Value estimate_;
  int phase_ = 0;
  int acks_ = 0;
  std::optional<Value> decision_;
};

std::unique_ptr<AsyncProcessFactory> rotating_coordinator_factory();

}  // namespace lacon
