#include "protocols/coordinator.hpp"

namespace lacon {
namespace {

// Message tags.
constexpr std::int64_t kEstimate = 0;
constexpr std::int64_t kAck = 1;
constexpr std::int64_t kDecide = 2;

}  // namespace

RotatingCoordinator::RotatingCoordinator(int n, int t, ProcessId id,
                                         Value input)
    : n_(n), t_(t), id_(id), estimate_(input) {}

std::vector<Packet> RotatingCoordinator::coordinator_broadcast() {
  std::vector<Packet> out;
  if (phase_ % n_ != id_) return out;
  acks_ = 0;
  for (ProcessId dest = 0; dest < n_; ++dest) {
    if (dest == id_) continue;
    out.push_back(Packet{id_, dest, {kEstimate, phase_, estimate_}});
  }
  return out;
}

std::vector<Packet> RotatingCoordinator::start() {
  return coordinator_broadcast();
}

std::vector<Packet> RotatingCoordinator::on_message(const Packet& packet) {
  std::vector<Packet> out;
  if (decision_) return out;
  const std::int64_t tag = packet.payload[0];
  const int phase = static_cast<int>(packet.payload[1]);

  if (tag == kDecide) {
    decision_ = static_cast<Value>(packet.payload[2]);
    // Relay the decision so everyone terminates.
    for (ProcessId dest = 0; dest < n_; ++dest) {
      if (dest == id_) continue;
      out.push_back(Packet{id_, dest, {kDecide, phase, *decision_}});
    }
    return out;
  }

  // Fall forward to later phases announced by others.
  if (phase > phase_) {
    phase_ = phase;
    auto mine = coordinator_broadcast();
    out.insert(out.end(), mine.begin(), mine.end());
  }

  if (tag == kEstimate && phase == phase_) {
    estimate_ = static_cast<Value>(packet.payload[2]);
    out.push_back(Packet{id_, packet.from, {kAck, phase, estimate_}});
  } else if (tag == kAck && phase == phase_ && phase_ % n_ == id_) {
    if (++acks_ >= n_ - t_ - 1) {
      decision_ = estimate_;
      for (ProcessId dest = 0; dest < n_; ++dest) {
        if (dest == id_) continue;
        out.push_back(Packet{id_, dest, {kDecide, phase, *decision_}});
      }
    }
  }
  return out;
}

namespace {

class Factory final : public AsyncProcessFactory {
 public:
  std::string name() const override { return "rotating-coordinator"; }
  std::unique_ptr<AsyncProcess> create(int n, int t, ProcessId id, Value input,
                                       Rng* /*rng*/) const override {
    return std::make_unique<RotatingCoordinator>(n, t, id, input);
  }
};

}  // namespace

std::unique_ptr<AsyncProcessFactory> rotating_coordinator_factory() {
  return std::make_unique<Factory>();
}

}  // namespace lacon
