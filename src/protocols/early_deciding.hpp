// Early-deciding FloodSet: decide at the first *clean* round — a round in
// which the set of processes heard from did not shrink — or at round t+1,
// whichever comes first. With f actual crashes some round among 1..f+1 is
// clean from every surviving process's perspective, so every survivor
// decides by round f+2 at the latest; this is the upper-bound half of the
// Dwork–Moses early-stopping picture the paper discusses around Lemma 6.4
// ("by wasting w faults the environment loses w rounds").
//
// Heard-sets are monotone under crash failures (a process not heard in round
// r has crashed and stays silent), so count equality equals set equality.
// The protocol solves plain (non-uniform) consensus: a process that decides
// in a clean round and then crashes may die with a value nobody else holds.
#pragma once

#include <set>

#include "protocols/round_protocol.hpp"

namespace lacon {

class EarlyDecidingFloodSet final : public RoundProtocol {
 public:
  EarlyDecidingFloodSet(int n, int t, ProcessId id, Value input);

  std::optional<Message> broadcast(int round) override;
  void receive(int round,
               const std::vector<std::optional<Message>>& received) override;
  std::optional<Value> decision() const override { return decision_; }

  // Round at which the decision fired (0 if undecided); for the f+2 bound
  // measurements.
  int decision_round() const noexcept { return decision_round_; }

 private:
  int n_;
  int t_;
  std::set<Value> seen_;
  int prev_heard_;
  std::optional<Value> decision_;
  int decision_round_ = 0;
};

std::unique_ptr<RoundProtocolFactory> early_deciding_factory();

}  // namespace lacon
