#include "protocols/adopt_commit.hpp"

namespace lacon {
namespace {
constexpr std::int64_t kStageA = 0;
constexpr std::int64_t kStageB = 1;
constexpr Value kBottomVote = -1;
}  // namespace

AdoptCommit::AdoptCommit(int n, int t, ProcessId id, Value input)
    : n_(n), t_(t), id_(id), proposal_(input), a_value_(input) {}

std::vector<Packet> AdoptCommit::broadcast(int stage, Value v) {
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n_ - 1));
  for (ProcessId dest = 0; dest < n_; ++dest) {
    if (dest == id_) continue;
    out.push_back(Packet{id_, dest, {stage, v}});
  }
  return out;
}

std::vector<Packet> AdoptCommit::start() {
  // Count our own stage-A report, then broadcast it.
  ++a_total_;
  std::vector<Packet> out = broadcast(kStageA, proposal_);
  auto more = advance();
  out.insert(out.end(), more.begin(), more.end());
  return out;
}

std::vector<Packet> AdoptCommit::on_message(const Packet& packet) {
  const std::int64_t stage = packet.payload[0];
  const Value v = static_cast<Value>(packet.payload[1]);
  if (stage == kStageA) {
    ++a_total_;
    if (v != a_value_) a_mixed_ = true;
  } else {
    ++b_total_;
    if (v == kBottomVote) {
      ++b_bottom_;
    } else {
      if (b_value_ && *b_value_ != v) b_mixed_ = true;
      b_value_ = v;
    }
  }
  return advance();
}

std::vector<Packet> AdoptCommit::advance() {
  std::vector<Packet> out;
  if (!vote_ && a_total_ >= n_ - t_) {
    vote_ = a_mixed_ ? kBottomVote : a_value_;
    // Count our own vote, then broadcast it.
    ++b_total_;
    if (*vote_ == kBottomVote) {
      ++b_bottom_;
    } else {
      if (b_value_ && *b_value_ != *vote_) b_mixed_ = true;
      b_value_ = *vote_;
    }
    out = broadcast(kStageB, *vote_);
  }
  if (vote_ && !grade_ && b_total_ >= n_ - t_) {
    if (b_bottom_ == 0 && b_value_ && !b_mixed_) {
      grade_ = Grade::kCommit;
      value_ = *b_value_;
    } else if (b_value_) {
      grade_ = Grade::kAdopt;
      value_ = *b_value_;
    } else {
      grade_ = Grade::kAdopt;
      value_ = proposal_;
    }
  }
  return out;
}

std::optional<Value> AdoptCommit::decision() const {
  if (!grade_) return std::nullopt;
  return 2 * (*value_) + (*grade_ == Grade::kCommit ? 1 : 0);
}

namespace {

class Factory final : public AsyncProcessFactory {
 public:
  std::string name() const override { return "adopt-commit"; }
  std::unique_ptr<AsyncProcess> create(int n, int t, ProcessId id, Value input,
                                       Rng* /*rng*/) const override {
    return std::make_unique<AdoptCommit>(n, t, id, input);
  }
};

}  // namespace

std::unique_ptr<AsyncProcessFactory> adopt_commit_factory() {
  return std::make_unique<Factory>();
}

}  // namespace lacon
