// Event-driven process interface for the asynchronous simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace lacon {

struct Packet {
  ProcessId from = 0;
  ProcessId to = 0;
  std::vector<std::int64_t> payload;
};

class AsyncProcess {
 public:
  virtual ~AsyncProcess() = default;

  // Called once before any delivery; returns the initial sends.
  virtual std::vector<Packet> start() = 0;

  // Called on each delivery; returns the sends it triggers.
  virtual std::vector<Packet> on_message(const Packet& packet) = 0;

  virtual std::optional<Value> decision() const = 0;
};

class AsyncProcessFactory {
 public:
  virtual ~AsyncProcessFactory() = default;
  virtual std::string name() const = 0;
  // `rng` outlives the process and may be shared; protocols that flip coins
  // (Ben-Or) draw from it.
  virtual std::unique_ptr<AsyncProcess> create(int n, int t, ProcessId id,
                                               Value input,
                                               Rng* rng) const = 0;
};

}  // namespace lacon
