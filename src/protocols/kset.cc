#include "protocols/kset.hpp"

namespace lacon {

KSetAgreement::KSetAgreement(int n, int t, ProcessId id, Value input)
    : n_(n), t_(t), id_(id), input_(input) {
  reports_.insert(input);  // own report
}

std::vector<Packet> KSetAgreement::start() {
  std::vector<Packet> out;
  for (ProcessId dest = 0; dest < n_; ++dest) {
    if (dest == id_) continue;
    out.push_back(Packet{id_, dest, {input_}});
  }
  if (static_cast<int>(reports_.size()) >= n_ - t_ && !decision_) {
    decision_ = *reports_.begin();
  }
  return out;
}

std::vector<Packet> KSetAgreement::on_message(const Packet& packet) {
  reports_.insert(static_cast<Value>(packet.payload[0]));
  if (static_cast<int>(reports_.size()) >= n_ - t_ && !decision_) {
    decision_ = *reports_.begin();
  }
  return {};
}

namespace {

class Factory final : public AsyncProcessFactory {
 public:
  std::string name() const override { return "k-set-agreement"; }
  std::unique_ptr<AsyncProcess> create(int n, int t, ProcessId id, Value input,
                                       Rng* /*rng*/) const override {
    return std::make_unique<KSetAgreement>(n, t, id, input);
  }
};

}  // namespace

std::unique_ptr<AsyncProcessFactory> kset_factory() {
  return std::make_unique<Factory>();
}

}  // namespace lacon
