#include "protocols/eig.hpp"

#include <algorithm>
#include <cassert>

namespace lacon {

std::int64_t pack_label(const EigLabel& label) {
  assert(label.size() <= 9);
  std::int64_t packed = static_cast<std::int64_t>(label.size());
  for (ProcessId id : label) {
    packed = (packed << 6) | static_cast<std::int64_t>(id);
  }
  return packed;
}

EigLabel unpack_label(std::int64_t packed) {
  // The length prefix sits above the 6-bit id digits; for any well-formed
  // encoding exactly one candidate length matches (the prefix of a longer
  // label is itself >= 64 > 9, the prefix of a shorter one is 0).
  for (int len = 0; len <= 9; ++len) {
    if ((packed >> (6 * len)) == len) {
      EigLabel label(static_cast<std::size_t>(len));
      std::int64_t rest = packed;
      for (int pos = len - 1; pos >= 0; --pos) {
        label[static_cast<std::size_t>(pos)] =
            static_cast<ProcessId>(rest & 0x3f);
        rest >>= 6;
      }
      return label;
    }
  }
  assert(false && "malformed EIG label");
  return {};
}

Eig::Eig(int n, int t, ProcessId id, Value input) : n_(n), t_(t), id_(id) {
  tree_[EigLabel{id}] = input;  // own level-1 node
}

std::optional<Message> Eig::broadcast(int round) {
  Message msg;
  if (round == 1) {
    // Round-1 messages carry the empty relay chain: the receiver records
    // (sender) -> input.
    msg.push_back(pack_label({}));
    msg.push_back(static_cast<std::int64_t>(tree_.at(EigLabel{id_})));
    return msg;
  }
  // Relay every level-(round-1) node whose chain does not include us; the
  // receiver appends our id to form a level-`round` node.
  for (const auto& [label, value] : tree_) {
    if (static_cast<int>(label.size()) != round - 1) continue;
    if (std::find(label.begin(), label.end(), id_) != label.end()) continue;
    msg.push_back(pack_label(label));
    msg.push_back(static_cast<std::int64_t>(value));
  }
  return msg;
}

void Eig::receive(int round,
                  const std::vector<std::optional<Message>>& received) {
  // Own relays are recorded too (val(x·i) := val(x), Lynch §6.2.3): the
  // own broadcast arrives through received[id_] like everyone else's.
  for (ProcessId sender = 0; sender < n_; ++sender) {
    const auto& msg = received[static_cast<std::size_t>(sender)];
    if (!msg) continue;
    for (std::size_t pos = 0; pos + 1 < msg->size(); pos += 2) {
      EigLabel label = unpack_label((*msg)[pos]);
      const Value value = static_cast<Value>((*msg)[pos + 1]);
      if (static_cast<int>(label.size()) != round - 1) continue;
      if (std::find(label.begin(), label.end(), sender) != label.end()) {
        continue;
      }
      label.push_back(sender);
      tree_.emplace(std::move(label), value);
    }
  }
  if (round >= t_ + 1 && !decision_) {
    Value best = tree_.begin()->second;
    for (const auto& [label, value] : tree_) best = std::min(best, value);
    decision_ = best;
  }
}

namespace {

class Factory final : public RoundProtocolFactory {
 public:
  std::string name() const override { return "eig"; }
  int rounds(int /*n*/, int t) const override { return t + 1; }
  std::unique_ptr<RoundProtocol> create(int n, int t, ProcessId id,
                                        Value input) const override {
    return std::make_unique<Eig>(n, t, id, input);
  }
};

}  // namespace

std::unique_ptr<RoundProtocolFactory> eig_factory() {
  return std::make_unique<Factory>();
}

}  // namespace lacon
