#include "protocols/benor.hpp"

namespace lacon {
namespace {
constexpr Value kBottom = -1;  // the ⊥ proposal
}  // namespace

BenOr::BenOr(int n, int t, ProcessId id, Value input, Rng* rng)
    : n_(n), t_(t), id_(id), rng_(rng), x_(input) {}

std::vector<Packet> BenOr::broadcast_stage() {
  const Value v = (stage_ == 0) ? x_ : prop_;
  ++counts_[{phase_, stage_, v}];  // count our own vote
  ++totals_[{phase_, stage_}];
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(n_ - 1));
  for (ProcessId dest = 0; dest < n_; ++dest) {
    if (dest == id_) continue;
    out.push_back(Packet{id_, dest, {phase_, stage_, v}});
  }
  return out;
}

std::vector<Packet> BenOr::start() { return advance({}); }

std::vector<Packet> BenOr::on_message(const Packet& packet) {
  const int phase = static_cast<int>(packet.payload[0]);
  const int stage = static_cast<int>(packet.payload[1]);
  const Value v = static_cast<Value>(packet.payload[2]);
  ++counts_[{phase, stage, v}];
  ++totals_[{phase, stage}];
  return advance({});
}

std::vector<Packet> BenOr::advance(std::vector<Packet> out) {
  if (!started_) {
    started_ = true;
    auto sent = broadcast_stage();
    out.insert(out.end(), sent.begin(), sent.end());
  }
  // Buffered future-phase messages may satisfy several quorums in a row.
  while (totals_[{phase_, stage_}] >= n_ - t_) {
    if (stage_ == 0) {
      // Report stage complete: propose the strict-majority value, or ⊥.
      prop_ = kBottom;
      for (Value v : {0, 1}) {
        if (2 * counts_[{phase_, 0, v}] > n_) prop_ = v;
      }
      stage_ = 1;
    } else {
      // Proposal stage complete.
      Value seen = kBottom;
      int seen_count = 0;
      for (Value v : {0, 1}) {
        const int c = counts_[{phase_, 1, v}];
        if (c > seen_count) {
          seen = v;
          seen_count = c;
        }
      }
      if (seen_count >= t_ + 1) {
        decision_ = seen;
        x_ = seen;
      } else if (seen_count >= 1) {
        x_ = seen;
      } else {
        x_ = rng_->coin() ? 1 : 0;
      }
      ++phase_;
      stage_ = 0;
    }
    auto sent = broadcast_stage();
    out.insert(out.end(), sent.begin(), sent.end());
  }
  return out;
}

namespace {

class Factory final : public AsyncProcessFactory {
 public:
  std::string name() const override { return "ben-or"; }
  std::unique_ptr<AsyncProcess> create(int n, int t, ProcessId id, Value input,
                                       Rng* rng) const override {
    return std::make_unique<BenOr>(n, t, id, input, rng);
  }
};

}  // namespace

std::unique_ptr<AsyncProcessFactory> benor_factory() {
  return std::make_unique<Factory>();
}

}  // namespace lacon
