// t-resilient asynchronous k-set agreement for t < k (Chaudhuri): each
// process broadcasts its input, waits for n-t reports (its own included),
// and decides the minimum value it received. At most t values can be
// missing from any quorum, so the decided values are among the t+1 <= k
// smallest inputs — at most k distinct decisions.
//
// This is the operational counterpart of the Section 7 catalog row: 2-set
// agreement is 1-thick connected and hence 1-resiliently solvable, in
// contrast with consensus.
#pragma once

#include <set>

#include "protocols/async_process.hpp"

namespace lacon {

class KSetAgreement final : public AsyncProcess {
 public:
  KSetAgreement(int n, int t, ProcessId id, Value input);

  std::vector<Packet> start() override;
  std::vector<Packet> on_message(const Packet& packet) override;
  std::optional<Value> decision() const override { return decision_; }

 private:
  int n_;
  int t_;
  ProcessId id_;
  Value input_;
  std::multiset<Value> reports_;
  std::optional<Value> decision_;
};

std::unique_ptr<AsyncProcessFactory> kset_factory();

}  // namespace lacon
