#include "protocols/early_deciding.hpp"

namespace lacon {

EarlyDecidingFloodSet::EarlyDecidingFloodSet(int n, int t, ProcessId /*id*/,
                                             Value input)
    : n_(n), t_(t), seen_{input}, prev_heard_(n) {}

std::optional<Message> EarlyDecidingFloodSet::broadcast(int /*round*/) {
  // Keep broadcasting after deciding so late deciders receive our values.
  return Message(seen_.begin(), seen_.end());
}

void EarlyDecidingFloodSet::receive(
    int round, const std::vector<std::optional<Message>>& received) {
  int heard = 0;
  for (const auto& msg : received) {
    if (!msg) continue;
    ++heard;
    for (std::int64_t v : *msg) seen_.insert(static_cast<Value>(v));
  }
  const bool clean = (heard == prev_heard_);
  prev_heard_ = heard;
  if (!decision_ && (clean || round >= t_ + 1)) {
    decision_ = *seen_.begin();
    decision_round_ = round;
  }
}

namespace {

class Factory final : public RoundProtocolFactory {
 public:
  std::string name() const override { return "early-deciding-floodset"; }
  int rounds(int /*n*/, int t) const override { return t + 1; }
  std::unique_ptr<RoundProtocol> create(int n, int t, ProcessId id,
                                        Value input) const override {
    return std::make_unique<EarlyDecidingFloodSet>(n, t, id, input);
  }
};

}  // namespace

std::unique_ptr<RoundProtocolFactory> early_deciding_factory() {
  return std::make_unique<Factory>();
}

}  // namespace lacon
