// Round-based (synchronous) protocol interface for the Tier-B simulators.
//
// The layered analysis of src/engine quantifies over protocols through the
// full-information skeleton; the protocols here are the *concrete* upper-
// bound side: real message formats, real state machines, run on the
// synchronous round simulator of src/sim under crash adversaries. FloodSet
// and EIG decide in exactly t+1 rounds (the Dolev–Strong bound of Section 6
// is tight), the early-deciding variant in min(f+2, t+1) rounds (the
// Dwork–Moses structure the paper discusses around Lemma 6.4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace lacon {

using Message = std::vector<std::int64_t>;

class RoundProtocol {
 public:
  virtual ~RoundProtocol() = default;

  // The message this process broadcasts in `round` (1-based), or nullopt to
  // stay silent. Deciding processes keep broadcasting until the protocol's
  // last round so their information is relayed.
  virtual std::optional<Message> broadcast(int round) = 0;

  // Delivery for `round`: received[i] holds i's message if it arrived.
  // received[self] always holds the own broadcast.
  virtual void receive(int round,
                       const std::vector<std::optional<Message>>& received) = 0;

  // The value written to the write-once decision variable, once decided.
  virtual std::optional<Value> decision() const = 0;
};

class RoundProtocolFactory {
 public:
  virtual ~RoundProtocolFactory() = default;
  virtual std::string name() const = 0;
  // Rounds after which every correct process must have decided.
  virtual int rounds(int n, int t) const = 0;
  virtual std::unique_ptr<RoundProtocol> create(int n, int t, ProcessId id,
                                                Value input) const = 0;
};

// Consensus outcome of a finished synchronous run, judged over the
// processes that survived (plain, non-uniform consensus).
struct ConsensusOutcome {
  bool all_decided = false;  // every surviving process decided
  bool agreement = true;     // surviving decisions identical
  bool validity = true;      // every decision is somebody's input
  int max_decision_round = 0;
};

ConsensusOutcome judge_outcome(const std::vector<std::optional<Value>>& decisions,
                               const std::vector<int>& decision_rounds,
                               const std::vector<Value>& inputs,
                               const std::vector<bool>& crashed);

}  // namespace lacon
