// Adopt-commit: the classical safe-agreement building block (Gafni;
// Borowsky–Gafni). Each process proposes a value and outputs a pair
// (grade, value) with grade ∈ {adopt, commit} such that
//   * if anyone commits v, everyone outputs v (adopt or commit), and
//   * if all proposals are equal, everyone commits.
// Adopt-commit is solvable wait-free — it is weaker than consensus in
// exactly the way the paper's connectivity analysis predicts: its output
// complex is connected (mixed adopt outcomes bridge the two commit
// corners), while consensus' is not.
//
// Message-passing implementation with t < n/2: two broadcast stages.
//   stage A: broadcast the proposal; await n-t; if all seen equal v,
//            vote v, else vote ⊥.
//   stage B: broadcast the vote; await n-t; if all votes are v: commit v;
//            else if some vote is v != ⊥: adopt v; else adopt own proposal.
#pragma once

#include "protocols/async_process.hpp"

namespace lacon {

enum class Grade { kAdopt, kCommit };

class AdoptCommit final : public AsyncProcess {
 public:
  AdoptCommit(int n, int t, ProcessId id, Value input);

  std::vector<Packet> start() override;
  std::vector<Packet> on_message(const Packet& packet) override;

  // decision() encodes (grade, value) as 2*value + (committed ? 1 : 0) so
  // the generic simulator can report it; use grade()/value() for clarity.
  std::optional<Value> decision() const override;
  std::optional<Grade> grade() const { return grade_; }
  std::optional<Value> value() const { return value_; }

 private:
  std::vector<Packet> broadcast(int stage, Value v);
  std::vector<Packet> advance();

  int n_;
  int t_;
  ProcessId id_;
  Value proposal_;
  int a_total_ = 0;
  int b_total_ = 0;
  bool a_mixed_ = false;
  Value a_value_;
  std::optional<Value> vote_;       // ⊥ encoded as kUndecided
  int b_bottom_ = 0;
  std::optional<Value> b_value_;    // a non-⊥ vote seen in stage B
  bool b_mixed_ = false;            // both ⊥ and non-⊥ (or two values) seen
  std::optional<Grade> grade_;
  std::optional<Value> value_;
};

std::unique_ptr<AsyncProcessFactory> adopt_commit_factory();

}  // namespace lacon
