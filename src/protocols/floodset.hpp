// FloodSet consensus (Lynch, "Distributed Algorithms" §6.2): broadcast the
// set of values seen every round; after t+1 rounds decide the minimum.
// Tolerates t crash failures in the synchronous model and decides in exactly
// t+1 rounds — the matching upper bound for Corollary 6.3.
#pragma once

#include <set>

#include "protocols/round_protocol.hpp"

namespace lacon {

class FloodSet final : public RoundProtocol {
 public:
  FloodSet(int n, int t, ProcessId id, Value input);

  std::optional<Message> broadcast(int round) override;
  void receive(int round,
               const std::vector<std::optional<Message>>& received) override;
  std::optional<Value> decision() const override { return decision_; }

  // The current value set (exposed for tests).
  const std::set<Value>& seen() const noexcept { return seen_; }

 private:
  int t_;
  std::set<Value> seen_;
  std::optional<Value> decision_;
};

std::unique_ptr<RoundProtocolFactory> floodset_factory();

}  // namespace lacon
