#include "protocols/round_protocol.hpp"

#include <algorithm>

namespace lacon {

ConsensusOutcome judge_outcome(
    const std::vector<std::optional<Value>>& decisions,
    const std::vector<int>& decision_rounds, const std::vector<Value>& inputs,
    const std::vector<bool>& crashed) {
  ConsensusOutcome outcome;
  outcome.all_decided = true;
  std::optional<Value> agreed;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (crashed[i]) continue;
    if (!decisions[i]) {
      outcome.all_decided = false;
      continue;
    }
    outcome.max_decision_round =
        std::max(outcome.max_decision_round, decision_rounds[i]);
    if (agreed && *agreed != *decisions[i]) outcome.agreement = false;
    agreed = *decisions[i];
    if (std::find(inputs.begin(), inputs.end(), *decisions[i]) ==
        inputs.end()) {
      outcome.validity = false;
    }
  }
  return outcome;
}

}  // namespace lacon
