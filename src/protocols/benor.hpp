// Ben-Or's randomized binary consensus (1983) for asynchronous message
// passing with t < n/2 crash failures.
//
// The paper's Theorem 4.2 family shows deterministic consensus is impossible
// even in the barely-asynchronous submodels; Ben-Or is the classical escape
// hatch — randomization trades the impossible worst case for termination
// with probability 1. Each phase has two stages:
//
//   report:  broadcast (phase, R, x); await n-t reports;
//            propose v if > n/2 of them carry v, else propose ⊥.
//   propose: broadcast (phase, P, prop); await n-t proposals;
//            >= t+1 equal non-⊥ values  -> decide that value;
//            >= 1 non-⊥ value           -> adopt it;
//            otherwise                   -> flip a coin.
//
// A decided process keeps responding for one extra phase so laggards can
// finish; the simulator's step bound caps runaway schedules.
#pragma once

#include <map>

#include "protocols/async_process.hpp"

namespace lacon {

class BenOr final : public AsyncProcess {
 public:
  BenOr(int n, int t, ProcessId id, Value input, Rng* rng);

  std::vector<Packet> start() override;
  std::vector<Packet> on_message(const Packet& packet) override;
  std::optional<Value> decision() const override { return decision_; }

  int phase() const noexcept { return phase_; }

 private:
  std::vector<Packet> broadcast_stage();
  std::vector<Packet> advance(std::vector<Packet> out);

  int n_;
  int t_;
  ProcessId id_;
  Rng* rng_;
  Value x_;
  Value prop_ = -1;
  int phase_ = 1;
  int stage_ = 0;  // 0 = report, 1 = propose
  bool started_ = false;
  std::optional<Value> decision_;
  // Votes per (phase, stage, value); value -1 encodes ⊥ proposals.
  std::map<std::tuple<int, int, Value>, int> counts_;
  std::map<std::pair<int, int>, int> totals_;
};

std::unique_ptr<AsyncProcessFactory> benor_factory();

}  // namespace lacon
