// Synchronous round simulator for Tier-B protocols under crash adversaries.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "protocols/round_protocol.hpp"
#include "sim/adversary.hpp"

namespace lacon {

struct SyncRunResult {
  std::vector<std::optional<Value>> decisions;
  std::vector<int> decision_rounds;  // 0 when undecided
  std::vector<bool> crashed;
  int rounds_executed = 0;
  std::size_t messages_delivered = 0;
  ConsensusOutcome outcome;
};

// Runs `factory`-created processes for up to `max_rounds` synchronous rounds
// (default: factory.rounds(n, t)) under the given crash plan. A process
// crashing in round r delivers its round-r broadcast only to the event's
// `delivered` set and neither receives nor acts from then on. The simulation
// stops early once every surviving process has decided.
SyncRunResult run_sync(const RoundProtocolFactory& factory, int n, int t,
                       const std::vector<Value>& inputs,
                       const CrashPlan& crashes, int max_rounds = -1);

}  // namespace lacon
