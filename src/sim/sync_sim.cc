#include "sim/sync_sim.hpp"

#include <algorithm>
#include <cassert>

namespace lacon {

SyncRunResult run_sync(const RoundProtocolFactory& factory, int n, int t,
                       const std::vector<Value>& inputs,
                       const CrashPlan& crashes, int max_rounds) {
  assert(static_cast<int>(inputs.size()) == n);
  if (max_rounds < 0) max_rounds = factory.rounds(n, t);

  std::vector<std::unique_ptr<RoundProtocol>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcessId i = 0; i < n; ++i) {
    procs.push_back(
        factory.create(n, t, i, inputs[static_cast<std::size_t>(i)]));
  }

  SyncRunResult result;
  result.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  result.decision_rounds.assign(static_cast<std::size_t>(n), 0);
  result.crashed.assign(static_cast<std::size_t>(n), false);

  auto crash_event = [&](ProcessId i, int round) -> const CrashEvent* {
    for (const CrashEvent& e : crashes) {
      if (e.who == i && e.round == round) return &e;
    }
    return nullptr;
  };

  for (int round = 1; round <= max_rounds; ++round) {
    result.rounds_executed = round;

    // Gather broadcasts from processes alive at the start of the round.
    std::vector<std::optional<Message>> sent(static_cast<std::size_t>(n));
    for (ProcessId i = 0; i < n; ++i) {
      if (result.crashed[static_cast<std::size_t>(i)]) continue;
      sent[static_cast<std::size_t>(i)] =
          procs[static_cast<std::size_t>(i)]->broadcast(round);
    }

    // Deliver, applying this round's crash events.
    for (ProcessId i = 0; i < n; ++i) {
      if (result.crashed[static_cast<std::size_t>(i)]) continue;
      if (crash_event(i, round) != nullptr) continue;  // crashes mid-round
      std::vector<std::optional<Message>> received(
          static_cast<std::size_t>(n));
      for (ProcessId s = 0; s < n; ++s) {
        const auto su = static_cast<std::size_t>(s);
        if (!sent[su]) continue;
        if (s != i) {
          const CrashEvent* e = crash_event(s, round);
          if (e != nullptr && !e->delivered.contains(i)) continue;
        }
        received[su] = sent[su];
        ++result.messages_delivered;
      }
      procs[static_cast<std::size_t>(i)]->receive(round, received);
      const auto d = procs[static_cast<std::size_t>(i)]->decision();
      if (d && !result.decisions[static_cast<std::size_t>(i)]) {
        result.decisions[static_cast<std::size_t>(i)] = d;
        result.decision_rounds[static_cast<std::size_t>(i)] = round;
      }
    }

    // Mark this round's crashes.
    for (const CrashEvent& e : crashes) {
      if (e.round == round) result.crashed[static_cast<std::size_t>(e.who)] = true;
    }

    // Early exit: all survivors decided.
    bool done = true;
    for (ProcessId i = 0; i < n; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (!result.crashed[iu] && !result.decisions[iu]) done = false;
    }
    if (done) break;
  }

  result.outcome = judge_outcome(result.decisions, result.decision_rounds,
                                 inputs, result.crashed);
  return result;
}

}  // namespace lacon
