#include "sim/adversary.hpp"

#include <cassert>

namespace lacon {

CrashPlan no_crashes() { return {}; }

CrashPlan random_crashes(int n, int t, int rounds, std::uint64_t seed) {
  Rng rng(seed);
  CrashPlan plan;
  ProcessSet crashed;
  const int count = rng.int_below(t + 1);
  for (int c = 0; c < count; ++c) {
    ProcessId who = rng.int_below(n);
    while (crashed.contains(who)) who = (who + 1) % n;
    crashed.insert(who);
    const int round = 1 + rng.int_below(rounds);
    const ProcessSet delivered(rng.next() & (ProcessSet::all(n).mask()));
    plan.push_back(CrashEvent{who, round, delivered});
  }
  return plan;
}

CrashPlan hiding_chain(int n, int t) {
  assert(t < n);
  CrashPlan plan;
  for (int c = 0; c < t; ++c) {
    plan.push_back(
        CrashEvent{c, c + 1, ProcessSet::single((c + 1) % n)});
  }
  return plan;
}

std::vector<CrashPlan> all_crash_plans(int n, int max_crashes, int rounds) {
  std::vector<CrashPlan> plans = {{}};
  // Grow plans crash by crash; each new crash uses a process with a larger
  // id than the previous ones (per-process crash events are unordered in
  // the plan, but rounds may coincide, so order by process id to avoid
  // duplicates).
  std::vector<CrashPlan> frontier = {{}};
  for (int c = 0; c < max_crashes; ++c) {
    std::vector<CrashPlan> next;
    for (const CrashPlan& base : frontier) {
      const ProcessId start = base.empty() ? 0 : base.back().who + 1;
      for (ProcessId who = start; who < n; ++who) {
        for (int round = 1; round <= rounds; ++round) {
          const std::uint64_t all = ProcessSet::all(n).mask();
          for (std::uint64_t mask = 0; mask <= all; ++mask) {
            if ((mask | all) != all) continue;
            CrashPlan plan = base;
            plan.push_back(CrashEvent{who, round, ProcessSet(mask)});
            next.push_back(plan);
          }
        }
      }
    }
    plans.insert(plans.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return plans;
}

}  // namespace lacon
