#include "sim/async_sim.hpp"

#include <cassert>

namespace lacon {
namespace {

class RandomScheduler final : public AsyncScheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::optional<std::size_t> pick(const std::vector<Packet>& pending) override {
    return rng_.below(pending.size());
  }

 private:
  Rng rng_;
};

class StarveSenderScheduler final : public AsyncScheduler {
 public:
  StarveSenderScheduler(ProcessId victim, std::uint64_t seed)
      : victim_(victim), rng_(seed) {}
  std::optional<std::size_t> pick(const std::vector<Packet>& pending) override {
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].from != victim_) eligible.push_back(i);
    }
    if (eligible.empty()) return std::nullopt;  // stall forever
    return eligible[rng_.below(eligible.size())];
  }

 private:
  ProcessId victim_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<AsyncScheduler> random_scheduler(std::uint64_t seed) {
  return std::make_unique<RandomScheduler>(seed);
}

std::unique_ptr<AsyncScheduler> starve_sender_scheduler(ProcessId victim,
                                                        std::uint64_t seed) {
  return std::make_unique<StarveSenderScheduler>(victim, seed);
}

AsyncRunResult run_async(const AsyncProcessFactory& factory, int n, int t,
                         const std::vector<Value>& inputs,
                         AsyncScheduler& scheduler, Rng& protocol_rng,
                         const std::vector<long>& crash_after,
                         std::size_t max_deliveries) {
  assert(static_cast<int>(inputs.size()) == n);
  assert(static_cast<int>(crash_after.size()) == n);

  std::vector<std::unique_ptr<AsyncProcess>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcessId i = 0; i < n; ++i) {
    procs.push_back(factory.create(n, t, i, inputs[static_cast<std::size_t>(i)],
                                   &protocol_rng));
  }

  AsyncRunResult result;
  result.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  result.crashed.assign(static_cast<std::size_t>(n), false);

  auto is_crashed = [&](ProcessId i) {
    const long limit = crash_after[static_cast<std::size_t>(i)];
    return limit >= 0 && static_cast<long>(result.deliveries) >= limit;
  };

  std::vector<Packet> pending;
  for (ProcessId i = 0; i < n; ++i) {
    if (is_crashed(i)) continue;
    auto out = procs[static_cast<std::size_t>(i)]->start();
    pending.insert(pending.end(), out.begin(), out.end());
  }

  auto all_alive_decided = [&]() {
    for (ProcessId i = 0; i < n; ++i) {
      if (result.crashed[static_cast<std::size_t>(i)] || is_crashed(i)) {
        result.crashed[static_cast<std::size_t>(i)] = true;
        continue;
      }
      if (!result.decisions[static_cast<std::size_t>(i)]) return false;
    }
    return true;
  };

  while (!pending.empty() && result.deliveries < max_deliveries) {
    if (all_alive_decided()) {
      result.all_alive_decided = true;
      return result;
    }
    const std::optional<std::size_t> choice = scheduler.pick(pending);
    if (!choice) {
      result.stalled = true;
      return result;
    }
    const Packet packet = pending[*choice];
    pending.erase(pending.begin() + static_cast<long>(*choice));
    ++result.deliveries;
    if (is_crashed(packet.to)) {
      result.crashed[static_cast<std::size_t>(packet.to)] = true;
      continue;
    }
    auto out = procs[static_cast<std::size_t>(packet.to)]->on_message(packet);
    pending.insert(pending.end(), out.begin(), out.end());
    const auto d = procs[static_cast<std::size_t>(packet.to)]->decision();
    if (d) result.decisions[static_cast<std::size_t>(packet.to)] = d;
  }

  result.all_alive_decided = all_alive_decided();
  return result;
}

}  // namespace lacon
