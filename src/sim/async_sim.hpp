// Asynchronous event simulator: a pending-packet pool drained one delivery
// at a time by a pluggable scheduler. This is the substrate on which Ben-Or
// demonstrates the randomized escape from the FLP-style impossibilities, and
// on which the starvation scheduler wedges the deterministic
// rotating-coordinator protocol.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "protocols/async_process.hpp"
#include "util/rng.hpp"

namespace lacon {

class AsyncScheduler {
 public:
  virtual ~AsyncScheduler() = default;
  // Picks the index of the next pending packet to deliver, or nullopt to
  // refuse (the adversary stalls; the run ends). `pending` is non-empty.
  virtual std::optional<std::size_t> pick(
      const std::vector<Packet>& pending) = 0;
};

// Delivers a uniformly random pending packet (a fair schedule with
// probability 1).
std::unique_ptr<AsyncScheduler> random_scheduler(std::uint64_t seed);

// Starves every packet *sent by* `victim`: delivers any other packet first
// and stalls when only the victim's packets remain. Models an unboundedly
// slow process/link — exactly the asynchrony the impossibility proofs
// exploit.
std::unique_ptr<AsyncScheduler> starve_sender_scheduler(ProcessId victim,
                                                        std::uint64_t seed);

struct AsyncRunResult {
  std::vector<std::optional<Value>> decisions;
  std::vector<bool> crashed;
  std::size_t deliveries = 0;
  bool all_alive_decided = false;
  bool stalled = false;  // the scheduler refused while packets were pending
};

// Runs the protocol to completion, a step bound, or a scheduler stall.
// `crash_after[i]` stops process i after that many global deliveries
// (-1 = never crashes); packets to a crashed process are dropped.
AsyncRunResult run_async(const AsyncProcessFactory& factory, int n, int t,
                         const std::vector<Value>& inputs,
                         AsyncScheduler& scheduler, Rng& protocol_rng,
                         const std::vector<long>& crash_after,
                         std::size_t max_deliveries);

}  // namespace lacon
