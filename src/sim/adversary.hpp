// Crash adversaries for the synchronous round simulator.
//
// A crash plan is a list of events (who, round, delivered): the process
// crashes while broadcasting in `round`, delivering its final message only
// to `delivered`; it is silent (and stopped) afterwards. The generators
// below produce the standard adversaries: none, seeded-random, one crash
// per round, and the value-hiding chain that forces FloodSet/EIG to the
// full t+1 rounds (the executable counterpart of Corollary 6.3).
#pragma once

#include <vector>

#include "core/types.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace lacon {

struct CrashEvent {
  ProcessId who = 0;
  int round = 1;  // 1-based round of the partial broadcast
  ProcessSet delivered;

  bool operator==(const CrashEvent&) const = default;
};

using CrashPlan = std::vector<CrashEvent>;

// No failures.
CrashPlan no_crashes();

// Up to t crashes at random rounds with random partial-delivery sets.
CrashPlan random_crashes(int n, int t, int rounds, std::uint64_t seed);

// The value-hiding chain: process 0 (which should hold the minimum input)
// crashes in round 1 delivering only to process 1; process 1 crashes in
// round 2 delivering only to process 2; ... ; process t-1 crashes in round t
// delivering only to process t. The minimum value stays known to exactly one
// alive process through round t, so no protocol can safely decide before
// round t+1.
CrashPlan hiding_chain(int n, int t);

// All crash plans with at most `max_crashes` crashes within `rounds` rounds,
// where every crash delivers to an arbitrary subset. Exponential; intended
// for exhaustive testing at n <= 4, rounds <= 3.
std::vector<CrashPlan> all_crash_plans(int n, int max_crashes, int rounds);

}  // namespace lacon
