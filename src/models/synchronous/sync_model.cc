#include "models/synchronous/sync_model.hpp"

#include <cassert>
#include <functional>

namespace lacon {

SyncModel::SyncModel(int n, int t, const DecisionRule& rule,
                     std::vector<std::vector<Value>> initial_inputs,
                     SyncLayering layering)
    : LayeredModel(n, rule, std::move(initial_inputs)),
      t_(t),
      layering_(layering) {
  assert(t >= 1 && t <= n - 2);
}

ProcessSet SyncModel::omission_evidence(ViewId view) const {
  {
    std::lock_guard<std::mutex> lock(evidence_mu_);
    auto it = evidence_cache_.find(view);
    if (it != evidence_cache_.end()) return ProcessSet(it->second);
  }
  // The model is non-const in spirit (caches layers) but view lookup is
  // read-only; const_cast keeps failed_at const as the interface requires.
  const ViewArena& arena = const_cast<SyncModel*>(this)->views();
  ProcessSet evidence;
  const ViewNode& node = arena.node(view);
  for (const Obs& o : node.obs) {
    if (o.view == kNoView) evidence.insert(o.source);
  }
  // Compute outside the lock: the recursion below re-enters this function,
  // and racing recomputation is idempotent (the result is a pure function
  // of the view).
  if (node.prev != kNoView) {
    evidence = evidence | omission_evidence(node.prev);
  }
  std::lock_guard<std::mutex> lock(evidence_mu_);
  evidence_cache_.emplace(view, evidence.mask());
  return evidence;
}

ProcessSet SyncModel::failed_at(StateId x) const {
  const StateRef s = state(x);
  ProcessSet failed;
  for (ViewId v : s.locals) failed = failed | omission_evidence(v);
  return failed;
}

StateId SyncModel::apply(StateId x, ProcessId j, int k) {
  assert(j >= 0 && j < n());
  assert(k >= 0 && k <= n());
  std::vector<int> losses(static_cast<std::size_t>(n()), 0);
  if (k >= 1) losses[static_cast<std::size_t>(j)] = k;
  return apply_multi(x, losses);
}

StateId SyncModel::apply_multi(StateId x, const std::vector<int>& losses) {
  assert(static_cast<int>(losses.size()) == n());
  const StateRef s = state(x);
  const ProcessSet failed = failed_at(x);
#ifndef NDEBUG
  int newly = 0;
  for (ProcessId j = 0; j < n(); ++j) {
    if (losses[static_cast<std::size_t>(j)] >= 1) {
      assert(!failed.contains(j));
      ++newly;
    }
  }
  assert(failed.size() + newly <= t_);
#endif

  GlobalState next;
  // Env constant; the failure record lives in the views.
  next.env.assign(s.env.begin(), s.env.end());
  next.locals.reserve(static_cast<std::size_t>(n()));
  next.decisions.reserve(static_cast<std::size_t>(n()));
  for (ProcessId i = 0; i < n(); ++i) {
    std::vector<Obs> obs;
    obs.reserve(static_cast<std::size_t>(n() - 1));
    for (ProcessId sender = 0; sender < n(); ++sender) {
      if (sender == i) continue;
      const bool lost = failed.contains(sender) ||
                        (i < losses[static_cast<std::size_t>(sender)]);
      obs.push_back(
          Obs{sender,
              lost ? kNoView : s.locals[static_cast<std::size_t>(sender)]});
    }
    const ViewId view =
        views().extend(s.locals[static_cast<std::size_t>(i)], std::move(obs));
    next.locals.push_back(view);
    next.decisions.push_back(
        updated_decision(i, s.decisions[static_cast<std::size_t>(i)], view));
  }
  return intern(std::move(next));
}

std::vector<StateId> SyncModel::one_per_round_layer(StateId x) {
  const ProcessSet failed = failed_at(x);
  std::vector<StateId> succ;
  // The failure-free round is always available (and is the unique successor
  // once t processes have failed).
  succ.push_back(apply(x, 0, 0));
  if (failed.size() < t_) {
    for (ProcessId j = 0; j < n(); ++j) {
      if (failed.contains(j)) continue;
      for (int k = 1; k <= n(); ++k) {
        succ.push_back(apply(x, j, k));
      }
    }
  }
  return succ;
}

std::vector<StateId> SyncModel::multi_failure_layer(StateId x) {
  const ProcessSet failed = failed_at(x);
  const int budget = t_ - failed.size();
  // Enumerate every assignment of a prefix-loss k in 0..n to each non-failed
  // process, with at most `budget` non-zero entries.
  std::vector<StateId> succ;
  std::vector<int> losses(static_cast<std::size_t>(n()), 0);
  std::vector<ProcessId> live;
  for (ProcessId j = 0; j < n(); ++j) {
    if (!failed.contains(j)) live.push_back(j);
  }
  std::function<void(std::size_t, int)> recurse = [&](std::size_t idx,
                                                      int used) {
    if (idx == live.size()) {
      succ.push_back(apply_multi(x, losses));
      return;
    }
    recurse(idx + 1, used);  // this process does not newly fail
    if (used < budget) {
      for (int k = 1; k <= n(); ++k) {
        losses[static_cast<std::size_t>(live[idx])] = k;
        recurse(idx + 1, used + 1);
      }
      losses[static_cast<std::size_t>(live[idx])] = 0;
    }
  };
  recurse(0, 0);
  return succ;
}

std::vector<StateId> SyncModel::compute_layer(StateId x) {
  return layering_ == SyncLayering::kOnePerRound ? one_per_round_layer(x)
                                                 : multi_failure_layer(x);
}

}  // namespace lacon
