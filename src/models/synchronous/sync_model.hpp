// The t-resilient synchronous message-passing model of Section 6, with the
// layering S^t.
//
// Failure semantics (as assumed by the paper): in the first round in which a
// process fails the environment may block an arbitrary subset of its
// messages — S^t restricts that subset to a prefix [k]; from the next round
// on the process is silenced forever. A silenced process keeps receiving and
// updating its local state (sending-omission semantics) but its messages
// never arrive.
//
//   S^t(x) = S1-style { x(j,[k]) }                  if fewer than t failed,
//            { the unique failure-free successor }   otherwise.
//
// Representation note. The paper assumes "the environment's local state
// keeps track of the processes that have failed". In the S^t submodel that
// record is *derivable* from the process local states: an omission by j in
// round r is visible as a missing message in some receiver's view, and
// S^t-runs silence j forever from then on, so j is faulty in every run
// through such a state — exactly the paper's "failed at x". We therefore
// keep the environment component constant and compute failed_at from the
// views. Storing a separate env copy would only refine state equality and
// destroy the similarity connectivity of layers that Lemmas 6.1/6.2 rely on
// (e.g. x(j,[0]) = x(j',[0]) and x(j,[0]) ~s x(j,[1]) would both fail).
//
// Once t processes have failed the extension from a state is unique, which
// is why such states are univalent (proof of Lemma 6.2).
#pragma once

#include <mutex>
#include <unordered_map>

#include "core/model.hpp"

namespace lacon {

// Which successor function the model exposes as its layering.
//
//  * kOnePerRound — the paper's S^t: at most one process newly fails per
//    layer. This is the layering behind the t+1 lower bound (Section 6).
//  * kMultiFailure — the full synchronous round: any set of processes may
//    newly fail (each losing a prefix [k] of its messages) as long as the
//    total stays within t. The diameter analysis of Lemma 7.6/Theorem 7.7
//    needs this one: its crash-display premise silences a process in *both*
//    runs of a pair whose failure records already differ, i.e. two new
//    failures in one round — under literal S^t the round-m state sets
//    disconnect for m >= 2 (measured in bench_t5_diameter), under the full
//    round successor they stay similarity connected as the paper asserts.
enum class SyncLayering { kOnePerRound, kMultiFailure };

class SyncModel final : public LayeredModel {
 public:
  // Requires 1 <= t <= n-2 (so n >= 3), as in Section 6.
  SyncModel(int n, int t, const DecisionRule& rule,
            std::vector<std::vector<Value>> initial_inputs = {},
            SyncLayering layering = SyncLayering::kOnePerRound);

  std::string name() const override {
    return "Sync(t=" + std::to_string(t_) + ")/S^t";
  }

  int t() const noexcept { return t_; }
  int max_faulty() const override { return t_; }

  // Deliberately kTrivial: S^t loses message *prefixes* [k], an
  // index-dependent action set that relabeling does not preserve.
  sym::SymmetryClass symmetry() const override {
    return sym::SymmetryClass::kTrivial;
  }

  ProcessSet failed_at(StateId x) const override;

  // One synchronous round from x in which, additionally to the silencing of
  // already-failed processes, the messages of j to 0..k-1 are lost (and j
  // thereby becomes failed when k >= 1). Pass k = 0 for a failure-free
  // round. Requires that j is non-failed at x when k >= 1.
  StateId apply(StateId x, ProcessId j, int k);

  // One synchronous round in which every process j with losses[j] = k >= 1
  // newly fails, losing its messages to 0..k-1 (in addition to the
  // silencing of already-failed processes). Generalizes apply().
  StateId apply_multi(StateId x, const std::vector<int>& losses);

 protected:
  std::vector<StateId> compute_layer(StateId x) override;

 private:
  // The senders whose omissions are recorded anywhere in this view's
  // history (its own chain of phases). Memoized; safe to call from
  // concurrent compute_layer() invocations.
  ProcessSet omission_evidence(ViewId view) const;

  std::vector<StateId> one_per_round_layer(StateId x);
  std::vector<StateId> multi_failure_layer(StateId x);

  int t_;
  SyncLayering layering_;
  mutable std::mutex evidence_mu_;
  mutable std::unordered_map<ViewId, std::uint64_t> evidence_cache_;
};

}  // namespace lacon
