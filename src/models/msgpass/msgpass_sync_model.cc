#include "models/msgpass/msgpass_sync_model.hpp"

#include <algorithm>
#include <cassert>

#include "models/msgpass/msgpass_model.hpp"
#include "runtime/simd_dispatch.hpp"

namespace lacon {
namespace {

// Collects and removes all messages addressed to i, returning canonical
// observations.
std::vector<Obs> take_mailbox(std::vector<std::int64_t>& transit,
                              ProcessId i) {
  std::vector<Obs> obs;
  std::vector<std::int64_t> rest;
  rest.reserve(transit.size());
  for (std::int64_t m : transit) {
    if (message_receiver(m) == i) {
      obs.push_back(Obs{message_sender(m), message_view(m)});
    } else {
      rest.push_back(m);
    }
  }
  transit = std::move(rest);
  std::sort(obs.begin(), obs.end(), [](const Obs& l, const Obs& r) {
    return l.source != r.source ? l.source < r.source : l.view < r.view;
  });
  return obs;
}

}  // namespace

MsgPassSyncModel::MsgPassSyncModel(
    int n, const DecisionRule& rule,
    std::vector<std::vector<Value>> initial_inputs)
    : LayeredModel(n, rule, std::move(initial_inputs)) {}

StateId MsgPassSyncModel::apply_timed(StateId x, ProcessId j, int k) {
  assert(j >= 0 && j < n());
  assert(k >= 0 && k <= n());
  const StateRef s = state(x);
  std::vector<std::int64_t> transit(s.env.begin(), s.env.end());
  std::vector<ViewId> locals(s.locals.begin(), s.locals.end());
  std::vector<Value> decisions(s.decisions.begin(), s.decisions.end());

  auto do_receive = [&](ProcessId i) {
    const ViewId view =
        views().extend(locals[static_cast<std::size_t>(i)],
                       take_mailbox(transit, i));
    locals[static_cast<std::size_t>(i)] = view;
    decisions[static_cast<std::size_t>(i)] =
        updated_decision(i, decisions[static_cast<std::size_t>(i)], view);
  };
  auto do_send = [&](ProcessId i) {
    // Message content is the pre-phase view (see msgpass_model.cc).
    const ViewId pre = s.locals[static_cast<std::size_t>(i)];
    for (ProcessId dest = 0; dest < n(); ++dest) {
      if (dest == i) continue;
      transit.push_back(pack_message(i, dest, pre));
    }
  };

  // S1: the proper processes send.
  for (ProcessId i = 0; i < n(); ++i) {
    if (i != j) do_send(i);
  }
  // R1: the proper processes with index < k receive.
  for (ProcessId i = 0; i < n(); ++i) {
    if (i != j && i < k) do_receive(i);
  }
  // S2: the slow process sends.
  do_send(j);
  // R2: j and the proper processes with index >= k receive.
  for (ProcessId i = 0; i < n(); ++i) {
    if (i == j || i >= k) do_receive(i);
  }

  std::sort(transit.begin(), transit.end());
  GlobalState next;
  next.env = std::move(transit);
  next.locals = std::move(locals);
  next.decisions = std::move(decisions);
  return intern(std::move(next));
}

StateId MsgPassSyncModel::apply_absent(StateId x, ProcessId j) {
  assert(j >= 0 && j < n());
  const StateRef s = state(x);
  std::vector<std::int64_t> transit(s.env.begin(), s.env.end());
  std::vector<ViewId> locals(s.locals.begin(), s.locals.end());
  std::vector<Value> decisions(s.decisions.begin(), s.decisions.end());

  for (ProcessId i = 0; i < n(); ++i) {
    if (i == j) continue;
    const ViewId pre = s.locals[static_cast<std::size_t>(i)];
    for (ProcessId dest = 0; dest < n(); ++dest) {
      if (dest == i) continue;
      transit.push_back(pack_message(i, dest, pre));
    }
  }
  for (ProcessId i = 0; i < n(); ++i) {
    if (i == j) continue;
    const ViewId view =
        views().extend(locals[static_cast<std::size_t>(i)],
                       take_mailbox(transit, i));
    locals[static_cast<std::size_t>(i)] = view;
    decisions[static_cast<std::size_t>(i)] =
        updated_decision(i, decisions[static_cast<std::size_t>(i)], view);
  }

  std::sort(transit.begin(), transit.end());
  GlobalState next;
  next.env = std::move(transit);
  next.locals = std::move(locals);
  next.decisions = std::move(decisions);
  return intern(std::move(next));
}

bool MsgPassSyncModel::agree_modulo(StateId x, StateId y, ProcessId j) const {
  // Same mailbox attribution as the permutation-layering model: the
  // messages addressed to j belong to j's local state.
  const StateRef sx = state(x);
  const StateRef sy = state(y);
  const simd::Kernels& k = simd::active();
  const auto nn = static_cast<std::size_t>(n());
  const auto skip = static_cast<std::size_t>(j);
  if (!k.lanes_equal_skip(sx.locals.data(), sy.locals.data(), nn, skip) ||
      !k.lanes_equal_skip(sx.decisions.data(), sy.decisions.data(), nn,
                          skip)) {
    return false;
  }
  auto it_x = sx.env.begin();
  auto it_y = sy.env.begin();
  while (true) {
    while (it_x != sx.env.end() && message_receiver(*it_x) == j) ++it_x;
    while (it_y != sy.env.end() && message_receiver(*it_y) == j) ++it_y;
    if (it_x == sx.env.end() || it_y == sy.env.end()) break;
    if (*it_x != *it_y) return false;
    ++it_x;
    ++it_y;
  }
  while (it_x != sx.env.end() && message_receiver(*it_x) == j) ++it_x;
  while (it_y != sy.env.end() && message_receiver(*it_y) == j) ++it_y;
  return it_x == sx.env.end() && it_y == sy.env.end();
}

std::uint64_t MsgPassSyncModel::similarity_fingerprint(StateId x,
                                                       ProcessId j) const {
  return mailbox_masked_fingerprint(state(x), n(), j);
}

void MsgPassSyncModel::fingerprint_row_into(StateId x,
                                            std::uint64_t* out) const {
  // Mailbox masking makes the env hash j-dependent; batch the row per
  // erased coordinate (see MsgPassModel::fingerprint_row_into).
  const StateRef s = state(x);
  for (ProcessId j = 0; j < n(); ++j) {
    out[static_cast<std::size_t>(j)] = mailbox_masked_fingerprint(s, n(), j);
  }
}

void MsgPassSyncModel::sym_env_key(const StateRef& s, sym::Relabeling& rel,
                                   std::vector<std::uint64_t>* out) const {
  // kTrivial model, identity relabeling only (canonical signatures): key
  // each in-transit message's payload view structurally (id-free).
  for (const std::int64_t m : s.env) {
    out->push_back(static_cast<std::uint64_t>(message_sender(m)));
    out->push_back(static_cast<std::uint64_t>(message_receiver(m)));
    const auto k = rel.rewrite_key(message_view(m));
    out->push_back(k.first);
    out->push_back(k.second);
  }
}

std::string MsgPassSyncModel::env_to_string(StateId x) const {
  return transit_env_to_string(views(), state(x));
}

std::vector<StateId> MsgPassSyncModel::compute_layer(StateId x) {
  std::vector<StateId> succ;
  succ.reserve(static_cast<std::size_t>(n() * (n() + 2)));
  for (ProcessId j = 0; j < n(); ++j) {
    for (int k = 0; k <= n(); ++k) {
      succ.push_back(apply_timed(x, j, k));
    }
    succ.push_back(apply_absent(x, j));
  }
  return succ;
}

}  // namespace lacon
