#include "models/msgpass/msgpass_model.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "runtime/simd_dispatch.hpp"
#include "util/permutations.hpp"

namespace lacon {

std::int64_t pack_message(ProcessId sender, ProcessId receiver, ViewId view) {
  return (static_cast<std::int64_t>(sender) << 40) |
         (static_cast<std::int64_t>(receiver) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(view));
}

ProcessId message_sender(std::int64_t packed) {
  return static_cast<ProcessId>(packed >> 40);
}

ProcessId message_receiver(std::int64_t packed) {
  return static_cast<ProcessId>((packed >> 32) & 0xff);
}

ViewId message_view(std::int64_t packed) {
  return static_cast<ViewId>(packed & 0xffffffffLL);
}

std::uint64_t mailbox_masked_fingerprint(const StateRef& s, int n,
                                         ProcessId j) {
  std::uint64_t h = 0x73696d666970ULL;  // same seed as the base fingerprint
  std::uint64_t kept = 0;
  for (std::int64_t m : s.env) {
    if (message_receiver(m) == j) continue;
    h = hash_combine(h, static_cast<std::uint64_t>(m));
    ++kept;
  }
  // Trailing length tag: equal filtered sequences (content and count) are
  // exactly what agree_modulo's filtered linear comparison accepts.
  h = hash_combine(h, kept);
  for (ProcessId i = 0; i < n; ++i) {
    if (i == j) continue;
    const auto idx = static_cast<std::size_t>(i);
    h = hash_combine(h, static_cast<std::uint64_t>(s.locals[idx]));
    h = hash_combine(h, static_cast<std::uint64_t>(s.decisions[idx]));
  }
  return h;
}

namespace {

// All layer actions of the permutation layering for n processes.
std::vector<Schedule> build_schedules(int n) {
  std::vector<Schedule> out;
  const std::vector<Permutation> perms = all_permutations(n);

  // Type 1: full sequential permutations.
  for (const Permutation& p : perms) {
    Schedule s;
    for (ProcessId q : p) s.push_back(SchedGroup{q, -1});
    out.push_back(std::move(s));
  }
  // Type 2: one process skips the layer.
  for (const Permutation& p : all_drop_last(n)) {
    Schedule s;
    for (ProcessId q : p) s.push_back(SchedGroup{q, -1});
    out.push_back(std::move(s));
  }
  // Type 3: one adjacent concurrent pair. The pair is unordered; enumerate
  // each once by requiring p[k] < p[k+1].
  for (const Permutation& p : perms) {
    for (int k = 0; k + 1 < n; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      if (p[ku] > p[ku + 1]) continue;
      Schedule s;
      for (int pos = 0; pos < n; ++pos) {
        const auto posu = static_cast<std::size_t>(pos);
        if (pos == k) {
          s.push_back(SchedGroup{p[posu], p[posu + 1]});
          ++pos;  // consumed two entries
        } else {
          s.push_back(SchedGroup{p[posu], -1});
        }
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace

MsgPassModel::MsgPassModel(int n, const DecisionRule& rule,
                           std::vector<std::vector<Value>> initial_inputs)
    : LayeredModel(n, rule, std::move(initial_inputs)),
      schedules_(build_schedules(n)) {}

StateId MsgPassModel::apply_schedule(StateId x, const Schedule& schedule) {
  const StateRef s = state(x);
  // Mutable copy of the in-transit multiset.
  std::vector<std::int64_t> transit(s.env.begin(), s.env.end());
  std::vector<ViewId> locals(s.locals.begin(), s.locals.end());
  std::vector<Value> decisions(s.decisions.begin(), s.decisions.end());

  auto do_receives = [&](ProcessId i) {
    // Collect and remove all messages addressed to i, in canonical order.
    std::vector<Obs> obs;
    std::vector<std::int64_t> rest;
    rest.reserve(transit.size());
    for (std::int64_t m : transit) {
      if (message_receiver(m) == i) {
        obs.push_back(Obs{message_sender(m), message_view(m)});
      } else {
        rest.push_back(m);
      }
    }
    transit = std::move(rest);
    std::sort(obs.begin(), obs.end(), [](const Obs& l, const Obs& r) {
      return l.source != r.source ? l.source < r.source : l.view < r.view;
    });
    return obs;
  };
  auto do_phase_update = [&](ProcessId i, std::vector<Obs> obs) {
    const ViewId view =
        views().extend(locals[static_cast<std::size_t>(i)], std::move(obs));
    locals[static_cast<std::size_t>(i)] = view;
    decisions[static_cast<std::size_t>(i)] = updated_decision(
        i, decisions[static_cast<std::size_t>(i)], view);
  };
  // The message content of a phase is the sender's view at the *start* of
  // the phase — the exact analogue of the shared-memory local phase, where
  // the (at most one) write precedes the reads and therefore carries the
  // pre-phase state. This is what makes the paper's similarity-chain claims
  // of Section 5.1 hold: with post-delivery content, a re-ordered pair would
  // change the payloads received by every later-scheduled process.
  auto do_sends = [&](ProcessId i, ViewId pre_phase_view) {
    for (ProcessId dest = 0; dest < n(); ++dest) {
      if (dest == i) continue;
      transit.push_back(pack_message(i, dest, pre_phase_view));
    }
  };

  for (const SchedGroup& group : schedule) {
    if (!group.pair()) {
      const ViewId pre_a = locals[static_cast<std::size_t>(group.a)];
      do_phase_update(group.a, do_receives(group.a));
      do_sends(group.a, pre_a);
    } else {
      // Concurrent pair: both receive before either sends.
      const ViewId pre_a = locals[static_cast<std::size_t>(group.a)];
      const ViewId pre_b = locals[static_cast<std::size_t>(group.b)];
      std::vector<Obs> obs_a = do_receives(group.a);
      std::vector<Obs> obs_b = do_receives(group.b);
      do_phase_update(group.a, std::move(obs_a));
      do_phase_update(group.b, std::move(obs_b));
      do_sends(group.a, pre_a);
      do_sends(group.b, pre_b);
    }
  }

  std::sort(transit.begin(), transit.end());
  GlobalState next;
  next.env = std::move(transit);
  next.locals = std::move(locals);
  next.decisions = std::move(decisions);
  return intern(std::move(next));
}

bool MsgPassModel::agree_modulo(StateId x, StateId y, ProcessId j) const {
  const StateRef sx = state(x);
  const StateRef sy = state(y);
  const simd::Kernels& k = simd::active();
  const auto nn = static_cast<std::size_t>(n());
  const auto skip = static_cast<std::size_t>(j);
  if (!k.lanes_equal_skip(sx.locals.data(), sy.locals.data(), nn, skip) ||
      !k.lanes_equal_skip(sx.decisions.data(), sy.decisions.data(), nn,
                          skip)) {
    return false;
  }
  // The messages addressed to j form j's mailbox and belong to j's local
  // state; everything else in transit must coincide. Both encodings are
  // sorted, so a filtered linear comparison suffices.
  auto it_x = sx.env.begin();
  auto it_y = sy.env.begin();
  while (true) {
    while (it_x != sx.env.end() && message_receiver(*it_x) == j) ++it_x;
    while (it_y != sy.env.end() && message_receiver(*it_y) == j) ++it_y;
    if (it_x == sx.env.end() || it_y == sy.env.end()) break;
    if (*it_x != *it_y) return false;
    ++it_x;
    ++it_y;
  }
  return it_x == sx.env.end() && it_y == sy.env.end();
}

std::uint64_t MsgPassModel::similarity_fingerprint(StateId x,
                                                   ProcessId j) const {
  return mailbox_masked_fingerprint(state(x), n(), j);
}

void MsgPassModel::fingerprint_row_into(StateId x, std::uint64_t* out) const {
  // The mailbox masking makes the env contribution j-dependent, so the
  // one-pass lane kernel of the base class does not apply; the row is still
  // published in one batch, just hashed per erased coordinate.
  const StateRef s = state(x);
  for (ProcessId j = 0; j < n(); ++j) {
    out[static_cast<std::size_t>(j)] = mailbox_masked_fingerprint(s, n(), j);
  }
}

std::string transit_env_to_string(const ViewArena& views, const StateRef& s) {
  std::string out;
  for (std::int64_t m : s.env) {
    out += std::to_string(message_sender(m));
    out += "->";
    out += std::to_string(message_receiver(m));
    out += ':';
    out += views.to_string(message_view(m));
    out += ',';
  }
  return out;
}

std::string MsgPassModel::env_to_string(StateId x) const {
  return transit_env_to_string(views(), state(x));
}

void MsgPassModel::sym_env_key(const StateRef& s, sym::Relabeling& rel,
                               std::vector<std::uint64_t>* out) const {
  // Key of the relabeled in-transit multiset: (sender', receiver', 128-bit
  // payload key) tuples in sorted order — id-free, so equal relabeled
  // multisets produce equal keys regardless of interning schedule.
  std::vector<std::array<std::uint64_t, 3>> tuples;
  tuples.reserve(s.env.size());
  for (const std::int64_t m : s.env) {
    const auto k = rel.rewrite_key(message_view(m));
    const auto endpoints =
        (static_cast<std::uint64_t>(rel.new_of(message_sender(m))) << 8) |
        static_cast<std::uint64_t>(rel.new_of(message_receiver(m)));
    tuples.push_back({endpoints, k.first, k.second});
  }
  std::sort(tuples.begin(), tuples.end());
  for (const auto& t : tuples) {
    out->push_back(t[0]);
    out->push_back(t[1]);
    out->push_back(t[2]);
  }
}

std::vector<std::int64_t> MsgPassModel::sym_permute_env(
    const StateRef& s, sym::Relabeling& rel) const {
  std::vector<std::int64_t> transit;
  transit.reserve(s.env.size());
  for (const std::int64_t m : s.env) {
    transit.push_back(pack_message(rel.new_of(message_sender(m)),
                                   rel.new_of(message_receiver(m)),
                                   rel.rewrite(message_view(m))));
  }
  std::sort(transit.begin(), transit.end());
  return transit;
}

std::vector<StateId> MsgPassModel::compute_layer(StateId x) {
  std::vector<StateId> succ;
  succ.reserve(schedules_.size());
  for (const Schedule& schedule : schedules_) {
    succ.push_back(apply_schedule(x, schedule));
  }
  return succ;
}

}  // namespace lacon
