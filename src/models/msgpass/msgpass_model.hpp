// The asynchronous message-passing model with the permutation layering S^per
// (Section 5.1) — the paper's message-passing analogue of immediate-snapshot
// executions.
//
// A local phase of process i first delivers *all* outstanding messages
// addressed to i and then sends i's (full-information) message to every
// other process. A layer is driven by one environment action of three types:
//
//   [p_1, ..., p_n]                      every process does a phase, in order
//   [p_1, ..., p_{n-1}]                  one process skips the layer
//   [p_1, .., {p_k, p_{k+1}}, .., p_n]   two adjacent processes run
//                                        concurrently: both receive before
//                                        either sends
//
// Every S^per-run has all but at most one process acting infinitely often,
// so no process is failed at any finite state (no finite failure).
//
// Representation note. The environment state holds the multiset of messages
// in transit, encoded canonically (sorted by sender, receiver, payload).
// For the similarity relation, this model attributes the messages addressed
// to process j — j's mailbox — to j's local state: x and y agree modulo j
// when all other local states are equal AND the in-transit messages not
// addressed to j coincide. This is required for the paper's claims
//   x[..,p_k,p_{k+1},..] ~s x[..,{p_k,p_{k+1}},..] ~s x[..,p_{k+1},p_k,..]
// to hold: the two sides differ exactly in one process's view and in one
// undelivered message *addressed to that process*. Conversely
// x[p_1..p_n] and x[p_1..p_{n-1}] are *not* similar — p_n's unsent messages
// would sit in n-1 other mailboxes — which is precisely why the paper needs
// the valence-based diamond argument there.
#pragma once

#include "core/model.hpp"

namespace lacon {

// One scheduling group of a layer action: a single process, or an adjacent
// pair running concurrently.
struct SchedGroup {
  ProcessId a = 0;
  ProcessId b = -1;  // -1 for a singleton group

  bool pair() const noexcept { return b >= 0; }
};

using Schedule = std::vector<SchedGroup>;

class MsgPassModel final : public LayeredModel {
 public:
  MsgPassModel(int n, const DecisionRule& rule,
               std::vector<std::vector<Value>> initial_inputs = {});

  std::string name() const override { return "AsyncMP/S^per"; }

  // The permutation layering's action set (full permutations, drop-one,
  // adjacent concurrent pairs) is closed under relabeling, so the full
  // symmetric group quotients out.
  sym::SymmetryClass symmetry() const override {
    return sym::SymmetryClass::kFull;
  }

  // Relabeling remaps every in-transit message's sender/receiver, rewrites
  // its payload view, and re-sorts the multiset into canonical order.
  void sym_env_key(const StateRef& s, sym::Relabeling& rel,
                   std::vector<std::uint64_t>* out) const override;
  std::vector<std::int64_t> sym_permute_env(
      const StateRef& s, sym::Relabeling& rel) const override;

  // Applies one layer action given as a schedule of groups. Exposed so the
  // tests can verify the paper's diamond identity
  //   x[p1..pn][p1..p_{n-1}] == x[p1..p_{n-1}][pn p1..p_{n-1}]
  // as interned-state equality.
  StateId apply_schedule(StateId x, const Schedule& schedule);

  bool agree_modulo(StateId x, StateId y, ProcessId j) const override;
  std::uint64_t similarity_fingerprint(StateId x, ProcessId j) const override;
  void fingerprint_row_into(StateId x, std::uint64_t* out) const override;
  std::string env_to_string(StateId x) const override;

  // All layer actions for this model size (the three types above).
  const std::vector<Schedule>& schedules() const { return schedules_; }

 protected:
  std::vector<StateId> compute_layer(StateId x) override;

 private:
  std::vector<Schedule> schedules_;
};

// The erase-j fingerprint under the mailbox reading of agree-modulo shared
// by both message-passing models: hashes the in-transit messages *not*
// addressed to j (j's mailbox belongs to j's local state) plus every
// process local state except j's. Filtered-equal envs hash equal, so the
// fingerprint contract of LayeredModel::similarity_fingerprint holds.
std::uint64_t mailbox_masked_fingerprint(const StateRef& s, int n,
                                         ProcessId j);

// Renders the in-transit messages as "sender->receiver:<view term>" — the
// id-free env_to_string shared by both message-passing models.
std::string transit_env_to_string(const ViewArena& views, const StateRef& s);

// Message encoding helpers (exposed for tests).
std::int64_t pack_message(ProcessId sender, ProcessId receiver, ViewId view);
ProcessId message_sender(std::int64_t packed);
ProcessId message_receiver(std::int64_t packed);
ViewId message_view(std::int64_t packed);

}  // namespace lacon
