// The *synchronic* layering for asynchronous message passing.
//
// Section 5.1 notes that the shared-memory impossibility proof via S^rw
// "can be given for asynchronous message passing as well — the structure of
// the layering function, and the reasoning underlying the results remain
// unchanged", and that the resulting submodel "is even closer to the
// synchronous models that are popular in the literature". This model makes
// that remark concrete: virtual rounds with four stages S1 R1 S2 R2 (send
// and receive in place of write and read), driven by the same environment
// actions as S^rw:
//
//   (j, A): the proper processes send (their pre-phase views) in S1 and
//           receive all outstanding messages in R1; j is absent.
//   (j, k): the proper processes send in S1; the proper processes with
//           index < k receive in R1 (missing j's fresh message); j sends in
//           S2; j and the proper processes with index >= k receive in R2.
//
// Unlike registers, undelivered messages persist: in x(j,n) the slow j's
// message stays in transit and arrives a round late, which is exactly the
// Lemma 5.3 bridge — y = x(j,n)(j,A) and y' = x(j,A)(j,0) agree modulo j
// under the same mailbox reading of agree-modulo as the permutation model
// (the leftover messages differ only in j's own mailbox).
#pragma once

#include "core/model.hpp"

namespace lacon {

class MsgPassSyncModel final : public LayeredModel {
 public:
  MsgPassSyncModel(int n, const DecisionRule& rule,
                   std::vector<std::vector<Value>> initial_inputs = {});

  std::string name() const override { return "AsyncMP/S^sync"; }

  // Deliberately kTrivial: the (j,k) actions split receivers by process
  // *index* (who receives in R1 vs R2), so the layering is not closed under
  // relabeling.
  sym::SymmetryClass symmetry() const override {
    return sym::SymmetryClass::kTrivial;
  }

  // In-transit messages embed interned ViewIds, so the id-free canonical
  // signature (lemma-store key) keys them structurally.
  void sym_env_key(const StateRef& s, sym::Relabeling& rel,
                   std::vector<std::uint64_t>* out) const override;

  // x(j, k) and x(j, A), as above. Exposed for the structural tests.
  StateId apply_timed(StateId x, ProcessId j, int k);
  StateId apply_absent(StateId x, ProcessId j);

  bool agree_modulo(StateId x, StateId y, ProcessId j) const override;
  std::uint64_t similarity_fingerprint(StateId x, ProcessId j) const override;
  void fingerprint_row_into(StateId x, std::uint64_t* out) const override;
  std::string env_to_string(StateId x) const override;

 protected:
  std::vector<StateId> compute_layer(StateId x) override;
};

}  // namespace lacon
