// The asynchronous single-writer/multi-reader shared-memory model M^rw with
// the synchronic layering S^rw (Section 5.1).
//
// The shared registers V_1..V_n live in the environment's local state; a
// local phase of process i is at most one write_i followed by a maximal
// sequence of reads (each register read at most once). The layering arranges
// virtual rounds of four stages W1 R1 W2 R2 driven by environment actions:
//
//   (j, A): the proper processes (everyone but j) write in W1 and read in
//           R1; j neither writes nor reads (absent).
//   (j, k): the proper processes write in W1, j writes in W2; the proper
//           processes with index < k read in R1 (missing j's fresh write),
//           j and the proper processes with index >= k read in R2.
//
//   S^rw(x) = { x(j,k) : j in [n], 0 <= k <= n } ∪ { x(j,A) : j in [n] }.
//
// Every S^rw-run is fair — all processes but at most one act infinitely
// often — so no process is ever failed at a finite state (the model displays
// no finite failure) and S^rw generates a layering of R(A, M^rw). The
// submodel is "almost synchronous": in every round at least n-1 processes
// write and read at least n-1 fresh values, which is what makes Corollary
// 5.4 the strong form of the FLP-style impossibility.
#pragma once

#include "core/model.hpp"

namespace lacon {

class SharedMemModel final : public LayeredModel {
 public:
  SharedMemModel(int n, const DecisionRule& rule,
                 std::vector<std::vector<Value>> initial_inputs = {});

  std::string name() const override { return "M^rw/S^rw"; }

  // Deliberately kTrivial: the (j,k) actions split readers by process
  // *index* ("proper processes with index < k read in R1"), so the layering
  // is not closed under relabeling — a quotient would merge states whose
  // futures differ.
  sym::SymmetryClass symmetry() const override {
    return sym::SymmetryClass::kTrivial;
  }

  // Registers hold interned ViewIds, so the id-free canonical signature
  // (lemma-store key) must key them structurally even without a quotient.
  void sym_env_key(const StateRef& s, sym::Relabeling& rel,
                   std::vector<std::uint64_t>* out) const override;

  // x(j, k): see above. k in [0, n].
  StateId apply_timed(StateId x, ProcessId j, int k);

  // x(j, A): j is absent for the round.
  StateId apply_absent(StateId x, ProcessId j);

  // Registers hold interned ViewIds; render them as view terms.
  std::string env_to_string(StateId x) const override;

 protected:
  std::vector<StateId> compute_layer(StateId x) override;

  // Registers are initially unwritten.
  std::vector<std::int64_t> initial_env() const override {
    return std::vector<std::int64_t>(static_cast<std::size_t>(n()), kNoView);
  }
};

}  // namespace lacon
