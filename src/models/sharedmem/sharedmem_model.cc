#include "models/sharedmem/sharedmem_model.hpp"

#include <cassert>

namespace lacon {
namespace {

// Builds the observation list of one full read sweep over registers whose
// contents are given by `registers` (entries are ViewIds or kNoView).
std::vector<Obs> read_sweep(const std::vector<std::int64_t>& registers) {
  std::vector<Obs> obs;
  obs.reserve(registers.size());
  for (std::size_t s = 0; s < registers.size(); ++s) {
    obs.push_back(Obs{static_cast<std::int32_t>(s),
                      static_cast<ViewId>(registers[s])});
  }
  return obs;
}

}  // namespace

SharedMemModel::SharedMemModel(int n, const DecisionRule& rule,
                               std::vector<std::vector<Value>> initial_inputs)
    : LayeredModel(n, rule, std::move(initial_inputs)) {}

StateId SharedMemModel::apply_timed(StateId x, ProcessId j, int k) {
  assert(j >= 0 && j < n());
  assert(k >= 0 && k <= n());
  const StateRef s = state(x);

  // Register contents during R1: the proper processes' W1 writes are in, j's
  // register still holds its pre-round value.
  std::vector<std::int64_t> regs_r1(static_cast<std::size_t>(n()));
  for (ProcessId i = 0; i < n(); ++i) {
    regs_r1[static_cast<std::size_t>(i)] =
        (i == j) ? s.env[static_cast<std::size_t>(i)]
                 : static_cast<std::int64_t>(s.locals[static_cast<std::size_t>(i)]);
  }
  // Register contents during R2: j's W2 write is in as well.
  std::vector<std::int64_t> regs_r2 = regs_r1;
  regs_r2[static_cast<std::size_t>(j)] =
      static_cast<std::int64_t>(s.locals[static_cast<std::size_t>(j)]);

  GlobalState next;
  next.env = regs_r2;  // all writes of the round are in the registers
  next.locals.reserve(static_cast<std::size_t>(n()));
  next.decisions.reserve(static_cast<std::size_t>(n()));
  for (ProcessId i = 0; i < n(); ++i) {
    // The proper processes with index < k read early (R1); j and the proper
    // processes with index >= k read late (R2).
    const bool early = (i != j) && (i < k);
    const ViewId view = views().extend(
        s.locals[static_cast<std::size_t>(i)],
        read_sweep(early ? regs_r1 : regs_r2));
    next.locals.push_back(view);
    next.decisions.push_back(
        updated_decision(i, s.decisions[static_cast<std::size_t>(i)], view));
  }
  return intern(std::move(next));
}

StateId SharedMemModel::apply_absent(StateId x, ProcessId j) {
  assert(j >= 0 && j < n());
  const StateRef s = state(x);

  // Register contents during R1: the proper processes' W1 writes; j's
  // register keeps its pre-round value (j never writes this round).
  std::vector<std::int64_t> regs(static_cast<std::size_t>(n()));
  for (ProcessId i = 0; i < n(); ++i) {
    regs[static_cast<std::size_t>(i)] =
        (i == j) ? s.env[static_cast<std::size_t>(i)]
                 : static_cast<std::int64_t>(s.locals[static_cast<std::size_t>(i)]);
  }

  GlobalState next;
  next.env = regs;
  next.locals.reserve(static_cast<std::size_t>(n()));
  next.decisions.reserve(static_cast<std::size_t>(n()));
  for (ProcessId i = 0; i < n(); ++i) {
    if (i == j) {
      next.locals.push_back(s.locals[static_cast<std::size_t>(i)]);
      next.decisions.push_back(s.decisions[static_cast<std::size_t>(i)]);
      continue;
    }
    const ViewId view =
        views().extend(s.locals[static_cast<std::size_t>(i)], read_sweep(regs));
    next.locals.push_back(view);
    next.decisions.push_back(
        updated_decision(i, s.decisions[static_cast<std::size_t>(i)], view));
  }
  return intern(std::move(next));
}

void SharedMemModel::sym_env_key(const StateRef& s, sym::Relabeling& rel,
                                 std::vector<std::uint64_t>* out) const {
  // kTrivial model, identity relabeling only (canonical signatures): key
  // each register's view structurally so the signature is id-free.
  for (const std::int64_t w : s.env) {
    if (w == kNoView) {
      out->push_back(0x756e777269747465ULL);
      out->push_back(0x6e6f76696577ULL);
    } else {
      const auto k = rel.rewrite_key(static_cast<ViewId>(w));
      out->push_back(k.first);
      out->push_back(k.second);
    }
  }
}

std::string SharedMemModel::env_to_string(StateId x) const {
  const StateRef s = state(x);
  std::string out;
  for (std::int64_t r : s.env) {
    out += r == kNoView ? "-" : views().to_string(static_cast<ViewId>(r));
    out += ',';
  }
  return out;
}

std::vector<StateId> SharedMemModel::compute_layer(StateId x) {
  std::vector<StateId> succ;
  succ.reserve(static_cast<std::size_t>(n() * (n() + 2)));
  for (ProcessId j = 0; j < n(); ++j) {
    for (int k = 0; k <= n(); ++k) {
      succ.push_back(apply_timed(x, j, k));
    }
    succ.push_back(apply_absent(x, j));
  }
  return succ;
}

}  // namespace lacon
