// The iterated immediate snapshot (IIS) model [Borowsky–Gafni], which
// inspires the paper's permutation layering and to which the full version
// of the paper extends the solvability equivalence (end of Section 7).
//
// Round r uses a fresh one-shot snapshot memory M_r. An environment action
// is an *ordered partition* of the processes into blocks B_1, ..., B_m: the
// members of a block write their current views to M_r simultaneously and
// then snapshot M_r, seeing exactly the writes of B_1 ∪ ... ∪ B_their-own.
// Because each M_r is never read after round r, its contents are fully
// captured in the views and the environment state is constant.
//
// Every process takes a step in every layer (IIS is the wait-free world:
// asynchrony appears as block ordering, not as missed steps), so quiescence
// based exactness applies and no process is ever failed at a state. The
// similarity structure mirrors the permutation layering: splitting a
// singleton off a block changes exactly that process's view, so layers are
// similarity connected through block refinements and coarsenings; the
// standard solo-ordering indistinguishability gives the valence bridges.
#pragma once

#include "core/model.hpp"

namespace lacon {

// An ordered partition: blocks in schedule order, each block a non-empty
// set of processes; the blocks partition {0..n-1}.
using OrderedPartition = std::vector<ProcessSet>;

class IisModel final : public LayeredModel {
 public:
  IisModel(int n, const DecisionRule& rule,
           std::vector<std::vector<Value>> initial_inputs = {});

  std::string name() const override { return "IIS"; }

  // The ordered-partition action set is closed under relabeling and the
  // environment is constant, so the full symmetric group quotients out.
  sym::SymmetryClass symmetry() const override {
    return sym::SymmetryClass::kFull;
  }

  // Applies one IIS round under the given ordered partition. Exposed for
  // the structural tests.
  StateId apply_partition(StateId x, const OrderedPartition& partition);

  const std::vector<OrderedPartition>& partitions() const {
    return partitions_;
  }

 protected:
  std::vector<StateId> compute_layer(StateId x) override;

 private:
  std::vector<OrderedPartition> partitions_;
};

// All ordered partitions of {0..n-1} (there are Fubini(n): 3, 13, 75 for
// n = 2, 3, 4).
std::vector<OrderedPartition> all_ordered_partitions(int n);

}  // namespace lacon
