#include "models/iis/iis_model.hpp"

#include <cassert>
#include <functional>

namespace lacon {

std::vector<OrderedPartition> all_ordered_partitions(int n) {
  std::vector<OrderedPartition> out;
  OrderedPartition current;
  const ProcessSet everyone = ProcessSet::all(n);
  // Recursively choose the first block (any non-empty subset of the
  // remaining processes), then partition the rest.
  std::function<void(ProcessSet)> recurse = [&](ProcessSet remaining) {
    if (remaining.empty()) {
      out.push_back(current);
      return;
    }
    const std::uint64_t mask = remaining.mask();
    // Enumerate non-empty submasks of `mask`.
    for (std::uint64_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      current.push_back(ProcessSet(sub));
      recurse(remaining - ProcessSet(sub));
      current.pop_back();
    }
  };
  recurse(everyone);
  return out;
}

IisModel::IisModel(int n, const DecisionRule& rule,
                   std::vector<std::vector<Value>> initial_inputs)
    : LayeredModel(n, rule, std::move(initial_inputs)),
      partitions_(all_ordered_partitions(n)) {}

StateId IisModel::apply_partition(StateId x,
                                  const OrderedPartition& partition) {
  const StateRef s = state(x);
  GlobalState next;
  // Env constant: each M_r is consumed within its round.
  next.env.assign(s.env.begin(), s.env.end());
  next.locals.assign(s.locals.begin(), s.locals.end());
  next.decisions.assign(s.decisions.begin(), s.decisions.end());

  ProcessSet written;  // processes whose round-r write precedes this block's
                       // snapshot
  for (const ProcessSet& block : partition) {
    written = written | block;
    for (ProcessId i : block.to_vector()) {
      // Snapshot of M_r: the pre-round views of everyone written so far.
      std::vector<Obs> obs;
      for (ProcessId w : written.to_vector()) {
        if (w == i) continue;  // own state carried by `prev`
        obs.push_back(Obs{w, s.locals[static_cast<std::size_t>(w)]});
      }
      const ViewId view = views().extend(
          s.locals[static_cast<std::size_t>(i)], std::move(obs));
      next.locals[static_cast<std::size_t>(i)] = view;
      next.decisions[static_cast<std::size_t>(i)] = updated_decision(
          i, s.decisions[static_cast<std::size_t>(i)], view);
    }
  }
  return intern(std::move(next));
}

std::vector<StateId> IisModel::compute_layer(StateId x) {
  std::vector<StateId> succ;
  succ.reserve(partitions_.size());
  for (const OrderedPartition& partition : partitions_) {
    succ.push_back(apply_partition(x, partition));
  }
  return succ;
}

}  // namespace lacon
