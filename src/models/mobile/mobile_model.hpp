// The single-mobile-failure synchronous model M^mf (Section 5) with the
// synchronic layering S1.
//
// Rounds are synchronous; in every round the environment picks one process j
// whose messages to a subset G of the processes are lost. The layering S1
// restricts G to prefix sets [k], so
//
//   S1(x) = { x(j,[k]) : 1 <= j <= n, 0 <= k <= n }.
//
// The environment can silence a single process forever (pick the same j with
// G = [n] in every round), but no process is ever *failed* at a finite state
// — the environment can always stop omitting — so the model displays no
// finite failure and failed_at is empty everywhere. Faulty(i, r) holds
// exactly when i is silenced in all but finitely many rounds of r.
#pragma once

#include "core/model.hpp"

namespace lacon {

class MobileModel final : public LayeredModel {
 public:
  MobileModel(int n, const DecisionRule& rule,
              std::vector<std::vector<Value>> initial_inputs = {});

  std::string name() const override { return "M^mf/S1"; }

  // Deliberately kTrivial: S1 restricts loss sets to index prefixes [k],
  // which relabeling does not preserve. (The full M^mf layer of
  // full_layer() *is* symmetric, but the model's compute_layer is S1.)
  sym::SymmetryClass symmetry() const override {
    return sym::SymmetryClass::kTrivial;
  }

  // x(j, [k]): the state after one synchronous round in which the messages
  // from j to processes 0..k-1 are lost. Public so tests can check the
  // paper's state identities (e.g. x(j,[0]) == x(j',[0])) directly.
  StateId apply(StateId x, ProcessId j, int k);

  // x(j, G) for an arbitrary loss set G — the action of the *full*
  // Santoro–Widmayer model M^mf, of which S1 (prefix sets only) carves the
  // submodel. Every S1 state is reachable this way, which is what makes S1
  // a layering of M^mf (Lemma 5.1(i)).
  StateId apply_general(StateId x, ProcessId j, ProcessSet lost);

  // The full-model layer { x(j,G) : j, G ⊆ processes }; strictly richer
  // than S1(x) for n >= 3.
  std::vector<StateId> full_layer(StateId x);

 protected:
  std::vector<StateId> compute_layer(StateId x) override;
};

}  // namespace lacon
