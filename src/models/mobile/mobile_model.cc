#include "models/mobile/mobile_model.hpp"

#include <cassert>

namespace lacon {

MobileModel::MobileModel(int n, const DecisionRule& rule,
                         std::vector<std::vector<Value>> initial_inputs)
    : LayeredModel(n, rule, std::move(initial_inputs)) {}

StateId MobileModel::apply(StateId x, ProcessId j, int k) {
  assert(k >= 0 && k <= n());
  return apply_general(x, j, ProcessSet::prefix(k));
}

StateId MobileModel::apply_general(StateId x, ProcessId j, ProcessSet lost) {
  assert(j >= 0 && j < n());
  const StateRef s = state(x);

  GlobalState next;
  // The environment state is constant in M^mf.
  next.env.assign(s.env.begin(), s.env.end());
  next.locals.reserve(static_cast<std::size_t>(n()));
  next.decisions.reserve(static_cast<std::size_t>(n()));
  for (ProcessId i = 0; i < n(); ++i) {
    std::vector<Obs> obs;
    obs.reserve(static_cast<std::size_t>(n() - 1));
    for (ProcessId sender = 0; sender < n(); ++sender) {
      if (sender == i) continue;  // own state is carried by `prev`
      const bool is_lost = (sender == j) && lost.contains(i);
      obs.push_back(
          Obs{sender,
              is_lost ? kNoView : s.locals[static_cast<std::size_t>(sender)]});
    }
    const ViewId view =
        views().extend(s.locals[static_cast<std::size_t>(i)], std::move(obs));
    next.locals.push_back(view);
    next.decisions.push_back(
        updated_decision(i, s.decisions[static_cast<std::size_t>(i)], view));
  }
  return intern(std::move(next));
}

std::vector<StateId> MobileModel::full_layer(StateId x) {
  std::vector<StateId> succ;
  for (ProcessId j = 0; j < n(); ++j) {
    const std::uint64_t all = ProcessSet::all(n()).mask();
    for (std::uint64_t g = 0; g <= all; ++g) {
      if ((g | all) != all) continue;
      succ.push_back(apply_general(x, j, ProcessSet(g)));
    }
  }
  std::sort(succ.begin(), succ.end());
  succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  return succ;
}

std::vector<StateId> MobileModel::compute_layer(StateId x) {
  std::vector<StateId> succ;
  succ.reserve(static_cast<std::size_t>(n() * (n() + 1)));
  for (ProcessId j = 0; j < n(); ++j) {
    for (int k = 0; k <= n(); ++k) {
      succ.push_back(apply(x, j, k));
    }
  }
  return succ;
}

}  // namespace lacon
