#include "models/snapshot/snapshot_model.hpp"

#include <cassert>
#include <functional>

namespace lacon {

std::vector<OrderedPartition> ordered_partitions_of(ProcessSet members) {
  std::vector<OrderedPartition> out;
  OrderedPartition current;
  std::function<void(ProcessSet)> recurse = [&](ProcessSet remaining) {
    if (remaining.empty()) {
      out.push_back(current);
      return;
    }
    const std::uint64_t mask = remaining.mask();
    for (std::uint64_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      current.push_back(ProcessSet(sub));
      recurse(remaining - ProcessSet(sub));
      current.pop_back();
    }
  };
  recurse(members);
  return out;
}

SnapshotModel::SnapshotModel(int n, const DecisionRule& rule,
                             std::vector<std::vector<Value>> initial_inputs)
    : LayeredModel(n, rule, std::move(initial_inputs)) {}

StateId SnapshotModel::apply_partition(StateId x,
                                       const OrderedPartition& partition) {
  const StateRef s = state(x);
  GlobalState next;
  // Persistent registers, updated by the writes below.
  next.env.assign(s.env.begin(), s.env.end());
  next.locals.assign(s.locals.begin(), s.locals.end());
  next.decisions.assign(s.decisions.begin(), s.decisions.end());

  for (const ProcessSet& block : partition) {
    // All block members write their pre-phase views ...
    for (ProcessId i : block.to_vector()) {
      next.env[static_cast<std::size_t>(i)] =
          static_cast<std::int64_t>(s.locals[static_cast<std::size_t>(i)]);
    }
    // ... then all snapshot the full memory (their own writes included).
    for (ProcessId i : block.to_vector()) {
      std::vector<Obs> obs;
      obs.reserve(static_cast<std::size_t>(n()));
      for (ProcessId r = 0; r < n(); ++r) {
        obs.push_back(Obs{r, static_cast<ViewId>(
                                 next.env[static_cast<std::size_t>(r)])});
      }
      const ViewId view = views().extend(
          s.locals[static_cast<std::size_t>(i)], std::move(obs));
      next.locals[static_cast<std::size_t>(i)] = view;
      next.decisions[static_cast<std::size_t>(i)] = updated_decision(
          i, s.decisions[static_cast<std::size_t>(i)], view);
    }
  }
  return intern(std::move(next));
}

std::string SnapshotModel::env_to_string(StateId x) const {
  const StateRef s = state(x);
  std::string out;
  for (std::int64_t r : s.env) {
    out += r == kNoView ? "-" : views().to_string(static_cast<ViewId>(r));
    out += ',';
  }
  return out;
}

void SnapshotModel::sym_env_key(const StateRef& s, sym::Relabeling& rel,
                                std::vector<std::uint64_t>* out) const {
  // Relabeled register file: position p holds old register old_at(p), with
  // its view keyed structurally (id-free). kNoView keys as a sentinel pair.
  for (std::size_t p = 0; p < s.env.size(); ++p) {
    const std::int64_t w = s.env[static_cast<std::size_t>(rel.old_at(p))];
    if (w == kNoView) {
      out->push_back(0x756e777269747465ULL);  // "unwritte[n]"
      out->push_back(0x6e6f76696577ULL);      // "noview"
    } else {
      const auto k = rel.rewrite_key(static_cast<ViewId>(w));
      out->push_back(k.first);
      out->push_back(k.second);
    }
  }
}

std::vector<std::int64_t> SnapshotModel::sym_permute_env(
    const StateRef& s, sym::Relabeling& rel) const {
  std::vector<std::int64_t> env(s.env.size());
  for (std::size_t p = 0; p < s.env.size(); ++p) {
    const std::int64_t w = s.env[static_cast<std::size_t>(rel.old_at(p))];
    env[p] =
        w == kNoView
            ? static_cast<std::int64_t>(kNoView)
            : static_cast<std::int64_t>(rel.rewrite(static_cast<ViewId>(w)));
  }
  return env;
}

std::vector<StateId> SnapshotModel::compute_layer(StateId x) {
  std::vector<StateId> succ;
  // Full participation ...
  for (const OrderedPartition& p : ordered_partitions_of(ProcessSet::all(n()))) {
    succ.push_back(apply_partition(x, p));
  }
  // ... and one process slow/absent (1-resilience).
  for (ProcessId j = 0; j < n(); ++j) {
    ProcessSet members = ProcessSet::all(n());
    members.erase(j);
    for (const OrderedPartition& p : ordered_partitions_of(members)) {
      succ.push_back(apply_partition(x, p));
    }
  }
  return succ;
}

}  // namespace lacon
