// Immediate-snapshot executions over (persistent) snapshot shared memory
// [Borowsky–Gafni; Saks–Zaharoglou] — the model the paper's permutation
// layering transplants to message passing, and one of the models the full
// paper extends the Corollary 7.3 equivalence to.
//
// Each process owns a single-writer register; a *snapshot* reads all
// registers atomically. A layer action is an ordered partition of the
// participating processes into blocks: the members of a block write their
// pre-phase views simultaneously and then snapshot the memory, seeing the
// writes of all blocks up to their own plus the persistent values of
// non-participants. For 1-resilience the participants are either everyone
// or everyone but one (the slow process), mirroring the permutation
// layering's full and drop-one actions.
//
// Unlike IIS, the registers persist across rounds: a slow process's last
// write stays visible, which is exactly the shared-memory counterpart of
// the in-transit stale message of the synchronic MP model.
#pragma once

#include "core/model.hpp"
#include "models/iis/iis_model.hpp"  // OrderedPartition

namespace lacon {

class SnapshotModel final : public LayeredModel {
 public:
  SnapshotModel(int n, const DecisionRule& rule,
                std::vector<std::vector<Value>> initial_inputs = {});

  std::string name() const override { return "M^snap/IS"; }

  // Participant sets (everyone / everyone-but-one) and ordered partitions
  // are closed under relabeling, so the full symmetric group quotients out.
  sym::SymmetryClass symmetry() const override {
    return sym::SymmetryClass::kFull;
  }

  // Register p belongs to process p: relabeling permutes the register file
  // and rewrites the interned views it holds.
  void sym_env_key(const StateRef& s, sym::Relabeling& rel,
                   std::vector<std::uint64_t>* out) const override;
  std::vector<std::int64_t> sym_permute_env(
      const StateRef& s, sym::Relabeling& rel) const override;

  // Applies one immediate-snapshot round in which exactly the processes in
  // the partition participate (others keep their state and register).
  StateId apply_partition(StateId x, const OrderedPartition& partition);

  // Registers hold interned ViewIds; render them as view terms.
  std::string env_to_string(StateId x) const override;

 protected:
  std::vector<StateId> compute_layer(StateId x) override;

  std::vector<std::int64_t> initial_env() const override {
    return std::vector<std::int64_t>(static_cast<std::size_t>(n()), kNoView);
  }
};

// All ordered partitions of a given subset of {0..n-1}.
std::vector<OrderedPartition> ordered_partitions_of(ProcessSet members);

}  // namespace lacon
