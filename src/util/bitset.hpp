// DenseBitset: a growable bit-vector for sets of dense small integers.
//
// StateIds are dense (the arena hands them out from an atomic counter
// starting at 0), so the engines' visited sets — reachable_by_depth's
// frontier dedup, the spec/covering/lemma BFS sweeps, the DOT exporter —
// are sets over [0, arena.size()). An unordered_set pays a heap node and a
// hash per insert for what is one bit of information; this bitset makes
// insert/contains a shift and a mask, and the whole set a contiguous
// allocation that grows geometrically.
//
// Not thread-safe; the engines use it from their serial merge phases only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lacon {

class DenseBitset {
 public:
  DenseBitset() = default;
  // `capacity_hint`: number of ids expected (e.g. arena.size()); avoids the
  // first few regrows when known.
  explicit DenseBitset(std::size_t capacity_hint) {
    words_.resize(word_index(capacity_hint) + 1, 0);
  }

  // Inserts i; returns true iff it was not present.
  bool insert(std::size_t i) {
    const std::size_t w = word_index(i);
    if (w >= words_.size()) grow(w);
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (words_[w] & bit) return false;
    words_[w] |= bit;
    ++count_;
    return true;
  }

  bool contains(std::size_t i) const noexcept {
    const std::size_t w = word_index(i);
    return w < words_.size() && (words_[w] & (std::uint64_t{1} << (i & 63)));
  }

  // Number of set bits.
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

 private:
  static std::size_t word_index(std::size_t i) noexcept { return i >> 6; }

  void grow(std::size_t w) {
    std::size_t target = words_.empty() ? std::size_t{8} : words_.size();
    while (target <= w) target *= 2;
    words_.resize(target, 0);
  }

  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

}  // namespace lacon
