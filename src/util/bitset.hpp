// DenseBitset: a growable bit-vector for sets of dense small integers.
//
// StateIds are dense (the arena hands them out from an atomic counter
// starting at 0), so the engines' visited sets — reachable_by_depth's
// frontier dedup, the spec/covering/lemma BFS sweeps, the DOT exporter —
// are sets over [0, arena.size()). An unordered_set pays a heap node and a
// hash per insert for what is one bit of information; this bitset makes
// insert/contains a shift and a mask, and the whole set a contiguous
// allocation that grows geometrically.
//
// Bulk operations (or_with/and_with/subtract/popcount/find_first and the
// BFS step drain_fresh_into) run on the SIMD kernel table selected by
// runtime/simd_dispatch (DESIGN.md §13); the scalar kernels define the
// semantics.
//
// Not thread-safe; the engines use it from their serial merge phases only.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/simd_dispatch.hpp"

namespace lacon {

class DenseBitset {
 public:
  DenseBitset() = default;
  // `capacity_hint`: number of ids expected (e.g. arena.size()); avoids the
  // first few regrows when known.
  explicit DenseBitset(std::size_t capacity_hint) {
    words_.resize(word_index(capacity_hint) + 1, 0);
  }

  // Inserts i; returns true iff it was not present.
  bool insert(std::size_t i) {
    const std::size_t w = word_index(i);
    if (w >= words_.size()) grow(w);
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (words_[w] & bit) return false;
    words_[w] |= bit;
    ++count_;
    return true;
  }

  bool contains(std::size_t i) const noexcept {
    const std::size_t w = word_index(i);
    return w < words_.size() && (words_[w] & (std::uint64_t{1} << (i & 63)));
  }

  // Number of set bits.
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  // Clears every bit, keeping the allocation; widens to hold
  // `capacity_hint` ids when given. The BFS scratch reuse path.
  void reset(std::size_t capacity_hint = 0) {
    const std::size_t want =
        capacity_hint == 0 ? words_.size() : word_index(capacity_hint) + 1;
    words_.assign(std::max(want, words_.size()), 0);
    count_ = 0;
  }

  // insert() without the growth check: `i` must be inside the current
  // allocation (after reset(capacity) with capacity > i). The inner-loop
  // form for BFS neighbor marking.
  void mark(std::size_t i) noexcept {
    const std::size_t w = word_index(i);
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ += static_cast<std::size_t>((words_[w] & bit) == 0);
    words_[w] |= bit;
  }

  // One level-synchronous BFS step with `this` as the `next` frontier set:
  // the bits of `this` not yet in `visited` are added to `visited` and
  // their indices appended to `out` in ascending order; `this` is cleared.
  // Returns the number of fresh bits. `out` needs room for one entry per
  // bit of capacity in the worst case; both sets must share a capacity
  // (reset() to the same hint).
  std::size_t drain_fresh_into(DenseBitset& visited, std::uint32_t* out) {
    const std::size_t fresh = simd::active().frontier_advance(
        words_.data(), visited.words_.data(), words_.size(), out);
    visited.count_ += fresh;
    count_ = 0;
    return fresh;
  }

  // this |= other / this &= other / this &= ~other, by content (bits the
  // narrower operand cannot hold are absent from it).
  void or_with(const DenseBitset& other) {
    if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
    simd::active().bitset_or(words_.data(), other.words_.data(),
                             other.words_.size());
    recount();
  }
  void and_with(const DenseBitset& other) {
    const std::size_t common = std::min(words_.size(), other.words_.size());
    simd::active().bitset_and(words_.data(), other.words_.data(), common);
    std::fill(words_.begin() + static_cast<std::ptrdiff_t>(common),
              words_.end(), 0);
    recount();
  }
  void subtract(const DenseBitset& other) {
    const std::size_t common = std::min(words_.size(), other.words_.size());
    simd::active().bitset_andnot(words_.data(), other.words_.data(), common);
    recount();
  }

  // Index of the lowest set bit, or simd::kNpos when empty.
  std::size_t find_first() const noexcept {
    return simd::active().bitset_find_first(words_.data(), words_.size());
  }

 private:
  void recount() noexcept {
    count_ = static_cast<std::size_t>(
        simd::active().bitset_popcount(words_.data(), words_.size()));
  }

  static std::size_t word_index(std::size_t i) noexcept { return i >> 6; }

  void grow(std::size_t w) {
    std::size_t target = words_.empty() ? std::size_t{8} : words_.size();
    while (target <= w) target *= 2;
    words_.resize(target, 0);
  }

  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

}  // namespace lacon
