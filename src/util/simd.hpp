// SIMD kernel library over the flat WordPool state encoding (DESIGN.md §13).
//
// PR 4 flattened every interned GlobalState into one contiguous word region
// — env int64 words, then locals and decisions packed as 32-bit lanes, two
// per word, with odd-n padding lanes zeroed — precisely so the pairwise hot
// loops of the layered analysis could vectorize. This header defines those
// loops as a table of kernels:
//
//   (1) words_equal / lanes_equal_skip  — the agree_modulo compare: bulk
//       env-word equality plus a 32-bit-lane compare that masks out the
//       erased process j's slot (core/state.cc).
//   (2) fingerprint_lanes — all n erase-one similarity fingerprints of a
//       state in one pass over its lanes instead of n (core/model.cc).
//   (3) bitset_or/and/andnot/popcount/find_first — DenseBitset bulk sweeps
//       (util/bitset.hpp; explore seen-sets, diameter visited-sets).
//   (4) frontier_advance — the fused CSR frontier-expansion step of the
//       level-synchronous BFS behind Graph::diameter (relation/graph.cc):
//       fresh = next & ~visited; visited |= fresh; emit fresh bit indices.
//
// The scalar implementations below are the semantic definition; the AVX2 /
// NEON implementations in runtime/simd_dispatch.cc must be bit-identical
// (same fingerprints, same graphs, same truncation depths — the identity
// contract tests/simd_test.cc enforces). Call sites fetch the selected
// table once per operation via lacon::simd::active() (runtime dispatch,
// LACON_SIMD knob); the scalar table stays reachable through
// scalar_kernels() for A/B benches and equivalence tests.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/hash.hpp"

namespace lacon::simd {

// "No lane erased" sentinel for lanes_equal_skip (any value >= n works).
inline constexpr std::size_t kNoSkip = ~std::size_t{0};

// "Not found" result of bitset_find_first.
inline constexpr std::size_t kNpos = ~std::size_t{0};

struct Kernels {
  // Implementation name for logs/benches: "scalar" | "avx2" | "neon".
  const char* name;

  // All n 64-bit words equal.
  bool (*words_equal)(const std::int64_t* a, const std::int64_t* b,
                      std::size_t n) noexcept;

  // All n 32-bit lanes equal, ignoring lane `skip` (pass kNoSkip to compare
  // every lane). Reads exactly n lanes from each side — callers may hand in
  // vector-backed spans without padded tails.
  bool (*lanes_equal_skip)(const std::int32_t* a, const std::int32_t* b,
                           std::size_t n, std::size_t skip) noexcept;

  // Erase-one fingerprint row: out[j] becomes the fold of hash_combine over
  //   seed, locals[0], decisions[0], ..., locals[n-1], decisions[n-1]
  // with locals[j] and decisions[j] skipped — exactly
  // LayeredModel::similarity_fingerprint(x, j) when `seed` is the state's
  // env hash. Lanes are sign-extended to 64 bits before combining, matching
  // the scalar static_cast<std::uint64_t>(ViewId) on int32 lanes.
  void (*fingerprint_lanes)(std::uint64_t seed, const std::int32_t* locals,
                            const std::int32_t* decisions, std::size_t n,
                            std::uint64_t* out) noexcept;

  // dst[i] |= src[i] / dst[i] &= src[i] / dst[i] &= ~src[i], i in [0, n).
  void (*bitset_or)(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) noexcept;
  void (*bitset_and)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) noexcept;
  void (*bitset_andnot)(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) noexcept;

  // Total set bits across n words.
  std::uint64_t (*bitset_popcount)(const std::uint64_t* w,
                                   std::size_t n) noexcept;

  // Index of the lowest set bit across n words, kNpos when all zero.
  std::size_t (*bitset_find_first)(const std::uint64_t* w,
                                   std::size_t n) noexcept;

  // Position-keyed content hash over n 64-bit words — one section of
  // StateArena::content_hash (explore's intern-path hot loop). Defined as
  //   acc  = Σ_i mix64(w_i ^ (seed + (i+1) * kHashPhi))   (mod 2^64)
  //   hash = hash_combine(hash_combine(seed, n), acc)
  // The per-position mixes are independent and the fold is a wrapping sum
  // (commutative, associative), so wide implementations keep vector
  // accumulators and reduce horizontally — bit-identical by construction.
  std::uint64_t (*hash_words)(const std::int64_t* w, std::size_t n,
                              std::uint64_t seed) noexcept;

  // Same hash over n 32-bit lanes, each sign-extended to 64 bits first
  // (locals/decisions sections; matches static_cast<std::int64_t> on the
  // lane value).
  std::uint64_t (*hash_lanes)(const std::int32_t* v, std::size_t n,
                              std::uint64_t seed) noexcept;

  // One level of bitmap BFS over `nwords`-word sets: for every word,
  //   fresh      = next & ~visited
  //   visited   |= fresh
  //   next       = 0
  // and the bit indices of every fresh word are appended to `out` in
  // ascending order. Returns the number of fresh bits (out must have room
  // for 64 * nwords entries in the worst case).
  std::size_t (*frontier_advance)(std::uint64_t* next, std::uint64_t* visited,
                                  std::size_t nwords,
                                  std::uint32_t* out) noexcept;
};

// Position key stride of hash_words/hash_lanes (the splitmix64 increment).
inline constexpr std::uint64_t kHashPhi = 0x9e3779b97f4a7c15ULL;

// --- Scalar reference kernels (the semantic definition) ---------------------

namespace scalar {

inline bool words_equal(const std::int64_t* a, const std::int64_t* b,
                        std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

inline bool lanes_equal_skip(const std::int32_t* a, const std::int32_t* b,
                             std::size_t n, std::size_t skip) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (i != skip && a[i] != b[i]) return false;
  }
  return true;
}

inline void fingerprint_lanes(std::uint64_t seed, const std::int32_t* locals,
                              const std::int32_t* decisions, std::size_t n,
                              std::uint64_t* out) noexcept {
  for (std::size_t j = 0; j < n; ++j) out[j] = seed;
  // Item-major instead of row-major: each lane j still receives exactly the
  // per-j fold's operations in the per-j fold's order (items of i < i' are
  // combined before i'), so the row is bit-identical to n independent
  // similarity_fingerprint calls while touching each lane pair once.
  for (std::size_t i = 0; i < n; ++i) {
    const auto l =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(locals[i]));
    const auto d =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(decisions[i]));
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      out[j] = hash_combine(hash_combine(out[j], l), d);
    }
  }
}

inline std::uint64_t hash_words(const std::int64_t* w, std::size_t n,
                                std::uint64_t seed) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += mix64(static_cast<std::uint64_t>(w[i]) ^
                 (seed + (static_cast<std::uint64_t>(i) + 1) * kHashPhi));
  }
  return hash_combine(hash_combine(seed, n), acc);
}

inline std::uint64_t hash_lanes(const std::int32_t* v, std::size_t n,
                                std::uint64_t seed) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v[i])) ^
                 (seed + (static_cast<std::uint64_t>(i) + 1) * kHashPhi));
  }
  return hash_combine(hash_combine(seed, n), acc);
}

inline void bitset_or(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

inline void bitset_and(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

inline void bitset_andnot(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

inline std::uint64_t bitset_popcount(const std::uint64_t* w,
                                     std::size_t n) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(w[i]));
  }
  return total;
}

inline std::size_t bitset_find_first(const std::uint64_t* w,
                                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] != 0) {
      return i * 64 + static_cast<std::size_t>(std::countr_zero(w[i]));
    }
  }
  return kNpos;
}

inline std::size_t frontier_advance(std::uint64_t* next,
                                    std::uint64_t* visited, std::size_t nwords,
                                    std::uint32_t* out) noexcept {
  std::size_t count = 0;
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t fresh = next[w] & ~visited[w];
    next[w] = 0;
    if (fresh == 0) continue;
    visited[w] |= fresh;
    const auto base = static_cast<std::uint32_t>(w * 64);
    do {
      out[count++] =
          base + static_cast<std::uint32_t>(std::countr_zero(fresh));
      fresh &= fresh - 1;
    } while (fresh != 0);
  }
  return count;
}

}  // namespace scalar

}  // namespace lacon::simd
