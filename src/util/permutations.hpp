// Permutation enumeration helpers for the permutation layering (Section 5.1)
// and for connectivity tests based on transposition chains.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/process_set.hpp"

namespace lacon {

using Permutation = std::vector<ProcessId>;

// All permutations of {0, .., n-1}, in lexicographic order.
inline std::vector<Permutation> all_permutations(int n) {
  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  std::vector<Permutation> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

// All injective sequences of length n-1 over {0, .., n-1}, i.e. permutations
// with the last element dropped. Used for the paper's second action type
// [p_1, ..., p_{n-1}].
inline std::vector<Permutation> all_drop_last(int n) {
  std::vector<Permutation> out;
  for (Permutation p : all_permutations(n)) {
    p.pop_back();
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

// A chain of adjacent transpositions transforming `from` into `to`
// (bubble-sort order). Each step swaps two adjacent entries. Used to verify
// that "transpositions span all permutations" drives similarity chains.
inline std::vector<Permutation> transposition_chain(const Permutation& from,
                                                    const Permutation& to) {
  std::vector<Permutation> chain = {from};
  Permutation cur = from;
  for (std::size_t target = 0; target < to.size(); ++target) {
    auto it = std::find(cur.begin() + static_cast<long>(target), cur.end(),
                        to[target]);
    for (auto pos = static_cast<std::size_t>(it - cur.begin()); pos > target;
         --pos) {
      std::swap(cur[pos], cur[pos - 1]);
      chain.push_back(cur);
    }
  }
  return chain;
}

}  // namespace lacon
