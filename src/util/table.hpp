// A minimal fixed-width text table used by the benchmark harnesses and
// examples to print experiment rows in a uniform, diffable format.
#pragma once

#include <string>
#include <vector>

namespace lacon {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; the number of cells must match the header width.
  void add_row(std::vector<std::string> cells);

  // Renders the table with a title banner, column padding and a rule under
  // the header.
  std::string to_string(const std::string& title) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience number-to-cell conversions.
std::string cell(long long v);
std::string cell(bool v);
std::string cell(double v, int precision = 2);

}  // namespace lacon
