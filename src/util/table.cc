#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace lacon {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c] + 2; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string cell(long long v) { return std::to_string(v); }

std::string cell(bool v) { return v ? "yes" : "no"; }

std::string cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace lacon
