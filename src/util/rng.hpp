// Deterministic pseudo-random number generation for simulators and
// property-style tests.
//
// std::mt19937_64 seeding and distribution behaviour is implementation-pinned
// but verbose; this xoshiro256** implementation is tiny, fast, and produces
// identical streams on every platform, which keeps recorded experiment output
// stable.
#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace lacon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // Expand the seed with splitmix64 per the xoshiro authors' guidance.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      word = mix64(z);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive. Uses rejection
  // sampling so the distribution is exactly uniform.
  std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  int int_below(int bound) noexcept {
    return static_cast<int>(below(static_cast<std::uint64_t>(bound)));
  }

  bool coin() noexcept { return next() & 1ULL; }

  // Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace lacon
