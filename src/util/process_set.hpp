// A small value-type set of process identifiers, backed by a 64-bit mask.
//
// The paper works with a fixed finite set of n >= 2 processes named
// 1..n; we use 0-based ProcessId throughout the code base and translate in
// printing only. Models are limited to n <= 62 processes, far above anything
// the exhaustive analyses can explore.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace lacon {

using ProcessId = int;

class ProcessSet {
 public:
  constexpr ProcessSet() noexcept = default;
  constexpr explicit ProcessSet(std::uint64_t mask) noexcept : mask_(mask) {}

  // The set {0, 1, ..., k-1}; the paper's prefix set [k].
  static constexpr ProcessSet prefix(int k) noexcept {
    return ProcessSet(k >= 64 ? ~0ULL : ((1ULL << k) - 1));
  }
  static constexpr ProcessSet all(int n) noexcept { return prefix(n); }
  static constexpr ProcessSet single(ProcessId i) noexcept {
    return ProcessSet(1ULL << i);
  }

  constexpr bool contains(ProcessId i) const noexcept {
    return (mask_ >> i) & 1ULL;
  }
  constexpr bool empty() const noexcept { return mask_ == 0; }
  constexpr int size() const noexcept { return __builtin_popcountll(mask_); }
  constexpr std::uint64_t mask() const noexcept { return mask_; }

  constexpr void insert(ProcessId i) noexcept { mask_ |= (1ULL << i); }
  constexpr void erase(ProcessId i) noexcept { mask_ &= ~(1ULL << i); }

  constexpr ProcessSet operator|(ProcessSet o) const noexcept {
    return ProcessSet(mask_ | o.mask_);
  }
  constexpr ProcessSet operator&(ProcessSet o) const noexcept {
    return ProcessSet(mask_ & o.mask_);
  }
  // Set difference: the members of *this not in o.
  constexpr ProcessSet operator-(ProcessSet o) const noexcept {
    return ProcessSet(mask_ & ~o.mask_);
  }
  constexpr bool operator==(const ProcessSet&) const noexcept = default;

  std::vector<ProcessId> to_vector() const {
    std::vector<ProcessId> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (std::uint64_t m = mask_; m != 0; m &= m - 1) {
      out.push_back(__builtin_ctzll(m));
    }
    return out;
  }

  // Renders as e.g. "{0,2,3}" for logs and test-failure messages.
  std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for (ProcessId i : to_vector()) {
      if (!first) out += ",";
      out += std::to_string(i);
      first = false;
    }
    return out + "}";
  }

 private:
  std::uint64_t mask_ = 0;
};

}  // namespace lacon
