// Hashing utilities used by the hash-consing arenas.
//
// All interned objects (views, global states, simplexes) are hashed with
// these helpers; they must therefore be deterministic across runs so that
// recorded experiment output is reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace lacon {

// 64-bit mix function (splitmix64 finalizer). Good avalanche behaviour for
// combining word-sized fields.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Combines a hash value with the hash of another field, boost-style but with
// a 64-bit mixer.
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

// Hashes a contiguous range of integral values.
template <typename T>
std::uint64_t hash_range(std::span<const T> values,
                         std::uint64_t seed = 0) noexcept {
  std::uint64_t h = hash_combine(seed, values.size());
  for (const T& v : values) {
    h = hash_combine(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

template <typename T>
std::uint64_t hash_range(const std::vector<T>& values,
                         std::uint64_t seed = 0) noexcept {
  return hash_range(std::span<const T>(values), seed);
}

}  // namespace lacon
