// Graphviz (DOT) export of the analysis structures: the similarity graph of
// a state set (with valence coloring) and the layered run tree below a
// state. Useful for inspecting small instances; see examples/flp_explorer.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/valence.hpp"

namespace lacon {

// The graph (X, ~s), one node per state labelled with its id, decisions and
// failed set. When an engine is given, nodes are colored by valence:
// bivalent = plum, 0-valent = lightblue, 1-valent = lightsalmon,
// no valence = white.
std::string similarity_graph_dot(LayeredModel& model,
                                 const std::vector<StateId>& X,
                                 ValenceEngine* engine = nullptr);

// The layered run tree below `root`, to the given depth (deduplicated: a
// state reached via several actions appears once, with all edges drawn).
std::string run_tree_dot(LayeredModel& model, StateId root, int depth,
                         ValenceEngine* engine = nullptr);

}  // namespace lacon
