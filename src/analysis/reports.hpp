// Front-end helpers shared by the examples, tests and benchmark harnesses:
// uniform model construction across the four models and a one-call runner
// for the full mechanized lemma suite of a model instance.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/lemmas.hpp"
#include "engine/spec.hpp"

namespace lacon {

enum class ModelKind { kMobile, kSharedMem, kMsgPass, kSync };

std::string model_kind_name(ModelKind kind);

// Builds a model; `t` is only used by kSync. `rule` must outlive the model.
std::unique_ptr<LayeredModel> make_model(
    ModelKind kind, int n, int t, const DecisionRule& rule,
    std::vector<std::vector<Value>> initial_inputs = {});

// The valence-exactness criterion appropriate for the model (see
// engine/valence.hpp): quiescence for the models where every process acts
// in every layer, convergence for the asynchronous layerings with sleeper
// branches.
Exactness default_exactness(ModelKind kind);

// Whether the model's layers are similarity connected as full sets (S1 and
// S^t: yes; S^rw and S^per: only valence connected — the paper bridges the
// stragglers by the diamond / two-round arguments).
bool layers_similarity_connected(ModelKind kind);

struct NamedCheck {
  std::string name;
  CheckResult result;
};

// Runs every applicable lemma check for the model instance. `depth` bounds
// the exploration, `horizon` the valence lookahead (pick >= the rule's
// decision round + 1).
std::vector<NamedCheck> run_lemma_suite(ModelKind kind, int n, int t,
                                        int depth, int horizon,
                                        const DecisionRule& rule);

// Renders the runtime instrumentation registry (runtime/stats.hpp) — the
// configured worker count plus every counter and timer the parallel hot
// paths recorded since the last reset — as a table. The bench harnesses
// print this after their experiment tables.
std::string runtime_report();

}  // namespace lacon
