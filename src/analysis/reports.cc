#include "analysis/reports.hpp"

#include "runtime/guard.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trace.hpp"
#include "util/table.hpp"

#include "models/mobile/mobile_model.hpp"
#include "models/msgpass/msgpass_model.hpp"
#include "models/sharedmem/sharedmem_model.hpp"
#include "models/synchronous/sync_model.hpp"

namespace lacon {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMobile:
      return "M^mf/S1";
    case ModelKind::kSharedMem:
      return "M^rw/S^rw";
    case ModelKind::kMsgPass:
      return "AsyncMP/S^per";
    case ModelKind::kSync:
      return "Sync/S^t";
  }
  return "?";
}

std::unique_ptr<LayeredModel> make_model(
    ModelKind kind, int n, int t, const DecisionRule& rule,
    std::vector<std::vector<Value>> initial_inputs) {
  switch (kind) {
    case ModelKind::kMobile:
      return std::make_unique<MobileModel>(n, rule, std::move(initial_inputs));
    case ModelKind::kSharedMem:
      return std::make_unique<SharedMemModel>(n, rule,
                                              std::move(initial_inputs));
    case ModelKind::kMsgPass:
      return std::make_unique<MsgPassModel>(n, rule,
                                            std::move(initial_inputs));
    case ModelKind::kSync:
      return std::make_unique<SyncModel>(n, t, rule,
                                         std::move(initial_inputs));
  }
  return nullptr;
}

Exactness default_exactness(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMobile:
    case ModelKind::kSync:
      return Exactness::kQuiescence;
    case ModelKind::kSharedMem:
    case ModelKind::kMsgPass:
      return Exactness::kConvergence;
  }
  return Exactness::kQuiescence;
}

bool layers_similarity_connected(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMobile:
    case ModelKind::kSync:
      return true;
    case ModelKind::kSharedMem:
    case ModelKind::kMsgPass:
      return false;
  }
  return false;
}

std::vector<NamedCheck> run_lemma_suite(ModelKind kind, int n, int t,
                                        int depth, int horizon,
                                        const DecisionRule& rule) {
  std::vector<NamedCheck> out;
  const Exactness mode = default_exactness(kind);
  auto model = make_model(kind, n, t, rule);

  const int effective_t = (kind == ModelKind::kSync) ? t : 1;
  if (kind == ModelKind::kSync) {
    // min-after-round-(t+1) satisfies agreement here, so Lemmas 3.1/3.2
    // apply to the model as built.
    out.push_back({"Lemma 3.1 (bivalent => n-t undecided)",
                   check_lemma_3_1(*model, effective_t, depth, horizon,
                                   mode)});
  } else {
    // No rule satisfies all three consensus requirements in these models;
    // Lemmas 3.1/3.2 hypothesize agreement, so check them on a second model
    // running the agreement-safe rule, and check the contrapositive of
    // Lemma 3.2 (bivalent + decided => agreement violation reachable) on
    // the original rule.
    static const auto safe_rule = min_when_all_known(1);
    auto safe_model = make_model(kind, n, t, *safe_rule);
    out.push_back({"Lemma 3.1 (agreement-safe rule)",
                   check_lemma_3_1(*safe_model, effective_t, depth, horizon,
                                   mode)});
    out.push_back({"Lemma 3.2 (agreement-safe rule)",
                   check_lemma_3_2(*safe_model, depth, horizon, mode)});
    out.push_back(
        {"Lemma 3.2 contrapositive (bivalent+decided => violation)",
         check_lemma_3_2_contrapositive(*model, depth, horizon, mode)});
  }
  out.push_back({"Lemma 3.3 (~s => ~v)",
                 check_lemma_3_3(*model, depth, horizon, mode)});
  out.push_back({"Lemma 3.6 (Con_0 connected, bivalent initial)",
                 check_lemma_3_6(*model, horizon, mode)});

  std::function<bool(StateId)> filter;
  if (kind == ModelKind::kSync) {
    // The paper claims layer valence connectivity only while fewer than t-1
    // processes have failed (proof of Lemma 6.1).
    LayeredModel* raw = model.get();
    filter = [raw, t](StateId x) { return raw->failed_at(x).size() < t - 1; };
  }
  out.push_back(
      {"Layer connectivity (Lemmas 5.1/5.3 (iii))",
       check_layer_connectivity(*model, depth, horizon,
                                layers_similarity_connected(kind), mode,
                                filter)});
  if (kind == ModelKind::kSync) {
    out.push_back({"Lemma 6.1 (bivalent chain)",
                   check_lemma_6_1(*model, t, horizon, mode)});
    out.push_back({"Lemma 6.2 (two more rounds needed)",
                   check_lemma_6_2(*model, depth, horizon, mode)});
  }
  return out;
}

std::string runtime_report() {
  Table table({"stat", "kind", "value", "calls"});
  table.add_row({"runtime.workers", "config",
                 cell(static_cast<long long>(runtime::worker_count())), "-"});
  table.add_row({"trace.mode", "config", trace::to_string(trace::mode()), "-"});
  const guard::GuardSpec& spec = guard::process_guard_spec();
  if (spec.limited()) {
    if (spec.budget_ms > 0) {
      table.add_row({"guard.budget_ms", "config",
                     cell(static_cast<long long>(spec.budget_ms)), "-"});
    }
    if (spec.max_states > 0) {
      table.add_row({"guard.max_states", "config",
                     cell(static_cast<long long>(spec.max_states)), "-"});
    }
    if (spec.max_bytes > 0) {
      table.add_row({"guard.max_bytes", "config",
                     cell(static_cast<long long>(spec.max_bytes)), "-"});
    }
  }
  for (const runtime::StatSample& s : runtime::Stats::global().snapshot()) {
    if (s.is_timer) {
      table.add_row({s.name, "timer",
                     cell(static_cast<double>(s.value) * 1e-6, 3) + " ms",
                     cell(static_cast<long long>(s.count))});
    } else {
      table.add_row(
          {s.name, "counter", cell(static_cast<long long>(s.value)), "-"});
    }
  }
  // Span histograms only populate when tracing is on; report the mean so the
  // table stays one line per site (the full bucket vector lives in the
  // MetricsSnapshot JSON).
  for (const runtime::HistogramSample& h :
       runtime::Stats::global().histogram_snapshot()) {
    if (h.count == 0) continue;
    const double mean_ms =
        static_cast<double>(h.sum) / static_cast<double>(h.count) * 1e-6;
    table.add_row({h.name, "histogram", cell(mean_ms, 3) + " ms mean",
                   cell(static_cast<long long>(h.count))});
  }
  if (trace::mode() == trace::Mode::kSpans) {
    table.add_row({"trace.spans_recorded", "counter",
                   cell(static_cast<long long>(trace::spans_recorded())),
                   "-"});
    table.add_row({"trace.spans_dropped", "counter",
                   cell(static_cast<long long>(trace::spans_dropped())), "-"});
  }
  return table.to_string("Runtime stats (lacon::runtime)");
}

}  // namespace lacon
