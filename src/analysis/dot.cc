#include "analysis/dot.hpp"

#include <sstream>

#include "relation/similarity.hpp"
#include "util/bitset.hpp"

namespace lacon {
namespace {

std::string state_label(LayeredModel& model, StateId x) {
  std::string label = "s" + std::to_string(x) + "\\nd=[";
  const StateRef s = model.state(x);
  for (ProcessId i = 0; i < model.n(); ++i) {
    const Value d = s.decisions[static_cast<std::size_t>(i)];
    label += (d == kUndecided) ? "-" : std::to_string(d);
  }
  label += "]";
  const ProcessSet failed = model.failed_at(x);
  if (!failed.empty()) label += "\\nF=" + failed.to_string();
  return label;
}

std::string fill_color(ValenceEngine* engine, StateId x) {
  if (engine == nullptr) return "white";
  const ValenceInfo v = engine->valence(x);
  if (v.bivalent()) return "plum";
  if (v.v0) return "lightblue";
  if (v.v1) return "lightsalmon";
  return "white";
}

void emit_node(std::ostringstream& out, LayeredModel& model, StateId x,
               ValenceEngine* engine) {
  out << "  n" << x << " [label=\"" << state_label(model, x)
      << "\", style=filled, fillcolor=" << fill_color(engine, x) << "];\n";
}

}  // namespace

std::string similarity_graph_dot(LayeredModel& model,
                                 const std::vector<StateId>& X,
                                 ValenceEngine* engine) {
  std::ostringstream out;
  out << "graph similarity {\n  node [shape=box, fontsize=10];\n";
  for (StateId x : X) emit_node(out, model, x, engine);
  for (std::size_t a = 0; a < X.size(); ++a) {
    for (std::size_t b = a + 1; b < X.size(); ++b) {
      const auto witness = similarity_witness(model, X[a], X[b]);
      if (witness) {
        out << "  n" << X[a] << " -- n" << X[b] << " [label=\"~" << *witness
            << "\"];\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string run_tree_dot(LayeredModel& model, StateId root, int depth,
                         ValenceEngine* engine) {
  std::ostringstream out;
  out << "digraph runs {\n  node [shape=box, fontsize=10];\n";
  DenseBitset seen(model.num_states());
  seen.insert(root);
  std::vector<StateId> frontier = {root};
  emit_node(out, model, root, engine);
  for (int d = 0; d < depth && !frontier.empty(); ++d) {
    std::vector<StateId> next;
    for (StateId x : frontier) {
      for (StateId y : model.layer(x)) {
        if (seen.insert(y)) {
          emit_node(out, model, y, engine);
          next.push_back(y);
        }
        out << "  n" << x << " -> n" << y << ";\n";
      }
    }
    frontier = std::move(next);
  }
  out << "}\n";
  return out.str();
}

}  // namespace lacon
