#include "core/state.hpp"

#include <cassert>

#include "runtime/fault.hpp"

namespace lacon {

namespace {

// Estimated heap cost of one interned state: the node itself, its vector
// payloads, and a flat allowance for the index entry + allocator overhead.
std::size_t state_footprint(const GlobalState& s) noexcept {
  return sizeof(GlobalState) + s.env.capacity() * sizeof(std::int64_t) +
         s.locals.capacity() * sizeof(ViewId) +
         s.decisions.capacity() * sizeof(Value) + 64;
}

}  // namespace

bool agree_modulo(const GlobalState& x, const GlobalState& y, ProcessId j) {
  assert(x.locals.size() == y.locals.size());
  if (x.env != y.env) return false;
  const int n = static_cast<int>(x.locals.size());
  for (ProcessId i = 0; i < n; ++i) {
    if (i == j) continue;
    const auto idx = static_cast<std::size_t>(i);
    if (x.locals[idx] != y.locals[idx]) return false;
    if (x.decisions[idx] != y.decisions[idx]) return false;
  }
  return true;
}

StateId StateArena::intern(GlobalState s) {
  fault::maybe_throw_alloc_fault();
  const std::uint64_t h = content_hash(s);  // once, outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key{h, &s});
  if (it != index_.end()) return it->second;
  approx_bytes_.fetch_add(state_footprint(s), std::memory_order_relaxed);
  const auto idx = states_.push_back(std::move(s));
  const StateId id = static_cast<StateId>(idx);
  index_.emplace(Key{h, &states_[idx]}, id);
  return id;
}

}  // namespace lacon
