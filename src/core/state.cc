#include "core/state.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/fault.hpp"
#include "runtime/stats.hpp"

namespace lacon {

namespace {

// Deterministic per-state byte estimate: header + flat payload + a flat
// allowance for the shard-index entry. A pure function of the state's
// content — never of pool occupancy or vector capacities — so the guard's
// memory budget reads the same total at a depth boundary for every worker
// count (chunk-tail waste in the pool varies with scheduling and is
// deliberately not counted).
std::size_t state_footprint(std::size_t env_len, std::size_t n) noexcept {
  const std::size_t words = env_len + 2 * ((n + 1) / 2);
  return 16 /* header */ + words * sizeof(std::int64_t) + 48 /* index */;
}

std::size_t parse_shard_env() noexcept {
  constexpr std::size_t kDefault = 64;
  const char* raw = std::getenv("LACON_ARENA_SHARDS");
  if (raw == nullptr || *raw == '\0') return kDefault;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (errno == ERANGE || end == raw || *end != '\0' || v < 1 || v > 1024) {
    std::fprintf(stderr,
                 "lacon: ignoring malformed LACON_ARENA_SHARDS=%s "
                 "(want an integer in [1, 1024]); using %zu\n",
                 raw, kDefault);
    return kDefault;
  }
  // Round up to a power of two so shard_for can mask.
  std::size_t shards = 1;
  while (shards < static_cast<std::size_t>(v)) shards *= 2;
  return shards;
}

}  // namespace

std::size_t arena_shard_count() noexcept {
  static const std::size_t shards = parse_shard_env();
  return shards;
}

bool operator==(const StateRef& a, const StateRef& b) noexcept {
  return std::equal(a.env.begin(), a.env.end(), b.env.begin(), b.env.end()) &&
         std::equal(a.locals.begin(), a.locals.end(), b.locals.begin(),
                    b.locals.end()) &&
         std::equal(a.decisions.begin(), a.decisions.end(),
                    b.decisions.begin(), b.decisions.end());
}

bool agree_modulo(const StateRef& x, const StateRef& y, ProcessId j) {
  assert(x.locals.size() == y.locals.size());
  if (!std::equal(x.env.begin(), x.env.end(), y.env.begin(), y.env.end())) {
    return false;
  }
  const int n = static_cast<int>(x.locals.size());
  for (ProcessId i = 0; i < n; ++i) {
    if (i == j) continue;
    const auto idx = static_cast<std::size_t>(i);
    if (x.locals[idx] != y.locals[idx]) return false;
    if (x.decisions[idx] != y.decisions[idx]) return false;
  }
  return true;
}

StateArena::StateArena()
    : shard_mask_(arena_shard_count() - 1),
      shards_(std::make_unique<Shard[]>(arena_shard_count())),
      hits_(&runtime::Stats::global().counter("arena.state_hits")),
      misses_(&runtime::Stats::global().counter("arena.state_misses")),
      restored_(&runtime::Stats::global().counter("arena.state_restored")),
      shard_waits_(
          &runtime::Stats::global().counter("arena.state_shard_waits")) {}

StateId StateArena::intern(GlobalState s) {
  return intern_impl(std::move(s), misses_);
}

StateId StateArena::restore(GlobalState s) {
  return intern_impl(std::move(s), restored_);
}

StateId StateArena::intern_impl(GlobalState s,
                                runtime::Counter* miss_counter) {
  fault::maybe_throw_alloc_fault();
  assert(s.decisions.size() == s.locals.size() &&
         "GlobalState carries one decision slot per process");
  const StateRef candidate(s);
  const std::uint64_t h = content_hash(candidate);  // once, outside the lock
  Shard& sh = shard_for(h);
  std::unique_lock<std::mutex> lock(sh.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard_waits_->increment();  // contended: another intern holds this shard
    lock.lock();
  }
  auto [lo, hi] = sh.index.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (state(it->second) == candidate) {
      hits_->increment();
      return it->second;
    }
  }
  // Miss: copy the payload into the pool, claim a dense id, publish the
  // header, then index it. Only the index insert needs the shard lock for
  // correctness, but holding it across the copy also serialises racing
  // equal-content interns (same hash -> same shard), so they agree on one id.
  const std::size_t n = s.locals.size();
  const std::size_t lanes = lane_words(n);
  const std::size_t words = s.env.size() + 2 * lanes;
  Header hd;
  hd.env_len = static_cast<std::uint32_t>(s.env.size());
  hd.n = static_cast<std::uint32_t>(n);
  if (words != 0) {
    hd.offset = pool_.alloc(words);
    std::int64_t* base = pool_.mutable_data(hd.offset);
    std::copy(s.env.begin(), s.env.end(), base);
    std::int64_t* lanes_base = base + s.env.size();
    if (n % 2 != 0) {  // zero the padding halves of odd-count 32-bit lanes
      lanes_base[lanes - 1] = 0;
      lanes_base[2 * lanes - 1] = 0;
    }
    std::memcpy(lanes_base, s.locals.data(), n * sizeof(ViewId));
    std::memcpy(lanes_base + lanes, s.decisions.data(), n * sizeof(Value));
  }
  const StateId id =
      static_cast<StateId>(next_id_.fetch_add(1, std::memory_order_acq_rel));
  headers_.slot(static_cast<std::size_t>(id)) = hd;
  approx_bytes_.fetch_add(state_footprint(s.env.size(), n),
                          std::memory_order_relaxed);
  sh.index.emplace(h, id);
  miss_counter->increment();
  return id;
}

}  // namespace lacon
