#include "core/state.hpp"

#include <cassert>

namespace lacon {

bool agree_modulo(const GlobalState& x, const GlobalState& y, ProcessId j) {
  assert(x.locals.size() == y.locals.size());
  if (x.env != y.env) return false;
  const int n = static_cast<int>(x.locals.size());
  for (ProcessId i = 0; i < n; ++i) {
    if (i == j) continue;
    const auto idx = static_cast<std::size_t>(i);
    if (x.locals[idx] != y.locals[idx]) return false;
    if (x.decisions[idx] != y.decisions[idx]) return false;
  }
  return true;
}

StateId StateArena::intern(GlobalState s) {
  const std::uint64_t h = content_hash(s);  // once, outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key{h, &s});
  if (it != index_.end()) return it->second;
  const auto idx = states_.push_back(std::move(s));
  const StateId id = static_cast<StateId>(idx);
  index_.emplace(Key{h, &states_[idx]}, id);
  return id;
}

}  // namespace lacon
