#include "core/state.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/fault.hpp"
#include "runtime/simd_dispatch.hpp"
#include "runtime/stats.hpp"

namespace lacon {

namespace {

// Deterministic per-state byte estimate: header + flat payload + a flat
// allowance for the shard-index entry. A pure function of the state's
// content — never of pool occupancy or vector capacities — so the guard's
// memory budget reads the same total at a depth boundary for every worker
// count (chunk-tail waste in the pool varies with scheduling and is
// deliberately not counted).
std::size_t state_footprint(std::size_t env_len, std::size_t n) noexcept {
  const std::size_t words = env_len + 2 * ((n + 1) / 2);
  return 16 /* header */ + words * sizeof(std::int64_t) + 48 /* index */;
}

std::size_t parse_shard_env() noexcept {
  constexpr std::size_t kDefault = 64;
  const char* raw = std::getenv("LACON_ARENA_SHARDS");
  if (raw == nullptr || *raw == '\0') return kDefault;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (errno == ERANGE || end == raw || *end != '\0' || v < 1 || v > 1024) {
    std::fprintf(stderr,
                 "lacon: ignoring malformed LACON_ARENA_SHARDS=%s "
                 "(want an integer in [1, 1024]); using %zu\n",
                 raw, kDefault);
    return kDefault;
  }
  // Round up to a power of two so shard_for can mask.
  std::size_t shards = 1;
  while (shards < static_cast<std::size_t>(v)) shards *= 2;
  return shards;
}

}  // namespace

std::size_t arena_shard_count() noexcept {
  static const std::size_t shards = parse_shard_env();
  return shards;
}

bool operator==(const StateRef& a, const StateRef& b) noexcept {
  if (a.env.size() != b.env.size() || a.locals.size() != b.locals.size() ||
      a.decisions.size() != b.decisions.size()) {
    return false;
  }
  const simd::Kernels& k = simd::active();
  const std::size_t n = a.locals.size();
  return k.words_equal(a.env.data(), b.env.data(), a.env.size()) &&
         k.lanes_equal_skip(a.locals.data(), b.locals.data(), n,
                            simd::kNoSkip) &&
         k.lanes_equal_skip(a.decisions.data(), b.decisions.data(), n,
                            simd::kNoSkip);
}

bool agree_modulo(const StateRef& x, const StateRef& y, ProcessId j) {
  assert(x.locals.size() == y.locals.size());
  if (x.env.size() != y.env.size()) return false;
  // The kernels read exactly size() elements, so vector-backed candidate
  // refs (no padded tail) and pool-backed refs mix freely here.
  const simd::Kernels& k = simd::active();
  if (!k.words_equal(x.env.data(), y.env.data(), x.env.size())) return false;
  const std::size_t n = x.locals.size();
  const auto skip = static_cast<std::size_t>(j);  // j == -1 -> kNoSkip
  return k.lanes_equal_skip(x.locals.data(), y.locals.data(), n, skip) &&
         k.lanes_equal_skip(x.decisions.data(), y.decisions.data(), n, skip);
}

StateArena::StateArena()
    : shard_mask_(arena_shard_count() - 1),
      shards_(std::make_unique<Shard[]>(arena_shard_count())),
      hits_(&runtime::Stats::global().counter("arena.state_hits")),
      misses_(&runtime::Stats::global().counter("arena.state_misses")),
      restored_(&runtime::Stats::global().counter("arena.state_restored")),
      mapped_(&runtime::Stats::global().counter("arena.state_mapped")),
      shard_waits_(
          &runtime::Stats::global().counter("arena.state_shard_waits")) {}

void StateArena::adopt_mapped_region(const std::int64_t* base,
                                     std::shared_ptr<const void> keepalive) {
  assert(size() == 0 && "mapped adoption requires an empty arena");
  mapped_base_ = base;
  mapped_keepalive_ = std::move(keepalive);
}

StateId StateArena::restore_mapped(const StateRef& s,
                                   std::uint64_t word_offset,
                                   std::uint64_t hash) {
  fault::maybe_throw_alloc_fault();
  assert(mapped_base_ != nullptr && "adopt_mapped_region first");
  assert(s.decisions.size() == s.locals.size() &&
         "StateRef carries one decision slot per process");
  assert(s.locals.size() % 2 == 0 &&
         "mapped adoption is even-n only (the pool pads odd-count lanes, "
         "the disk record does not)");
  assert(hash == content_hash(s) && "hash must be content_hash(s)");
  Shard& sh = shard_for(hash);
  std::unique_lock<std::mutex> lock(sh.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard_waits_->increment();
    lock.lock();
  }
  auto [lo, hi] = sh.index.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (state(it->second) == s) {
      hits_->increment();
      return it->second;
    }
  }
  Header hd;
  hd.offset = word_offset;
  hd.env_len = static_cast<std::uint32_t>(s.env.size());
  hd.n = static_cast<std::uint32_t>(s.locals.size());
  const StateId id =
      static_cast<StateId>(next_id_.fetch_add(1, std::memory_order_acq_rel));
  headers_.slot(static_cast<std::size_t>(id)) = hd;
  // Adoption runs in stored-id order into an empty arena, so the mapped
  // prefix stays dense: every id below mapped_count_ resolves through the
  // mapping, everything at or above it through the pool.
  mapped_count_ = static_cast<std::size_t>(id) + 1;
  // Identical byte accounting to intern/restore: the guard's memory budget
  // must read the same total for the same content on every load path, or
  // truncation depths would differ between mmap and streaming warm starts.
  approx_bytes_.fetch_add(state_footprint(s.env.size(), s.locals.size()),
                          std::memory_order_relaxed);
  sh.index.emplace(hash, id);
  restored_->increment();
  mapped_->increment();
  return id;
}

StateId StateArena::intern(GlobalState s) {
  return intern_impl(std::move(s), misses_);
}

StateId StateArena::restore(GlobalState s) {
  return intern_impl(std::move(s), restored_);
}

StateId StateArena::intern_impl(GlobalState s,
                                runtime::Counter* miss_counter) {
  fault::maybe_throw_alloc_fault();
  assert(s.decisions.size() == s.locals.size() &&
         "GlobalState carries one decision slot per process");
  const StateRef candidate(s);
  const std::uint64_t h = content_hash(candidate);  // once, outside the lock
  Shard& sh = shard_for(h);
  std::unique_lock<std::mutex> lock(sh.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard_waits_->increment();  // contended: another intern holds this shard
    lock.lock();
  }
  auto [lo, hi] = sh.index.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (state(it->second) == candidate) {
      hits_->increment();
      return it->second;
    }
  }
  // Miss: copy the payload into the pool, claim a dense id, publish the
  // header, then index it. Only the index insert needs the shard lock for
  // correctness, but holding it across the copy also serialises racing
  // equal-content interns (same hash -> same shard), so they agree on one id.
  const std::size_t n = s.locals.size();
  const std::size_t lanes = lane_words(n);
  const std::size_t words = s.env.size() + 2 * lanes;
  Header hd;
  hd.env_len = static_cast<std::uint32_t>(s.env.size());
  hd.n = static_cast<std::uint32_t>(n);
  if (words != 0) {
    hd.offset = pool_.alloc(words);
    std::int64_t* base = pool_.mutable_data(hd.offset);
    std::copy(s.env.begin(), s.env.end(), base);
    std::int64_t* lanes_base = base + s.env.size();
    if (n % 2 != 0) {  // zero the padding halves of odd-count 32-bit lanes
      lanes_base[lanes - 1] = 0;
      lanes_base[2 * lanes - 1] = 0;
    }
    std::memcpy(lanes_base, s.locals.data(), n * sizeof(ViewId));
    std::memcpy(lanes_base + lanes, s.decisions.data(), n * sizeof(Value));
#ifndef NDEBUG
    if (n % 2 != 0) {
      // SIMD kernels may read whole packed words; the odd-n padding lanes
      // must stay zero forever (intern AND restore both land here). See
      // DESIGN.md §13 and the store_test restored-padding case.
      assert(reinterpret_cast<const std::uint32_t*>(lanes_base)[n] == 0 &&
             "odd-n locals padding lane must be zero");
      assert(reinterpret_cast<const std::uint32_t*>(lanes_base + lanes)[n] ==
                 0 &&
             "odd-n decisions padding lane must be zero");
    }
#endif
  }
  const StateId id =
      static_cast<StateId>(next_id_.fetch_add(1, std::memory_order_acq_rel));
  headers_.slot(static_cast<std::size_t>(id)) = hd;
  approx_bytes_.fetch_add(state_footprint(s.env.size(), n),
                          std::memory_order_relaxed);
  sh.index.emplace(h, id);
  miss_counter->increment();
  return id;
}

}  // namespace lacon
