#include "core/view.hpp"

#include <cassert>

#include "runtime/fault.hpp"

namespace lacon {

ViewArena::ViewArena(int n) : n_(n) { assert(n >= 2 && n < 62); }

ViewId ViewArena::initial(ProcessId owner, Value input) {
  assert(owner >= 0 && owner < n_);
  assert(input >= 0);
  return intern(ViewNode{owner, 0, input, kNoView, {}});
}

ViewId ViewArena::extend(ViewId prev, std::vector<Obs> obs) {
  assert(prev != kNoView);
  const ViewNode& p = node(prev);
#ifndef NDEBUG
  for (std::size_t i = 1; i < obs.size(); ++i) {
    assert(obs[i - 1].source <= obs[i].source && "observations must be sorted");
  }
#endif
  return intern(ViewNode{p.owner, p.round + 1, p.input, prev, std::move(obs)});
}

ViewId ViewArena::intern(ViewNode node) {
  fault::maybe_throw_alloc_fault();
  const std::uint64_t h = content_hash(node);  // once, outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key{h, &node});
  if (it != index_.end()) return it->second;
  approx_bytes_.fetch_add(sizeof(ViewNode) + node.obs.capacity() * sizeof(Obs) + 64,
                          std::memory_order_relaxed);
  const auto idx = nodes_.push_back(std::move(node));
  const ViewId id = static_cast<ViewId>(idx);
  index_.emplace(Key{h, &nodes_[idx]}, id);
  return id;
}

const std::vector<Value>& ViewArena::known_inputs(ViewId id) {
  {
    std::lock_guard<std::mutex> lock(known_mu_);
    auto it = known_inputs_cache_.find(id);
    if (it != known_inputs_cache_.end()) return it->second;
  }
  // Compute outside the lock: the recursion below re-enters known_inputs.
  // Racing computations of the same view are idempotent; the emplace at the
  // end keeps whichever copy was inserted first.
  const ViewNode& v = node(id);
  std::vector<Value> known;
  if (v.prev == kNoView) {
    known.assign(static_cast<std::size_t>(n_), kUnknownInput);
  } else {
    known = known_inputs(v.prev);
  }
  known[static_cast<std::size_t>(v.owner)] = v.input;
  for (const Obs& o : v.obs) {
    if (o.view == kNoView) continue;
    const std::vector<Value>& sub = known_inputs(o.view);
    for (int j = 0; j < n_; ++j) {
      if (sub[static_cast<std::size_t>(j)] != kUnknownInput) {
        known[static_cast<std::size_t>(j)] = sub[static_cast<std::size_t>(j)];
      }
    }
  }
  std::lock_guard<std::mutex> lock(known_mu_);
  return known_inputs_cache_.emplace(id, std::move(known)).first->second;
}

std::string ViewArena::to_string(ViewId id) const {
  const ViewNode& v = node(id);
  std::string out =
      "p" + std::to_string(v.owner) + "@" + std::to_string(v.round);
  if (v.prev == kNoView) {
    out += "(in=" + std::to_string(v.input) + ")";
    return out;
  }
  out += "<" + to_string(v.prev);
  for (const Obs& o : v.obs) {
    out += ", " + std::to_string(o.source) + ":";
    out += (o.view == kNoView) ? "-" : to_string(o.view);
  }
  return out + ">";
}

}  // namespace lacon
