#include "core/view.hpp"

#include <cassert>

#include "core/state.hpp"  // arena_shard_count
#include "runtime/fault.hpp"
#include "runtime/stats.hpp"

namespace lacon {

ViewArena::ViewArena(int n)
    : n_(n),
      shard_mask_(arena_shard_count() - 1),
      shards_(std::make_unique<Shard[]>(arena_shard_count())),
      hits_(&runtime::Stats::global().counter("arena.view_hits")),
      misses_(&runtime::Stats::global().counter("arena.view_misses")),
      restored_(&runtime::Stats::global().counter("arena.view_restored")),
      shard_waits_(
          &runtime::Stats::global().counter("arena.view_shard_waits")) {
  assert(n >= 2 && n < 62);
}

ViewArena::~ViewArena() {
  // Memo slots own their vectors; interning has quiesced by destruction
  // time, so a relaxed sweep over the claimed id range suffices.
  const std::size_t count = next_id_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const auto* slot = known_memo_.try_get(i);
    if (slot == nullptr) continue;
    delete slot->load(std::memory_order_acquire);
  }
}

ViewId ViewArena::initial(ProcessId owner, Value input) {
  assert(owner >= 0 && owner < n_);
  assert(input >= 0);
  return intern(ViewNode{owner, 0, input, kNoView, {}});
}

ViewId ViewArena::extend(ViewId prev, std::vector<Obs> obs) {
  assert(prev != kNoView);
  const ViewNode& p = node(prev);
#ifndef NDEBUG
  for (std::size_t i = 1; i < obs.size(); ++i) {
    assert(obs[i - 1].source <= obs[i].source && "observations must be sorted");
  }
#endif
  return intern(ViewNode{p.owner, p.round + 1, p.input, prev, std::move(obs)});
}

ViewId ViewArena::restore(ViewNode node) {
  assert(node.owner >= 0 && node.owner < n_);
  return intern_impl(std::move(node), restored_);
}

ViewId ViewArena::intern(ViewNode nd) {
  return intern_impl(std::move(nd), misses_);
}

ViewId ViewArena::intern_impl(ViewNode nd, runtime::Counter* miss_counter) {
  fault::maybe_throw_alloc_fault();
  const std::uint64_t h = content_hash(nd);  // once, outside the lock
  Shard& sh = shard_for(h);
  std::unique_lock<std::mutex> lock(sh.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard_waits_->increment();
    lock.lock();
  }
  auto [lo, hi] = sh.index.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (node(it->second) == nd) {
      hits_->increment();
      return it->second;
    }
  }
  // Footprint uses obs.size(), not capacity(): the estimate must be a pure
  // function of the node's content so guard byte accounting is identical
  // for every worker count (see StateArena::approx_bytes).
  approx_bytes_.fetch_add(sizeof(ViewNode) + nd.obs.size() * sizeof(Obs) + 64,
                          std::memory_order_relaxed);
  const std::size_t idx = next_id_.fetch_add(1, std::memory_order_acq_rel);
  const ViewId id = static_cast<ViewId>(idx);
  nodes_.slot(idx) = std::move(nd);
  sh.index.emplace(h, id);
  miss_counter->increment();
  return id;
}

const std::vector<Value>& ViewArena::known_inputs(ViewId id) {
  auto& slot = known_memo_.slot(static_cast<std::size_t>(id));
  if (const auto* cached = slot.load(std::memory_order_acquire)) {
    return *cached;
  }
  // Compute without holding anything: the recursion below re-enters
  // known_inputs. Racing computations of the same view are idempotent; the
  // CAS publishes the first finisher's copy and losers delete theirs.
  const ViewNode& v = node(id);
  std::vector<Value> known;
  if (v.prev == kNoView) {
    known.assign(static_cast<std::size_t>(n_), kUnknownInput);
  } else {
    known = known_inputs(v.prev);
  }
  known[static_cast<std::size_t>(v.owner)] = v.input;
  for (const Obs& o : v.obs) {
    if (o.view == kNoView) continue;
    const std::vector<Value>& sub = known_inputs(o.view);
    for (int j = 0; j < n_; ++j) {
      if (sub[static_cast<std::size_t>(j)] != kUnknownInput) {
        known[static_cast<std::size_t>(j)] = sub[static_cast<std::size_t>(j)];
      }
    }
  }
  auto* mine = new std::vector<Value>(std::move(known));
  const std::vector<Value>* expected = nullptr;
  if (slot.compare_exchange_strong(expected, mine, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *mine;
  }
  delete mine;
  return *expected;
}

std::string ViewArena::to_string(ViewId id) const {
  const ViewNode& v = node(id);
  std::string out =
      "p" + std::to_string(v.owner) + "@" + std::to_string(v.round);
  if (v.prev == kNoView) {
    out += "(in=" + std::to_string(v.input) + ")";
    return out;
  }
  out += "<" + to_string(v.prev);
  for (const Obs& o : v.obs) {
    out += ", " + std::to_string(o.source) + ":";
    out += (o.view == kNoView) ? "-" : to_string(o.view);
  }
  return out + ">";
}

}  // namespace lacon
