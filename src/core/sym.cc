#include "core/sym.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "core/model.hpp"
#include "runtime/stats.hpp"

namespace lacon::sym {
namespace {

// Seeds for the two independent halves of the 128-bit rewrite keys and for
// the shape hash ("symshp", "symk1", "symk2" in ASCII).
constexpr std::uint64_t kShapeSeed = 0x73796d736870ULL;
constexpr std::uint64_t kKeySeedA = 0x73796d6b31ULL;
constexpr std::uint64_t kKeySeedB = 0x73796d6b32ULL;
// Stand-ins for kNoView in the recursive hashes.
constexpr std::uint64_t kAbsent = 0x6e6f76696577ULL;  // "noview"

constexpr std::uint64_t kMaskComputed = std::uint64_t{1} << 63;

// Canonical memo key for any relabeling that is the identity on a view's
// relevant process set (all nibbles masked).
constexpr std::uint64_t kIdentityPacked = ~std::uint64_t{0};

// -1 = no override active; 0/1 = forced off/on. ScopedSymmetry keeps the
// previous value, so overrides nest.
std::atomic<int> g_override{-1};

void warn_symmetry_once(const char* text) noexcept {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "lacon: unrecognized LACON_SYMMETRY value \"%s\" "
                 "(expected \"off\" or \"on\"); keeping default\n",
                 text);
  }
}

// Lexicographic three-way compare of equal-purpose key vectors.
int compare_keys(const std::vector<std::uint64_t>& a,
                 const std::vector<std::uint64_t>& b) noexcept {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

// Total order on materialized states, used only to break 128-bit key
// collisions between genuinely different orbit members. Compares raw
// content including interned ids, so it is stable within a run (which is
// all soundness needs — see the header comment) even though the specific
// winner could differ across runs in the astronomically unlikely collision
// case.
bool state_content_less(const GlobalState& a, const GlobalState& b) noexcept {
  if (a.env != b.env) return a.env < b.env;
  if (a.locals != b.locals) return a.locals < b.locals;
  return a.decisions < b.decisions;
}

}  // namespace

bool parse_symmetry(const char* text, bool fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  if (std::strcmp(text, "off") == 0) return false;
  if (std::strcmp(text, "on") == 0) return true;
  warn_symmetry_once(text);
  return fallback;
}

bool enabled() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return parse_symmetry(std::getenv("LACON_SYMMETRY"), false);
}

ScopedSymmetry::ScopedSymmetry(bool on) noexcept
    : previous_(g_override.exchange(on ? 1 : 0, std::memory_order_relaxed)) {}

ScopedSymmetry::~ScopedSymmetry() {
  g_override.store(previous_, std::memory_order_relaxed);
}

std::uint64_t factorial(int n) noexcept {
  assert(n >= 0 && n <= 20);
  std::uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

Relabeling::Relabeling(Canonicalizer* canon, Permutation perm)
    : canon_(canon), perm_(std::move(perm)), inv_(perm_.size()) {
  for (std::size_t p = 0; p < perm_.size(); ++p) {
    inv_[static_cast<std::size_t>(perm_[p])] = static_cast<ProcessId>(p);
  }
}

std::pair<std::uint64_t, std::uint64_t> Relabeling::rewrite_key(ViewId v) {
  return canon_->rewrite_key(v, inv_);
}

ViewId Relabeling::rewrite(ViewId v) { return canon_->rewrite(v, inv_); }

Canonicalizer::Canonicalizer(ViewArena& views, int n)
    : views_(&views),
      n_(n),
      memo_(new MemoShard[kMemoShards]),
      rewrites_(&runtime::Stats::global().counter("arena.sym_rewrites")) {
  assert(n >= 1);
}

std::uint64_t Canonicalizer::shape(ViewId v) {
  auto& slot = shape_memo_.slot(static_cast<std::size_t>(v));
  const std::uint64_t cached = slot.load(std::memory_order_acquire);
  if (cached != 0) return cached >> 1;
  const ViewNode& node = views_->node(v);
  std::uint64_t h =
      hash_combine(kShapeSeed, static_cast<std::uint64_t>(node.round));
  h = hash_combine(h, static_cast<std::uint64_t>(node.input));
  h = hash_combine(h, node.prev == kNoView ? kAbsent : shape(node.prev));
  // Observations fold commutatively: relabeling re-sorts the obs list, so
  // the erased structure must hash as a multiset.
  std::uint64_t acc = 0;
  for (const Obs& o : node.obs) {
    acc += mix64((o.view == kNoView ? kAbsent : shape(o.view)) ^ kShapeSeed);
  }
  h = hash_combine(h, node.obs.size());
  h = hash_combine(h, acc);
  // Stored as (h << 1) | 1 so that 0 keeps meaning "unset" (the top hash
  // bit is sacrificed); racing computes agree, so plain store is fine.
  const std::uint64_t stored = (h << 1) | 1;
  slot.store(stored, std::memory_order_release);
  return stored >> 1;
}

std::uint64_t Canonicalizer::relevant_mask(ViewId v) {
  auto& slot = mask_memo_.slot(static_cast<std::size_t>(v));
  const std::uint64_t cached = slot.load(std::memory_order_acquire);
  if (cached & kMaskComputed) return cached & ~kMaskComputed;
  const ViewNode& node = views_->node(v);
  std::uint64_t m = std::uint64_t{1} << node.owner;
  if (node.prev != kNoView) m |= relevant_mask(node.prev);
  for (const Obs& o : node.obs) {
    m |= std::uint64_t{1} << o.source;
    if (o.view != kNoView) m |= relevant_mask(o.view);
  }
  slot.store(m | kMaskComputed, std::memory_order_release);
  return m;
}

std::uint64_t Canonicalizer::packed_masked(ViewId v, const Permutation& inv,
                                           bool* identity) {
  const std::uint64_t mask = relevant_mask(v);
  bool ident = true;
  for (int i = 0; i < n_; ++i) {
    if (((mask >> i) & 1) != 0 && inv[static_cast<std::size_t>(i)] != i) {
      ident = false;
      break;
    }
  }
  *identity = ident;
  // Every identity-on-relevant-set restriction shares one memo entry.
  if (ident) return kIdentityPacked;
  // 4-bit packing: LayeredModel gates the quotient to n <= 15, so a real
  // target index never collides with the 0xF "irrelevant" sentinel.
  assert(n_ <= 15);
  std::uint64_t packed = 0;
  for (int i = 0; i < n_; ++i) {
    const std::uint64_t nib =
        ((mask >> i) & 1) != 0
            ? static_cast<std::uint64_t>(inv[static_cast<std::size_t>(i)])
            : 0xF;
    packed |= nib << (4 * i);
  }
  return packed;
}

std::pair<std::uint64_t, std::uint64_t> Canonicalizer::rewrite_key(
    ViewId v, const Permutation& inv) {
  bool ident = false;
  const std::uint64_t packed = packed_masked(v, inv, &ident);
  const std::pair<std::uint64_t, std::uint64_t> memo_key{
      static_cast<std::uint64_t>(v), packed};
  MemoShard& sh = memo_shard(v);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.keys.find(memo_key);
    if (it != sh.keys.end()) return it->second;
  }
  const ViewNode& node = views_->node(v);
  const ProcessId owner = inv[static_cast<std::size_t>(node.owner)];
  std::uint64_t a = hash_combine(kKeySeedA, static_cast<std::uint64_t>(owner));
  std::uint64_t b = hash_combine(kKeySeedB, static_cast<std::uint64_t>(owner));
  a = hash_combine(a, static_cast<std::uint64_t>(node.round));
  b = hash_combine(b, static_cast<std::uint64_t>(node.round));
  a = hash_combine(a, static_cast<std::uint64_t>(node.input));
  b = hash_combine(b, static_cast<std::uint64_t>(node.input));
  std::pair<std::uint64_t, std::uint64_t> prev{kAbsent, kAbsent};
  if (node.prev != kNoView) prev = rewrite_key(node.prev, inv);
  a = hash_combine(a, prev.first);
  b = hash_combine(b, prev.second);
  // Hash observations in the order the rewritten view stores them: sorted
  // by mapped source. The sort is stable, which keeps same-source
  // observations in stored order — for the message-passing model those are
  // prev-chain related, so stored order is round order and survives the
  // rewrite (ids grow along prev chains).
  std::vector<std::uint32_t> order(node.obs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return inv[static_cast<std::size_t>(node.obs[x].source)] <
                            inv[static_cast<std::size_t>(node.obs[y].source)];
                   });
  a = hash_combine(a, node.obs.size());
  b = hash_combine(b, node.obs.size());
  for (const std::uint32_t idx : order) {
    const Obs& o = node.obs[idx];
    const ProcessId src = inv[static_cast<std::size_t>(o.source)];
    a = hash_combine(a, static_cast<std::uint64_t>(src));
    b = hash_combine(b, static_cast<std::uint64_t>(src));
    std::pair<std::uint64_t, std::uint64_t> k{kAbsent, kAbsent};
    if (o.view != kNoView) k = rewrite_key(o.view, inv);
    a = hash_combine(a, k.first);
    b = hash_combine(b, k.second);
  }
  const std::pair<std::uint64_t, std::uint64_t> result{a, b};
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.keys.emplace(memo_key, result);
  return result;
}

ViewId Canonicalizer::rewrite(ViewId v, const Permutation& inv) {
  bool ident = false;
  const std::uint64_t packed = packed_masked(v, inv, &ident);
  if (ident) return v;
  const std::pair<std::uint64_t, std::uint64_t> memo_key{
      static_cast<std::uint64_t>(v), packed};
  MemoShard& sh = memo_shard(v);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.views.find(memo_key);
    if (it != sh.views.end()) return it->second;
  }
  const ViewNode& node = views_->node(v);
  ViewId out;
  if (node.round == 0) {
    out = views_->initial(inv[static_cast<std::size_t>(node.owner)],
                          node.input);
  } else {
    const ViewId prev = rewrite(node.prev, inv);
    std::vector<std::uint32_t> order(node.obs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       return inv[static_cast<std::size_t>(
                                  node.obs[x].source)] <
                              inv[static_cast<std::size_t>(
                                  node.obs[y].source)];
                     });
    std::vector<Obs> obs;
    obs.reserve(node.obs.size());
    for (const std::uint32_t idx : order) {
      const Obs& o = node.obs[idx];
      obs.push_back(Obs{inv[static_cast<std::size_t>(o.source)],
                        o.view == kNoView ? kNoView : rewrite(o.view, inv)});
    }
    out = views_->extend(prev, std::move(obs));
  }
  rewrites_->increment();
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.views.emplace(memo_key, out);
  return out;
}

void Canonicalizer::build_key(const LayeredModel& model, const StateRef& s,
                              Relabeling& rel,
                              std::vector<std::uint64_t>* out) {
  out->clear();
  const std::size_t n = s.locals.size();
  // (1) permuted decision vector — exact, no hashing needed;
  for (std::size_t p = 0; p < n; ++p) {
    out->push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(
        s.decisions[static_cast<std::size_t>(rel.old_at(p))])));
  }
  // (2) the model's environment key;
  model.sym_env_key(s, rel, out);
  // (3) per-position 128-bit relabeled-view keys.
  for (std::size_t p = 0; p < n; ++p) {
    const auto k =
        rel.rewrite_key(s.locals[static_cast<std::size_t>(rel.old_at(p))]);
    out->push_back(k.first);
    out->push_back(k.second);
  }
}

GlobalState Canonicalizer::permute(const LayeredModel& model,
                                   const StateRef& s,
                                   const Permutation& perm) {
  Relabeling rel(this, perm);
  const std::size_t n = s.locals.size();
  GlobalState out;
  out.locals.resize(n);
  out.decisions.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto old = static_cast<std::size_t>(perm[p]);
    out.locals[p] = rel.rewrite(s.locals[old]);
    out.decisions[p] = s.decisions[old];
  }
  out.env = model.sym_permute_env(s, rel);
  return out;
}

std::uint64_t Canonicalizer::canonicalize(const LayeredModel& model,
                                          GlobalState* s, bool* folded) {
  *folded = false;
  const int n = static_cast<int>(s->locals.size());
  assert(n == n_);

  // Permutation-invariant per-process shape keys.
  std::vector<std::uint64_t> shape_keys(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    shape_keys[idx] = hash_combine(
        shape(s->locals[idx]), static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(s->decisions[idx])));
  }

  // Processes sorted by shape key; equal-key runs are the tie groups whose
  // internal orderings form the candidate set. Any permutation achieving
  // the minimal canonical key sorts the (hashed) shape sequence, so the
  // true orbit minimum is always among these candidates.
  Permutation order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](ProcessId x, ProcessId y) {
    const std::uint64_t kx = shape_keys[static_cast<std::size_t>(x)];
    const std::uint64_t ky = shape_keys[static_cast<std::size_t>(y)];
    return kx != ky ? kx < ky : x < y;
  });
  std::vector<std::pair<int, int>> groups;  // [begin, end) runs in `order`
  for (int b = 0; b < n;) {
    int e = b + 1;
    while (e < n &&
           shape_keys[static_cast<std::size_t>(order[static_cast<std::size_t>(
               e)])] ==
               shape_keys[static_cast<std::size_t>(
                   order[static_cast<std::size_t>(b)])]) {
      ++e;
    }
    groups.push_back({b, e});
    b = e;
  }

  Permutation perm = order;
  Permutation best_perm;
  std::vector<std::uint64_t> best_key, cand_key;
  GlobalState best_state;
  bool best_materialized = false;
  std::uint64_t stab = 1;
  bool first = true;
  while (true) {
    Relabeling rel(this, perm);
    build_key(model, *s, rel, &cand_key);
    if (first) {
      best_key.swap(cand_key);
      best_perm = perm;
      first = false;
    } else {
      const int c = compare_keys(cand_key, best_key);
      if (c < 0) {
        best_key.swap(cand_key);
        best_perm = perm;
        best_materialized = false;
        stab = 1;
      } else if (c == 0) {
        // Exact tie resolution: materialize (memoized — stabilizer
        // candidates intern straight onto existing views) and compare, so
        // |Stab| is exact regardless of hash collisions.
        if (!best_materialized) {
          best_state = permute(model, *s, best_perm);
          best_materialized = true;
        }
        GlobalState cand = permute(model, *s, perm);
        if (cand == best_state) {
          ++stab;
        } else if (state_content_less(cand, best_state)) {
          best_state = std::move(cand);
          best_perm = perm;
          best_key = cand_key;
          stab = 1;
        }
      }
    }
    // Odometer over the tie groups (last group advances fastest); a
    // wrapped next_permutation leaves the range sorted, i.e. reset.
    bool advanced = false;
    for (auto g = static_cast<int>(groups.size()) - 1; g >= 0; --g) {
      if (std::next_permutation(perm.begin() + groups[static_cast<std::size_t>(
                                                   g)].first,
                                perm.begin() + groups[static_cast<std::size_t>(
                                                   g)].second)) {
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }

  if (!best_materialized) best_state = permute(model, *s, best_perm);
  if (!(best_state == *s)) *folded = true;
  *s = std::move(best_state);
  return stab;
}

std::pair<std::uint64_t, std::uint64_t> Canonicalizer::signature(
    const LayeredModel& model, const StateRef& s) {
  const std::size_t n = s.locals.size();
  Permutation identity(n);
  std::iota(identity.begin(), identity.end(), 0);
  Relabeling rel(this, std::move(identity));
  std::uint64_t a = hash_combine(0x73796d736967ULL, n);  // "symsig"
  std::uint64_t b = hash_combine(0x6c656d6d61ULL, n);    // "lemma"
  for (std::size_t p = 0; p < n; ++p) {
    const auto k = rel.rewrite_key(s.locals[p]);
    a = hash_combine(a, k.first);
    b = hash_combine(b, k.second);
  }
  std::vector<std::uint64_t> env_key;
  model.sym_env_key(s, rel, &env_key);
  for (const std::uint64_t w : env_key) {
    a = hash_combine(a, w);
    b = hash_combine(b, w ^ 0x5bd1e9955bd1e995ULL);
  }
  for (const Value d : s.decisions) {
    const auto w =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(d));
    a = hash_combine(a, w);
    b = hash_combine(b, w + 0x9e3779b9ULL);
  }
  return {a, b};
}

}  // namespace lacon::sym
