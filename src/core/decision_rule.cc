#include "core/decision_rule.hpp"

#include <algorithm>

namespace lacon {
namespace {

class NeverDecide final : public DecisionRule {
 public:
  std::string name() const override { return "never-decide"; }
  std::optional<Value> decide(ProcessId, ViewId, ViewArena&) const override {
    return std::nullopt;
  }
};

// Smallest known input in the view, or nullopt if none known (cannot happen:
// a view always knows its owner's input).
std::optional<Value> min_known(ProcessId, ViewId view, ViewArena& arena) {
  std::optional<Value> best;
  for (Value v : arena.known_inputs(view)) {
    if (v == kUnknownInput) continue;
    if (!best || v < *best) best = v;
  }
  return best;
}

class MinAfterRound final : public DecisionRule {
 public:
  explicit MinAfterRound(int round) : round_(round) {}
  std::string name() const override {
    return "min-after-round-" + std::to_string(round_);
  }
  std::optional<Value> decide(ProcessId i, ViewId view,
                              ViewArena& arena) const override {
    if (arena.node(view).round < round_) return std::nullopt;
    return min_known(i, view, arena);
  }

 private:
  int round_;
};

class OwnInputAfterRound final : public DecisionRule {
 public:
  explicit OwnInputAfterRound(int round) : round_(round) {}
  std::string name() const override {
    return "own-input-after-round-" + std::to_string(round_);
  }
  std::optional<Value> decide(ProcessId, ViewId view,
                              ViewArena& arena) const override {
    const ViewNode& node = arena.node(view);
    if (node.round < round_) return std::nullopt;
    return node.input;
  }

 private:
  int round_;
};

class UnanimityThenMin final : public DecisionRule {
 public:
  explicit UnanimityThenMin(int round) : round_(round) {}
  std::string name() const override {
    return "unanimity-then-min-" + std::to_string(round_);
  }
  std::optional<Value> decide(ProcessId i, ViewId view,
                              ViewArena& arena) const override {
    const std::vector<Value>& inputs = arena.known_inputs(view);
    const bool complete =
        std::none_of(inputs.begin(), inputs.end(),
                     [](Value v) { return v == kUnknownInput; });
    if (complete &&
        std::all_of(inputs.begin(), inputs.end(),
                    [&](Value v) { return v == inputs.front(); })) {
      return inputs.front();
    }
    if (arena.node(view).round >= round_) return min_known(i, view, arena);
    return std::nullopt;
  }

 private:
  int round_;
};

class MajorityAfterRound final : public DecisionRule {
 public:
  explicit MajorityAfterRound(int round) : round_(round) {}
  std::string name() const override {
    return "majority-after-round-" + std::to_string(round_);
  }
  std::optional<Value> decide(ProcessId, ViewId view,
                              ViewArena& arena) const override {
    if (arena.node(view).round < round_) return std::nullopt;
    int zeros = 0;
    int ones = 0;
    for (Value v : arena.known_inputs(view)) {
      if (v == 0) ++zeros;
      if (v == 1) ++ones;
    }
    return ones > zeros ? 1 : 0;
  }

 private:
  int round_;
};

class MinWhenAllKnown final : public DecisionRule {
 public:
  explicit MinWhenAllKnown(int round) : round_(round) {}
  std::string name() const override {
    return "min-when-all-known-" + std::to_string(round_);
  }
  std::optional<Value> decide(ProcessId i, ViewId view,
                              ViewArena& arena) const override {
    if (arena.node(view).round < round_) return std::nullopt;
    const std::vector<Value>& inputs = arena.known_inputs(view);
    const bool complete =
        std::none_of(inputs.begin(), inputs.end(),
                     [](Value v) { return v == kUnknownInput; });
    if (!complete) return std::nullopt;
    return min_known(i, view, arena);
  }

 private:
  int round_;
};

}  // namespace

std::unique_ptr<DecisionRule> never_decide() {
  return std::make_unique<NeverDecide>();
}

std::unique_ptr<DecisionRule> min_after_round(int round) {
  return std::make_unique<MinAfterRound>(round);
}

std::unique_ptr<DecisionRule> own_input_after_round(int round) {
  return std::make_unique<OwnInputAfterRound>(round);
}

std::unique_ptr<DecisionRule> unanimity_then_min(int round) {
  return std::make_unique<UnanimityThenMin>(round);
}

std::unique_ptr<DecisionRule> majority_after_round(int round) {
  return std::make_unique<MajorityAfterRound>(round);
}

std::unique_ptr<DecisionRule> min_when_all_known(int round) {
  return std::make_unique<MinWhenAllKnown>(round);
}

}  // namespace lacon
