// Fundamental identifier and value types shared across the library.
#pragma once

#include <cstdint>

#include "util/process_set.hpp"

namespace lacon {

// Input / decision values. Inputs are non-negative; negative values are
// reserved for the sentinels below.
using Value = int;

// d_i = ⊥ : the write-once decision variable has not been written yet.
inline constexpr Value kUndecided = -1;

// An input that is not (yet) known to a process in its view.
inline constexpr Value kUnknownInput = -1;

// Index of an interned full-information view in a ViewArena.
using ViewId = std::int32_t;
inline constexpr ViewId kNoView = -1;

// Index of an interned global state in a StateArena.
using StateId = std::uint32_t;

}  // namespace lacon
