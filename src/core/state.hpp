// Global states and the hash-consing state arena.
//
// Following Section 2 of the paper, a global state is a local state for the
// environment plus a local state for every process. For our full-information
// models a process local state is its interned view plus its write-once
// decision variable d_i; the environment's local state is a model-specific
// vector of words (register contents, in-transit messages, failed set, ...).
//
// Storage is flat: the arena keeps one contiguous word pool and stores each
// interned state as a single (offset, len) region — env words first, then
// the locals and decisions packed as 32-bit lanes. Readers see a StateRef of
// spans into the pool; GlobalState (three vectors) remains the construction
// type handed to intern().
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "runtime/simd_dispatch.hpp"
#include "runtime/stable_vector.hpp"
#include "runtime/word_pool.hpp"
#include "util/hash.hpp"

namespace lacon::runtime {
class Counter;
}  // namespace lacon::runtime

namespace lacon {

struct GlobalState {
  std::vector<std::int64_t> env;  // model-specific environment encoding
  std::vector<ViewId> locals;     // per-process full-information view
  std::vector<Value> decisions;   // write-once d_i; kUndecided = ⊥

  bool operator==(const GlobalState&) const = default;
};

// A read-only, non-owning view of an interned (or about-to-be-interned)
// global state. Field names match GlobalState so read sites are
// source-compatible; the implicit constructor lets GlobalState lvalues flow
// into StateRef parameters. Spans stay valid for the arena's lifetime (pool
// chunks never move) or the GlobalState's lifetime respectively.
struct StateRef {
  std::span<const std::int64_t> env;
  std::span<const ViewId> locals;
  std::span<const Value> decisions;

  StateRef() = default;
  StateRef(const GlobalState& s) noexcept  // NOLINT: implicit by design
      : env(s.env), locals(s.locals), decisions(s.decisions) {}
  StateRef(std::span<const std::int64_t> e, std::span<const ViewId> l,
           std::span<const Value> d) noexcept
      : env(e), locals(l), decisions(d) {}
};

// Content equality (spans have no operator==).
bool operator==(const StateRef& a, const StateRef& b) noexcept;

// x and y agree modulo j: environments equal and all process local states
// (view and decision variable) equal except possibly j's (Section 2).
bool agree_modulo(const StateRef& x, const StateRef& y, ProcessId j);

// Shard count for the concurrent arenas: LACON_ARENA_SHARDS, rounded up to
// a power of two and clamped to [1, 1024]; default 64. Parsed once per
// process (malformed values warn once and fall back, like LACON_THREADS).
std::size_t arena_shard_count() noexcept;

// Interns GlobalStates; equal states receive equal StateIds. This makes the
// paper's state-equality arguments — e.g. x(j,[0]) == x(j',[0]) in the mobile
// model, or the permutation-layering diamond — checkable as id equality.
//
// Thread-safety: intern() may be called concurrently (the parallel runtime's
// layer computations do). The index is hash-sharded with striped mutexes
// (LACON_ARENA_SHARDS, default 64), so interns of distinct states proceed in
// parallel; racing interns of equal content land in the same shard, are
// serialized there, and agree on the id. Ids are claimed from one atomic
// counter, so they stay dense — but *which* content gets which id depends on
// scheduling. Canonical cross-run output must go through env_to_string /
// ViewArena::to_string, never raw ids (DESIGN.md §9).
//
// state() is lock-free and safe for any id the caller received through
// intern() or another happens-before edge.
class StateArena {
 public:
  StateArena();

  StateId intern(GlobalState s);

  // Re-interns a state streamed out of a lacon.store.v1 snapshot
  // (store/snapshot.hpp). Identical to intern() — same pool copy, same
  // index insert, same id assignment — except that a fresh insertion bumps
  // "arena.state_restored" instead of the miss counter, so the arena miss
  // count after a warm start reflects only *new* content discovered by the
  // analysis, not the snapshot replay itself.
  StateId restore(GlobalState s);

  // --- mmap zero-copy adoption (store/snapshot.cc, FORMATS.md) -------------
  //
  // A snapshot loader may adopt the flat state payloads of an mmap'ed
  // lacon.store.v1 file in place instead of copying them into the pool:
  // adopt_mapped_region() pins the mapping (released when the arena dies)
  // and restore_mapped() interns a state whose payload already lives
  // `word_offset` words past the mapped base. Only legal on an empty arena
  // before any analysis, in stored-id order, and only for layouts whose
  // on-disk record payload is byte-identical to the pool encoding (even n:
  // no odd-count lane padding). Mapped ids occupy [0, mapped_count_)
  // densely; state() serves them from the mapping and everything younger
  // from the pool. `hash` must be content_hash of `s` (callers compute it
  // once for the digest cross-check anyway). Counts into both
  // "arena.state_restored" (it is a restore) and "arena.state_mapped".
  void adopt_mapped_region(const std::int64_t* base,
                           std::shared_ptr<const void> keepalive);
  StateId restore_mapped(const StateRef& s, std::uint64_t word_offset,
                         std::uint64_t hash);

  StateRef state(StateId id) const noexcept {
    const Header& h = headers_[static_cast<std::size_t>(id)];
    if (h.total_words() == 0) return {};
    const std::int64_t* base = static_cast<std::size_t>(id) < mapped_count_
                                   ? mapped_base_ + h.offset
                                   : pool_.data(h.offset);
    const auto* locals =
        reinterpret_cast<const ViewId*>(base + h.env_len);
    const auto* decisions = reinterpret_cast<const Value*>(
        base + h.env_len + lane_words(h.n));
    return {{base, h.env_len}, {locals, h.n}, {decisions, h.n}};
  }

  std::size_t size() const noexcept {
    return next_id_.load(std::memory_order_acquire);
  }

  // Approximate heap footprint of the interned states. Deliberately a
  // deterministic function of the interned *content* (header + payload words
  // + a flat index allowance per unique state), not of pool occupancy:
  // chunk-tail waste depends on scheduling, and the guard's memory budget
  // must read the same value at every depth boundary regardless of worker
  // count. Monotone, relaxed reads.
  std::size_t approx_bytes() const noexcept {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  // Three position-keyed sections chained through the SIMD kernel table
  // (util/simd.hpp hash_words/hash_lanes): the env words seed the locals
  // section, which seeds the decisions section. This is explore's
  // intern-path hot loop; every table computes the identical value (the
  // scalar kernels are the semantic definition, tests/simd_test.cc holds
  // the others to it).
  static std::uint64_t content_hash(const StateRef& s) noexcept {
    const simd::Kernels& k = simd::active();
    std::uint64_t h = k.hash_words(s.env.data(), s.env.size(), 0x6c61636f6eULL);
    h = k.hash_lanes(s.locals.data(), s.locals.size(), h);
    return k.hash_lanes(s.decisions.data(), s.decisions.size(), h);
  }

 private:
  struct Header {
    std::uint64_t offset = 0;
    std::uint32_t env_len = 0;
    std::uint32_t n = 0;  // process count: len of locals and of decisions

    std::size_t total_words() const noexcept {
      return env_len + 2 * lane_words(n);
    }
  };
  struct alignas(64) Shard {
    std::mutex mu;
    // hash -> id; equality is confirmed against the pooled payload, so the
    // index stores no second copy of any state.
    std::unordered_multimap<std::uint64_t, StateId> index;
  };

  // 32-bit lanes (locals, decisions) pack two per word.
  static constexpr std::size_t lane_words(std::size_t n) noexcept {
    return (n + 1) / 2;
  }

  Shard& shard_for(std::uint64_t h) const noexcept {
    return shards_[(h >> 40) & shard_mask_];
  }

  StateId intern_impl(GlobalState s, runtime::Counter* miss_counter);

  std::size_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
  mutable runtime::WordPool pool_;
  runtime::ConcurrentSlotVector<Header> headers_;
  std::atomic<std::size_t> next_id_{0};
  std::atomic<std::size_t> approx_bytes_{0};
  // Mapped-snapshot adoption state. Plain (non-atomic) members by the same
  // publication discipline as headers_ slot contents: both are written only
  // during the single-threaded snapshot load, and every id reaches another
  // thread through a synchronized channel (shard mutexes, the runtime's work
  // queues) established afterwards.
  const std::int64_t* mapped_base_ = nullptr;
  std::size_t mapped_count_ = 0;
  std::shared_ptr<const void> mapped_keepalive_;
  runtime::Counter* hits_;
  runtime::Counter* misses_;
  runtime::Counter* restored_;
  runtime::Counter* mapped_;
  runtime::Counter* shard_waits_;
};

}  // namespace lacon
