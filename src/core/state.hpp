// Global states and the hash-consing state arena.
//
// Following Section 2 of the paper, a global state is a local state for the
// environment plus a local state for every process. For our full-information
// models a process local state is its interned view plus its write-once
// decision variable d_i; the environment's local state is a model-specific
// vector of words (register contents, in-transit messages, failed set, ...).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "runtime/stable_vector.hpp"
#include "util/hash.hpp"

namespace lacon {

struct GlobalState {
  std::vector<std::int64_t> env;  // model-specific environment encoding
  std::vector<ViewId> locals;     // per-process full-information view
  std::vector<Value> decisions;   // write-once d_i; kUndecided = ⊥

  bool operator==(const GlobalState&) const = default;
};

// x and y agree modulo j: environments equal and all process local states
// (view and decision variable) equal except possibly j's (Section 2).
bool agree_modulo(const GlobalState& x, const GlobalState& y, ProcessId j);

// Interns GlobalStates; equal states receive equal StateIds. This makes the
// paper's state-equality arguments — e.g. x(j,[0]) == x(j',[0]) in the mobile
// model, or the permutation-layering diamond — checkable as id equality.
//
// Thread-safety: intern() may be called concurrently (the parallel runtime's
// layer computations do); interning is content-addressed, so racing interns
// of equal states agree on the id. state() is lock-free and safe for any id
// the caller received through intern() or another happens-before edge.
//
// The index entries carry the content hash computed once per intern() call
// and point at the arena-resident state (StableVector never moves elements),
// so probing neither re-hashes the full env/locals/decisions vectors nor
// stores a second copy of every interned state.
class StateArena {
 public:
  StateId intern(GlobalState s);
  const GlobalState& state(StateId id) const {
    return states_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const noexcept { return states_.size(); }

  // Approximate heap footprint of the interned states (node structs plus
  // their vector payloads; index overhead estimated per entry). Monotone;
  // the guard's memory budget reads this at depth boundaries.
  std::size_t approx_bytes() const noexcept {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  static std::uint64_t content_hash(const GlobalState& s) noexcept {
    std::uint64_t h = hash_range(s.env, 0x6c61636f6eULL);
    h = hash_range(s.locals, h);
    h = hash_range(s.decisions, h);
    return h;
  }

 private:
  struct Key {
    std::uint64_t hash = 0;
    const GlobalState* state = nullptr;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(k.hash);
    }
  };
  struct KeyEq {
    bool operator()(const Key& a, const Key& b) const noexcept {
      return a.hash == b.hash && *a.state == *b.state;
    }
  };

  mutable std::mutex mu_;  // guards index_ and appends to states_
  runtime::StableVector<GlobalState> states_;
  std::unordered_map<Key, StateId, KeyHash, KeyEq> index_;
  std::atomic<std::size_t> approx_bytes_{0};
};

}  // namespace lacon
