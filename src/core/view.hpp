// Hash-consed full-information view DAG.
//
// The paper's impossibility analysis restricts only the environment's actions
// ("we are making no simplifying assumptions regarding the form of the
// protocols used; only the actions of the environment, or the scheduler, are
// being restricted" — Section 5). Every deterministic protocol factors
// through the full-information protocol, whose local state after a phase is
// the pair (previous local state, observations made in the phase). We
// represent such local states as nodes of a DAG interned in a ViewArena, so
// that local-state equality — the basis of the paper's "agree modulo j"
// relation — is integer equality.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "runtime/stable_vector.hpp"
#include "util/hash.hpp"

namespace lacon::runtime {
class Counter;
}  // namespace lacon::runtime

namespace lacon {

// One observation made during a local phase: the full-information content
// received from `source` (a process for messages, a register index for
// shared-memory reads). `view == kNoView` records an observed *absence*
// (e.g. a missing message slot in a synchronous round).
struct Obs {
  std::int32_t source = 0;
  ViewId view = kNoView;

  bool operator==(const Obs&) const = default;
};

// A node of the view DAG: the local state of `owner` after `round` completed
// local phases.
struct ViewNode {
  ProcessId owner = 0;
  std::int32_t round = 0;     // number of completed local phases
  Value input = 0;            // owner's initial input value
  ViewId prev = kNoView;      // local state before this phase; kNoView iff round == 0
  std::vector<Obs> obs;       // observations made during this phase

  bool operator==(const ViewNode&) const = default;
};

// Interns ViewNodes; equal nodes receive equal ViewIds.
//
// Thread-safety: initial()/extend()/known_inputs() may be called
// concurrently (the parallel runtime's layer computations do). The index is
// hash-sharded with striped mutexes (LACON_ARENA_SHARDS, shared with
// StateArena); interning is content-addressed, so racing interns of equal
// nodes land in the same shard and agree on the id, while distinct nodes
// proceed in parallel. node() and to_string() are lock-free reads, safe for
// any id received through an intern call or another happens-before edge.
// The known_inputs memo is a per-node atomic slot (no lock at all), so
// concurrent valence classifications never serialize on it.
class ViewArena {
 public:
  explicit ViewArena(int n);
  ~ViewArena();

  int n() const noexcept { return n_; }

  // The initial (round-0) view of a process with a given input.
  ViewId initial(ProcessId owner, Value input);

  // The view after one more local phase extending `prev` with observations
  // `obs`. Callers must pass observations in a canonical (sorted-by-source)
  // order so that equal views intern to equal ids.
  ViewId extend(ViewId prev, std::vector<Obs> obs);

  // Re-interns a node streamed out of a lacon.store.v1 snapshot
  // (store/snapshot.hpp). Identical to the private intern path except that a
  // fresh insertion bumps "arena.view_restored" instead of the miss counter;
  // snapshot replay happens in stored-id order into an empty arena, so the
  // returned id equals the stored one.
  ViewId restore(ViewNode node);

  const ViewNode& node(ViewId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const noexcept {
    return next_id_.load(std::memory_order_acquire);
  }

  // Approximate heap footprint of the interned view DAG (see
  // StateArena::approx_bytes — likewise a deterministic function of the
  // interned content only). Monotone, relaxed reads.
  std::size_t approx_bytes() const noexcept {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  // The inputs this view knows about: entry j is process j's input if it is
  // determined by the view, kUnknownInput otherwise. Memoized per node in a
  // lock-free atomic slot: racing computations are idempotent, the first
  // published vector wins and losers discard theirs.
  const std::vector<Value>& known_inputs(ViewId id);

  // Renders a view as a nested term for debugging, e.g.
  // "p1@2<p0@1<...>, -,- >".
  std::string to_string(ViewId id) const;

  static std::uint64_t content_hash(const ViewNode& v) noexcept {
    std::uint64_t h = hash_combine(static_cast<std::uint64_t>(v.owner),
                                   static_cast<std::uint64_t>(v.round));
    h = hash_combine(h, static_cast<std::uint64_t>(v.input));
    h = hash_combine(h, static_cast<std::uint64_t>(v.prev));
    h = hash_combine(h, v.obs.size());
    for (const Obs& o : v.obs) {
      h = hash_combine(h, static_cast<std::uint64_t>(o.source));
      h = hash_combine(h, static_cast<std::uint64_t>(o.view));
    }
    return h;
  }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    // hash -> id; equality confirmed against the arena-resident node.
    std::unordered_multimap<std::uint64_t, ViewId> index;
  };

  ViewId intern(ViewNode node);
  ViewId intern_impl(ViewNode node, runtime::Counter* miss_counter);

  Shard& shard_for(std::uint64_t h) const noexcept {
    return shards_[(h >> 40) & shard_mask_];
  }

  int n_;
  std::size_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
  runtime::ConcurrentSlotVector<ViewNode> nodes_;
  std::atomic<std::size_t> next_id_{0};
  std::atomic<std::size_t> approx_bytes_{0};
  // Per-node memo slot; nullptr until the first known_inputs(id) publishes.
  runtime::ConcurrentSlotVector<std::atomic<const std::vector<Value>*>>
      known_memo_;
  runtime::Counter* hits_;
  runtime::Counter* misses_;
  runtime::Counter* restored_;
  runtime::Counter* shard_waits_;
};

}  // namespace lacon
