// Decision rules: the protocol-specific part of a full-information protocol.
//
// A deterministic protocol is, up to bisimulation, a full-information message
// skeleton plus a function from local views to (optional) decisions. The
// analysis engine is therefore parameterized by a DecisionRule; the rule
// catalog below covers the protocol families used by the mechanized lemma
// checks: rules that never decide (pure structure analysis), rules that
// genuinely decide (so valence is exact), and "candidate consensus protocols"
// whose violation of one of the three requirements the engine then exhibits.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/types.hpp"
#include "core/view.hpp"

namespace lacon {

class DecisionRule {
 public:
  virtual ~DecisionRule() = default;

  virtual std::string name() const = 0;

  // Called after process i completes a local phase, with its new view. A
  // returned value is written into the (write-once) d_i; callers only invoke
  // this while d_i = ⊥. Must be a deterministic function of (i, view).
  virtual std::optional<Value> decide(ProcessId i, ViewId view,
                                      ViewArena& arena) const = 0;
};

// Never decides. Used when analyzing connectivity structure independent of
// any decision behaviour.
std::unique_ptr<DecisionRule> never_decide();

// After `round` completed phases, decide the minimum input value seen in the
// view. This is the FloodSet decision rule; with round = t+1 it solves
// consensus in the t-resilient synchronous model.
std::unique_ptr<DecisionRule> min_after_round(int round);

// After `round` completed phases, decide one's own input. Satisfies decision
// and validity but not agreement (unless inputs are unanimous); used to
// exercise the agreement-violation finder.
std::unique_ptr<DecisionRule> own_input_after_round(int round);

// Decide v as soon as the view shows *all n* inputs and they all equal v;
// otherwise after `round` phases decide the minimum known input. A natural
// "candidate" asynchronous consensus protocol; the engine shows its flaw.
std::unique_ptr<DecisionRule> unanimity_then_min(int round);

// Decide the majority of known inputs (ties -> 0) after `round` phases.
std::unique_ptr<DecisionRule> majority_after_round(int round);

// Decide the minimum input only once *all n* inputs are known (and at least
// `round` phases have completed). Two deciders know the same full input
// vector, so this rule satisfies agreement (and validity) in every model —
// at the price of decision, which fails whenever some input stays hidden.
// The lemma checkers that hypothesize an agreement-satisfying system
// (Lemmas 3.1 and 3.2) use it in the models where no rule satisfies all
// three requirements.
std::unique_ptr<DecisionRule> min_when_all_known(int round);

}  // namespace lacon
