#include "core/model.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

#include "runtime/simd_dispatch.hpp"
#include "runtime/stats.hpp"

namespace lacon {

std::vector<std::vector<Value>> all_binary_inputs(int n) {
  std::vector<std::vector<Value>> out;
  const std::uint64_t count = 1ULL << n;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t bits = 0; bits < count; ++bits) {
    std::vector<Value> inputs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      inputs[static_cast<std::size_t>(i)] = static_cast<Value>((bits >> i) & 1);
    }
    out.push_back(std::move(inputs));
  }
  return out;
}

LayeredModel::LayeredModel(int n, const DecisionRule& rule,
                           std::vector<std::vector<Value>> initial_inputs)
    : n_(n),
      rule_(&rule),
      initial_inputs_(std::move(initial_inputs)),
      views_(n),
      canon_(std::make_unique<sym::Canonicalizer>(views_, n)),
      sym_folds_(&runtime::Stats::global().counter("arena.sym_folds")) {
  assert(n >= 2);
  if (initial_inputs_.empty()) initial_inputs_ = all_binary_inputs(n);
#ifndef NDEBUG
  for (const auto& inputs : initial_inputs_) {
    assert(static_cast<int>(inputs.size()) == n);
  }
#endif
}

LayeredModel::~LayeredModel() {
  // Fingerprint rows are plain heap arrays hung off atomic slots; analysis
  // has quiesced by destruction time, so a relaxed sweep suffices.
  const std::size_t count = arena_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const auto* slot = fp_memo_.try_get(i);
    if (slot == nullptr) continue;
    delete[] slot->load(std::memory_order_acquire);
  }
}

StateId LayeredModel::restore_state(GlobalState s) {
  return arena_.restore(std::move(s));
}

void LayeredModel::adopt_mapped_states(const std::int64_t* base,
                                       std::shared_ptr<const void> keepalive) {
  arena_.adopt_mapped_region(base, std::move(keepalive));
}

StateId LayeredModel::restore_mapped_state(const StateRef& s,
                                           std::uint64_t word_offset,
                                           std::uint64_t hash) {
  return arena_.restore_mapped(s, word_offset, hash);
}

const std::uint64_t* LayeredModel::fingerprint_row(StateId x) {
  auto& slot = fp_memo_.slot(static_cast<std::size_t>(x));
  if (const std::uint64_t* cached = slot.load(std::memory_order_acquire)) {
    return cached;
  }
  auto* mine = new std::uint64_t[static_cast<std::size_t>(n_)];
  fingerprint_row_into(x, mine);
#ifndef NDEBUG
  for (ProcessId j = 0; j < n_; ++j) {
    // The batched row must be bit-identical to the per-j definition; a model
    // that overrode similarity_fingerprint without fingerprint_row_into (or
    // a divergent SIMD kernel) trips here immediately.
    assert(mine[static_cast<std::size_t>(j)] == similarity_fingerprint(x, j));
  }
#endif
  const std::uint64_t* expected = nullptr;
  if (slot.compare_exchange_strong(expected, mine, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return mine;
  }
  delete[] mine;
  return expected;
}

const std::uint64_t* LayeredModel::cached_fingerprint_row(StateId x) const {
  const auto* slot = fp_memo_.try_get(static_cast<std::size_t>(x));
  if (slot == nullptr) return nullptr;
  return slot->load(std::memory_order_acquire);
}

void LayeredModel::restore_fingerprint_row(StateId x,
                                           const std::uint64_t* row) {
  auto& slot = fp_memo_.slot(static_cast<std::size_t>(x));
  auto* mine = new std::uint64_t[static_cast<std::size_t>(n_)];
  std::copy(row, row + n_, mine);
  const std::uint64_t* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, mine,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    delete[] mine;
  }
}

std::vector<std::pair<StateId, std::vector<StateId>>>
LayeredModel::export_layer_cache() {
  std::vector<std::pair<StateId, std::vector<StateId>>> out;
  for (LayerShard& shard : layer_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [x, succ] : shard.map) out.emplace_back(x, succ);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void LayeredModel::import_layer_cache(
    std::vector<std::pair<StateId, std::vector<StateId>>> entries) {
  for (auto& [x, succ] : entries) {
    LayerShard& shard =
        layer_shards_[static_cast<std::size_t>(x) % kLayerShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(x, std::move(succ));
  }
}

const std::vector<StateId>& LayeredModel::initial_states() {
  std::call_once(initial_once_, [this] {
    for (const auto& inputs : initial_inputs_) {
      GlobalState s;
      s.env = initial_env();
      s.locals.reserve(static_cast<std::size_t>(n_));
      for (ProcessId i = 0; i < n_; ++i) {
        s.locals.push_back(
            views_.initial(i, inputs[static_cast<std::size_t>(i)]));
      }
      // No process has decided initially: d_i = ⊥ in Con_0 by definition.
      s.decisions.assign(static_cast<std::size_t>(n_), kUndecided);
      initial_states_.push_back(intern(std::move(s)));
    }
    // Keep them sorted for deterministic iteration, and deduplicate: under
    // the symmetry quotient, orbit-equivalent input assignments fold onto
    // one canonical initial state.
    std::sort(initial_states_.begin(), initial_states_.end());
    initial_states_.erase(
        std::unique(initial_states_.begin(), initial_states_.end()),
        initial_states_.end());
  });
  return initial_states_;
}

const std::vector<StateId>& LayeredModel::layer(StateId x) {
  LayerShard& shard =
      layer_shards_[static_cast<std::size_t>(x) % kLayerShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(x);
    if (it != shard.map.end()) return it->second;
  }
  // Compute outside the lock so distinct states in one shard expand
  // concurrently. A racing computation of the same layer produces the same
  // vector (interning is content-addressed); emplace keeps the first copy.
  std::vector<StateId> succ = compute_layer(x);
  std::sort(succ.begin(), succ.end());
  succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  assert(!succ.empty() && "a successor function never returns an empty set");
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.emplace(x, std::move(succ)).first->second;
}

ProcessSet LayeredModel::failed_at(StateId) const { return {}; }

std::uint64_t LayeredModel::similarity_fingerprint(StateId x,
                                                   ProcessId j) const {
  const StateRef s = state(x);
  std::uint64_t h = hash_range(s.env, 0x73696d666970ULL);  // "simfip"
  for (ProcessId i = 0; i < n_; ++i) {
    if (i == j) continue;
    const auto idx = static_cast<std::size_t>(i);
    h = hash_combine(h, static_cast<std::uint64_t>(s.locals[idx]));
    h = hash_combine(h, static_cast<std::uint64_t>(s.decisions[idx]));
  }
  return h;
}

void LayeredModel::fingerprint_row_into(StateId x, std::uint64_t* out) const {
  const StateRef s = state(x);
  const std::uint64_t env_hash = hash_range(s.env, 0x73696d666970ULL);
  simd::active().fingerprint_lanes(env_hash, s.locals.data(),
                                   s.decisions.data(),
                                   static_cast<std::size_t>(n_), out);
}

std::string LayeredModel::env_to_string(StateId x) const {
  const StateRef s = state(x);
  std::string out;
  for (std::int64_t w : s.env) {
    out += std::to_string(w);
    out += ',';
  }
  return out;
}

Value LayeredModel::updated_decision(ProcessId i, Value current,
                                     ViewId new_view) {
  if (current != kUndecided) return current;  // d_i is write-once
  const std::optional<Value> d = rule_->decide(i, new_view, views_);
  return d.value_or(kUndecided);
}

void LayeredModel::sym_env_key(const StateRef& s, sym::Relabeling&,
                               std::vector<std::uint64_t>* out) const {
  // Default: the environment carries no process identity and no interned
  // ids, so its words are their own relabeled key. Models with
  // process-indexed or ViewId-bearing environments override.
  for (const std::int64_t w : s.env) {
    out->push_back(static_cast<std::uint64_t>(w));
  }
}

std::vector<std::int64_t> LayeredModel::sym_permute_env(
    const StateRef& s, sym::Relabeling&) const {
  return {s.env.begin(), s.env.end()};
}

bool LayeredModel::inputs_permutation_closed() const {
  // Adjacent transpositions generate S_n, so closure under them is closure
  // under every permutation.
  const std::set<std::vector<Value>> inputs(initial_inputs_.begin(),
                                            initial_inputs_.end());
  for (const auto& assignment : inputs) {
    std::vector<Value> swapped = assignment;
    for (int i = 0; i + 1 < n_; ++i) {
      std::swap(swapped[static_cast<std::size_t>(i)],
                swapped[static_cast<std::size_t>(i + 1)]);
      if (!inputs.contains(swapped)) return false;
      std::swap(swapped[static_cast<std::size_t>(i)],
                swapped[static_cast<std::size_t>(i + 1)]);
    }
  }
  return true;
}

bool LayeredModel::sym_quotient_active() {
  std::call_once(sym_once_, [this] {
    sym_active_ = sym::enabled() &&
                  symmetry() == sym::SymmetryClass::kFull && n_ <= 15 &&
                  inputs_permutation_closed();
  });
  return sym_active_;
}

StateId LayeredModel::intern_canonical(GlobalState s) {
  if (!sym_quotient_active()) return arena_.intern(std::move(s));
  bool folded = false;
  const std::uint64_t stab = canon_->canonicalize(*this, &s, &folded);
  if (folded) sym_folds_->increment();
  const StateId id = arena_.intern(std::move(s));
  auto& weight = orbit_weights_.slot(static_cast<std::size_t>(id));
  if (weight.load(std::memory_order_relaxed) == 0) {
    weight.store(sym::factorial(n_) / stab, std::memory_order_relaxed);
  }
  return id;
}

std::uint64_t LayeredModel::orbit_weight(StateId x) {
  if (!sym_quotient_active()) return 1;
  auto& slot = orbit_weights_.slot(static_cast<std::size_t>(x));
  const std::uint64_t cached = slot.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // Unset: x entered the arena without passing through intern_canonical
  // (snapshot restore). Its content is already canonical, so
  // re-canonicalizing recovers the exact stabilizer size; racing
  // computations agree.
  const StateRef ref = state(x);
  GlobalState copy{{ref.env.begin(), ref.env.end()},
                   {ref.locals.begin(), ref.locals.end()},
                   {ref.decisions.begin(), ref.decisions.end()}};
  bool folded = false;
  const std::uint64_t stab = canon_->canonicalize(*this, &copy, &folded);
  assert(!folded && "states in a quotiented arena are orbit representatives");
  const std::uint64_t weight = sym::factorial(n_) / stab;
  slot.store(weight, std::memory_order_relaxed);
  return weight;
}

std::vector<StateId> LayeredModel::unfold_orbit(StateId x) {
  if (!sym_quotient_active()) return {x};
  // Closure under adjacent transpositions (they generate S_n): each member
  // is probed against each of the n-1 transpositions, so the cost is
  // orbit-linear instead of factorial. Interns bypass canonicalization —
  // the whole point is materializing the non-canonical members.
  std::vector<StateId> members = {x};
  std::set<StateId> seen = {x};
  Permutation swap_adj(static_cast<std::size_t>(n_));
  for (std::size_t frontier = 0; frontier < members.size(); ++frontier) {
    const StateRef ref = state(members[frontier]);
    for (int i = 0; i + 1 < n_; ++i) {
      std::iota(swap_adj.begin(), swap_adj.end(), 0);
      std::swap(swap_adj[static_cast<std::size_t>(i)],
                swap_adj[static_cast<std::size_t>(i + 1)]);
      const StateId member =
          arena_.intern(canon_->permute(*this, ref, swap_adj));
      if (seen.insert(member).second) members.push_back(member);
    }
  }
  std::sort(members.begin(), members.end());
  assert(members.size() == orbit_weight(x));
  return members;
}

std::pair<std::uint64_t, std::uint64_t> LayeredModel::canonical_signature(
    StateId x) {
  return canon_->signature(*this, state(x));
}

}  // namespace lacon
