// Process-permutation symmetry quotient over the interned state space.
//
// The paper's models are symmetric under relabeling of the processes: if π
// is a permutation of {0,..,n-1} and x a global state, then π·x (permute
// the local-state and decision slots, rewrite every process id embedded in
// the view DAG and the environment) is reachable exactly when x is, at the
// same depth, with the same valence and the same similarity structure. The
// quotient layer exploits that: at intern time every GlobalState is folded
// onto the lexicographically-minimal member of its orbit, so explore /
// valence / similarity / diameter run on up to n!-fold fewer states.
//
// Canonicalization ("canonicalize" below) works in three stages:
//
//   (1) Shape keys. Every process gets a permutation-invariant key: a
//       structural hash of its view with all process ids erased (obs folded
//       commutatively), combined with its decision value. Any permutation
//       attaining the minimal canonical key must sort processes by shape
//       key, so only the permutations inside shape-tie groups are ever
//       enumerated — usually exactly one candidate.
//   (2) Candidate comparison. Each candidate permutation is compared by an
//       id-free key of the state it would produce: the permuted decision
//       vector, a model-supplied environment key (sym_env_key), and per
//       position a 128-bit structural hash of the relabeled view
//       (Relabeling::rewrite_key — sources mapped, obs re-sorted by mapped
//       source, memoized per (view, relevant-restricted permutation)).
//       Every component is a function of the *resulting* state, never of
//       the candidate permutation itself, so the chosen representative is
//       constant on the whole orbit.
//   (3) Exact tie resolution. Candidates whose 128-bit keys tie are
//       materialized (memoized view rewriting through the arena) and
//       compared exactly; equal candidates count the stabilizer subgroup,
//       so orbit sizes — n! / |Stab| — are exact, and a hash collision can
//       never miscount a weight. (A collision could at worst make the
//       *choice* among two genuinely different orbit members depend on
//       interning order; that is a ~2^-128 event and affects which member
//       represents the orbit, never any verdict.)
//
// Gated by LACON_SYMMETRY=off|on (default off; malformed values warn once
// and fall back, like LACON_SIMD). Models opt in via
// LayeredModel::symmetry() — see core/model.hpp; asymmetric models keep the
// kTrivial default and are never touched. DESIGN.md §15 documents the
// contracts (equivariance, decision-rule symmetry, id-nondeterminism).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/state.hpp"
#include "core/types.hpp"
#include "core/view.hpp"
#include "runtime/stable_vector.hpp"
#include "util/permutations.hpp"

namespace lacon {
class LayeredModel;
}  // namespace lacon

namespace lacon::sym {

// How a model behaves under process relabeling.
enum class SymmetryClass {
  // No useful symmetry declared: states intern as-is. The safe default for
  // models whose layering is not closed under relabeling (index-prefix
  // schedules, coordinator roles, ...).
  kTrivial,
  // The layering commutes with every permutation of {0,..,n-1} and the
  // initial inputs are permutation-closed; the full symmetric group is
  // quotiented out.
  kFull,
};

// LACON_SYMMETRY: "off" | "on". Malformed values warn once (never abort)
// and fall back. Exposed for the knob tests.
bool parse_symmetry(const char* text, bool fallback) noexcept;

// The effective knob value: a ScopedSymmetry override if one is active,
// else the environment (parsed per call, so tests may setenv between model
// constructions).
bool enabled() noexcept;

// RAII override of the knob for benches and in-process A/B tests (the
// analogue of simd::KernelOverride). Nestable; restores on destruction.
// Affects models constructed while active (the quotient decision is
// latched per model at first intern).
class ScopedSymmetry {
 public:
  explicit ScopedSymmetry(bool on) noexcept;
  ~ScopedSymmetry();

  ScopedSymmetry(const ScopedSymmetry&) = delete;
  ScopedSymmetry& operator=(const ScopedSymmetry&) = delete;

 private:
  int previous_;
};

// n! as a 64-bit integer (n <= 20).
std::uint64_t factorial(int n) noexcept;

class Canonicalizer;

// One process relabeling bound to a canonicalizer's memo tables. Position p
// of the relabeled state holds old process old_at(p); process id i embedded
// anywhere in the old state becomes new_of(i).
class Relabeling {
 public:
  ProcessId old_at(std::size_t new_pos) const noexcept {
    return perm_[new_pos];
  }
  ProcessId new_of(ProcessId old) const noexcept {
    return inv_[static_cast<std::size_t>(old)];
  }
  int n() const noexcept { return static_cast<int>(perm_.size()); }

  // 128-bit structural hash of view `v` with every embedded process id
  // mapped through new_of and observations re-sorted by mapped source — an
  // id-free key of the view rewrite() would intern. Memoized per
  // (view, relevant-restricted permutation) across all relabelings of the
  // owning canonicalizer.
  std::pair<std::uint64_t, std::uint64_t> rewrite_key(ViewId v);

  // The interned relabeled view. Memoized like rewrite_key; the identity
  // relabeling (restricted to the view's relevant processes) returns `v`
  // itself without touching the arena.
  ViewId rewrite(ViewId v);

 private:
  friend class Canonicalizer;
  Relabeling(Canonicalizer* canon, Permutation perm);

  Canonicalizer* canon_;
  Permutation perm_;  // new position -> old process
  Permutation inv_;   // old process -> new position
};

// Orbit canonicalization over one model's view arena. Owns the shape /
// relevant-set / rewrite memo tables (thread-safe: canonicalization runs
// inside parallel layer computations). One instance per LayeredModel.
class Canonicalizer {
 public:
  // `views` must outlive the canonicalizer. Relabelings require n <= 15
  // (4-bit permutation packing in the memo keys, 0xF = irrelevant);
  // LayeredModel gates the quotient accordingly. signature() works for any
  // n (the identity relabeling never packs).
  Canonicalizer(ViewArena& views, int n);

  Canonicalizer(const Canonicalizer&) = delete;
  Canonicalizer& operator=(const Canonicalizer&) = delete;

  // Folds `s` onto its orbit representative in place. Returns the exact
  // stabilizer size |Stab| (orbit size = n!/|Stab|); sets *folded when the
  // content changed. `model` supplies the environment hooks.
  std::uint64_t canonicalize(const LayeredModel& model, GlobalState* s,
                             bool* folded);

  // π·s for an explicit permutation (new position p <- old process
  // perm[p]); used by orbit unfolding. Does not canonicalize.
  GlobalState permute(const LayeredModel& model, const StateRef& s,
                      const Permutation& perm);

  // Id-free 128-bit content signature of `s` (identity relabeling keys):
  // stable across runs, worker counts and restarts — the lemma-store key
  // (engine/lemma_store.hpp). Works for every symmetry class.
  std::pair<std::uint64_t, std::uint64_t> signature(const LayeredModel& model,
                                                    const StateRef& s);

 private:
  friend class Relabeling;

  struct KeyHash {
    std::size_t operator()(
        const std::pair<std::uint64_t, std::uint64_t>& k) const noexcept {
      return static_cast<std::size_t>(
          hash_combine(k.first, k.second));
    }
  };
  struct alignas(64) MemoShard {
    std::mutex mu;
    // (view, packed masked permutation) -> 128-bit rewrite key.
    std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                       std::pair<std::uint64_t, std::uint64_t>, KeyHash>
        keys;
    // (view, packed masked permutation) -> materialized rewritten view.
    std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, ViewId,
                       KeyHash>
        views;
  };
  static constexpr std::size_t kMemoShards = 16;

  std::uint64_t shape(ViewId v);
  std::uint64_t relevant_mask(ViewId v);
  // The memo key permutation: new_of packed 4 bits per process, processes
  // outside v's relevant set masked to 0xF. Second field reports whether
  // the restriction is the identity.
  std::uint64_t packed_masked(ViewId v, const Permutation& inv,
                              bool* identity);
  std::pair<std::uint64_t, std::uint64_t> rewrite_key(ViewId v,
                                                      const Permutation& inv);
  ViewId rewrite(ViewId v, const Permutation& inv);

  // The candidate comparison key (decisions, env key, per-position view
  // keys) of perm applied to s.
  void build_key(const LayeredModel& model, const StateRef& s,
                 Relabeling& rel, std::vector<std::uint64_t>* out);

  MemoShard& memo_shard(ViewId v) noexcept {
    return memo_[static_cast<std::size_t>(v) % kMemoShards];
  }

  ViewArena* views_;
  int n_;
  // Per-view memos: (2*hash)|1 so 0 means "unset" (hash may be anything).
  runtime::ConcurrentSlotVector<std::atomic<std::uint64_t>> shape_memo_;
  // Relevant-process bitmask | kMaskComputed.
  runtime::ConcurrentSlotVector<std::atomic<std::uint64_t>> mask_memo_;
  std::unique_ptr<MemoShard[]> memo_;
  runtime::Counter* rewrites_;
};

}  // namespace lacon::sym
