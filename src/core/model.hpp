// The LayeredModel interface: a model of computation presented through a
// layering, exactly in the sense of Section 4 of the paper.
//
// A concrete model implements compute_layer(x) = S(x), the set of states
// reachable from x by one legal environment action of the layering. The
// analysis engine (valence, connectivity, bivalent-run construction) works
// against this interface only, which is what makes the paper's
// model-independent analysis executable: the same engine code derives the
// mobile-failure impossibility, the FLP-style asynchronous impossibilities
// and the synchronous t+1 lower bound.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/decision_rule.hpp"
#include "core/state.hpp"
#include "core/types.hpp"
#include "core/view.hpp"
#include "util/process_set.hpp"

namespace lacon {

class LayeredModel {
 public:
  // `rule` must outlive the model. `initial_inputs` lists the allowed input
  // assignments (one Value per process); when empty, defaults to all binary
  // assignments, i.e. the paper's Con_0.
  LayeredModel(int n, const DecisionRule& rule,
               std::vector<std::vector<Value>> initial_inputs = {});
  virtual ~LayeredModel();

  LayeredModel(const LayeredModel&) = delete;
  LayeredModel& operator=(const LayeredModel&) = delete;

  int n() const noexcept { return n_; }
  virtual std::string name() const = 0;

  // The maximum number of processes that can be faulty in a run of the
  // (sub)model: 1 for the 1-resilient asynchronous layerings and for M^mf
  // (only one process can be silenced forever), t for the synchronous
  // t-resilient model. Used by the generalized-valence engine of Section 7.
  virtual int max_faulty() const { return 1; }

  // The initial states (Con_0, or D_0 for a general decision problem).
  // Thread-safe (built once under a flag).
  const std::vector<StateId>& initial_states();

  // S(x): the layer of x, deduplicated, in a deterministic order. Cached in
  // a sharded, striped-mutex map, so concurrent layer computations from the
  // parallel runtime are safe; racing computations of the same layer are
  // idempotent because interning is content-addressed. The returned
  // reference stays valid for the model's lifetime.
  const std::vector<StateId>& layer(StateId x);

  // The processes failed at x (faulty in *every* run through x). The three
  // asynchronous-flavoured models display no finite failure, so their
  // override is the empty default; the t-resilient synchronous model records
  // failures in the environment state.
  virtual ProcessSet failed_at(StateId x) const;

  StateRef state(StateId id) const noexcept { return arena_.state(id); }
  ViewArena& views() noexcept { return views_; }
  const ViewArena& views() const noexcept { return views_; }
  const DecisionRule& rule() const noexcept { return *rule_; }

  std::size_t num_states() const noexcept { return arena_.size(); }
  std::size_t num_views() const noexcept { return views_.size(); }

  // Approximate bytes held by the state arena and the view DAG combined;
  // what a Guard's memory budget is measured against.
  std::size_t memory_footprint() const noexcept {
    return arena_.approx_bytes() + views_.approx_bytes();
  }

  // True if x and y agree modulo j (environment and all local states except
  // j's are equal). Virtual because a model may attribute parts of the
  // environment encoding to individual processes: the asynchronous
  // message-passing model treats the channel *into* process j (j's mailbox)
  // as part of j's local state, which is what makes the permutation
  // layering's similarity claims of Section 5.1 come out as the paper
  // asserts.
  virtual bool agree_modulo(StateId x, StateId y, ProcessId j) const {
    return lacon::agree_modulo(state(x), state(y), j);
  }

  // Erase-j fingerprint: a 64-bit hash of exactly the material agree_modulo
  // compares — the environment plus every process local state except j's.
  // Soundness contract (the similarity index relies on it): whenever
  // agree_modulo(x, y, j) holds, similarity_fingerprint(x, j) ==
  // similarity_fingerprint(y, j); otherwise the index silently drops edges.
  // A model overriding agree_modulo to attribute environment words to
  // process j (the message-passing mailbox reading) must override this too
  // and mask the same words.
  virtual std::uint64_t similarity_fingerprint(StateId x, ProcessId j) const;

  // Writes the whole erase-one row at once: out[j] = similarity_fingerprint
  // (x, j) for j in [0, n). The base implementation hashes the env prefix
  // once and folds every locals/decisions lane into all n-1 non-erased row
  // entries in a single pass over the state (simd::fingerprint_lanes), which
  // is how fingerprint_row publication avoids n separate state walks. A
  // model that overrides similarity_fingerprint MUST override this too (the
  // message-passing models loop their own per-j hash); fingerprint_row
  // debug-asserts the row against the per-j virtual entry by entry.
  virtual void fingerprint_row_into(StateId x, std::uint64_t* out) const;

  // --- Snapshot hooks (lacon::store, store/snapshot.hpp) ------------------
  //
  // The store serializes the interned space through the public read API
  // (state()/views().node()) and replays it through the hooks below, in
  // stored-id order into a freshly-constructed model, so every restored
  // object receives exactly its stored id and later re-interning of the
  // same content hits the rebuilt hash-consing index.

  // Replays one interned state out of a snapshot; counts into
  // "arena.state_restored" instead of the miss counters.
  StateId restore_state(GlobalState s);

  // The memoized erase-one fingerprint row of x: n entries, entry j equal
  // to similarity_fingerprint(x, j). Rows are published once per state in a
  // lock-free slot (racing computations are idempotent — the first
  // published row wins, losers free theirs); the similarity index reads
  // rows instead of rehashing each sweep, and the store serializes
  // published rows so a warm start skips the hashing phase. Deliberately
  // NOT part of memory_footprint(): rows appear in sweep order, which is
  // scheduling-dependent, and guard byte accounting must not be.
  const std::uint64_t* fingerprint_row(StateId x);

  // The row for x if one was already published, nullptr otherwise (the
  // store's save-side iteration; never computes).
  const std::uint64_t* cached_fingerprint_row(StateId x) const;

  // Publishes a row loaded from a snapshot (copies `row`, n entries;
  // keeps an existing row if already published).
  void restore_fingerprint_row(StateId x, const std::uint64_t* row);

  // The layer cache as (state, successors) entries, sorted by state id.
  // Call only while no layer computation is in flight.
  std::vector<std::pair<StateId, std::vector<StateId>>> export_layer_cache();

  // Replays cached layers from a snapshot. Entries whose key is already
  // cached keep the existing vector (they are equal by construction).
  void import_layer_cache(
      std::vector<std::pair<StateId, std::vector<StateId>>> entries);
  // ------------------------------------------------------------------------

  // Canonical, id-free rendering of x's environment component. The default
  // prints the raw words — canonical only for models whose environment
  // holds plain scalars. Models whose environment embeds interned ViewIds
  // (shared-memory/snapshot registers, in-transit messages) override this
  // to render view *terms*: raw ids may differ across worker counts
  // (threads race to intern first), so output compared across runs must go
  // through this, never through s.env directly.
  virtual std::string env_to_string(StateId x) const;

 protected:
  // Computes S(x); implementations should return successors in a
  // deterministic order and need not deduplicate (the base class does).
  virtual std::vector<StateId> compute_layer(StateId x) = 0;

  // Environment component of initial states; default: empty (constant env).
  virtual std::vector<std::int64_t> initial_env() const { return {}; }

  StateId intern(GlobalState s) { return arena_.intern(std::move(s)); }

  // Applies the decision rule to process i after it obtained `new_view`.
  // Respects the write-once semantics of d_i.
  Value updated_decision(ProcessId i, Value current, ViewId new_view);

 private:
  static constexpr std::size_t kLayerShards = 64;
  struct LayerShard {
    std::mutex mu;
    std::unordered_map<StateId, std::vector<StateId>> map;
  };

  int n_;
  const DecisionRule* rule_;
  std::vector<std::vector<Value>> initial_inputs_;
  ViewArena views_;
  StateArena arena_;
  std::vector<StateId> initial_states_;
  std::once_flag initial_once_;
  std::array<LayerShard, kLayerShards> layer_shards_;
  // Per-state fingerprint rows (n hashes each); nullptr until published.
  runtime::ConcurrentSlotVector<std::atomic<const std::uint64_t*>> fp_memo_;
};

// All binary input assignments for n processes (the paper's Con_0 inputs).
std::vector<std::vector<Value>> all_binary_inputs(int n);

}  // namespace lacon
