// The LayeredModel interface: a model of computation presented through a
// layering, exactly in the sense of Section 4 of the paper.
//
// A concrete model implements compute_layer(x) = S(x), the set of states
// reachable from x by one legal environment action of the layering. The
// analysis engine (valence, connectivity, bivalent-run construction) works
// against this interface only, which is what makes the paper's
// model-independent analysis executable: the same engine code derives the
// mobile-failure impossibility, the FLP-style asynchronous impossibilities
// and the synchronous t+1 lower bound.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/decision_rule.hpp"
#include "core/state.hpp"
#include "core/sym.hpp"
#include "core/types.hpp"
#include "core/view.hpp"
#include "util/process_set.hpp"

namespace lacon {

class LayeredModel {
 public:
  // `rule` must outlive the model. `initial_inputs` lists the allowed input
  // assignments (one Value per process); when empty, defaults to all binary
  // assignments, i.e. the paper's Con_0.
  LayeredModel(int n, const DecisionRule& rule,
               std::vector<std::vector<Value>> initial_inputs = {});
  virtual ~LayeredModel();

  LayeredModel(const LayeredModel&) = delete;
  LayeredModel& operator=(const LayeredModel&) = delete;

  int n() const noexcept { return n_; }
  virtual std::string name() const = 0;

  // The maximum number of processes that can be faulty in a run of the
  // (sub)model: 1 for the 1-resilient asynchronous layerings and for M^mf
  // (only one process can be silenced forever), t for the synchronous
  // t-resilient model. Used by the generalized-valence engine of Section 7.
  virtual int max_faulty() const { return 1; }

  // The initial states (Con_0, or D_0 for a general decision problem).
  // Thread-safe (built once under a flag).
  const std::vector<StateId>& initial_states();

  // S(x): the layer of x, deduplicated, in a deterministic order. Cached in
  // a sharded, striped-mutex map, so concurrent layer computations from the
  // parallel runtime are safe; racing computations of the same layer are
  // idempotent because interning is content-addressed. The returned
  // reference stays valid for the model's lifetime.
  const std::vector<StateId>& layer(StateId x);

  // The processes failed at x (faulty in *every* run through x). The three
  // asynchronous-flavoured models display no finite failure, so their
  // override is the empty default; the t-resilient synchronous model records
  // failures in the environment state.
  virtual ProcessSet failed_at(StateId x) const;

  StateRef state(StateId id) const noexcept { return arena_.state(id); }
  ViewArena& views() noexcept { return views_; }
  const ViewArena& views() const noexcept { return views_; }
  const DecisionRule& rule() const noexcept { return *rule_; }

  std::size_t num_states() const noexcept { return arena_.size(); }
  std::size_t num_views() const noexcept { return views_.size(); }

  // Approximate bytes held by the state arena and the view DAG combined;
  // what a Guard's memory budget is measured against.
  std::size_t memory_footprint() const noexcept {
    return arena_.approx_bytes() + views_.approx_bytes();
  }

  // True if x and y agree modulo j (environment and all local states except
  // j's are equal). Virtual because a model may attribute parts of the
  // environment encoding to individual processes: the asynchronous
  // message-passing model treats the channel *into* process j (j's mailbox)
  // as part of j's local state, which is what makes the permutation
  // layering's similarity claims of Section 5.1 come out as the paper
  // asserts.
  virtual bool agree_modulo(StateId x, StateId y, ProcessId j) const {
    return lacon::agree_modulo(state(x), state(y), j);
  }

  // Erase-j fingerprint: a 64-bit hash of exactly the material agree_modulo
  // compares — the environment plus every process local state except j's.
  // Soundness contract (the similarity index relies on it): whenever
  // agree_modulo(x, y, j) holds, similarity_fingerprint(x, j) ==
  // similarity_fingerprint(y, j); otherwise the index silently drops edges.
  // A model overriding agree_modulo to attribute environment words to
  // process j (the message-passing mailbox reading) must override this too
  // and mask the same words.
  virtual std::uint64_t similarity_fingerprint(StateId x, ProcessId j) const;

  // Writes the whole erase-one row at once: out[j] = similarity_fingerprint
  // (x, j) for j in [0, n). The base implementation hashes the env prefix
  // once and folds every locals/decisions lane into all n-1 non-erased row
  // entries in a single pass over the state (simd::fingerprint_lanes), which
  // is how fingerprint_row publication avoids n separate state walks. A
  // model that overrides similarity_fingerprint MUST override this too (the
  // message-passing models loop their own per-j hash); fingerprint_row
  // debug-asserts the row against the per-j virtual entry by entry.
  virtual void fingerprint_row_into(StateId x, std::uint64_t* out) const;

  // --- Snapshot hooks (lacon::store, store/snapshot.hpp) ------------------
  //
  // The store serializes the interned space through the public read API
  // (state()/views().node()) and replays it through the hooks below, in
  // stored-id order into a freshly-constructed model, so every restored
  // object receives exactly its stored id and later re-interning of the
  // same content hits the rebuilt hash-consing index.

  // Replays one interned state out of a snapshot; counts into
  // "arena.state_restored" instead of the miss counters.
  StateId restore_state(GlobalState s);

  // mmap zero-copy adoption: pins an mmap'ed snapshot and replays a state
  // whose flat payload lives in it, `word_offset` words past `base` (see
  // StateArena::adopt_mapped_region / restore_mapped for the layout
  // preconditions). The loader calls these instead of restore_state when
  // the on-disk record layout matches the pool encoding byte for byte.
  void adopt_mapped_states(const std::int64_t* base,
                           std::shared_ptr<const void> keepalive);
  StateId restore_mapped_state(const StateRef& s, std::uint64_t word_offset,
                               std::uint64_t hash);

  // The memoized erase-one fingerprint row of x: n entries, entry j equal
  // to similarity_fingerprint(x, j). Rows are published once per state in a
  // lock-free slot (racing computations are idempotent — the first
  // published row wins, losers free theirs); the similarity index reads
  // rows instead of rehashing each sweep, and the store serializes
  // published rows so a warm start skips the hashing phase. Deliberately
  // NOT part of memory_footprint(): rows appear in sweep order, which is
  // scheduling-dependent, and guard byte accounting must not be.
  const std::uint64_t* fingerprint_row(StateId x);

  // The row for x if one was already published, nullptr otherwise (the
  // store's save-side iteration; never computes).
  const std::uint64_t* cached_fingerprint_row(StateId x) const;

  // Publishes a row loaded from a snapshot (copies `row`, n entries;
  // keeps an existing row if already published).
  void restore_fingerprint_row(StateId x, const std::uint64_t* row);

  // The layer cache as (state, successors) entries, sorted by state id.
  // Call only while no layer computation is in flight.
  std::vector<std::pair<StateId, std::vector<StateId>>> export_layer_cache();

  // Replays cached layers from a snapshot. Entries whose key is already
  // cached keep the existing vector (they are equal by construction).
  void import_layer_cache(
      std::vector<std::pair<StateId, std::vector<StateId>>> entries);
  // ------------------------------------------------------------------------

  // --- Symmetry hooks (core/sym.hpp, DESIGN.md §15) -----------------------

  // How this model's layering behaves under process relabeling. A model may
  // declare kFull ONLY if (a) compute_layer commutes with every permutation
  // π (π·S(x) = S(π·x) as sets) and (b) its decision rule is equivariant
  // (decides from the *values* in a view, never from process indices — all
  // shipped rules qualify). The quotient additionally requires the initial
  // input assignments to be permutation-closed; that part is checked at
  // runtime, so a kFull model constructed with asymmetric inputs silently
  // degrades to the trivial quotient rather than producing wrong verdicts.
  virtual sym::SymmetryClass symmetry() const {
    return sym::SymmetryClass::kTrivial;
  }

  // Appends a comparison key of this state's environment as seen through
  // relabeling `rel` — a function of the *relabeled* env content, never of
  // raw ViewIds. The default copies the words verbatim, which is correct
  // exactly when the environment is process-independent and id-free (empty
  // envs, failure counters, ...). A model whose environment is indexed by
  // process or embeds interned ViewIds MUST override this (and, if it also
  // declares kFull, sym_permute_env below): snapshot registers and
  // in-transit messages both do. Also used with the identity relabeling to
  // form the id-free canonical_signature() that keys the lemma store, so
  // id-bearing envs need the override even on kTrivial models.
  virtual void sym_env_key(const StateRef& s, sym::Relabeling& rel,
                           std::vector<std::uint64_t>* out) const;

  // The environment of π·s for the relabeling `rel`: every process index
  // remapped through rel.new_of, every embedded view rewritten through
  // rel.rewrite, re-canonicalized to the model's own env ordering. The
  // default returns the words verbatim (valid for process-independent
  // envs). Only called when the quotient is active, i.e. on kFull models.
  virtual std::vector<std::int64_t> sym_permute_env(
      const StateRef& s, sym::Relabeling& rel) const;

  // True when states intern through the symmetry quotient: LACON_SYMMETRY
  // resolves to on (or a sym::ScopedSymmetry forces it), symmetry() is
  // kFull, the initial inputs are permutation-closed and n <= 15. Latched
  // on first use, so one model never mixes quotiented and raw interning.
  bool sym_quotient_active();

  // |orbit(x)| — the number of distinct global states x stands for. 1
  // whenever the quotient is inactive. Orbit-weighted sums over canonical
  // representatives reproduce the unquotiented counts exactly (layer sizes,
  // valence tallies); computed lazily so warm-started arenas pay only for
  // states an analysis actually touches.
  std::uint64_t orbit_weight(StateId x);

  // All member states of x's orbit (x included), sorted by id, interned
  // raw (bypassing canonicalization). Identity {x} when the quotient is
  // inactive. Diameter/similarity queries unfold their frontier through
  // this so connectivity verdicts match the unquotiented engine verbatim.
  // Closure under adjacent transpositions, so the cost is
  // O(orbit · n · rewrite) rather than n!.
  std::vector<StateId> unfold_orbit(StateId x);

  // Id-free 128-bit content signature of x: equal across runs, worker
  // counts and warm restarts for equal content. Keys the cross-level lemma
  // store (engine/lemma_store.hpp). Available for every symmetry class.
  std::pair<std::uint64_t, std::uint64_t> canonical_signature(StateId x);

  // The intern path explore/compute_layer use: folds s onto its orbit
  // representative first whenever the quotient is active, and records the
  // orbit weight for the interned id. Public so tests and orbit unfolding
  // helpers can intern externally-built states through the same path.
  StateId intern_canonical(GlobalState s);
  // ------------------------------------------------------------------------

  // Canonical, id-free rendering of x's environment component. The default
  // prints the raw words — canonical only for models whose environment
  // holds plain scalars. Models whose environment embeds interned ViewIds
  // (shared-memory/snapshot registers, in-transit messages) override this
  // to render view *terms*: raw ids may differ across worker counts
  // (threads race to intern first), so output compared across runs must go
  // through this, never through s.env directly.
  virtual std::string env_to_string(StateId x) const;

 protected:
  // Computes S(x); implementations should return successors in a
  // deterministic order and need not deduplicate (the base class does).
  virtual std::vector<StateId> compute_layer(StateId x) = 0;

  // Environment component of initial states; default: empty (constant env).
  virtual std::vector<std::int64_t> initial_env() const { return {}; }

  // Interns a successor state; routes through intern_canonical, so the
  // symmetry quotient applies transparently to every model's compute_layer.
  StateId intern(GlobalState s) { return intern_canonical(std::move(s)); }

  // Raw arena interning, no canonicalization: orbit unfolding and tests
  // that need non-canonical members in the arena.
  StateId intern_raw(GlobalState s) { return arena_.intern(std::move(s)); }

  // Applies the decision rule to process i after it obtained `new_view`.
  // Respects the write-once semantics of d_i.
  Value updated_decision(ProcessId i, Value current, ViewId new_view);

 private:
  static constexpr std::size_t kLayerShards = 64;
  struct LayerShard {
    std::mutex mu;
    std::unordered_map<StateId, std::vector<StateId>> map;
  };

  // True when every initial input assignment stays an initial input under
  // any permutation of the processes (checked via adjacent transpositions,
  // which generate S_n).
  bool inputs_permutation_closed() const;

  int n_;
  const DecisionRule* rule_;
  std::vector<std::vector<Value>> initial_inputs_;
  ViewArena views_;
  StateArena arena_;
  std::vector<StateId> initial_states_;
  std::once_flag initial_once_;
  std::array<LayerShard, kLayerShards> layer_shards_;
  // Per-state fingerprint rows (n hashes each); nullptr until published.
  runtime::ConcurrentSlotVector<std::atomic<const std::uint64_t*>> fp_memo_;
  // --- symmetry quotient (DESIGN.md §15) ---
  std::unique_ptr<sym::Canonicalizer> canon_;
  std::once_flag sym_once_;
  bool sym_active_ = false;
  // |orbit| per canonical state; 0 = not yet computed (slots value-init).
  runtime::ConcurrentSlotVector<std::atomic<std::uint64_t>> orbit_weights_;
  runtime::Counter* sym_folds_;
};

// All binary input assignments for n processes (the paper's Con_0 inputs).
std::vector<std::vector<Value>> all_binary_inputs(int n);

}  // namespace lacon
