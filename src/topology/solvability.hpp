// Solvability conditions for decision problems (Section 7): k-thick
// connectivity of a problem (Theorem 7.2 / Corollary 7.3 / Lemma 7.5) and
// the diameter bound of Lemma 7.6 / Theorem 7.7.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/tasks.hpp"

namespace lacon {

// Two input assignments are similar as initial states exactly when they
// differ in at most one process's input (the Lemma 3.6 chain argument).
bool inputs_similar(const std::vector<Value>& a, const std::vector<Value>& b);

// All similarity-connected subsets of the problem's inputs, as index lists.
// Only valid for small problems (|inputs| <= 20); larger problems use the
// sampled variant below.
std::vector<std::vector<std::size_t>> similarity_connected_input_sets(
    const DecisionProblem& p);

enum class ThickVerdict {
  kConnected,     // a subproblem Δ' witnessing the condition was found
  kNotConnected,  // exhaustively proved: no subproblem works
  kUnknown,       // search space too large and heuristics failed
};

struct ThickResult {
  ThickVerdict verdict = ThickVerdict::kUnknown;
  std::string detail;
  std::uint64_t subproblems_tried = 0;
};

// Decides whether D is k-thick connected: does a subproblem Δ' ⊆ Δ exist
// such that C_Δ'(I) is k-thick-connected for every similarity-connected set
// I of initial states?
//
// Strategy: (1) try Δ' = Δ and the canonical single-choice subproblems;
// (2) when the full subproblem space has at most `budget` members, decide
// exhaustively; otherwise return kUnknown if no witness was found. For every
// task in the catalog at n = 3 the answer is decided exactly.
ThickResult problem_k_thick_connected(const DecisionProblem& p, int k,
                                      std::uint64_t budget = 4'000'000);

// The diameter recurrence of Theorem 7.7: d_X^{m+1} = d_X^m d_Y^m + d_X^m +
// d_Y^m with d_Y^m = 2(n-m) and d_X^0 = d0; returns d_X^t.
long long diameter_bound(int n, int t, long long d0);

// Checks the diameter side condition of Theorem 7.7 for a problem: for
// every similarity-connected I there must be a subproblem whose output
// complex has thick-graph diameter at most `bound`. We evaluate it for
// Δ' = Δ (sufficient for the catalog's positive cases).
bool diameter_condition_holds(const DecisionProblem& p, int k,
                              long long bound);

}  // namespace lacon
