#include "topology/solvability.hpp"

#include <algorithm>
#include <cassert>

#include "relation/graph.hpp"
#include "util/rng.hpp"

namespace lacon {
namespace {

Graph input_similarity_graph(const DecisionProblem& p) {
  return Graph::from_relation(p.inputs.size(),
                              [&](std::size_t a, std::size_t b) {
                                return inputs_similar(p.inputs[a],
                                                      p.inputs[b]);
                              });
}

bool subset_connected(const Graph& g, const std::vector<std::size_t>& which) {
  if (which.size() <= 1) return true;
  // BFS within the subset.
  std::vector<bool> in_set(g.size(), false);
  for (std::size_t v : which) in_set[v] = true;
  std::vector<bool> seen(g.size(), false);
  std::vector<std::size_t> stack = {which[0]};
  seen[which[0]] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t w : g.neighbors(v)) {
      if (in_set[w] && !seen[w]) {
        seen[w] = true;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == which.size();
}

// The sets I the checker quantifies over. Exhaustive for small input
// families; otherwise a structured sample (full set, singletons, adjacent
// pairs, random connected subsets).
std::vector<std::vector<std::size_t>> candidate_input_sets(
    const DecisionProblem& p, bool* exhaustive) {
  const Graph g = input_similarity_graph(p);
  const std::size_t m = p.inputs.size();
  std::vector<std::vector<std::size_t>> sets;
  if (m <= 16) {
    *exhaustive = true;
    for (std::uint32_t bits = 1; bits < (1u << m); ++bits) {
      std::vector<std::size_t> which;
      for (std::size_t i = 0; i < m; ++i) {
        if ((bits >> i) & 1u) which.push_back(i);
      }
      if (subset_connected(g, which)) sets.push_back(std::move(which));
    }
    // Largest first: the full set is the most discriminating for failures.
    std::sort(sets.begin(), sets.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    return sets;
  }
  *exhaustive = false;
  std::vector<std::size_t> full(m);
  for (std::size_t i = 0; i < m; ++i) full[i] = i;
  sets.push_back(full);
  for (std::size_t i = 0; i < m; ++i) sets.push_back({i});
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b : g.neighbors(a)) {
      if (b > a) sets.push_back({a, b});
    }
  }
  // Random connected subsets grown by BFS from random seeds.
  Rng rng(0x7365747321ULL);
  for (int trial = 0; trial < 128; ++trial) {
    const std::size_t target = 2 + rng.below(m - 1);
    std::vector<std::size_t> which = {rng.below(m)};
    std::vector<bool> in_set(m, false);
    in_set[which[0]] = true;
    for (std::size_t grow = 0; grow < target; ++grow) {
      const std::size_t v = which[rng.below(which.size())];
      const auto& nb = g.neighbors(v);
      if (nb.empty()) break;
      const std::size_t w = nb[rng.below(nb.size())];
      if (!in_set[w]) {
        in_set[w] = true;
        which.push_back(w);
      }
    }
    std::sort(which.begin(), which.end());
    sets.push_back(std::move(which));
  }
  return sets;
}

// A subproblem: for each input index, a non-empty bitmask over its allowed
// outputs.
using Subproblem = std::vector<std::uint32_t>;

Complex subproblem_complex(const DecisionProblem& p, const Subproblem& sub,
                           const std::vector<std::size_t>& which) {
  Complex c;
  for (std::size_t idx : which) {
    const auto& outs = p.allowed_outputs[idx];
    for (std::size_t o = 0; o < outs.size(); ++o) {
      if ((sub[idx] >> o) & 1u) c.add(assignment_simplex(outs[o]));
    }
  }
  return c;
}

bool subproblem_ok(const DecisionProblem& p, const Subproblem& sub, int k,
                   const std::vector<std::vector<std::size_t>>& sets) {
  return std::all_of(sets.begin(), sets.end(), [&](const auto& which) {
    return subproblem_complex(p, sub, which).k_thick_connected(p.n, k);
  });
}

}  // namespace

bool inputs_similar(const std::vector<Value>& a, const std::vector<Value>& b) {
  assert(a.size() == b.size());
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i] && ++diffs > 1) return false;
  }
  return true;
}

std::vector<std::vector<std::size_t>> similarity_connected_input_sets(
    const DecisionProblem& p) {
  bool exhaustive = false;
  auto sets = candidate_input_sets(p, &exhaustive);
  assert(exhaustive && "problem too large for exhaustive set enumeration");
  return sets;
}

ThickResult problem_k_thick_connected(const DecisionProblem& p, int k,
                                      std::uint64_t budget) {
  ThickResult result;
  bool exhaustive_sets = false;
  const auto sets = candidate_input_sets(p, &exhaustive_sets);
  const std::string set_note =
      exhaustive_sets ? "all similarity-connected I"
                      : "sampled similarity-connected I";

  // Heuristic witnesses first: Δ' = Δ, then the per-input single choices
  // "always the c-th allowed output".
  std::size_t max_choices = 0;
  Subproblem full(p.inputs.size());
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    const std::size_t sz = p.allowed_outputs[i].size();
    max_choices = std::max(max_choices, sz);
    full[i] = (sz >= 32) ? 0xffffffffu : ((1u << sz) - 1);
  }
  ++result.subproblems_tried;
  if (subproblem_ok(p, full, k, sets)) {
    result.verdict = ThickVerdict::kConnected;
    result.detail = "witness: Δ' = Δ (" + set_note + ")";
    return result;
  }
  for (std::size_t c = 0; c < max_choices; ++c) {
    Subproblem single(p.inputs.size());
    for (std::size_t i = 0; i < p.inputs.size(); ++i) {
      const std::size_t sz = p.allowed_outputs[i].size();
      single[i] = 1u << std::min(c, sz - 1);
    }
    ++result.subproblems_tried;
    if (subproblem_ok(p, single, k, sets)) {
      result.verdict = ThickVerdict::kConnected;
      result.detail = "witness: single-choice subproblem #" +
                      std::to_string(c) + " (" + set_note + ")";
      return result;
    }
  }

  // Exhaustive subproblem search when feasible (and only conclusive for the
  // negative verdict when the I-sets were exhaustive too).
  std::uint64_t space = 1;
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    const std::size_t sz = p.allowed_outputs[i].size();
    if (sz >= 20) {
      space = budget + 1;
      break;
    }
    const std::uint64_t options = (1ULL << sz) - 1;
    if (space > budget / options + 1) {
      space = budget + 1;
      break;
    }
    space *= options;
  }
  if (space > budget) {
    result.verdict = ThickVerdict::kUnknown;
    result.detail = "subproblem space too large (" + set_note + ")";
    return result;
  }

  Subproblem sub(p.inputs.size(), 1u);  // mixed-radix counter over masks
  for (;;) {
    ++result.subproblems_tried;
    if (subproblem_ok(p, sub, k, sets)) {
      result.verdict = ThickVerdict::kConnected;
      result.detail = "witness found by exhaustive search (" + set_note + ")";
      return result;
    }
    // Increment: each digit ranges over 1 .. 2^sz - 1.
    std::size_t pos = 0;
    while (pos < sub.size()) {
      const std::uint32_t limit =
          (1u << p.allowed_outputs[pos].size()) - 1;
      if (sub[pos] < limit) {
        ++sub[pos];
        break;
      }
      sub[pos] = 1u;
      ++pos;
    }
    if (pos == sub.size()) break;
  }
  result.verdict = exhaustive_sets ? ThickVerdict::kNotConnected
                                   : ThickVerdict::kUnknown;
  result.detail = "no subproblem works (exhaustive over Δ', " + set_note + ")";
  return result;
}

long long diameter_bound(int n, int t, long long d0) {
  long long dx = d0;
  for (int m = 0; m < t; ++m) {
    const long long dy = 2LL * (n - m);
    dx = dx * dy + dx + dy;
  }
  return dx;
}

bool diameter_condition_holds(const DecisionProblem& p, int k,
                              long long bound) {
  bool exhaustive = false;
  const auto sets = candidate_input_sets(p, &exhaustive);
  for (const auto& which : sets) {
    const auto diam = p.output_complex(which).thick_diameter(p.n, k);
    if (!diam || static_cast<long long>(*diam) > bound) return false;
  }
  return true;
}

}  // namespace lacon
