#include "topology/tasks.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "core/model.hpp"  // all_binary_inputs

namespace lacon {
namespace {

// All assignments over {0..m-1}^n.
std::vector<std::vector<Value>> all_inputs(int n, int m) {
  std::vector<std::vector<Value>> out;
  std::vector<Value> cur(static_cast<std::size_t>(n), 0);
  for (;;) {
    out.push_back(cur);
    int pos = 0;
    while (pos < n && cur[static_cast<std::size_t>(pos)] == m - 1) {
      cur[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == n) break;
    ++cur[static_cast<std::size_t>(pos)];
  }
  return out;
}

std::set<Value> distinct_values(const std::vector<Value>& v) {
  return std::set<Value>(v.begin(), v.end());
}

}  // namespace

Complex DecisionProblem::output_complex(
    const std::vector<std::size_t>& which) const {
  Complex c;
  for (std::size_t idx : which) {
    for (const std::vector<Value>& out : allowed_outputs[idx]) {
      c.add(assignment_simplex(out));
    }
  }
  return c;
}

DecisionProblem consensus_task(int n) {
  DecisionProblem p;
  p.name = "consensus";
  p.n = n;
  p.inputs = all_binary_inputs(n);
  for (const auto& in : p.inputs) {
    std::vector<std::vector<Value>> outs;
    for (Value v : distinct_values(in)) {
      outs.push_back(std::vector<Value>(static_cast<std::size_t>(n), v));
    }
    p.allowed_outputs.push_back(std::move(outs));
  }
  return p;
}

DecisionProblem set_agreement_task(int n, int k, int m) {
  assert(k >= 1 && m >= 2);
  DecisionProblem p;
  p.name = std::to_string(k) + "-set-agreement(m=" + std::to_string(m) + ")";
  p.n = n;
  p.inputs = all_inputs(n, m);
  for (const auto& in : p.inputs) {
    const std::set<Value> vals = distinct_values(in);
    std::vector<std::vector<Value>> outs;
    // Every output assignment drawing from the run's inputs with at most k
    // distinct values.
    for (const auto& candidate : all_inputs(n, m)) {
      const std::set<Value> cvals = distinct_values(candidate);
      if (static_cast<int>(cvals.size()) > k) continue;
      if (!std::includes(vals.begin(), vals.end(), cvals.begin(),
                         cvals.end())) {
        continue;
      }
      outs.push_back(candidate);
    }
    p.allowed_outputs.push_back(std::move(outs));
  }
  return p;
}

DecisionProblem trivial_task(int n) {
  DecisionProblem p;
  p.name = "trivial";
  p.n = n;
  p.inputs = all_binary_inputs(n);
  for (const auto& in : p.inputs) {
    p.allowed_outputs.push_back({in});
  }
  return p;
}

DecisionProblem constant_task(int n, Value v) {
  DecisionProblem p;
  p.name = "constant-" + std::to_string(v);
  p.n = n;
  p.inputs = all_binary_inputs(n);
  const std::vector<Value> out(static_cast<std::size_t>(n), v);
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    p.allowed_outputs.push_back({out});
  }
  return p;
}

DecisionProblem weak_agreement_task(int n) {
  DecisionProblem p;
  p.name = "weak-agreement";
  p.n = n;
  p.inputs = all_binary_inputs(n);
  const std::vector<Value> zeros(static_cast<std::size_t>(n), 0);
  const std::vector<Value> ones(static_cast<std::size_t>(n), 1);
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    p.allowed_outputs.push_back({zeros, ones});
  }
  return p;
}

}  // namespace lacon
