#include "topology/simplex.hpp"

#include <algorithm>
#include <cassert>

namespace lacon {

Simplex make_simplex(std::vector<Vertex> vertices) {
  std::sort(vertices.begin(), vertices.end());
#ifndef NDEBUG
  for (std::size_t i = 1; i < vertices.size(); ++i) {
    assert(vertices[i - 1].id != vertices[i].id &&
           "simplex process ids must be distinct");
  }
#endif
  return vertices;
}

Simplex make_simplex(std::initializer_list<Vertex> vertices) {
  return make_simplex(std::vector<Vertex>(vertices));
}

Simplex assignment_simplex(const std::vector<Value>& values) {
  Simplex s;
  s.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.push_back(Vertex{static_cast<ProcessId>(i), values[i]});
  }
  return s;
}

bool is_face(const Simplex& a, const Simplex& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

Simplex simplex_intersection(const Simplex& a, const Simplex& b) {
  Simplex out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::string to_string(const Simplex& s) {
  std::string out = "{";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out += ", ";
    out += "(" + std::to_string(s[i].id) + ":" + std::to_string(s[i].value) +
           ")";
  }
  return out + "}";
}

}  // namespace lacon
