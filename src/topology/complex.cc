#include "topology/complex.hpp"

#include <algorithm>

namespace lacon {
namespace {

// Enumerates all faces of `s` with exactly `size` vertices into `out`.
void faces_of_size(const Simplex& s, int size,
                   std::unordered_set<Simplex, SimplexHash>& out) {
  const int m = static_cast<int>(s.size());
  if (size > m) return;
  // Iterate over all size-subsets via bitmask (simplexes are tiny).
  for (std::uint32_t bits = 0; bits < (1u << m); ++bits) {
    if (__builtin_popcount(bits) != size) continue;
    Simplex face;
    face.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < m; ++i) {
      if ((bits >> i) & 1u) face.push_back(s[static_cast<std::size_t>(i)]);
    }
    out.insert(std::move(face));
  }
}

}  // namespace

void Complex::add(const Simplex& s) {
  if (generator_set_.insert(s).second) generators_.push_back(s);
}

bool Complex::contains(const Simplex& s) const {
  if (generator_set_.contains(s)) return true;
  return std::any_of(generators_.begin(), generators_.end(),
                     [&](const Simplex& g) { return is_face(s, g); });
}

std::vector<Simplex> Complex::simplexes_of_size(int size) const {
  std::unordered_set<Simplex, SimplexHash> set;
  for (const Simplex& g : generators_) faces_of_size(g, size, set);
  std::vector<Simplex> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

Graph Complex::thick_graph(int n, int k) const {
  const std::vector<Simplex> tops = simplexes_of_size(n);
  return Graph::from_relation(tops.size(), [&](std::size_t a, std::size_t b) {
    return static_cast<int>(simplex_intersection(tops[a], tops[b]).size()) >=
           n - k;
  });
}

bool Complex::k_thick_connected(int n, int k) const {
  return thick_graph(n, k).connected();
}

std::optional<std::size_t> Complex::thick_diameter(int n, int k) const {
  return thick_graph(n, k).diameter();
}

bool Complex::operator==(const Complex& o) const {
  // Compare as sets of generators (sufficient for our uses, where complexes
  // are built from the same generator families).
  if (generators_.size() != o.generators_.size()) return false;
  return std::all_of(generators_.begin(), generators_.end(),
                     [&](const Simplex& g) {
                       return o.generator_set_.contains(g);
                     });
}

}  // namespace lacon
