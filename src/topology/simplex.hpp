// Vertices and simplexes (Section 7).
//
// A vertex is a pair (process id, value); a simplex is a set of vertices
// with pairwise-distinct process ids, stored sorted by process id so that
// simplex equality is vector equality.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/hash.hpp"

namespace lacon {

struct Vertex {
  ProcessId id = 0;
  Value value = 0;

  auto operator<=>(const Vertex&) const = default;
};

using Simplex = std::vector<Vertex>;  // sorted by id, ids distinct

// Builds a simplex from arbitrary-order vertices; asserts distinct ids.
Simplex make_simplex(std::vector<Vertex> vertices);
Simplex make_simplex(std::initializer_list<Vertex> vertices);

// The simplex describing a full input/output assignment: vertex (i, v[i])
// for every process.
Simplex assignment_simplex(const std::vector<Value>& values);

// True iff `a` is a face of `b` (every vertex of a appears in b).
bool is_face(const Simplex& a, const Simplex& b);

// The common face of a and b.
Simplex simplex_intersection(const Simplex& a, const Simplex& b);

std::string to_string(const Simplex& s);

struct SimplexHash {
  std::size_t operator()(const Simplex& s) const noexcept {
    std::uint64_t h = s.size();
    for (const Vertex& v : s) {
      h = hash_combine(h, static_cast<std::uint64_t>(v.id));
      h = hash_combine(h, static_cast<std::uint64_t>(v.value));
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace lacon
