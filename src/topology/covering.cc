#include "topology/covering.hpp"

#include "engine/explore.hpp"
#include "util/bitset.hpp"

namespace lacon {
namespace {

// Enumerates the decided output simplexes witnessed at state x: for every
// set F of non-failed processes with |F ∪ failed| <= max_faulty that
// contains every undecided non-failed process, there is a run extending x
// in which exactly F ∪ failed are faulty and everyone else's (write-once)
// decision stands — its decided output simplex is the decisions of the
// non-failed processes outside F. F must absorb all undecided processes,
// but may also absorb *decided* ones: a process that decided and then turns
// faulty does not contribute to the nonfaulty decision simplex.
template <typename Fn>
void for_each_witness_simplex(LayeredModel& model, StateId x, Fn&& fn) {
  const StateRef s = model.state(x);
  const ProcessSet failed = model.failed_at(x);
  std::vector<ProcessId> undecided;
  std::vector<Vertex> decided;
  for (ProcessId i = 0; i < model.n(); ++i) {
    if (failed.contains(i)) continue;
    const Value d = s.decisions[static_cast<std::size_t>(i)];
    if (d == kUndecided) {
      undecided.push_back(i);
    } else {
      decided.push_back(Vertex{i, d});
    }
  }
  const int budget = model.max_faulty() - failed.size() -
                     static_cast<int>(undecided.size());
  if (budget < 0) return;  // some undecided process cannot be absorbed
  // Enumerate which decided processes additionally turn faulty (bounded by
  // the remaining budget; max_faulty is tiny in every model).
  const std::uint32_t options = 1u << decided.size();
  for (std::uint32_t extra = 0; extra < options; ++extra) {
    if (__builtin_popcount(extra) > budget) continue;
    Simplex simplex;
    for (std::size_t d = 0; d < decided.size(); ++d) {
      if (!((extra >> d) & 1u)) simplex.push_back(decided[d]);
    }
    fn(simplex);
  }
}

}  // namespace

Covering consensus_covering(int n) {
  Covering c;
  c.o0.add(assignment_simplex(std::vector<Value>(static_cast<std::size_t>(n), 0)));
  c.o1.add(assignment_simplex(std::vector<Value>(static_cast<std::size_t>(n), 1)));
  return c;
}

GeneralizedValenceEngine::GeneralizedValenceEngine(LayeredModel& model,
                                                   Covering covering,
                                                   int horizon,
                                                   Exactness mode)
    : model_(model),
      covering_(std::move(covering)),
      horizon_(horizon),
      mode_(mode) {}

ValenceInfo GeneralizedValenceEngine::local_witness(StateId x) const {
  ValenceInfo info;
  for_each_witness_simplex(model_, x, [&](const Simplex& s) {
    if (covering_.o0.contains(s)) info.v0 = true;
    if (covering_.o1.contains(s)) info.v1 = true;
  });
  return info;
}

ValenceInfo GeneralizedValenceEngine::valence(StateId x) {
  if (mode_ == Exactness::kQuiescence) return compute(memo_, x, horizon_);
  const ValenceInfo shallow = compute(memo_, x, horizon_);
  if (shallow.bivalent()) return shallow;
  ValenceInfo deep = compute(memo_deep_, x, horizon_ + 1);
  deep.exact = deep.exact || deep.bivalent() || deep.same_set(shallow);
  return deep;
}

ValenceInfo GeneralizedValenceEngine::compute(Memo& memo, StateId x,
                                              int budget) {
  auto it = memo.find(x);
  if (it != memo.end()) {
    if (it->second.info.bivalent() || it->second.horizon >= budget) {
      return it->second.info;
    }
  }

  ValenceInfo info = local_witness(x);
  if (info.bivalent() || quiescent(model_, x)) {
    info.exact = true;
    memo[x] = Entry{budget, info};
    return info;
  }
  if (budget == 0) {
    info.exact = false;
    memo[x] = Entry{0, info};
    return info;
  }

  info.exact = true;
  for (StateId y : model_.layer(x)) {
    const ValenceInfo sub = compute(memo, y, budget - 1);
    info.v0 = info.v0 || sub.v0;
    info.v1 = info.v1 || sub.v1;
    info.exact = info.exact && sub.exact;
    if (info.bivalent()) {
      info.exact = true;
      break;
    }
  }
  memo[x] = Entry{budget, info};
  return info;
}

bool GeneralizedValenceEngine::valence_connected(
    const std::vector<StateId>& X) {
  std::vector<ValenceInfo> infos;
  infos.reserve(X.size());
  for (StateId x : X) infos.push_back(valence(x));
  return Graph::from_relation(X.size(),
                              [&](std::size_t a, std::size_t b) {
                                return (infos[a].v0 && infos[b].v0) ||
                                       (infos[a].v1 && infos[b].v1);
                              })
      .connected();
}

std::optional<StateId> GeneralizedValenceEngine::find_bivalent(
    const std::vector<StateId>& X) {
  for (StateId x : X) {
    if (valence(x).bivalent()) return x;
  }
  return std::nullopt;
}

GeneralizedBivalentRun extend_generalized_bivalent_run(
    GeneralizedValenceEngine& engine, const std::vector<StateId>& I,
    int depth) {
  GeneralizedBivalentRun result;
  const std::optional<StateId> start = engine.find_bivalent(I);
  if (!start) {
    result.stuck_reason = "no bivalent state in I";
    return result;
  }
  result.run.push_back(*start);
  StateId cur = *start;
  for (int d = 0; d < depth; ++d) {
    const std::vector<StateId>& layer = engine.model().layer(cur);
    const std::optional<StateId> next = engine.find_bivalent(layer);
    if (!next) {
      result.stuck_reason =
          "no bivalent successor at depth " + std::to_string(d);
      return result;
    }
    cur = *next;
    result.run.push_back(cur);
  }
  result.complete = true;
  return result;
}

GeneralizedBivalentRun lemma_7_4_chain(GeneralizedValenceEngine& engine,
                                       const std::vector<StateId>& I,
                                       int length) {
  GeneralizedBivalentRun result;
  LayeredModel& model = engine.model();
  const std::optional<StateId> start = engine.find_bivalent(I);
  if (!start) {
    result.stuck_reason = "no covering-bivalent state in I";
    return result;
  }
  result.run.push_back(*start);
  StateId cur = *start;
  for (int m = 1; m <= length; ++m) {
    std::optional<StateId> next;
    for (StateId y : model.layer(cur)) {
      if (model.failed_at(y).size() > m) continue;
      if (engine.valence(y).bivalent()) {
        next = y;
        break;
      }
    }
    if (!next) {
      result.stuck_reason =
          "no bivalent successor with <= " + std::to_string(m) +
          " failures at layer " + std::to_string(m);
      return result;
    }
    cur = *next;
    result.run.push_back(cur);
  }
  result.complete = true;
  return result;
}

CoveringCheck check_covering(LayeredModel& model, const Covering& covering,
                             const std::vector<StateId>& X, int depth) {
  CoveringCheck check;
  // Explore `depth` layers below every state of X.
  DenseBitset seen(model.num_states());
  for (StateId x : X) seen.insert(x);
  std::vector<StateId> frontier(X.begin(), X.end());
  for (int d = 0; d <= depth && !frontier.empty(); ++d) {
    for (StateId x : frontier) {
      for_each_witness_simplex(model, x, [&](const Simplex& s) {
        if (s.empty()) return;  // nobody decided yet
        const bool in0 = covering.o0.contains(s);
        const bool in1 = covering.o1.contains(s);
        if (!in0 && !in1) {
          check.covers = false;
          check.detail = "simplex " + to_string(s) + " escapes the covering";
        }
        check.o0_witnessed = check.o0_witnessed || in0;
        check.o1_witnessed = check.o1_witnessed || in1;
      });
    }
    if (d == depth) break;
    std::vector<StateId> next;
    for (StateId x : frontier) {
      if (quiescent(model, x)) continue;
      for (StateId y : model.layer(x)) {
        if (seen.insert(y)) next.push_back(y);
      }
    }
    frontier = std::move(next);
  }
  return check;
}

}  // namespace lacon
