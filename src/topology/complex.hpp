// Simplicial complexes, k-thick connectivity and complex diameter
// (Section 7).
//
// A complex is a set of simplexes closed under containment; we store the
// maximal-simplex generators and answer membership by face queries (the
// instances here are tiny). An n-size-complex is k-thick-connected when any
// two n-size-simplexes are linked by a chain of n-size-simplexes in which
// consecutive members share an (n-k)-size face.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "relation/graph.hpp"
#include "topology/simplex.hpp"

namespace lacon {

class Complex {
 public:
  Complex() = default;

  // Adds a simplex (and implicitly all of its faces).
  void add(const Simplex& s);

  bool empty() const noexcept { return generators_.empty(); }

  // Membership: s is in the complex iff it is a face of some generator.
  bool contains(const Simplex& s) const;

  // All distinct simplexes of exactly `size` vertices present in the
  // complex (enumerated from the generators' faces).
  std::vector<Simplex> simplexes_of_size(int size) const;

  const std::vector<Simplex>& generators() const noexcept {
    return generators_;
  }

  // The graph on n-size-simplexes with edges between pairs sharing an
  // (n-k)-size face.
  Graph thick_graph(int n, int k) const;

  bool k_thick_connected(int n, int k) const;

  // Diameter of the thick graph; nullopt when disconnected or empty.
  std::optional<std::size_t> thick_diameter(int n, int k) const;

  bool operator==(const Complex& o) const;

 private:
  std::vector<Simplex> generators_;  // maximal under insertion order
  std::unordered_set<Simplex, SimplexHash> generator_set_;
};

}  // namespace lacon
