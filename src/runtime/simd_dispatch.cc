#include "runtime/simd_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LACON_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define LACON_SIMD_NEON 1
#endif

namespace lacon::simd {

namespace {

constexpr Kernels kScalarTable = {
    "scalar",
    &scalar::words_equal,
    &scalar::lanes_equal_skip,
    &scalar::fingerprint_lanes,
    &scalar::bitset_or,
    &scalar::bitset_and,
    &scalar::bitset_andnot,
    &scalar::bitset_popcount,
    &scalar::bitset_find_first,
    &scalar::hash_words,
    &scalar::hash_lanes,
    &scalar::frontier_advance,
};

#if LACON_SIMD_X86

// The AVX2 kernels carry per-function target attributes so this translation
// unit builds without -mavx2 and stays loadable on pre-AVX2 hosts; only the
// dispatcher below ever takes their address, and only after the CPUID
// check. AVX2 silicon universally ships BMI2 + POPCNT (Haswell/Excavator
// onward), but host_supports() verifies each flag anyway before this table
// is eligible.
#define LACON_TARGET_AVX2 __attribute__((target("avx2,bmi,bmi2,popcnt")))

LACON_TARGET_AVX2
bool words_equal_avx2(const std::int64_t* a, const std::int64_t* b,
                      std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i diff = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(diff, diff)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

LACON_TARGET_AVX2
bool lanes_equal_skip_avx2(const std::int32_t* a, const std::int32_t* b,
                           std::size_t n, std::size_t skip) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi32(va, vb);
    auto mismatch = static_cast<unsigned>(
                        _mm256_movemask_ps(_mm256_castsi256_ps(eq))) ^
                    0xffu;
    if (skip >= i && skip - i < 8) {
      mismatch &= ~(1u << (skip - i));  // the erased lane may differ
    }
    if (mismatch != 0) return false;
  }
  for (; i < n; ++i) {
    if (i != skip && a[i] != b[i]) return false;
  }
  return true;
}

// Exact low-64 product per lane: AVX2 has no vpmullq, so compose it from
// 32x32->64 partial products. lo(a*b) = lo32(a)*lo32(b)
// + ((hi32(a)*lo32(b) + lo32(a)*hi32(b)) << 32), all mod 2^64.
LACON_TARGET_AVX2
inline __m256i mullo64_avx2(__m256i a, __m256i b) noexcept {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// mix64 (util/hash.hpp), four lanes at a time. Shifts, xors and adds map
// 1:1; the two multiplies go through mullo64_avx2, so every lane computes
// exactly the scalar value.
LACON_TARGET_AVX2
inline __m256i mix64_avx2(__m256i z) noexcept {
  z = _mm256_add_epi64(z, _mm256_set1_epi64x(0x9e3779b97f4a7c15LL));
  z = mullo64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                   _mm256_set1_epi64x(static_cast<long long>(
                       0xbf58476d1ce4e5b9ULL)));
  z = mullo64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                   _mm256_set1_epi64x(static_cast<long long>(
                       0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

// hash_combine (util/hash.hpp): mix64(seed ^ (v + C + (seed<<6) + (seed>>2))).
LACON_TARGET_AVX2
inline __m256i hash_combine_avx2(__m256i seed, __m256i value) noexcept {
  __m256i t =
      _mm256_add_epi64(value, _mm256_set1_epi64x(0x9e3779b97f4a7c15LL));
  t = _mm256_add_epi64(t, _mm256_slli_epi64(seed, 6));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(seed, 2));
  return mix64_avx2(_mm256_xor_si256(seed, t));
}

// Keeps lane `lane` (0..3) of `combined` at its pre-item value `prev` —
// the vector form of the fold's "skip item i in row entry i".
LACON_TARGET_AVX2
inline __m256i blend_keep_lane(__m256i combined, __m256i prev,
                               std::size_t lane) noexcept {
  switch (lane) {
    case 0: return _mm256_blend_epi32(combined, prev, 0x03);
    case 1: return _mm256_blend_epi32(combined, prev, 0x0c);
    case 2: return _mm256_blend_epi32(combined, prev, 0x30);
    default: return _mm256_blend_epi32(combined, prev, 0xc0);
  }
}

LACON_TARGET_AVX2
inline void store_lanes(std::uint64_t* out, std::size_t base, std::size_t n,
                        __m256i h) noexcept {
  if (n - base >= 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + base), h);
  } else {
    alignas(32) std::uint64_t tail[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tail), h);
    for (std::size_t j = base; j < n; ++j) out[j] = tail[j - base];
  }
}

LACON_TARGET_AVX2
void fingerprint_lanes_avx2(std::uint64_t seed, const std::int32_t* locals,
                            const std::int32_t* decisions, std::size_t n,
                            std::uint64_t* out) noexcept {
  // Four output lanes (erased coordinates j) per vector; each item i is
  // broadcast and combined into every lane, then a blend restores lane i's
  // previous hash so the item is skipped exactly where the per-j fold skips
  // it. Lane-for-lane the operation sequence equals the scalar fold.
  //
  // Two blocks (8 lanes) advance through the item loop together: each
  // block's fold is one serial dependency chain through the emulated 64-bit
  // multiplies of mix64, so a lone block is latency-bound — the paired
  // chains interleave in the multiply pipes and roughly double throughput
  // (this is what makes the kernel beat the scalar fold, whose n
  // independent row entries already enjoy full ILP).
  const __m256i seedv = _mm256_set1_epi64x(static_cast<long long>(seed));
  for (std::size_t base = 0; base < n; base += 8) {
    const bool two = base + 4 < n;
    __m256i h0 = seedv;
    __m256i h1 = seedv;
    for (std::size_t i = 0; i < n; ++i) {
      const __m256i l = _mm256_set1_epi64x(
          static_cast<long long>(static_cast<std::int64_t>(locals[i])));
      const __m256i d = _mm256_set1_epi64x(
          static_cast<long long>(static_cast<std::int64_t>(decisions[i])));
      __m256i c0 = hash_combine_avx2(hash_combine_avx2(h0, l), d);
      __m256i c1 = two ? hash_combine_avx2(hash_combine_avx2(h1, l), d) : h1;
      if (i >= base && i - base < 8) {
        if (i - base < 4) {
          c0 = blend_keep_lane(c0, h0, i - base);
        } else {
          c1 = blend_keep_lane(c1, h1, i - base - 4);
        }
      }
      h0 = c0;
      h1 = c1;
    }
    store_lanes(out, base, n, h0);
    if (two) store_lanes(out, base + 4, n, h1);
  }
}

LACON_TARGET_AVX2
void bitset_or_avx2(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

LACON_TARGET_AVX2
void bitset_and_avx2(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

LACON_TARGET_AVX2
void bitset_andnot_avx2(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot(s, d) = d & ~s.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

// Nibble-LUT popcount (the classic vpshufb scheme): per-byte counts via two
// table lookups, summed into 64-bit lanes with SAD against zero.
LACON_TARGET_AVX2
std::uint64_t bitset_popcount_avx2(const std::uint64_t* w,
                                   std::size_t n) noexcept {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i lo = _mm256_and_si256(v, low_nibble);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi32(v, 4), low_nibble);
    const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts,
                                                _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

LACON_TARGET_AVX2
std::size_t bitset_find_first_avx2(const std::uint64_t* w,
                                   std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) break;  // hit inside this block
  }
  for (; i < n; ++i) {
    if (w[i] != 0) {
      return i * 64 + static_cast<std::size_t>(__builtin_ctzll(w[i]));
    }
  }
  return kNpos;
}

// Shared tail of hash_words/hash_lanes: reduce the four vector accumulator
// lanes, finish the scalar remainder, fold in the length. The per-position
// mixes feed a wrapping sum, so lane order inside the reduction is free —
// the result equals the scalar left-to-right fold exactly.
LACON_TARGET_AVX2
inline std::uint64_t hash_reduce_avx2(__m256i acc, std::uint64_t partial,
                                      std::size_t n,
                                      std::uint64_t seed) noexcept {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  partial += lanes[0] + lanes[1] + lanes[2] + lanes[3];
  return hash_combine(hash_combine(seed, n), partial);
}

LACON_TARGET_AVX2
std::uint64_t hash_words_avx2(const std::int64_t* w, std::size_t n,
                              std::uint64_t seed) noexcept {
  // Position keys seed + (i+1)*phi for four consecutive i per vector; the
  // key vector strides by 4*phi (mod 2^64, matching the scalar wrap).
  __m256i key = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(seed)),
      _mm256_setr_epi64x(static_cast<long long>(1 * kHashPhi),
                         static_cast<long long>(2 * kHashPhi),
                         static_cast<long long>(3 * kHashPhi),
                         static_cast<long long>(4 * kHashPhi)));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * kHashPhi));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, mix64_avx2(_mm256_xor_si256(v, key)));
    key = _mm256_add_epi64(key, step);
  }
  std::uint64_t tail = 0;
  for (; i < n; ++i) {
    tail += mix64(static_cast<std::uint64_t>(w[i]) ^
                  (seed + (static_cast<std::uint64_t>(i) + 1) * kHashPhi));
  }
  return hash_reduce_avx2(acc, tail, n, seed);
}

LACON_TARGET_AVX2
std::uint64_t hash_lanes_avx2(const std::int32_t* v, std::size_t n,
                              std::uint64_t seed) noexcept {
  __m256i key = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(seed)),
      _mm256_setr_epi64x(static_cast<long long>(1 * kHashPhi),
                         static_cast<long long>(2 * kHashPhi),
                         static_cast<long long>(3 * kHashPhi),
                         static_cast<long long>(4 * kHashPhi)));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * kHashPhi));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Sign-extend four 32-bit lanes to 64 bits — the scalar cast chain
    // int32 -> int64 -> uint64.
    const __m256i wide = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
    acc = _mm256_add_epi64(acc, mix64_avx2(_mm256_xor_si256(wide, key)));
    key = _mm256_add_epi64(key, step);
  }
  std::uint64_t tail = 0;
  for (; i < n; ++i) {
    tail +=
        mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v[i])) ^
              (seed + (static_cast<std::uint64_t>(i) + 1) * kHashPhi));
  }
  return hash_reduce_avx2(acc, tail, n, seed);
}

LACON_TARGET_AVX2
std::size_t frontier_advance_avx2(std::uint64_t* next, std::uint64_t* visited,
                                  std::size_t nwords,
                                  std::uint32_t* out) noexcept {
  std::size_t count = 0;
  std::size_t w = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; w + 4 <= nwords; w += 4) {
    const __m256i nx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(next + w));
    // Frontiers are sparse in the word space; skipping all-zero blocks with
    // one test is where the vector path earns its keep.
    if (_mm256_testz_si256(nx, nx)) continue;
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(visited + w));
    const __m256i fresh = _mm256_andnot_si256(vs, nx);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(visited + w),
                        _mm256_or_si256(vs, fresh));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(next + w), zero);
    alignas(32) std::uint64_t block[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(block), fresh);
    for (std::size_t k = 0; k < 4; ++k) {
      std::uint64_t bits = block[k];
      const auto base = static_cast<std::uint32_t>((w + k) * 64);
      while (bits != 0) {
        out[count++] =
            base + static_cast<std::uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
      }
    }
  }
  for (; w < nwords; ++w) {
    std::uint64_t fresh = next[w] & ~visited[w];
    next[w] = 0;
    if (fresh == 0) continue;
    visited[w] |= fresh;
    const auto base = static_cast<std::uint32_t>(w * 64);
    do {
      out[count++] =
          base + static_cast<std::uint32_t>(__builtin_ctzll(fresh));
      fresh &= fresh - 1;
    } while (fresh != 0);
  }
  return count;
}

const Kernels kAvx2Table = {
    "avx2",
    &words_equal_avx2,
    &lanes_equal_skip_avx2,
    &fingerprint_lanes_avx2,
    &bitset_or_avx2,
    &bitset_and_avx2,
    &bitset_andnot_avx2,
    &bitset_popcount_avx2,
    &bitset_find_first_avx2,
    &hash_words_avx2,
    &hash_lanes_avx2,
    &frontier_advance_avx2,
};

#endif  // LACON_SIMD_X86

#if LACON_SIMD_NEON

// NEON is baseline on aarch64, so no target attributes or CPUID checks are
// needed — presence of __aarch64__ is the feature test. The fingerprint
// kernel stays scalar here: emulating exact 64x64 low multiplies from
// vmull_u32 partials costs more than the two scalar mul pipes deliver, and
// the dispatch is per-kernel precisely so each entry can take the portable
// path when vectorizing it doesn't pay.

inline bool neon_all_zero(uint64x2_t v) noexcept {
  return (vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) == 0;
}

bool words_equal_neon(const std::int64_t* a, const std::int64_t* b,
                      std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va =
        vld1q_u64(reinterpret_cast<const std::uint64_t*>(a + i));
    const uint64x2_t vb =
        vld1q_u64(reinterpret_cast<const std::uint64_t*>(b + i));
    if (!neon_all_zero(veorq_u64(va, vb))) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool lanes_equal_skip_neon(const std::int32_t* a, const std::int32_t* b,
                           std::size_t n, std::size_t skip) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t va = vld1q_s32(a + i);
    const int32x4_t vb = vld1q_s32(b + i);
    uint32x4_t mismatch = vmvnq_u32(vceqq_s32(va, vb));
    if (skip >= i && skip - i < 4) {
      // Clear the erased lane's mismatch bit before testing the block.
      alignas(16) std::uint32_t lanes[4];
      vst1q_u32(lanes, mismatch);
      lanes[skip - i] = 0;
      mismatch = vld1q_u32(lanes);
    }
    if (!neon_all_zero(vreinterpretq_u64_u32(mismatch))) return false;
  }
  for (; i < n; ++i) {
    if (i != skip && a[i] != b[i]) return false;
  }
  return true;
}

void bitset_or_neon(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void bitset_and_neon(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void bitset_andnot_neon(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vbicq(a, b) = a & ~b.
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

std::uint64_t bitset_popcount_neon(const std::uint64_t* w,
                                   std::size_t n) noexcept {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t counts =
        vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(w + i)));
    total += vaddvq_u8(counts);
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(w[i]));
  }
  return total;
}

std::size_t bitset_find_first_neon(const std::uint64_t* w,
                                   std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (!neon_all_zero(vld1q_u64(w + i))) break;
  }
  for (; i < n; ++i) {
    if (w[i] != 0) {
      return i * 64 + static_cast<std::size_t>(std::countr_zero(w[i]));
    }
  }
  return kNpos;
}

std::size_t frontier_advance_neon(std::uint64_t* next, std::uint64_t* visited,
                                  std::size_t nwords,
                                  std::uint32_t* out) noexcept {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 2 <= nwords; w += 2) {
    const uint64x2_t nx = vld1q_u64(next + w);
    if (neon_all_zero(nx)) continue;
    const uint64x2_t vs = vld1q_u64(visited + w);
    const uint64x2_t fresh = vbicq_u64(nx, vs);
    vst1q_u64(visited + w, vorrq_u64(vs, fresh));
    vst1q_u64(next + w, vdupq_n_u64(0));
    alignas(16) std::uint64_t block[2];
    vst1q_u64(block, fresh);
    for (std::size_t k = 0; k < 2; ++k) {
      std::uint64_t bits = block[k];
      const auto base = static_cast<std::uint32_t>((w + k) * 64);
      while (bits != 0) {
        out[count++] =
            base + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
  }
  for (; w < nwords; ++w) {
    std::uint64_t fresh = next[w] & ~visited[w];
    next[w] = 0;
    if (fresh == 0) continue;
    visited[w] |= fresh;
    const auto base = static_cast<std::uint32_t>(w * 64);
    do {
      out[count++] =
          base + static_cast<std::uint32_t>(std::countr_zero(fresh));
      fresh &= fresh - 1;
    } while (fresh != 0);
  }
  return count;
}

const Kernels kNeonTable = {
    "neon",
    &words_equal_neon,
    &lanes_equal_skip_neon,
    &scalar::fingerprint_lanes,  // see note above: scalar wins here
    &bitset_or_neon,
    &bitset_and_neon,
    &bitset_andnot_neon,
    &bitset_popcount_neon,
    &bitset_find_first_neon,
    // The position-keyed hashes hit the same emulated-multiply wall as the
    // fingerprint kernel on NEON, so they stay scalar here too.
    &scalar::hash_words,
    &scalar::hash_lanes,
    &frontier_advance_neon,
};

#endif  // LACON_SIMD_NEON

void warn_once(const char* text, const char* detail,
               const char* used) noexcept {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "lacon: ignoring LACON_SIMD='%s' (%s); using '%s'\n",
               text, detail, used);
}

// Best table the host can execute, ignoring the knob.
const Kernels& auto_table() noexcept {
#if LACON_SIMD_X86
  if (host_supports(Isa::kAvx2)) return kAvx2Table;
#endif
#if LACON_SIMD_NEON
  return kNeonTable;
#endif
  return kScalarTable;
}

const Kernels& select_table() noexcept {
  const char* text = std::getenv("LACON_SIMD");
  const Choice choice = parse_choice(text);
  switch (choice) {
    case Choice::kAuto:
      return auto_table();
    case Choice::kScalar:
      return kScalarTable;
    case Choice::kAvx2:
      if (const Kernels* k = kernels_for(Isa::kAvx2)) return *k;
      warn_once(text, "host cannot execute AVX2", auto_table().name);
      return auto_table();
    case Choice::kNeon:
      if (const Kernels* k = kernels_for(Isa::kNeon)) return *k;
      warn_once(text, "host cannot execute NEON", auto_table().name);
      return auto_table();
    case Choice::kMalformed:
      warn_once(text, "want auto|scalar|avx2|neon", auto_table().name);
      return auto_table();
  }
  return kScalarTable;  // unreachable
}

std::atomic<const Kernels*> override_table{nullptr};

}  // namespace

Choice parse_choice(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return Choice::kAuto;
  if (std::strcmp(text, "auto") == 0) return Choice::kAuto;
  if (std::strcmp(text, "scalar") == 0) return Choice::kScalar;
  if (std::strcmp(text, "avx2") == 0) return Choice::kAvx2;
  if (std::strcmp(text, "neon") == 0) return Choice::kNeon;
  return Choice::kMalformed;
}

bool host_supports(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if LACON_SIMD_X86
      return __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("bmi2") &&
             __builtin_cpu_supports("popcnt");
#else
      return false;
#endif
    case Isa::kNeon:
#if LACON_SIMD_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

const Kernels& scalar_kernels() noexcept { return kScalarTable; }

const Kernels* kernels_for(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kAvx2:
#if LACON_SIMD_X86
      if (host_supports(Isa::kAvx2)) return &kAvx2Table;
#endif
      return nullptr;
    case Isa::kNeon:
#if LACON_SIMD_NEON
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const Kernels& active() noexcept {
  if (const Kernels* o = override_table.load(std::memory_order_relaxed)) {
    return *o;
  }
  static const Kernels& selected = select_table();
  return selected;
}

const char* active_name() noexcept { return active().name; }

KernelOverride::KernelOverride(const Kernels& k) noexcept
    : previous_(override_table.exchange(&k, std::memory_order_relaxed)) {}

KernelOverride::~KernelOverride() {
  override_table.store(previous_, std::memory_order_relaxed);
}

}  // namespace lacon::simd
