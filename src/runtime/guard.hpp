// Resource governance and cooperative cancellation (lacon::guard).
//
// Every analysis this repository runs — reachable_by_depth over the layered
// run tree, the similarity index, all-sources diameter, valence
// classification — is exponential in process count and depth. A Guard bounds
// such a computation with a wall-clock deadline, a state/memory budget (read
// off the StateArena/ViewArena accounting) and a cooperative cancellation
// token, and the engine layers return Partial<T> results instead of hanging
// or aborting: the value computed so far, how far the computation got, and
// an explicit TruncationReason.
//
// Where the checks happen, and what is deterministic:
//
//  * Engine layers (explore, valence classification, bivalent-run
//    construction, the similarity index, diameter) call Guard::check() at
//    depth/level/phase boundaries — exactly the preemption points the
//    paper's layering structure provides: a run tree truncated at a layer
//    boundary is still a well-defined prefix of the model.
//  * The parallel facades (runtime/parallel.hpp, *_guarded) probe
//    Guard::tripped() at chunk and item boundaries, preserving the
//    ordered-chunk determinism contract: the surviving region is always a
//    contiguous prefix [0, completed) of the index space, so the *content*
//    of a truncated result is canonical for every worker count.
//  * The state budget is evaluated only at depth boundaries, where the
//    arena population is itself deterministic across worker counts —
//    a budget-truncated exploration therefore truncates at the same depth,
//    with the same levels, under LACON_THREADS=1 and under 16 workers.
//    Deadline and cancellation trips are inherently timing-dependent, but
//    truncate at the same *granularity* (a level boundary yields a complete
//    level or none of it), so any two runs agree on every level both
//    completed.
//
// A Guard is sticky: the first trip records its reason and every later
// probe reports tripped, so one guard governs a whole pipeline of calls
// ("stop everything downstream too"). Guards are intentionally
// non-copyable; share one by reference, or share a CancelToken.
//
// Observability: every boundary probe bumps the "guard.checks" counter and
// the first trip per guard bumps "guard.trips_<reason>" (runtime/stats.hpp),
// so runtime_report() and the MetricsSnapshot JSON (runtime/trace.hpp,
// "guard.trips" block) show how many analyses were truncated and why
// without any extra wiring at the call sites.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace lacon::guard {

enum class TruncationReason : std::uint8_t {
  kNone = 0,      // ran to completion
  kDeadline,      // wall-clock budget exhausted
  kStateBudget,   // state/memory budget exhausted (incl. injected
                  // allocation failure, see runtime/fault.hpp)
  kCancelled,     // the CancelToken was cancelled
};

const char* to_string(TruncationReason reason) noexcept;

// A possibly-truncated result. `completed` counts whole units of work —
// layers for the exploration, classified entries for classify_all, BFS
// sources for diameter(), confirmed candidate pairs for the similarity
// index — and `value` always reflects exactly those units: a truncated
// exploration holds complete levels only, a truncated classification holds
// a valid prefix.
template <typename T>
struct Partial {
  T value{};
  TruncationReason truncation = TruncationReason::kNone;
  std::size_t completed = 0;

  bool complete() const noexcept {
    return truncation == TruncationReason::kNone;
  }
};

// A shared cancellation flag. Copies observe the same flag, so a controller
// thread can keep one copy and hand another to a Guard.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Guard {
 public:
  Guard() = default;

  // The inert guard used by the unguarded engine entry points: never trips,
  // never probes the fault plan. A process-wide singleton — safe precisely
  // because it has no trippable state.
  static const Guard& none() noexcept;

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  // Budget configuration (call before handing the guard to the engine).
  Guard& with_deadline(std::chrono::milliseconds budget);
  Guard& with_deadline_at(std::chrono::steady_clock::time_point deadline);
  Guard& with_state_budget(std::size_t max_states);
  Guard& with_memory_budget(std::size_t max_bytes);
  Guard& with_token(CancelToken token);

  // Cheap cooperative probe: deadline, cancellation and injected budget
  // faults. The parallel facades call this at chunk/item boundaries; hot
  // loops may call it per item (one steady_clock read). Sticky.
  bool tripped() const;

  // Full boundary check including the state/memory budget; engine layers
  // call it at depth/level boundaries with the current arena population
  // (LayeredModel::num_states() / memory_footprint()). Returns the sticky
  // reason, kNone while still inside every budget.
  TruncationReason check(std::size_t states_in_use,
                         std::size_t bytes_in_use = 0) const;

  // The first recorded trip, kNone if none.
  TruncationReason reason() const noexcept {
    return static_cast<TruncationReason>(
        reason_.load(std::memory_order_acquire));
  }

  // Records an out-of-memory condition observed by the caller (the engine
  // converts injected allocation failure into this). No-op on none().
  void note_memory_exhausted() const {
    trip(TruncationReason::kStateBudget);
  }

  // True for Guard::none(): no limit is configured and no fault probe will
  // ever fire, so callers may take the unguarded fast path.
  bool never_trips() const noexcept { return inert_; }

  std::size_t max_states() const noexcept { return max_states_; }
  std::size_t max_bytes() const noexcept { return max_bytes_; }

 private:
  struct InertTag {};
  explicit Guard(InertTag) : inert_(true) {}

  void trip(TruncationReason reason) const;

  bool inert_ = false;
  bool has_deadline_ = false;
  bool has_token_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::size_t max_states_ = 0;  // 0 = unlimited
  std::size_t max_bytes_ = 0;   // 0 = unlimited
  CancelToken token_{};
  mutable std::atomic<std::uint8_t> reason_{0};
};

// Process-wide budget specification applied by the unguarded engine entry
// points: each top-level call materializes a fresh Guard from the spec (the
// deadline counts from that call's start). Empty by default, so nothing
// changes unless a harness configures it — the benches' --budget-ms /
// --max-states flags do.
struct GuardSpec {
  std::int64_t budget_ms = 0;   // 0 = no deadline
  std::size_t max_states = 0;   // 0 = unlimited
  std::size_t max_bytes = 0;    // 0 = unlimited

  bool limited() const noexcept {
    return budget_ms > 0 || max_states > 0 || max_bytes > 0;
  }
};

GuardSpec& process_guard_spec() noexcept;

// A Guard configured from `spec` (deadline measured from now). With an
// empty spec the guard is limit-free but still live (fault probes apply).
class ScopedGuard {
 public:
  explicit ScopedGuard(const GuardSpec& spec);
  const Guard& get() const noexcept {
    return spec_.limited() ? guard_ : Guard::none();
  }

 private:
  GuardSpec spec_;
  Guard guard_;
};

}  // namespace lacon::guard
