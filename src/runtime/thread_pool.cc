#include "runtime/thread_pool.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "runtime/stats.hpp"
#include "runtime/trace.hpp"

namespace lacon::runtime {

namespace {

// Scheduling instrumentation: cheap relaxed counters (always on, like the
// arena counters) plus trace sites that light up under LACON_TRACE=spans.
constinit trace::SpanSite g_task_site{"pool", "task"};
constinit trace::SpanSite g_steal_site{"pool", "steal"};

Counter& tasks_run_counter() {
  static Counter& c = Stats::global().counter("pool.tasks_run");
  return c;
}

Counter& steals_counter() {
  static Counter& c = Stats::global().counter("pool.steals");
  return c;
}

Counter& submitted_counter() {
  static Counter& c = Stats::global().counter("pool.submitted");
  return c;
}

std::mutex& config_mu() {
  static std::mutex mu;
  return mu;
}

unsigned g_override = 0;          // guarded by config_mu()
ThreadPool* g_pool = nullptr;     // guarded by config_mu()

unsigned env_worker_count() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return parse_worker_env(std::getenv("LACON_THREADS"), hw);
}

unsigned worker_count_locked() {
  return g_override != 0 ? g_override : env_worker_count();
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers == 0 ? 1 : workers) {
  const std::size_t spawned = workers_ - 1;
  deques_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  threads_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  submitted_counter().increment();
  if (deques_.empty()) {  // serial pool: no worker threads, run inline
    tasks_run_counter().increment();
    trace::ScopedSpan span(g_task_site);
    task();
    return;
  }
  const std::size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                        deques_.size();
  {
    std::lock_guard<std::mutex> lock(deques_[q]->mu);
    deques_[q]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::pop_front(std::size_t q, std::function<void()>& task) {
  Deque& d = *deques_[q];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.tasks.empty()) return false;
  task = std::move(d.tasks.front());
  d.tasks.pop_front();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::steal_back(std::size_t thief, std::function<void()>& task) {
  const std::size_t count = deques_.size();
  for (std::size_t i = 1; i < count; ++i) {
    const std::size_t victim = (thief + i) % count;
    Deque& d = *deques_[victim];
    {
      std::lock_guard<std::mutex> lock(d.mu);
      if (d.tasks.empty()) continue;
      task = std::move(d.tasks.back());
      d.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    steals_counter().increment();
    trace::instant(g_steal_site, victim);
    return true;
  }
  return false;
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  for (std::size_t q = 0; q < deques_.size(); ++q) {
    Deque& d = *deques_[q];
    {
      std::lock_guard<std::mutex> lock(d.mu);
      if (d.tasks.empty()) continue;
      task = std::move(d.tasks.back());
      d.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    tasks_run_counter().increment();
    {
      trace::ScopedSpan span(g_task_site);
      task();
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (pop_front(self, task) || steal_back(self, task)) {
      tasks_run_counter().increment();
      {
        trace::ScopedSpan span(g_task_site);
        task();
      }
      task = nullptr;  // drop captured state before idling
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

namespace {

void warn_threads_once(const char* text, unsigned used) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr, "lacon: ignoring malformed LACON_THREADS='%s', using %u\n",
               text, used);
}

}  // namespace

unsigned parse_worker_env(const char* text, unsigned fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  if (*text < '0' || *text > '9') {  // strtoul accepts "-3" and "  7"
    warn_threads_once(text, fallback);
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value == 0 || errno == ERANGE) {
    warn_threads_once(text, fallback);
    return fallback;
  }
  if (value > 256) {
    // A plausible-but-absurd count is clamped rather than discarded: the
    // user clearly asked for "many".
    warn_threads_once(text, 256);
    return 256;
  }
  return static_cast<unsigned>(value);
}

unsigned worker_count() {
  std::lock_guard<std::mutex> lock(config_mu());
  return worker_count_locked();
}

void set_worker_count(unsigned workers) {
  ThreadPool* doomed = nullptr;
  {
    std::lock_guard<std::mutex> lock(config_mu());
    g_override = workers;
    if (g_pool != nullptr && g_pool->workers() != worker_count_locked()) {
      doomed = std::exchange(g_pool, nullptr);
    }
  }
  delete doomed;  // joins the old workers outside the config lock
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(config_mu());
  const unsigned want = worker_count_locked();
  if (g_pool == nullptr || g_pool->workers() != want) {
    delete g_pool;
    g_pool = nullptr;  // keep state sane if the constructor throws
    g_pool = new ThreadPool(want);
  }
  return *g_pool;
}

WorkerCountOverride::WorkerCountOverride(unsigned workers) {
  {
    std::lock_guard<std::mutex> lock(config_mu());
    previous_ = g_override;
  }
  set_worker_count(workers);
}

WorkerCountOverride::~WorkerCountOverride() { set_worker_count(previous_); }

}  // namespace lacon::runtime
