// Runtime dispatch for the SIMD kernel library (util/simd.hpp).
//
// One kernel table is selected per process, once, on first use: AVX2 when
// the CPU reports it (x86), NEON on aarch64 (baseline there), the portable
// scalar table otherwise. The LACON_SIMD environment knob overrides the
// choice — `auto` (default), `scalar`, `avx2`, `neon` — with the PR-3
// warn-once + fallback contract: a malformed value, or a request for an ISA
// this host cannot execute, warns once on stderr and falls back to the
// automatic pick. Every table is bit-identical in output by contract
// (tests/simd_test.cc), so the knob only ever moves speed, never results.
#pragma once

#include "util/simd.hpp"

namespace lacon::simd {

enum class Isa { kScalar, kAvx2, kNeon };

// The LACON_SIMD choices: the three ISAs plus automatic selection, plus a
// marker for text that parses as none of them (the caller warns once and
// uses kAuto). Pure and allocation-free for testability.
enum class Choice { kAuto, kScalar, kAvx2, kNeon, kMalformed };
Choice parse_choice(const char* text) noexcept;

// True when this process can execute `isa`'s kernels.
bool host_supports(Isa isa) noexcept;

// The kernel table selected for this process (CPU features + LACON_SIMD),
// latched on first call. An active KernelOverride takes precedence.
const Kernels& active() noexcept;

// Name of the table active() currently returns ("scalar"|"avx2"|"neon").
const char* active_name() noexcept;

// The portable reference table (always available).
const Kernels& scalar_kernels() noexcept;

// The table for an explicit ISA, or nullptr when this host cannot run it.
// The A/B bench and the equivalence tests iterate the available tables.
const Kernels* kernels_for(Isa isa) noexcept;

// Scoped kernel-table override, mirroring runtime::WorkerCountOverride:
// while alive, active() returns `k` instead of the latched process-wide
// table. For benches and tests that A/B scalar against dispatched kernels
// inside one process; establish it before concurrent analysis starts (the
// slot is a single atomic, but swapping mid-analysis would mix tables —
// harmless for results, meaningless for measurement). Nestable; the
// previous override is restored on destruction.
class KernelOverride {
 public:
  explicit KernelOverride(const Kernels& k) noexcept;
  ~KernelOverride();

  KernelOverride(const KernelOverride&) = delete;
  KernelOverride& operator=(const KernelOverride&) = delete;

 private:
  const Kernels* previous_;
};

}  // namespace lacon::simd
