// Deterministic fault injection for the analysis runtime (lacon::fault).
//
// Production blowups — exhausted memory, a task body throwing mid-layer, a
// budget tripping inside a parallel section — are exactly the paths that
// never run in ordinary tests. A FaultPlan makes them reproducible: a seeded
// plan decides, per *decision point*, whether the k-th probe of that point
// fires, as a pure function of (seed, site, k). The firing schedule is
// therefore identical across runs with the same seed and rate; under
// multi-worker execution, *which thread* draws the k-th probe races, but the
// set of firing probe indices does not.
//
// Injection is off unless a plan is installed (FaultScope). The environment
// knobs LACON_FAULT_SEED / LACON_FAULT_RATE do not activate injection
// globally — they parameterize the dedicated fault-soak tests (ci.sh runs
// them under TSan and ASan, with LACON_TRACE=spans forced so injected
// unwinds also exercise the span-buffer paths of runtime/trace.hpp), so
// unrelated tests in the same process stay deterministic.
//
// Sites:
//   kTaskBody   — a parallel-section chunk body throws InjectedFault before
//                 running user work (exercises first-exception-wins and the
//                 pool-stays-usable contract).
//   kArenaAlloc — StateArena/ViewArena::intern throws InjectedAllocError
//                 (simulated allocation failure; guarded engine paths turn
//                 it into a kStateBudget truncation).
//   kGuardBudget— a non-inert Guard probe trips as if its state budget were
//                 exhausted (exercises every Partial<T> degradation path
//                 without needing a genuinely oversized instance).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <new>
#include <optional>
#include <stdexcept>

namespace lacon::fault {

enum class Site : std::uint8_t { kTaskBody = 0, kArenaAlloc, kGuardBudget };
inline constexpr std::size_t kSiteCount = 3;

const char* to_string(Site site) noexcept;

// Thrown by a chunk body when kTaskBody fires.
struct InjectedFault : std::runtime_error {
  InjectedFault() : std::runtime_error("lacon::fault injected task failure") {}
};

// Thrown by arena interning when kArenaAlloc fires. Derives from
// std::bad_alloc so callers that already handle allocation failure handle
// the injected flavour for free; guarded engine layers catch exactly this
// type (never real bad_alloc) and degrade to a Partial result.
struct InjectedAllocError : std::bad_alloc {
  const char* what() const noexcept override {
    return "lacon::fault injected allocation failure";
  }
};

struct FaultConfig {
  std::uint64_t seed = 0;
  double rate = 0.0;  // probability per probe, in [0, 1]
};

// Reads LACON_FAULT_SEED / LACON_FAULT_RATE. nullopt when the seed is unset
// or the effective rate is 0. Malformed values earn a one-line stderr
// warning (once per process) and count as unset / the default rate (0.01).
std::optional<FaultConfig> config_from_env();

// A deterministic firing schedule. Thread-safe: probes draw per-site
// sequence numbers from atomic counters.
class FaultPlan {
 public:
  // `site_mask` restricts firing to selected sites (bit = 1 << site);
  // defaults to all sites.
  FaultPlan(std::uint64_t seed, double rate,
            unsigned site_mask = ~0u) noexcept;

  // True iff this probe of `site` fires. Deterministic per (seed, site,
  // probe index); advances the site's probe counter either way.
  bool fire(Site site) noexcept;

  std::uint64_t probes(Site site) const noexcept;
  std::uint64_t fired(Site site) const noexcept;

 private:
  std::uint64_t seed_;
  std::uint64_t threshold_;  // fire iff mix64(...) < threshold_
  unsigned site_mask_;
  std::array<std::atomic<std::uint64_t>, kSiteCount> probes_{};
  std::array<std::atomic<std::uint64_t>, kSiteCount> fired_{};
};

// The installed plan, or nullptr when injection is off. Installation is a
// plain atomic pointer swap; injection points pay one relaxed load when off.
FaultPlan* active_plan() noexcept;

// True iff a plan is installed and this probe of `site` fires. The
// convenience form every injection point calls.
bool fire(Site site) noexcept;

// RAII installation of a plan for the current scope. Scopes must not nest
// and must not be entered while parallel work is in flight.
class FaultScope {
 public:
  FaultScope(std::uint64_t seed, double rate, unsigned site_mask = ~0u);
  explicit FaultScope(const FaultConfig& config)
      : FaultScope(config.seed, config.rate) {}
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultPlan& plan() noexcept { return plan_; }

 private:
  FaultPlan plan_;
};

// Throws InjectedFault iff kTaskBody fires. Called by the parallel
// runtime's chunk dispatcher inside its try block, so the exception takes
// the same first-exception-wins path a user task body's would.
void maybe_throw_task_fault();

// Throws InjectedAllocError iff kArenaAlloc fires. Called by the arenas'
// intern paths before touching storage.
void maybe_throw_alloc_fault();

}  // namespace lacon::fault
