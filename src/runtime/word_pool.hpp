// WordPool: a concurrent append-only pool of 64-bit words.
//
// The flat-storage arenas (core/state.hpp) replace per-state heap vectors
// with one contiguous per-arena pool: each interned state is a single
// (offset, len) region holding its env words plus its packed locals and
// decisions. The pool hands out regions with a lock-free CAS bump of a
// global cursor; chunks are fixed-size, never move, and are materialised on
// demand, so data(offset) stays valid for the pool's lifetime and readers
// take no locks.
//
// A region never spans a chunk boundary: when the tail of the current chunk
// is too small, alloc() skips it (the skipped words are wasted, bounded by
// max-region-size per chunk) and starts at the next chunk. Because the
// amount of waste depends on the interleaving of concurrent allocations, the
// arenas deliberately do NOT account pool occupancy in approx_bytes() — the
// guard's byte accounting must be a scheduling-independent function of the
// interned content (see DESIGN.md §9).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace lacon::runtime {

class WordPool {
  static constexpr std::size_t kChunkBits = 16;  // 64Ki words = 512 KiB/chunk
  static constexpr std::size_t kChunkWords = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkWords - 1;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;  // 16 GiB

 public:
  // Largest region alloc() accepts (one full chunk).
  static constexpr std::size_t kMaxRegionWords = kChunkWords;

  WordPool() = default;
  ~WordPool() {
    for (std::size_t c = 0; c < kMaxChunks; ++c) {
      std::int64_t* chunk = chunks_[c].load(std::memory_order_relaxed);
      if (chunk == nullptr) break;  // chunks are materialised in order
      delete[] chunk;
    }
  }

  WordPool(const WordPool&) = delete;
  WordPool& operator=(const WordPool&) = delete;

  // Claims a region of `len` contiguous words and returns its offset. The
  // region never spans a chunk boundary. Lock-free except for the (rare)
  // chunk materialisation, which is a CAS where losers free their block.
  std::size_t alloc(std::size_t len) {
    assert(len <= kMaxRegionWords && "WordPool region exceeds chunk size");
    std::size_t cur = cursor_.load(std::memory_order_relaxed);
    for (;;) {
      std::size_t off = cur;
      const std::size_t tail = kChunkWords - (off & kChunkMask);
      if (len > tail) off += tail;  // waste the tail, start a fresh chunk
      if (cursor_.compare_exchange_weak(cur, off + len,
                                        std::memory_order_relaxed)) {
        if (len != 0) ensure_chunk(off >> kChunkBits);
        return off;
      }
    }
  }

  const std::int64_t* data(std::size_t offset) const noexcept {
    const std::int64_t* chunk =
        chunks_[offset >> kChunkBits].load(std::memory_order_acquire);
    return chunk + (offset & kChunkMask);
  }

  std::int64_t* mutable_data(std::size_t offset) noexcept {
    std::int64_t* chunk =
        chunks_[offset >> kChunkBits].load(std::memory_order_acquire);
    return chunk + (offset & kChunkMask);
  }

  // High-water cursor: allocated words including skipped chunk tails.
  std::size_t allocated_words() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  void ensure_chunk(std::size_t ci) {
    assert(ci < kMaxChunks && "WordPool capacity exhausted");
    std::int64_t* chunk = chunks_[ci].load(std::memory_order_acquire);
    if (chunk != nullptr) return;
    // Chunks hold raw words whose payload is fully written before the
    // owning id is published; no value-initialisation needed (padding words
    // for odd process counts are zeroed explicitly by the arena).
    std::int64_t* fresh = new std::int64_t[kChunkWords];
    if (!chunks_[ci].compare_exchange_strong(chunk, fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      delete[] fresh;  // a racing alloc materialised it first
    }
  }

  std::atomic<std::int64_t*> chunks_[kMaxChunks] = {};
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace lacon::runtime
