// Runtime instrumentation: named counters and wall-clock timers.
//
// Every subsystem that was ported onto the parallel runtime (frontier
// expansion, the ~s/~v pair sweeps, valence classification) reports into the
// process-wide `Stats::global()` registry. Counters and timers are cheap
// (relaxed atomics on the hot path; the registry lock is only taken on first
// lookup of a name), so they stay enabled in release builds; a snapshot can
// be rendered at any point — the bench harnesses print one after their
// tables via `lacon::runtime_report()` (analysis/reports.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lacon::runtime {

// A monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Accumulated wall-clock time plus an invocation count.
class Timer {
 public:
  void record(std::chrono::nanoseconds elapsed) noexcept {
    nanos_.fetch_add(static_cast<std::uint64_t>(elapsed.count()),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t nanos() const noexcept {
    return nanos_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

// RAII helper: records the elapsed time into `timer` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    timer_.record(std::chrono::steady_clock::now() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

// One row of a stats snapshot.
struct StatSample {
  std::string name;
  bool is_timer = false;
  std::uint64_t value = 0;  // counter value, or accumulated nanoseconds
  std::uint64_t count = 0;  // timer invocation count (0 for counters)
};

// The registry. `counter()`/`timer()` return references that stay valid for
// the registry's lifetime, so hot paths look a name up once and keep the
// reference.
class Stats {
 public:
  static Stats& global();

  Counter& counter(std::string_view name);
  Timer& timer(std::string_view name);

  // All samples, sorted by name (counters and timers interleaved).
  std::vector<StatSample> snapshot() const;

  // Zeroes every counter and timer; registered names persist.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

}  // namespace lacon::runtime
