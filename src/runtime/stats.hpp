// Runtime instrumentation: named counters, wall-clock timers and
// log2-bucketed histograms.
//
// Every subsystem that was ported onto the parallel runtime (frontier
// expansion, the ~s/~v pair sweeps, valence classification) reports into the
// process-wide `Stats::global()` registry. Counters, timers and histograms
// are cheap (relaxed atomics on the hot path; the registry lock is only
// taken on first lookup of a name), so they stay enabled in release builds;
// a snapshot can be rendered at any point — the bench harnesses print one
// after their tables via `lacon::runtime_report()` (analysis/reports.hpp)
// and export the same registry as a machine-readable MetricsSnapshot JSON
// via lacon::trace (runtime/trace.hpp, DESIGN.md §11).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lacon::runtime {

// A monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Accumulated wall-clock time plus an invocation count.
class Timer {
 public:
  void record(std::chrono::nanoseconds elapsed) noexcept {
    nanos_.fetch_add(static_cast<std::uint64_t>(elapsed.count()),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t nanos() const noexcept {
    return nanos_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

// RAII helper: records the elapsed time into `timer` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    timer_.record(std::chrono::steady_clock::now() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

// A lock-free log2-bucketed value histogram. Bucket 0 counts zero values;
// bucket b >= 1 counts values v with 2^(b-1) <= v < 2^b, so the 65 buckets
// cover the full uint64 range and a recorded latency lands in the bucket of
// its bit width. Like Counter/Timer, record() is relaxed-atomic and safe to
// call from any worker; a concurrent snapshot sees each recorded value in
// at most one bucket (sum/count and the buckets are not read atomically as
// a group, so totals read mid-record may transiently disagree by one).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  // The bucket a value lands in: its bit width (0 for the value 0).
  static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }
  // Inclusive lower bound of bucket b; the bucket covers
  // [bucket_lower(b), 2 * bucket_lower(b)) for b >= 1 and {0} for b == 0.
  static constexpr std::uint64_t bucket_lower(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

// One row of a stats snapshot.
struct StatSample {
  std::string name;
  bool is_timer = false;
  std::uint64_t value = 0;  // counter value, or accumulated nanoseconds
  std::uint64_t count = 0;  // timer invocation count (0 for counters)
};

// One histogram of a stats snapshot, with the full bucket vector.
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

// The registry. `counter()`/`timer()`/`histogram()` return references that
// stay valid for the registry's lifetime, so hot paths look a name up once
// and keep the reference.
class Stats {
 public:
  static Stats& global();

  Counter& counter(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  // All counter/timer samples, sorted by name (interleaved).
  std::vector<StatSample> snapshot() const;

  // All histogram samples, sorted by name.
  std::vector<HistogramSample> histogram_snapshot() const;

  // Zeroes every counter, timer and histogram; registered names persist.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace lacon::runtime
