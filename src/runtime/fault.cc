#include "runtime/fault.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "runtime/stats.hpp"
#include "util/hash.hpp"

namespace lacon::fault {

namespace {

std::atomic<FaultPlan*> g_plan{nullptr};

void warn_once(const char* knob, const char* value) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr, "lacon: ignoring malformed %s='%s'\n", knob, value);
}

std::size_t index_of(Site site) noexcept {
  return static_cast<std::size_t>(site);
}

}  // namespace

const char* to_string(Site site) noexcept {
  switch (site) {
    case Site::kTaskBody:
      return "task_body";
    case Site::kArenaAlloc:
      return "arena_alloc";
    case Site::kGuardBudget:
      return "guard_budget";
  }
  return "?";
}

std::optional<FaultConfig> config_from_env() {
  const char* seed_text = std::getenv("LACON_FAULT_SEED");
  if (seed_text == nullptr || *seed_text == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long seed = std::strtoull(seed_text, &end, 10);
  if (end == seed_text || *end != '\0' || errno == ERANGE) {
    warn_once("LACON_FAULT_SEED", seed_text);
    return std::nullopt;
  }

  double rate = 0.01;  // default soak rate when only the seed is set
  const char* rate_text = std::getenv("LACON_FAULT_RATE");
  if (rate_text != nullptr && *rate_text != '\0') {
    errno = 0;
    const double parsed = std::strtod(rate_text, &end);
    if (end == rate_text || *end != '\0' || errno == ERANGE ||
        !std::isfinite(parsed) || parsed < 0.0 || parsed > 1.0) {
      warn_once("LACON_FAULT_RATE", rate_text);
    } else {
      rate = parsed;
    }
  }
  if (rate == 0.0) return std::nullopt;
  return FaultConfig{static_cast<std::uint64_t>(seed), rate};
}

FaultPlan::FaultPlan(std::uint64_t seed, double rate,
                     unsigned site_mask) noexcept
    : seed_(seed), site_mask_(site_mask) {
  if (rate <= 0.0) {
    threshold_ = 0;
  } else if (rate >= 1.0) {
    threshold_ = std::numeric_limits<std::uint64_t>::max();
  } else {
    threshold_ = static_cast<std::uint64_t>(
        rate * static_cast<double>(std::numeric_limits<std::uint64_t>::max()));
  }
}

bool FaultPlan::fire(Site site) noexcept {
  const std::size_t s = index_of(site);
  const std::uint64_t k =
      probes_[s].fetch_add(1, std::memory_order_relaxed);
  if ((site_mask_ & (1u << s)) == 0) return false;
  if (threshold_ == 0) return false;
  const std::uint64_t draw =
      mix64(seed_ ^ (static_cast<std::uint64_t>(s) << 56) ^ (k + 1));
  if (threshold_ != std::numeric_limits<std::uint64_t>::max() &&
      draw >= threshold_) {
    return false;
  }
  fired_[s].fetch_add(1, std::memory_order_relaxed);
  runtime::Stats::global()
      .counter(std::string("fault.injected_") + to_string(site))
      .increment();
  return true;
}

std::uint64_t FaultPlan::probes(Site site) const noexcept {
  return probes_[index_of(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultPlan::fired(Site site) const noexcept {
  return fired_[index_of(site)].load(std::memory_order_relaxed);
}

FaultPlan* active_plan() noexcept {
  return g_plan.load(std::memory_order_acquire);
}

bool fire(Site site) noexcept {
  FaultPlan* plan = active_plan();
  return plan != nullptr && plan->fire(site);
}

FaultScope::FaultScope(std::uint64_t seed, double rate, unsigned site_mask)
    : plan_(seed, rate, site_mask) {
  FaultPlan* expected = nullptr;
  if (!g_plan.compare_exchange_strong(expected, &plan_,
                                      std::memory_order_acq_rel)) {
    std::fprintf(stderr, "lacon: nested FaultScope ignored\n");
  }
}

FaultScope::~FaultScope() {
  FaultPlan* expected = &plan_;
  g_plan.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
}

void maybe_throw_task_fault() {
  if (fire(Site::kTaskBody)) throw InjectedFault();
}

void maybe_throw_alloc_fault() {
  if (fire(Site::kArenaAlloc)) throw InjectedAllocError();
}

}  // namespace lacon::fault
