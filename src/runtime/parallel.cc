#include "runtime/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/fault.hpp"
#include "runtime/trace.hpp"

namespace lacon::runtime::detail {

namespace {

// Chunks executed outside any engine phase trace under this generic site;
// inside a PhaseScope they inherit the phase's name, which is what gives
// the per-worker explore/similarity/valence spans (runtime/trace.hpp).
constinit trace::SpanSite g_chunk_site{"pool", "chunk"};

// Shared by the submitting thread and the drain tasks; owned via shared_ptr
// so a task that is dequeued after the parallel section already finished
// (every chunk claimed by other threads) still has valid state to look at.
//
// fn returns the number of items it processed from its chunk; a guarded
// body that stops early returns less than end - begin and the shortfall is
// recorded in first_unprocessed.
struct BatchState {
  std::function<std::size_t(std::size_t, std::size_t, std::size_t)> fn;
  std::size_t n = 0;
  std::size_t num_chunks = 0;
  const guard::Guard* guard = nullptr;  // null for unguarded sections
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // Smallest item index not processed by a guarded section (chunks are
  // claimed in increasing index order and the trip flag is sticky, so every
  // index below this WAS processed: the surviving region is a prefix).
  std::atomic<std::size_t> first_unprocessed{
      std::numeric_limits<std::size_t>::max()};
  std::mutex error_mu;
  std::exception_ptr error;
  std::atomic<bool> failed{false};
};

void chunk_bounds(const BatchState& state, std::size_t c, std::size_t& begin,
                  std::size_t& end) {
  const std::size_t base = state.n / state.num_chunks;
  const std::size_t rem = state.n % state.num_chunks;
  begin = c * base + std::min(c, rem);
  end = begin + base + (c < rem ? 1 : 0);
}

void note_unprocessed(BatchState& state, std::size_t index) {
  std::size_t cur = state.first_unprocessed.load(std::memory_order_relaxed);
  while (index < cur && !state.first_unprocessed.compare_exchange_weak(
                            cur, index, std::memory_order_relaxed)) {
  }
}

// Claims and runs chunks until none are left. Chunks claimed after a
// failure — or, in guarded sections, after the guard tripped — are skipped
// (but still counted) so the section can finish early.
void drain(const std::shared_ptr<BatchState>& state) {
  std::size_t c;
  while ((c = state->next.fetch_add(1, std::memory_order_relaxed)) <
         state->num_chunks) {
    const bool skip =
        state->failed.load(std::memory_order_relaxed) ||
        (state->guard != nullptr && state->guard->tripped());
    if (!skip) {
      std::size_t begin = 0, end = 0;
      chunk_bounds(*state, c, begin, end);
      trace::SpanSite* phase = trace::current_phase();
      trace::ScopedSpan span(phase != nullptr ? phase : &g_chunk_site, c);
      try {
        fault::maybe_throw_task_fault();
        const std::size_t processed = state->fn(c, begin, end);
        if (processed < end - begin) {
          note_unprocessed(*state, begin + processed);
        }
      } catch (const fault::InjectedAllocError&) {
        if (state->guard != nullptr) {
          // Simulated allocation failure inside a guarded section degrades
          // to a state-budget truncation instead of unwinding the caller.
          state->guard->note_memory_exhausted();
          note_unprocessed(*state, begin);
        } else {
          std::lock_guard<std::mutex> lock(state->error_mu);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true, std::memory_order_relaxed);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mu);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    } else if (state->guard != nullptr) {
      std::size_t begin = 0, end = 0;
      chunk_bounds(*state, c, begin, end);
      note_unprocessed(*state, begin);
    }
    state->done.fetch_add(1, std::memory_order_acq_rel);
  }
}

std::size_t run_section(std::size_t n, std::size_t num_chunks,
                        const std::function<std::size_t(
                            std::size_t, std::size_t, std::size_t)>& fn,
                        const guard::Guard* g) {
  ThreadPool& pool = global_pool();
  auto state = std::make_shared<BatchState>();
  state->fn = fn;
  state->n = n;
  state->num_chunks = num_chunks;
  state->guard = g;

  const std::size_t helpers =
      std::min<std::size_t>(pool.workers() - 1, num_chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([state] { drain(state); });
  }
  drain(state);
  // Help with whatever is queued (possibly other sections' chunks) instead
  // of blocking, so nested parallel sections cannot deadlock the pool.
  while (state->done.load(std::memory_order_acquire) < num_chunks) {
    if (!pool.run_one()) std::this_thread::yield();
  }
  // Wait until the helpers' task lambdas have released their state refs
  // before touching state->error: otherwise a helper that signalled `done`
  // but has not yet dropped its task can perform the *last* release — and
  // with it the exception_ptr teardown — on its own thread, racing the
  // caller's catch block that is reading the rethrown exception. run_one()
  // keeps queued-but-unclaimed helper tasks from pinning a ref forever.
  while (state.use_count() > 1) {
    if (!pool.run_one()) std::this_thread::yield();
  }
  if (state->failed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(state->error_mu);
    std::rethrow_exception(state->error);
  }
  return std::min(state->first_unprocessed.load(std::memory_order_relaxed),
                  n);
}

}  // namespace

std::size_t chunk_count(std::size_t n) {
  const unsigned workers = worker_count();
  if (workers <= 1 || n < 2) return n == 0 ? 0 : 1;
  // A few chunks per worker smooths uneven per-item cost without drowning
  // the section in scheduling overhead.
  return std::min<std::size_t>(n, static_cast<std::size_t>(workers) * 4);
}

void for_chunks(std::size_t n, std::size_t num_chunks,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)>& fn) {
  if (n == 0 || num_chunks == 0) return;
  if (num_chunks == 1) {
    // Single-chunk sections still probe the task-body injection site, so
    // fault soaks exercise this path under LACON_THREADS=1 too.
    fault::maybe_throw_task_fault();
    fn(0, 0, n);
    return;
  }
  run_section(n, num_chunks,
              [&fn](std::size_t c, std::size_t begin, std::size_t end) {
                fn(c, begin, end);
                return end - begin;
              },
              nullptr);
}

std::size_t for_chunks_guarded(
    const guard::Guard& g, std::size_t n, std::size_t num_chunks,
    const std::function<std::size_t(std::size_t, std::size_t, std::size_t)>&
        fn) {
  if (n == 0 || num_chunks == 0) return 0;
  if (num_chunks == 1) {
    if (g.tripped()) return 0;
    try {
      fault::maybe_throw_task_fault();
      return fn(0, 0, n);
    } catch (const fault::InjectedAllocError&) {
      g.note_memory_exhausted();
      return 0;
    }
  }
  return run_section(n, num_chunks, fn, &g);
}

}  // namespace lacon::runtime::detail
