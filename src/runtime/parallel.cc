#include "runtime/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

namespace lacon::runtime::detail {

namespace {

// Shared by the submitting thread and the drain tasks; owned via shared_ptr
// so a task that is dequeued after the parallel section already finished
// (every chunk claimed by other threads) still has valid state to look at.
struct BatchState {
  std::function<void(std::size_t, std::size_t, std::size_t)> fn;
  std::size_t n = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex error_mu;
  std::exception_ptr error;
  std::atomic<bool> failed{false};
};

void chunk_bounds(const BatchState& state, std::size_t c, std::size_t& begin,
                  std::size_t& end) {
  const std::size_t base = state.n / state.num_chunks;
  const std::size_t rem = state.n % state.num_chunks;
  begin = c * base + std::min(c, rem);
  end = begin + base + (c < rem ? 1 : 0);
}

// Claims and runs chunks until none are left. Chunks claimed after a
// failure are skipped (but still counted) so the section can finish early.
void drain(const std::shared_ptr<BatchState>& state) {
  std::size_t c;
  while ((c = state->next.fetch_add(1, std::memory_order_relaxed)) <
         state->num_chunks) {
    if (!state->failed.load(std::memory_order_relaxed)) {
      try {
        std::size_t begin, end;
        chunk_bounds(*state, c, begin, end);
        state->fn(c, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mu);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
    state->done.fetch_add(1, std::memory_order_acq_rel);
  }
}

}  // namespace

std::size_t chunk_count(std::size_t n) {
  const unsigned workers = worker_count();
  if (workers <= 1 || n < 2) return n == 0 ? 0 : 1;
  // A few chunks per worker smooths uneven per-item cost without drowning
  // the section in scheduling overhead.
  return std::min<std::size_t>(n, static_cast<std::size_t>(workers) * 4);
}

void for_chunks(std::size_t n, std::size_t num_chunks,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)>& fn) {
  if (n == 0 || num_chunks == 0) return;
  if (num_chunks == 1) {
    fn(0, 0, n);
    return;
  }
  ThreadPool& pool = global_pool();
  auto state = std::make_shared<BatchState>();
  state->fn = fn;
  state->n = n;
  state->num_chunks = num_chunks;

  const std::size_t helpers =
      std::min<std::size_t>(pool.workers() - 1, num_chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([state] { drain(state); });
  }
  drain(state);
  // Help with whatever is queued (possibly other sections' chunks) instead
  // of blocking, so nested parallel sections cannot deadlock the pool.
  while (state->done.load(std::memory_order_acquire) < num_chunks) {
    if (!pool.run_one()) std::this_thread::yield();
  }
  if (state->failed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(state->error_mu);
    std::rethrow_exception(state->error);
  }
}

}  // namespace lacon::runtime::detail
