// parallel_for / parallel_reduce facade over the work-stealing pool.
//
// Determinism contract: work is partitioned into ordered, contiguous chunks
// and per-chunk results are merged in chunk order, so any function built on
// these facades computes bit-for-bit the same result for every worker count
// — only the wall-clock interleaving differs. (Callers that intern into the
// shared arenas may observe different *identifier* assignment across worker
// counts; everything the analysis layer reports is content-determined, see
// DESIGN.md "Runtime & threading model".)
//
// With worker_count() == 1 — the LACON_THREADS=1 configuration and the
// default on single-core hosts — every facade degenerates to the plain
// serial loop on the calling thread: no tasks, no locks, no divergence from
// the pre-runtime behaviour.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace lacon::runtime {

namespace detail {

// Runs fn(chunk_index, begin, end) over `num_chunks` contiguous chunks of
// [0, n), distributing chunks across the pool and helping from the calling
// thread until all chunks completed. fn must be safe to invoke concurrently.
void for_chunks(std::size_t n, std::size_t num_chunks,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)>& fn);

// The chunk count used for `n` items at the current worker count: enough
// chunks per worker to smooth uneven per-item cost, but never more chunks
// than items.
std::size_t chunk_count(std::size_t n);

}  // namespace detail

// Applies body(i) to every i in [0, n). Serial (and in index order) when the
// worker count is 1 or n < 2; otherwise unordered across chunks.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  if (n == 0) return;
  const std::size_t chunks = detail::chunk_count(n);
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  detail::for_chunks(
      n, chunks,
      [&body](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      });
}

// Maps each ordered chunk of [0, n) to a value and returns the per-chunk
// values in chunk order. `chunk_body(begin, end)` must be safe to invoke
// concurrently; the merged vector is identical for every worker count
// whenever chunk_body is deterministic per chunk.
template <typename R, typename ChunkBody>
std::vector<R> parallel_map_chunks(std::size_t n, ChunkBody&& chunk_body) {
  const std::size_t chunks = n == 0 ? 0 : detail::chunk_count(n);
  std::vector<R> results(chunks);
  if (chunks == 0) return results;
  if (chunks == 1) {
    results[0] = chunk_body(std::size_t{0}, n);
    return results;
  }
  detail::for_chunks(n, chunks,
                     [&](std::size_t c, std::size_t begin, std::size_t end) {
                       results[c] = chunk_body(begin, end);
                     });
  return results;
}

// Reduces map(i) over [0, n). `init` must be an identity of `reduce` (it
// seeds every chunk). Chunks fold locally left-to-right and the per-chunk
// results fold in chunk order, so even non-commutative reductions are
// deterministic across worker counts.
template <typename R, typename Map, typename Reduce>
R parallel_reduce(std::size_t n, R init, Map&& map, Reduce&& reduce) {
  std::vector<R> partial = parallel_map_chunks<R>(
      n, [&](std::size_t begin, std::size_t end) {
        R acc = init;
        for (std::size_t i = begin; i < end; ++i) {
          acc = reduce(std::move(acc), map(i));
        }
        return acc;
      });
  R total = std::move(init);
  for (R& p : partial) total = reduce(std::move(total), std::move(p));
  return total;
}

}  // namespace lacon::runtime
