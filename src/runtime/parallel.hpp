// parallel_for / parallel_reduce facade over the work-stealing pool.
//
// Determinism contract: work is partitioned into ordered, contiguous chunks
// and per-chunk results are merged in chunk order, so any function built on
// these facades computes bit-for-bit the same result for every worker count
// — only the wall-clock interleaving differs. (Callers that intern into the
// shared arenas may observe different *identifier* assignment across worker
// counts; everything the analysis layer reports is content-determined, see
// DESIGN.md "Runtime & threading model".)
//
// With worker_count() == 1 — the LACON_THREADS=1 configuration and the
// default on single-core hosts — every facade degenerates to the plain
// serial loop on the calling thread: no tasks, no locks, no divergence from
// the pre-runtime behaviour.
//
// The *_guarded variants accept a guard::Guard and probe it cooperatively
// at item and chunk boundaries. Truncation preserves the ordered-chunk
// contract: chunks are claimed in increasing index order and the trip flag
// is sticky, so the processed region is always a contiguous prefix
// [0, completed) of the index space — a truncated result never has holes,
// and its content is canonical for every worker count. (Straggler chunks
// claimed before the trip may also have run; their indices lie beyond
// `completed` and their results are discarded by the guarded facades.)
//
// Tracing integration (runtime/trace.hpp): under LACON_TRACE=spans each
// executed chunk emits one span on the worker that ran it, attributed to
// the innermost live PhaseScope ("explore.expand", "valence.classify", …)
// or to the generic "pool.chunk" outside any phase. That is how per-worker
// lanes appear in a Perfetto trace without any per-item instrumentation;
// with tracing off the chunk path pays one relaxed load.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/guard.hpp"
#include "runtime/thread_pool.hpp"

namespace lacon::runtime {

namespace detail {

// Runs fn(chunk_index, begin, end) over `num_chunks` contiguous chunks of
// [0, n), distributing chunks across the pool and helping from the calling
// thread until all chunks completed. fn must be safe to invoke concurrently.
void for_chunks(std::size_t n, std::size_t num_chunks,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)>& fn);

// Guarded variant: fn returns the number of items it processed from
// [begin, end); chunks claimed after the guard tripped are skipped. Returns
// the length of the contiguous processed prefix of [0, n). An injected
// allocation failure (runtime/fault.hpp) inside a chunk trips the guard's
// state budget instead of propagating; any other exception propagates with
// first-exception-wins semantics exactly like the unguarded path.
std::size_t for_chunks_guarded(
    const guard::Guard& g, std::size_t n, std::size_t num_chunks,
    const std::function<std::size_t(std::size_t, std::size_t, std::size_t)>&
        fn);

// The chunk count used for `n` items at the current worker count: enough
// chunks per worker to smooth uneven per-item cost, but never more chunks
// than items.
std::size_t chunk_count(std::size_t n);

}  // namespace detail

// Applies body(i) to every i in [0, n). Serial (and in index order) when the
// worker count is 1 or n < 2; otherwise unordered across chunks.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  if (n == 0) return;
  const std::size_t chunks = detail::chunk_count(n);
  if (chunks <= 1) {
    // Serial sections still probe the task-body injection site, so fault
    // soaks exercise this path under LACON_THREADS=1 too.
    fault::maybe_throw_task_fault();
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  detail::for_chunks(
      n, chunks,
      [&body](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      });
}

// Guarded parallel_for: probes g before every item and returns the length
// of the processed prefix — every i in [0, returned) was processed exactly
// once; indices beyond it at most once (parallel stragglers), never with
// holes below the returned bound. Returns n iff the guard never tripped.
template <typename Body>
std::size_t parallel_for_guarded(const guard::Guard& g, std::size_t n,
                                 Body&& body) {
  if (g.never_trips()) {
    parallel_for(n, std::forward<Body>(body));
    return n;
  }
  if (n == 0) return 0;
  const std::size_t chunks = detail::chunk_count(n);
  return detail::for_chunks_guarded(
      g, n, chunks,
      [&body, &g](std::size_t, std::size_t begin,
                  std::size_t end) -> std::size_t {
        for (std::size_t i = begin; i < end; ++i) {
          if (g.tripped()) return i - begin;
          try {
            body(i);
          } catch (const fault::InjectedAllocError&) {
            g.note_memory_exhausted();
            return i - begin;
          }
        }
        return end - begin;
      });
}

// Maps each ordered chunk of [0, n) to a value and returns the per-chunk
// values in chunk order. `chunk_body(begin, end)` must be safe to invoke
// concurrently; the merged vector is identical for every worker count
// whenever chunk_body is deterministic per chunk.
template <typename R, typename ChunkBody>
std::vector<R> parallel_map_chunks(std::size_t n, ChunkBody&& chunk_body) {
  const std::size_t chunks = n == 0 ? 0 : detail::chunk_count(n);
  std::vector<R> results(chunks);
  if (chunks == 0) return results;
  if (chunks == 1) {
    results[0] = chunk_body(std::size_t{0}, n);
    return results;
  }
  detail::for_chunks(n, chunks,
                     [&](std::size_t c, std::size_t begin, std::size_t end) {
                       results[c] = chunk_body(begin, end);
                     });
  return results;
}

// Result of a guarded chunk map: the values of the fully-processed prefix
// chunks, in chunk order; `completed` counts the items those chunks cover
// (== n iff the guard never tripped). A chunk whose body only got partway
// — or that was skipped after the trip — is dropped along with everything
// after it, so `values` always describes a contiguous prefix of the index
// space that is canonical for every worker count.
template <typename R>
struct PartialChunks {
  std::vector<R> values;
  std::size_t completed = 0;
};

template <typename R, typename ChunkBody>
PartialChunks<R> parallel_map_chunks_guarded(const guard::Guard& g,
                                             std::size_t n,
                                             ChunkBody&& chunk_body) {
  PartialChunks<R> out;
  if (g.never_trips()) {
    out.values = parallel_map_chunks<R>(n, std::forward<ChunkBody>(chunk_body));
    out.completed = n;
    return out;
  }
  const std::size_t chunks = n == 0 ? 0 : detail::chunk_count(n);
  if (chunks == 0) return out;
  std::vector<R> results(chunks);
  const std::size_t prefix = detail::for_chunks_guarded(
      g, n, chunks,
      [&](std::size_t c, std::size_t begin, std::size_t end) -> std::size_t {
        results[c] = chunk_body(begin, end);
        return end - begin;
      });
  // Chunk bounds are arithmetic (same split as detail::for_chunks), so keep
  // exactly the chunks whose end lies inside the processed prefix.
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = (c + 1) * base + std::min(c + 1, rem);
    if (end > prefix) break;
    out.completed = end;
    out.values.push_back(std::move(results[c]));
  }
  return out;
}

// Reduces map(i) over [0, n). `init` must be an identity of `reduce` (it
// seeds every chunk). Chunks fold locally left-to-right and the per-chunk
// results fold in chunk order, so even non-commutative reductions are
// deterministic across worker counts.
template <typename R, typename Map, typename Reduce>
R parallel_reduce(std::size_t n, R init, Map&& map, Reduce&& reduce) {
  std::vector<R> partial = parallel_map_chunks<R>(
      n, [&](std::size_t begin, std::size_t end) {
        R acc = init;
        for (std::size_t i = begin; i < end; ++i) {
          acc = reduce(std::move(acc), map(i));
        }
        return acc;
      });
  R total = std::move(init);
  for (R& p : partial) total = reduce(std::move(total), std::move(p));
  return total;
}

}  // namespace lacon::runtime
