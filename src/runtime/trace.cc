#include "runtime/trace.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "runtime/guard.hpp"
#include "runtime/thread_pool.hpp"

namespace lacon::trace {

namespace {

std::uint64_t now_ns() noexcept {
  // All spans share one process epoch so cross-thread timelines line up.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// One buffered event; tid lives on the owning buffer, not the event.
struct Event {
  const SpanSite* site = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = kNoArg;
  std::uint32_t depth = 0;
  bool is_instant = false;
};

std::atomic<std::uint64_t> g_dropped{0};

// Per-thread append-only event buffer. The owner thread is the only writer:
// it writes the next slot, then publishes the new size with a release store.
// Readers (collect/export, possibly on another thread) take the chunk-list
// mutex, read the published size with acquire, and only touch slots below
// it — so emission stays lock-free except on the cold chunk roll, and
// concurrent collection is race-free even while workers are still writing.
class SpanBuffer {
 public:
  static constexpr std::size_t kChunkEvents = 4096;
  // Per-thread cap: a runaway spans-mode loop degrades to dropped-event
  // accounting instead of unbounded memory.
  static constexpr std::size_t kMaxEvents = 1 << 20;

  void push(const Event& e) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    if (i >= kMaxEvents) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (i == capacity_) {
      std::lock_guard<std::mutex> lock(chunks_mu_);
      chunks_.push_back(std::make_unique<Chunk>());
      capacity_ += kChunkEvents;
    }
    chunks_[i / kChunkEvents]->events[i % kChunkEvents] = e;
    size_.store(i + 1, std::memory_order_release);
  }

  void snapshot_into(std::uint32_t tid, std::vector<CollectedSpan>& out) const {
    std::lock_guard<std::mutex> lock(chunks_mu_);
    const std::size_t n = size_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = chunks_[i / kChunkEvents]->events[i % kChunkEvents];
      out.push_back(CollectedSpan{e.site->category, e.site->name, tid,
                                  e.depth, e.is_instant, e.start_ns, e.dur_ns,
                                  e.arg});
    }
  }

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  // Quiescent-only (see trace::clear()): drops the events but keeps the
  // allocated chunks for reuse.
  void clear() noexcept { size_.store(0, std::memory_order_release); }

 private:
  struct Chunk {
    std::array<Event, kChunkEvents> events;
  };

  mutable std::mutex chunks_mu_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t capacity_ = 0;  // owner-written under chunks_mu_
  std::atomic<std::size_t> size_{0};
};

struct ThreadState {
  SpanBuffer buffer;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // owner-thread-only nesting counter
};

// Live buffers plus buffers of exited threads (a worker pool rebuild via
// set_worker_count must not lose its spans). Leaked so thread_local
// destructors running at process exit still find it alive.
struct Registry {
  std::mutex mu;
  std::vector<ThreadState*> live;
  std::vector<std::unique_ptr<ThreadState>> retired;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* instance = new Registry();
  return *instance;
}

struct ThreadStateHolder {
  ThreadState* state;

  ThreadStateHolder() : state(new ThreadState()) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    state->tid = reg.next_tid++;
    reg.live.push_back(state);
  }
  ~ThreadStateHolder() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), state));
    reg.retired.emplace_back(state);
  }
};

ThreadState& thread_state() {
  thread_local ThreadStateHolder holder;
  return *holder.state;
}

std::atomic<SpanSite*> g_phase{nullptr};

void append_json_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_key(std::string& out, const std::string& key) {
  out += '"';
  append_json_escaped(out, key.c_str());
  out += "\":";
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "lacon: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "lacon: short write to '%s'\n", path.c_str());
  }
  return ok;
}

}  // namespace

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kCounters:
      return "counters";
    case Mode::kSpans:
      return "spans";
  }
  return "?";
}

Mode parse_mode(const char* text, Mode fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  if (std::strcmp(text, "off") == 0) return Mode::kOff;
  if (std::strcmp(text, "counters") == 0) return Mode::kCounters;
  if (std::strcmp(text, "spans") == 0) return Mode::kSpans;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "lacon: ignoring malformed LACON_TRACE='%s', using '%s'\n",
                 text, to_string(fallback));
  }
  return fallback;
}

namespace detail {

std::atomic<std::uint8_t> g_mode_plus_one{0};

Mode mode_slow() noexcept {
  const Mode m = parse_mode(std::getenv("LACON_TRACE"), Mode::kOff);
  std::uint8_t expected = 0;
  g_mode_plus_one.compare_exchange_strong(
      expected, static_cast<std::uint8_t>(static_cast<std::uint8_t>(m) + 1),
      std::memory_order_relaxed);
  // A concurrent set_mode() wins the race; re-read either way.
  return static_cast<Mode>(
      g_mode_plus_one.load(std::memory_order_relaxed) - 1);
}

}  // namespace detail

void set_mode(Mode mode) noexcept {
  detail::g_mode_plus_one.store(
      static_cast<std::uint8_t>(static_cast<std::uint8_t>(mode) + 1),
      std::memory_order_relaxed);
}

runtime::Histogram& SpanSite::histogram() {
  runtime::Histogram* h = hist.load(std::memory_order_acquire);
  if (h == nullptr) {
    std::string key = "span.";
    key += category;
    key += '.';
    key += name;
    h = &runtime::Stats::global().histogram(key);
    hist.store(h, std::memory_order_release);  // idempotent: same target
  }
  return *h;
}

void ScopedSpan::begin(SpanSite* site, std::uint64_t arg) noexcept {
  site_ = site;
  arg_ = arg;
  start_ns_ = now_ns();
  if (mode() == Mode::kSpans) {
    ThreadState& ts = thread_state();
    depth_ = ts.depth++;
    thread_state_ = &ts;
  }
}

void ScopedSpan::finish() noexcept {
  const std::uint64_t dur = now_ns() - start_ns_;
  site_->histogram().record(dur);
  if (thread_state_ != nullptr) {
    auto& ts = *static_cast<ThreadState*>(thread_state_);
    --ts.depth;
    ts.buffer.push(Event{site_, start_ns_, dur, arg_, ts.depth, false});
  }
}

PhaseScope::PhaseScope(SpanSite& site, std::uint64_t arg) noexcept
    : span_(site, arg) {
  if (mode() != Mode::kOff) {
    prev_ = g_phase.exchange(&site, std::memory_order_relaxed);
    set_ = true;
  }
}

PhaseScope::~PhaseScope() {
  if (set_) g_phase.store(prev_, std::memory_order_relaxed);
}

SpanSite* current_phase() noexcept {
  return g_phase.load(std::memory_order_relaxed);
}

void instant(SpanSite& site, std::uint64_t arg) noexcept {
  const Mode m = mode();
  if (m == Mode::kOff) return;
  site.histogram().record(0);
  if (m != Mode::kSpans) return;
  ThreadState& ts = thread_state();
  ts.buffer.push(Event{&site, now_ns(), 0, arg, ts.depth, true});
}

std::vector<CollectedSpan> collect() {
  std::vector<CollectedSpan> out;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const ThreadState* ts : reg.live) {
    ts->buffer.snapshot_into(ts->tid, out);
  }
  for (const auto& ts : reg.retired) {
    ts->buffer.snapshot_into(ts->tid, out);
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedSpan& a, const CollectedSpan& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  return out;
}

void clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadState* ts : reg.live) ts->buffer.clear();
  reg.retired.clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

std::size_t spans_recorded() {
  std::size_t total = 0;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const ThreadState* ts : reg.live) total += ts->buffer.size();
  for (const auto& ts : reg.retired) total += ts->buffer.size();
  return total;
}

std::size_t spans_dropped() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  const std::vector<CollectedSpan> spans = collect();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata so Perfetto labels the per-worker tracks.
  std::vector<std::uint32_t> tids;
  for (const CollectedSpan& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  char buf[160];
  for (const std::uint32_t tid : tids) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"lacon-%u\"}}",
                  first ? "" : ",", tid, tid);
    out += buf;
    first = false;
  }
  for (const CollectedSpan& s : spans) {
    out += first ? "{" : ",{";
    first = false;
    out += "\"name\":\"";
    append_json_escaped(out, s.category);
    out += '.';
    append_json_escaped(out, s.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, s.category);
    out += "\",";
    // Timestamps are microseconds in the trace-event format; keep ns
    // precision as fractional digits.
    if (s.is_instant) {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
                    "\"ts\":%.3f",
                    s.tid, static_cast<double>(s.start_ns) / 1000.0);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"dur\":%.3f",
                    s.tid, static_cast<double>(s.start_ns) / 1000.0,
                    static_cast<double>(s.dur_ns) / 1000.0);
    }
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"depth\":%u", s.depth);
    out += buf;
    if (s.arg != kNoArg) {
      std::snprintf(buf, sizeof(buf), ",\"arg\":%llu",
                    static_cast<unsigned long long>(s.arg));
      out += buf;
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  return write_text_file(path, chrome_trace_json());
}

MetricsSnapshot MetricsSnapshot::capture() {
  MetricsSnapshot snap;
  snap.workers = runtime::worker_count();
  snap.trace_mode = mode();
  const guard::GuardSpec& spec = guard::process_guard_spec();
  snap.guard_budget_ms = spec.budget_ms;
  snap.guard_max_states = spec.max_states;
  snap.guard_max_bytes = spec.max_bytes;
  snap.stats = runtime::Stats::global().snapshot();
  snap.histograms = runtime::Stats::global().histogram_snapshot();
  snap.spans_recorded = ::lacon::trace::spans_recorded();
  snap.spans_dropped = ::lacon::trace::spans_dropped();
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"schema\":\"lacon.metrics.v1\",";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"workers\":%u,", workers);
  out += buf;
  out += "\"trace_mode\":\"";
  out += trace::to_string(trace_mode);
  out += "\",";

  // Guard block: configured budgets plus the sticky trip counters (also
  // present in "counters" as guard.trips_*; surfaced here so a consumer can
  // tell "truncated run" apart without string-prefix matching).
  std::uint64_t trips_deadline = 0, trips_state = 0, trips_cancelled = 0;
  for (const runtime::StatSample& s : stats) {
    if (s.is_timer) continue;
    if (s.name == "guard.trips_deadline") trips_deadline = s.value;
    if (s.name == "guard.trips_state_budget") trips_state = s.value;
    if (s.name == "guard.trips_cancelled") trips_cancelled = s.value;
  }
  std::snprintf(buf, sizeof(buf),
                "\"guard\":{\"budget_ms\":%lld,\"max_states\":%llu,",
                static_cast<long long>(guard_budget_ms),
                static_cast<unsigned long long>(guard_max_states));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"max_bytes\":%llu,\"trips\":{\"deadline\":%llu,",
                static_cast<unsigned long long>(guard_max_bytes),
                static_cast<unsigned long long>(trips_deadline));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"state_budget\":%llu,\"cancelled\":%llu}},",
                static_cast<unsigned long long>(trips_state),
                static_cast<unsigned long long>(trips_cancelled));
  out += buf;

  out += "\"counters\":{";
  bool first = true;
  for (const runtime::StatSample& s : stats) {
    if (s.is_timer) continue;
    if (!first) out += ',';
    first = false;
    append_key(out, s.name);
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(s.value));
    out += buf;
  }
  out += "},\"timers\":{";
  first = true;
  for (const runtime::StatSample& s : stats) {
    if (!s.is_timer) continue;
    if (!first) out += ',';
    first = false;
    append_key(out, s.name);
    std::snprintf(buf, sizeof(buf), "{\"ns\":%llu,\"calls\":%llu}",
                  static_cast<unsigned long long>(s.value),
                  static_cast<unsigned long long>(s.count));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const runtime::HistogramSample& h : histograms) {
    if (!first) out += ',';
    first = false;
    append_key(out, h.name);
    std::snprintf(buf, sizeof(buf), "{\"count\":%llu,\"sum\":%llu,",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    // Sparse bucket encoding: [lower_bound, count] pairs, non-empty only.
    out += "\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < runtime::Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "[%llu,%llu]",
                    static_cast<unsigned long long>(
                        runtime::Histogram::bucket_lower(b)),
                    static_cast<unsigned long long>(h.buckets[b]));
      out += buf;
    }
    out += "]}";
  }
  std::snprintf(buf, sizeof(buf),
                "},\"spans\":{\"recorded\":%llu,\"dropped\":%llu}}",
                static_cast<unsigned long long>(spans_recorded),
                static_cast<unsigned long long>(spans_dropped));
  out += buf;
  return out;
}

std::string metrics_snapshot_json() {
  return MetricsSnapshot::capture().to_json();
}

bool write_metrics_snapshot(const std::string& path) {
  return write_text_file(path, metrics_snapshot_json());
}

void write_env_artifacts() {
  if (const char* path = std::getenv("LACON_METRICS_FILE");
      path != nullptr && *path != '\0') {
    if (write_metrics_snapshot(path)) {
      std::fprintf(stderr, "lacon: wrote metrics snapshot %s\n", path);
    }
  }
  if (mode() == Mode::kSpans) {
    if (const char* path = std::getenv("LACON_TRACE_FILE");
        path != nullptr && *path != '\0') {
      if (write_chrome_trace(path)) {
        std::fprintf(stderr, "lacon: wrote trace %s (Perfetto-loadable)\n",
                     path);
      }
    }
  }
}

}  // namespace lacon::trace
